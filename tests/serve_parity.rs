//! Serving bit-identity harness: dynamic batching must be a pure
//! scheduling decision. For every zoo model, a batch-k dispatch on the
//! serving engine's proven rung-k plan must be **bit-identical** — output
//! values *and* total saturation/overflow counters — to k independent
//! batch-1 runs, at 1 and 4 worker threads (the batched kernels replay
//! the same per-element epilogues row by row, so there is no tolerance
//! to hide behind). On top of the executor-level identity, a full
//! serve() scope — admission queue, coalescing, shared-weight sessions —
//! must route every client exactly the logits a direct batch-1 run
//! produces, with zero executor allocations in the steady state.
//!
//! `scripts/ci.sh` runs this under the `sanitize` feature, so the sweep
//! additionally exercises accumulator-wrap asserts, the happens-before
//! sanitizer, and the admission queue's claim/complete tracker; any
//! finding is drained and fails the run.

use std::time::Duration;

use tqt_fixedpoint::{lower, IntExecutor};
use tqt_graph::{quantize_graph, transforms, QuantizeOptions, WeightBits};
use tqt_models::{ModelKind, INPUT_DIMS};
use tqt_rt::pool;
use tqt_rt::queue::scoped_threads;
use tqt_serve::Engine;
use tqt_tensor::{init, Tensor};
use tqt_verify::collect_hb_findings;

fn engine_for(kind: ModelKind, seed: u64) -> Engine {
    let mut g = kind.build(seed);
    transforms::optimize(&mut g, &INPUT_DIMS);
    quantize_graph(&mut g, QuantizeOptions::retrain_wt_th(WeightBits::Int8));
    let mut rng = init::rng(seed + 500);
    g.calibrate(&init::normal([8, 3, 32, 32], 0.0, 1.0, &mut rng));
    let ig = lower(&mut g);
    match Engine::build(ig, &INPUT_DIMS) {
        Ok(e) => e,
        Err(msg) => panic!("{}: ladder plans must prove\n{msg}", kind.name()),
    }
}

/// Copies image `i` of `batch` into a fresh single-image tensor.
fn image_of(batch: &Tensor, i: usize) -> Tensor {
    let elems: usize = INPUT_DIMS[1..].iter().product();
    Tensor::from_vec(
        INPUT_DIMS,
        batch.data()[i * elems..(i + 1) * elems].to_vec(),
    )
}

#[test]
fn batch_dispatch_is_bit_identical_to_single_requests() {
    pool::set_threads(4);
    for (i, &kind) in ModelKind::all().iter().enumerate() {
        let seed = 90 + i as u64;
        let eng = engine_for(kind, seed);
        let mut rng = init::rng(seed + 900);
        for &rung in eng.ladder() {
            if rung == 1 {
                continue;
            }
            let x = init::normal([rung, 3, 32, 32], 0.0, 1.0, &mut rng);
            for serial in [true, false] {
                pool::force_serial(serial);
                let threads = if serial { 1 } else { 4 };
                let plan_k = eng.plan_for(rung).expect("ladder rung is planned");
                let mut ex_k = IntExecutor::with_plan(eng.graph(), plan_k);
                let (yk, sk) = ex_k.run_with_stats(&x);

                let plan_1 = eng.plan_for(1).expect("rung 1 is planned");
                let mut ex_1 = IntExecutor::with_plan(eng.graph(), plan_1);
                let mut singles: Vec<i64> = Vec::new();
                let (mut sat, mut ovf) = (0u64, 0u64);
                for r in 0..rung {
                    let (y1, s1) = ex_1.run_with_stats(&image_of(&x, r));
                    assert_eq!(
                        y1.format,
                        yk.format,
                        "{}: batch {rung} changed the output format",
                        kind.name()
                    );
                    singles.extend_from_slice(y1.data());
                    sat += s1.total_saturated();
                    ovf += s1.total_overflowed();
                }
                assert_eq!(
                    yk.data(),
                    &singles[..],
                    "{}: batch-{rung} outputs differ from {rung} batch-1 runs \
                     ({threads} thread(s))",
                    kind.name()
                );
                assert_eq!(
                    sk.total_saturated(),
                    sat,
                    "{}: batch-{rung} saturation count differs ({threads} thread(s))",
                    kind.name()
                );
                assert_eq!(
                    sk.total_overflowed(),
                    ovf,
                    "{}: batch-{rung} overflow count differs ({threads} thread(s))",
                    kind.name()
                );
            }
            pool::force_serial(false);
        }
    }
    pool::set_threads(0);
}

#[test]
fn served_replies_are_bit_identical_zoo_wide() {
    // Intra-op parallelism off: the serving threads themselves are the
    // parallelism under test here, and nested pools would only add noise.
    pool::set_threads(1);
    for (i, &kind) in ModelKind::all().iter().enumerate() {
        let seed = 90 + i as u64;
        let eng = engine_for(kind, seed);
        let mut rng = init::rng(seed + 950);
        let images: Vec<Tensor> = (0..6)
            .map(|_| init::normal(INPUT_DIMS, 0.0, 1.0, &mut rng))
            .collect();
        let expected: Vec<Vec<i64>> = {
            let plan = eng.plan_for(1).expect("rung 1 is planned");
            let mut ex = IntExecutor::with_plan(eng.graph(), plan);
            images.iter().map(|x| ex.run(x).data().to_vec()).collect()
        };
        let ((), report) = eng.serve(2, Duration::from_millis(2), |client| {
            let (imgs, exp) = (&images, &expected);
            let (_, ()) = scoped_threads(
                3,
                |c| {
                    for (j, x) in imgs.iter().enumerate().filter(|(j, _)| j % 3 == c) {
                        let reply = client.infer(x.data());
                        assert_eq!(
                            reply.logits,
                            exp[j],
                            "{}: served logits differ from the batch-1 run",
                            kind.name()
                        );
                    }
                },
                || {},
            );
        });
        assert_eq!(report.queue.submitted, 6, "{}", kind.name());
        assert_eq!(
            report.queue.dispatched_requests, 6,
            "{}: drain must lose nothing",
            kind.name()
        );
        assert_eq!(report.overflowed, 0, "{}: proven plans cannot wrap", kind.name());
        assert_eq!(
            report.steady_state_allocs, 0,
            "{}: the serving hot path must not allocate executor slots",
            kind.name()
        );
    }
    pool::set_threads(0);
    let hb = collect_hb_findings();
    assert!(hb.is_clean(), "sanitizer findings during serving:\n{hb}");
}
