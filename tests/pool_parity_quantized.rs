//! End-to-end bit-identity of the persistent worker pool: a full
//! quantized (TQT) forward + backward pass on a zoo model must produce
//! byte-identical logits and parameter gradients whether it runs on the
//! parallel path with several workers or under `force_serial`. This is
//! the whole-graph version of the kernel-level guarantee in
//! `crates/tensor/tests/parallel_parity.rs` — it covers the quantizer,
//! batch-norm, pooling and loss kernels between the GEMMs too.

use tqt_data::{calibration_batch, train_val, SynthConfig};
use tqt_graph::{quantize_graph, transforms, Graph, QuantizeOptions, WeightBits};
use tqt_models::{ModelKind, INPUT_DIMS};
use tqt_nn::loss::softmax_cross_entropy;
use tqt_nn::Mode;
use tqt_rt::pool;
use tqt_tensor::Tensor;

/// One quantized forward/backward; returns logits plus every parameter
/// gradient (name-keyed so a mismatch names the offending layer).
fn fwd_bwd(g: &mut Graph, x: &Tensor, labels: &[usize]) -> (Tensor, Vec<(String, Tensor)>) {
    let logits = g.forward(x, Mode::Train);
    let (_, dlogits) = softmax_cross_entropy(&logits, labels);
    g.zero_grads();
    g.backward(&dlogits);
    let grads = g
        .params_mut()
        .into_iter()
        .map(|p| (p.name.clone(), p.grad.clone()))
        .collect();
    (logits, grads)
}

#[test]
fn quantized_forward_backward_bit_identical_serial_vs_parallel() {
    // More workers than a single-core CI host has cores: the guarantee is
    // thread-count independence, not "serial happens to win the race".
    pool::set_threads(4);

    let cfg = SynthConfig::default();
    let (train_set, _) = train_val(&cfg, 64, 8);
    let mut g = ModelKind::ResNet8.build(7);
    transforms::optimize(&mut g, &INPUT_DIMS);
    quantize_graph(&mut g, QuantizeOptions::retrain_wt_th(WeightBits::Int8));
    g.calibrate(&calibration_batch(&train_set, 16, 3));

    let x = calibration_batch(&train_set, 8, 5);
    let labels: Vec<usize> = (0..8).map(|i| i % 10).collect();

    let (logits_par, grads_par) = fwd_bwd(&mut g, &x, &labels);
    pool::force_serial(true);
    let (logits_ser, grads_ser) = fwd_bwd(&mut g, &x, &labels);
    pool::force_serial(false);
    pool::set_threads(0);

    // Tensor equality is exact element-wise f32 comparison: bit identity.
    assert_eq!(logits_par, logits_ser, "quantized logits differ");
    assert_eq!(grads_par.len(), grads_ser.len());
    for ((name, gp), (name2, gs)) in grads_par.iter().zip(&grads_ser) {
        assert_eq!(name, name2);
        assert_eq!(gp, gs, "gradient for {name} differs serial vs parallel");
    }
}
