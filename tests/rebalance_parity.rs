//! Differential rebalance harness: the requant-rebalancing pass
//! (`tqt_fixedpoint::rebalance`) must turn an *unmerged* lowering — each
//! add/concat operand on its own grid, the `TQT-V028` gap — into a graph
//! that is (a) well-typed under the grid type system, (b) bit-accurate to
//! the exact dyadic reference (`tqt_quant::exact`) at every repaired
//! merge, and (c) bit-identical between serial and 4-thread execution,
//! unfused and fused through the inserted coercions.

use tqt_fixedpoint::lower::{EpiStep, IntGraph, IntNode, IntOp};
use tqt_fixedpoint::{
    fuse_with_chains, lower_with_provenance, rebalance_with_provenance, rebalance_with_records,
    QFormat,
};
use tqt_graph::{quantize_graph, transforms, QuantizeOptions, WeightBits};
use tqt_models::{ModelKind, INPUT_DIMS};
use tqt_quant::exact::{fake_quant_int, shift_round_ref};
use tqt_rt::pool;
use tqt_tensor::init;
use tqt_verify::{analyze, certify, infer_int_grids, Code};

/// Unmerged-quantized, calibrated, lowered resnet8 plus its provenance.
fn unmerged_resnet8() -> (IntGraph, tqt_fixedpoint::Provenance) {
    let mut g = ModelKind::ResNet8.build(70);
    transforms::optimize(&mut g, &INPUT_DIMS);
    quantize_graph(&mut g, QuantizeOptions::retrain_wt_th(WeightBits::Int8).unmerged());
    let mut rng = init::rng(270);
    g.calibrate(&init::normal([8, 3, 32, 32], 0.0, 1.0, &mut rng));
    lower_with_provenance(&mut g)
}

/// The rebalanced graph must re-prove under every certifier the repo has:
/// grid types (`TQT-V031`–`TQT-V034`), the interval dataflow, and the
/// translation validator against the exact dyadic reference.
#[test]
fn rebalanced_resnet8_certifies_end_to_end() {
    let (uig, uprov) = unmerged_resnet8();
    let dims = [4usize, 3, 32, 32];
    let (rig, rprov, records) = rebalance_with_provenance(&uig, &uprov);
    assert!(!records.is_empty(), "resnet8 unmerged must need repairs");
    let grids = infer_int_grids(&rig, &dims);
    assert!(grids.report.is_clean(), "{}", grids.report);
    let proven = analyze(&rig, &dims);
    assert!(proven.report.is_clean(), "{}", proven.report);
    let cert = certify(&rig, &rprov, &proven, &dims);
    assert!(cert.is_clean(), "{cert}");
}

/// Fusion must fuse *through* the inserted coercions: at least one fused
/// chain of the rebalanced resnet8 claims a `/rebal_` requant as a
/// member, and the fused graph stays bit-identical to the unfused
/// rebalanced graph at 1 and 4 worker threads.
#[test]
fn resnet8_gains_fused_rebalanced_add_chains() {
    let (uig, _uprov) = unmerged_resnet8();
    let (rig, records) = rebalance_with_records(uig);
    assert!(!records.is_empty(), "resnet8 unmerged must need repairs");

    let (fig, chains) = fuse_with_chains(rig.clone());
    let coerced_chains: Vec<&str> = chains
        .iter()
        .filter(|c| c.members.iter().any(|m| m.contains("/rebal_")))
        .map(|c| c.fused_name.as_str())
        .collect();
    assert!(
        !coerced_chains.is_empty(),
        "no fused chain claimed a rebalance coercion; chains: {:?}",
        chains.iter().map(|c| &c.fused_name).collect::<Vec<_>>()
    );
    // The claimed coercion shows up as consecutive requant epilogue steps.
    let consecutive = fig.nodes().iter().any(|n| match &n.op {
        IntOp::Fused { epi, .. } => epi
            .windows(2)
            .any(|w| matches!(w, [EpiStep::Requant { .. }, EpiStep::Requant { .. }])),
        _ => false,
    });
    assert!(consecutive, "fused epilogue should carry the coercion requant");

    pool::set_threads(4);
    let mut rng = init::rng(1371);
    let x = init::normal([2, 3, 32, 32], 0.0, 1.0, &mut rng);
    let mut outs = Vec::new();
    for serial in [false, true] {
        pool::force_serial(serial);
        let (y0, s0) = rig.run_with_stats(&x);
        let (y1, s1) = fig.run_with_stats(&x);
        assert_eq!(y0, y1, "fused rebalanced output differs (serial={serial})");
        assert_eq!(
            (s0.total_saturated(), s0.total_overflowed()),
            (s1.total_saturated(), s1.total_overflowed()),
            "fused rebalanced counters differ (serial={serial})"
        );
        outs.push(y0);
    }
    pool::force_serial(false);
    pool::set_threads(0);
    assert_eq!(outs[0], outs[1], "serial and 4-thread outputs differ");
}

/// Tiny deterministic generator for the random-grid sweep (no external
/// RNG crate; xorshift64* is plenty for grid fuzzing).
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn format(&mut self) -> QFormat {
        let frac = self.below(8) as i32;
        let bits = if self.below(2) == 0 { 8 } else { 16 };
        QFormat::new(frac, bits, self.below(2) == 0)
    }
}

/// `input -> quant -> {requant per operand} -> merge`, the minimal shape
/// of the `TQT-V028` gap.
fn merge_graph(fin: QFormat, operands: &[QFormat], concat: bool) -> IntGraph {
    let mut nodes = vec![
        IntNode {
            name: "input".into(),
            op: IntOp::Input,
            inputs: vec![],
        },
        IntNode {
            name: "qin".into(),
            op: IntOp::QuantF32 { format: fin },
            inputs: vec![0],
        },
    ];
    let mut merge_inputs = Vec::new();
    for (i, &f) in operands.iter().enumerate() {
        merge_inputs.push(nodes.len());
        nodes.push(IntNode {
            name: format!("r{i}"),
            op: IntOp::Requant { format: f },
            inputs: vec![1],
        });
    }
    let out = nodes.len();
    nodes.push(IntNode {
        name: if concat { "concat" } else { "add" }.into(),
        op: if concat { IntOp::Concat } else { IntOp::Add },
        inputs: merge_inputs,
    });
    IntGraph::from_parts(nodes, out)
}

/// Evaluates a rebalanced merge graph in exact dyadic arithmetic
/// (`tqt_quant::exact`), independently of the integer kernels: fake-quant
/// by `fake_quant_int`, every requant (original or inserted coercion) by
/// `shift_round_ref` + clamp, add as plain integer addition, concat as
/// batch-1 append. Returns the output integers and their fractional
/// length.
fn dyadic_reference(g: &IntGraph, x: &[f32]) -> (Vec<i64>, i32) {
    let nodes = g.nodes();
    let mut vals: Vec<Vec<i64>> = vec![Vec::new(); nodes.len()];
    let mut fracs: Vec<i32> = vec![0; nodes.len()];
    for (id, n) in nodes.iter().enumerate() {
        match &n.op {
            IntOp::Input => {}
            IntOp::QuantF32 { format } => {
                fracs[id] = format.frac;
                vals[id] = x
                    .iter()
                    .map(|&v| {
                        let q = fake_quant_int(
                            v,
                            format.frac,
                            i128::from(format.qmin()),
                            i128::from(format.qmax()),
                        );
                        match q {
                            Some(q) => q as i64,
                            None => panic!("probe value {v} has no fake-quant"),
                        }
                    })
                    .collect();
            }
            IntOp::Requant { format } => {
                let src = n.inputs[0];
                let shift = fracs[src] - format.frac;
                fracs[id] = format.frac;
                vals[id] = vals[src]
                    .iter()
                    .map(|&v| match shift_round_ref(v, shift) {
                        Some(r) => r.clamp(format.qmin(), format.qmax()),
                        None => panic!("reference requant overflowed i64"),
                    })
                    .collect();
            }
            IntOp::Add => {
                let (a, b) = (n.inputs[0], n.inputs[1]);
                fracs[id] = fracs[a];
                let rhs = std::mem::take(&mut vals[b]);
                vals[id] = vals[a].iter().zip(&rhs).map(|(&p, &q)| p + q).collect();
            }
            IntOp::Concat => {
                fracs[id] = fracs[n.inputs[0]];
                let mut out = Vec::new();
                for &i in &n.inputs.clone() {
                    out.extend_from_slice(&vals[i]);
                }
                vals[id] = out;
            }
            other => panic!("unexpected op in synthetic merge graph: {other:?}"),
        }
    }
    (std::mem::take(&mut vals[g.output_id()]), fracs[g.output_id()])
}

/// Random-grid property sweep: for adds and concats over random operand
/// `QFormat`s (frac 0..8, 8/16 bits, mixed signedness), the rebalanced
/// graph must (a) type-check under the grid type system and (b) produce
/// integers bit-equal to the exact dyadic reference, serially and on 4
/// worker threads.
#[test]
fn rebalanced_merges_match_dyadic_reference_across_random_grids() {
    pool::set_threads(4);
    let mut rng = XorShift(0x7265_6261_6c5f_7071);
    let mut frng = init::rng(991);
    let mut repaired = 0usize;
    for trial in 0..72 {
        let concat = trial % 3 == 2;
        let n_ops = if concat { 2 + rng.below(2) as usize } else { 2 };
        let fin = QFormat::new(3 + rng.below(5) as i32, 8, true);
        let mut operands: Vec<QFormat> = (0..n_ops).map(|_| rng.format()).collect();
        if operands.iter().all(|f| *f == operands[0]) {
            operands[0] = QFormat::new((operands[0].frac + 1) % 8, 8, true);
        }
        let g = merge_graph(fin, &operands, concat);
        let (rg, records) = rebalance_with_records(g);
        repaired += usize::from(!records.is_empty());

        // Batch 1 keeps channel concat a plain append for the reference.
        let dims = vec![1usize, 2 + n_ops, 4, 4];
        // The random sweep may emit an operand requant on the input's own
        // grid, which the V033 redundancy lint rightly flags — only grid
        // *errors* fail the property.
        let rep = infer_int_grids(&rg, &dims).report;
        assert!(
            !rep.has(Code::GridContradiction)
                && !rep.has(Code::UninferableGrid)
                && !rep.has(Code::IllegalCoercion),
            "trial {trial}: rebalanced graph is not well-typed: {rep}"
        );

        let x = init::normal(dims, 0.0, 1.0, &mut frng);
        let (expect, expect_frac) = dyadic_reference(&rg, x.data());
        for serial in [false, true] {
            pool::force_serial(serial);
            let (y, _) = rg.run_with_stats(&x);
            assert_eq!(
                y.format.frac, expect_frac,
                "trial {trial}: output grid diverged from reference"
            );
            assert_eq!(
                y.data(),
                expect.as_slice(),
                "trial {trial} (concat={concat}, serial={serial}): integers \
                 diverged from the dyadic reference on grids {operands:?}"
            );
        }
        pool::force_serial(false);
    }
    pool::set_threads(0);
    assert!(
        repaired > 40,
        "sweep is too tame: only {repaired}/72 trials needed repairs"
    );
}
