//! End-to-end bit-identity of the integer engine under the worker pool:
//! the full lowered IntGraph forward pass over every zoo model must
//! produce byte-identical quantized outputs — and identical saturation /
//! overflow statistics — whether it runs on the parallel path with
//! several workers or under `force_serial`. This is the integer-engine
//! counterpart of `tests/pool_parity_quantized.rs` and the guarantee
//! that lets the tqt-verify containment and sanitizer results carry over
//! to parallel deployment runs.

use tqt_fixedpoint::lower;
use tqt_graph::{quantize_graph, transforms, QuantizeOptions, WeightBits};
use tqt_models::{ModelKind, INPUT_DIMS};
use tqt_rt::pool;
use tqt_tensor::init;

#[test]
fn int_forward_bit_identical_serial_vs_parallel_all_models() {
    // More workers than a single-core CI host has cores: the guarantee is
    // thread-count independence, not "serial happens to win the race".
    pool::set_threads(4);

    for (i, &kind) in ModelKind::all().iter().enumerate() {
        let seed = 70 + i as u64;
        let mut g = kind.build(seed);
        transforms::optimize(&mut g, &INPUT_DIMS);
        quantize_graph(&mut g, QuantizeOptions::retrain_wt_th(WeightBits::Int8));
        let mut rng = init::rng(seed + 200);
        g.calibrate(&init::normal([8, 3, 32, 32], 0.0, 1.0, &mut rng));
        let ig = lower(&mut g);

        let x = init::normal([2, 3, 32, 32], 0.0, 1.0, &mut rng);
        let (y_par, stats_par) = ig.run_with_stats(&x);
        pool::force_serial(true);
        let (y_ser, stats_ser) = ig.run_with_stats(&x);
        pool::force_serial(false);

        // QTensor equality is exact element-wise i64 comparison.
        assert_eq!(y_par, y_ser, "{kind:?}: integer output differs serial vs parallel");
        let (np, ns) = (&stats_par.nodes, &stats_ser.nodes);
        assert_eq!(np.len(), ns.len());
        for (j, (sp, ss)) in np.iter().zip(ns).enumerate() {
            assert_eq!(
                (sp.lo, sp.hi, sp.saturated, sp.overflowed),
                (ss.lo, ss.hi, ss.saturated, ss.overflowed),
                "{kind:?} node {j}: stats differ serial vs parallel"
            );
        }
    }

    pool::set_threads(0);
}
