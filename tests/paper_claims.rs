//! Fast checks of the paper's analytical claims, spanning the quantizer
//! and toy-model crates (no network training involved).

use tqt_quant::fakequant::FakeQuant;
use tqt_quant::toy::{
    adam_guidelines, find_critical_threshold, grad_log2_t, run_toy, ToyConfig, ToyMethod,
};
use tqt_quant::tqt::{quantize, quantize_backward};
use tqt_quant::QuantSpec;
use tqt_tensor::{init, Tensor};

/// Section 3.4: the TQT threshold gradient balances range and precision —
/// a distribution fully inside the clip range produces a positive net
/// gradient (shrink the range), one with heavy tails a negative one (grow
/// it).
#[test]
fn tqt_gradient_balances_range_and_precision() {
    let spec = QuantSpec::INT8;
    let mut rng = init::rng(1);
    let x = init::normal([20_000], 0.0, 1.0, &mut rng);
    let star = find_critical_threshold(spec, 1.0, 1);
    assert!(grad_log2_t(&x, star + 2.0, spec) > 0.0, "too-wide range must shrink");
    assert!(grad_log2_t(&x, star - 2.0, spec) < 0.0, "too-narrow range must grow");
}

/// Section 3.5: FakeQuant's clipped gradients can only push thresholds
/// outward — under the L2 toy loss no in-range element ever contributes,
/// so a distribution fully inside the range produces exactly zero
/// threshold gradient (no range-precision trade-off is possible).
#[test]
fn fakequant_cannot_shrink_its_range() {
    let mut rng = init::rng(2);
    let x = init::normal([20_000], 0.0, 0.05, &mut rng); // tiny vs range
    let fq = FakeQuant::new(-1.0, 1.0, 8);
    let q = fq.quantize(&x);
    let gy = q.zip_map(&x, |a, b| a - b);
    let g = fq.backward(&x, &gy);
    assert_eq!(g.dmin, 0.0);
    assert_eq!(g.dmax, 0.0);
    // TQT in the same situation *does* shrink.
    let tq = quantize(&x, 0.0, QuantSpec::INT8);
    let tgy = tq.zip_map(&x, |a, b| a - b);
    let tg = quantize_backward(&x, 0.0, QuantSpec::INT8, &tgy);
    assert!(tg.dlog2_t > 0.0, "TQT should pull the range inward");
}

/// Appendix B: with identical hyperparameters, Adam on log-thresholds
/// converges across four orders of magnitude of input scale; raw-SGD's
/// steps-to-converge varies wildly (no scale invariance).
#[test]
fn log_adam_is_scale_invariant_raw_sgd_is_not() {
    let mut adam_steps = Vec::new();
    let mut raw_steps = Vec::new();
    for sigma in [0.01f32, 100.0] {
        let cfg = ToyConfig::figure8(8, sigma, 3);
        let star = find_critical_threshold(cfg.spec, sigma, 3);
        let within = |trace: &tqt_quant::toy::ToyTrace| {
            trace
                .log2_t
                .iter()
                .position(|&v| (v - star).abs() < 0.75)
                .unwrap_or(cfg.steps)
        };
        adam_steps.push(within(&run_toy(cfg, ToyMethod::LogAdam)));
        raw_steps.push(within(&run_toy(cfg, ToyMethod::RawSgd)));
    }
    let adam_ratio =
        *adam_steps.iter().max().unwrap() as f32 / (*adam_steps.iter().min().unwrap() as f32).max(1.0);
    assert!(
        adam_ratio < 5.0,
        "Adam steps-to-converge should be stable across scales: {adam_steps:?}"
    );
    assert!(
        raw_steps.iter().all(|&s| s > 10 * adam_steps.iter().max().unwrap()),
        "raw SGD should be much slower at every scale: raw {raw_steps:?} vs adam {adam_steps:?}"
    );
}

/// Table 4's step estimate is the right order of magnitude: convergence at
/// the recommended settings takes O(1/alpha + 1/(1-beta2)) steps.
#[test]
fn convergence_steps_match_guideline_order() {
    let g = adam_guidelines(8);
    let mut cfg = ToyConfig::figure8(8, 1.0, 4);
    cfg.lr = g.alpha_max as f32;
    cfg.steps = 4 * g.steps_estimate as usize;
    let star = find_critical_threshold(cfg.spec, 1.0, 4);
    let trace = run_toy(cfg, ToyMethod::LogAdam);
    let steps = trace
        .log2_t
        .iter()
        .position(|&v| (v - star).abs() < 0.75)
        .expect("must converge within 4x the estimate");
    assert!(
        (steps as f64) < 3.0 * g.steps_estimate,
        "convergence took {steps} steps vs estimate {:.0}",
        g.steps_estimate
    );
}

/// Section 3.2: round-half-to-even leaves no systematic bias — quantizing
/// a symmetric distribution preserves its mean to within noise, while
/// round-half-up would shift it.
#[test]
fn bankers_rounding_is_unbiased() {
    // Values exactly on ties: k + 0.5 for integer k.
    let ties: Vec<f32> = (-100..100).map(|k| k as f32 + 0.5).collect();
    let n = ties.len();
    let t = Tensor::from_vec(n, ties);
    let spec = QuantSpec::INT16; // wide enough that nothing clips
    let q = quantize(&t, 7.0, spec); // s = 2^7/2^15 = 2^-8... scale so ties stay ties
    let _ = q;
    // Direct check on the rounding primitive, over one-sided data (e.g.
    // post-ReLU activations, where round-half-away-from-zero biases every
    // tie upward while ties-to-even alternates):
    let sum: f32 = (0..2000)
        .map(|k| tqt_quant::round_half_even(k as f32 + 0.5) - (k as f32 + 0.5))
        .sum();
    assert!(
        sum.abs() < 1e-3,
        "round-half-even residuals must cancel, got {sum}"
    );
    let biased: f32 = (0..2000)
        .map(|k| (k as f32 + 0.5).round() - (k as f32 + 0.5))
        .sum();
    assert!(
        biased > 500.0,
        "round-half-away residuals should accumulate upward, got {biased}"
    );
}
