//! Property test for the translation validator: on random quantized
//! graphs from the shared generator, a certified lowering must actually
//! be bit-identical — the baked float graph and the integer engine agree
//! exactly on every probe, serially and under a multi-worker pool, for
//! both the unfused and the fused lowering.
//!
//! This closes the loop on `tqt_verify::translate`: the certifier claims
//! "int engine ≡ exact rational fake-quant reference", and the f32
//! emulation equals that reference by the pow2-exactness lemmas, so
//! *certified ⇒ float/int bit-identity* is the observable consequence a
//! certifier bug would break. A divergence here with a clean certificate
//! means the validator is unsound — the worst class of verifier bug.

mod common;

use common::{build, net_gen, NetSpec};
use tqt_fixedpoint::{fuse_with_chains, lower_with_provenance};
use tqt_graph::{quantize_graph, QuantizeOptions, WeightBits};
use tqt_nn::Mode;
use tqt_rt::check::Config;
use tqt_rt::{check, pool, prop_assert};
use tqt_tensor::init;
use tqt_verify::{analyze, certify, checked_optimize, verify, Stage};

const DIMS: [usize; 4] = [2, 2, 8, 8];

#[test]
fn certified_random_graphs_are_bit_identical() {
    check!(Config::cases(12), net_gen(), |spec: &NetSpec| {
        let mut g = build(spec);
        let r = checked_optimize(&mut g, &DIMS);
        prop_assert!(r.is_clean(), "transform invariants:\n{r}");

        quantize_graph(&mut g, QuantizeOptions::retrain_wt_th(WeightBits::Int8));
        let mut rng = init::rng(spec.seed + 3);
        let calib = init::normal([4, 2, 8, 8], 0.0, 1.0, &mut rng);
        g.calibrate(&calib);
        let r = verify(&g, &DIMS, Stage::Calibrated);
        prop_assert!(r.is_clean(), "calibrated stage:\n{r}");

        // Certify the unfused lowering...
        let (ig, prov) = lower_with_provenance(&mut g);
        let proven = analyze(&ig, &DIMS);
        prop_assert!(proven.proven(), "interval analysis:\n{}", proven.report);
        let cert = certify(&ig, &prov, &proven, &DIMS);
        prop_assert!(cert.is_clean(), "translation validation:\n{cert}");

        // ...and the fused one, against the fusion-re-keyed provenance.
        let (fig, chains) = fuse_with_chains(ig.clone());
        let mut fprov = prov.clone();
        fprov.record_fusion(&chains);
        let fproven = analyze(&fig, &DIMS);
        prop_assert!(fproven.proven(), "fused interval analysis:\n{}", fproven.report);
        let fcert = certify(&fig, &fprov, &fproven, &DIMS);
        prop_assert!(fcert.is_clean(), "fused translation validation:\n{fcert}");

        // Certified ⇒ bit-identical: the f32 emulation and the integer
        // engine must agree exactly, on nominal and saturating inputs,
        // serially and with more workers than a CI core has.
        for sigma in [1.0f32, 4.0] {
            let x = init::normal(DIMS.to_vec(), 0.0, sigma, &mut rng);
            let yf = g.forward(&x, Mode::Eval);
            for threads in [1usize, 4] {
                pool::set_threads(threads);
                let yi = ig.run(&x).dequantize();
                prop_assert!(
                    yf == yi,
                    "certified but float != int (sigma {sigma}, {threads} thread(s))"
                );
                let yif = fig.run(&x).dequantize();
                prop_assert!(
                    yf == yif,
                    "certified but float != fused int (sigma {sigma}, {threads} thread(s))"
                );
            }
            pool::set_threads(0);
        }
        Ok(())
    });
}
