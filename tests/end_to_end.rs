//! End-to-end integration: the full paper workflow at CI scale —
//! pre-train FP32 → optimize → quantize → calibrate → TQT retrain →
//! lower to integers — with the paper's qualitative claims asserted at
//! each stage.

use tqt::config::TrainHyper;
use tqt::trainer::{evaluate, train};
use tqt_data::{calibration_batch, train_val, SynthConfig};
use tqt_fixedpoint::lower;
use tqt_graph::{quantize_graph, transforms, Graph, Op, QuantizeOptions, WeightBits};
use tqt_models::{ModelKind, INPUT_DIMS};
use tqt_nn::Mode;

fn small_sets() -> (tqt_data::Dataset, tqt_data::Dataset) {
    let cfg = SynthConfig {
        classes: 10,
        image_size: 32,
        noise: 0.12,
        seed: 123,
    };
    train_val(&cfg, 480, 160)
}

fn pretrain(model: ModelKind, epochs: usize) -> (Graph, tqt_data::Dataset, tqt_data::Dataset, f32) {
    let (train_set, val_set) = small_sets();
    let mut g = model.build(99);
    let mut hyper = TrainHyper::pretrain((train_set.len() / 32) as u64);
    hyper.epochs = epochs;
    let r = train(&mut g, &train_set, &val_set, &hyper);
    (g, train_set, val_set, r.best.top1)
}

#[test]
fn full_tqt_pipeline_resnet() {
    let (mut g, train_set, val_set, fp32_top1) = pretrain(ModelKind::ResNet8, 4);
    assert!(fp32_top1 > 0.5, "FP32 pre-training too weak: {fp32_top1}");

    // Optimize: all batch norms must fold away without changing outputs.
    let x = calibration_batch(&val_set, 16, 1);
    let before = g.forward(&x, Mode::Eval);
    transforms::optimize(&mut g, &INPUT_DIMS);
    let after = g.forward(&x, Mode::Eval);
    before.assert_close(&after, 1e-3);
    assert!(!g.iter().any(|(_, n)| matches!(n.op, Op::BatchNorm(_))));

    // Quantize + calibrate.
    quantize_graph(&mut g, QuantizeOptions::retrain_wt_th(WeightBits::Int8));
    let calib = calibration_batch(&val_set, 50, 2);
    g.calibrate(&calib);
    let (cal_top1, _, _) = evaluate(&mut g, &val_set, 32);

    // TQT retraining should at least preserve, usually improve.
    let mut hyper = TrainHyper::retrain((train_set.len() / 32) as u64);
    hyper.epochs = 2;
    let r = train(&mut g, &train_set, &val_set, &hyper);
    assert!(
        r.best.top1 >= cal_top1 - 0.02,
        "TQT retraining regressed: calibrated {cal_top1} -> {}",
        r.best.top1
    );
    assert!(
        r.best.top1 >= fp32_top1 - 0.15,
        "INT8 TQT should stay near FP32: {fp32_top1} -> {}",
        r.best.top1
    );

    // Integer lowering: bit-exact on fresh inputs.
    let ig = lower(&mut g);
    let x = calibration_batch(&val_set, 8, 3);
    let yf = g.forward(&x, Mode::Eval);
    let yi = ig.run(&x).dequantize();
    assert_eq!(yf, yi, "integer engine must be bit-exact");
}

#[test]
fn tqt_beats_or_matches_wt_only_on_mobilenet() {
    // The paper's central empirical claim (Section 6.2): on depthwise
    // networks, training thresholds helps where weight-only retraining
    // struggles under per-tensor power-of-2 scaling.
    let (g0, train_set, val_set, _) = pretrain(ModelKind::MobileNetV1, 4);
    let snapshot = {
        let mut g = g0;
        g.state_dict()
    };
    let calib = calibration_batch(&val_set, 50, 4);
    let steps = (train_set.len() / 32) as u64;

    let run = |trains_thresholds: bool| -> f32 {
        let mut g = ModelKind::MobileNetV1.build(99);
        g.load_state_dict(&snapshot);
        transforms::optimize(&mut g, &INPUT_DIMS);
        let opts = if trains_thresholds {
            QuantizeOptions::retrain_wt_th(WeightBits::Int8)
        } else {
            QuantizeOptions::retrain_wt_int8()
        };
        quantize_graph(&mut g, opts);
        g.calibrate(&calib);
        let mut hyper = TrainHyper::retrain(steps);
        hyper.epochs = 2;
        train(&mut g, &train_set, &val_set, &hyper).best.top1
    };
    let wt_only = run(false);
    let wt_th = run(true);
    assert!(
        wt_th >= wt_only - 0.05,
        "TQT (wt+th = {wt_th}) should not trail wt-only ({wt_only}) meaningfully"
    );
}

#[test]
fn static_int4_would_collapse_but_int8_works() {
    // Static quantization is usable at 8 bits for easy nets but INT4
    // weights without retraining destroy accuracy — the reason the paper
    // says "for lower precisions, wt-only training does not recover, and
    // so TQT retraining is necessary".
    let (mut g, _, val_set, fp32_top1) = pretrain(ModelKind::ResNet8, 3);
    // Snapshot *before* optimization: folding removes batch-norm
    // parameters, and the snapshot must load into a fresh unfolded build.
    let snapshot = g.state_dict();
    let calib = calibration_batch(&val_set, 50, 5);

    let mut g8 = ModelKind::ResNet8.build(99);
    g8.load_state_dict(&snapshot);
    transforms::optimize(&mut g8, &INPUT_DIMS);
    quantize_graph(&mut g8, QuantizeOptions::static_int8());
    g8.calibrate(&calib);
    let (top1_8, _, _) = evaluate(&mut g8, &val_set, 32);
    assert!(
        top1_8 > fp32_top1 - 0.2,
        "static INT8 should be within 20 points of FP32 ({fp32_top1}): {top1_8}"
    );
}
