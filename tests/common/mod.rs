//! Shared random-architecture generator for the root integration tests.
//!
//! Each test target compiles this module independently and may use only a
//! subset of it.
#![allow(dead_code)]

use tqt_graph::{Graph, Op};
use tqt_nn::{
    BatchNorm, Conv2d, Dense, DepthwiseConv2d, EltwiseAdd, GlobalAvgPool, MaxPool2d, Relu,
};
use tqt_rt::{Gen, Rng};
use tqt_tensor::conv::Conv2dGeom;
use tqt_tensor::init;

/// A random architecture description.
#[derive(Debug, Clone)]
pub struct NetSpec {
    pub blocks: Vec<BlockSpec>,
    pub seed: u64,
}

#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BlockSpec {
    Conv { ch: usize, bn: bool, relu6: bool },
    Depthwise { bn: bool },
    Residual,
    MaxPool,
    Leaky,
}

fn random_block(rng: &mut Rng) -> BlockSpec {
    match rng.gen_range(0..5u32) {
        0 => BlockSpec::Conv {
            ch: rng.gen_range(2usize..6),
            bn: rng.gen_bool(),
            relu6: rng.gen_bool(),
        },
        1 => BlockSpec::Depthwise { bn: rng.gen_bool() },
        2 => BlockSpec::Residual,
        3 => BlockSpec::MaxPool,
        _ => BlockSpec::Leaky,
    }
}

/// Generates a 1–4 block architecture with a weight seed. Shrinks by
/// dropping blocks (one at a time, then the whole tail) and zeroing the
/// seed, so failures reduce toward the smallest offending net.
pub fn net_gen() -> Gen<NetSpec> {
    Gen::new(
        |rng| {
            let n = rng.gen_range(1usize..5);
            NetSpec {
                blocks: (0..n).map(|_| random_block(rng)).collect(),
                seed: rng.gen_range(0u64..1000),
            }
        },
        |spec: &NetSpec| {
            let mut cands = Vec::new();
            for i in 0..spec.blocks.len() {
                if spec.blocks.len() > 1 {
                    let mut blocks = spec.blocks.clone();
                    blocks.remove(i);
                    cands.push(NetSpec {
                        blocks,
                        seed: spec.seed,
                    });
                }
            }
            if spec.seed != 0 {
                cands.push(NetSpec {
                    blocks: spec.blocks.clone(),
                    seed: 0,
                });
            }
            cands
        },
    )
}

/// Materializes the spec into a graph on 8x8 inputs with 2 input channels.
pub fn build(spec: &NetSpec) -> Graph {
    let mut rng = init::rng(spec.seed);
    let mut g = Graph::new();
    let mut x = g.add_input("input");
    let mut ch = 2usize;
    let mut size = 8usize;
    let mut n = 0usize;
    let name = |base: &str, n: &mut usize| {
        *n += 1;
        format!("{base}{n}")
    };
    for b in &spec.blocks {
        match *b {
            BlockSpec::Conv { ch: out, bn, relu6 } => {
                let nm = name("conv", &mut n);
                x = g.add(
                    nm.clone(),
                    Op::Conv(Conv2d::new(&nm, ch, out, Conv2dGeom::same(3), &mut rng)),
                    &[x],
                );
                if bn {
                    let bnm = name("bn", &mut n);
                    x = g.add(bnm.clone(), Op::BatchNorm(BatchNorm::new(&bnm, out, 0.9, 1e-5)), &[x]);
                }
                let r = if relu6 { Relu::relu6() } else { Relu::new() };
                x = g.add(name("relu", &mut n), Op::Relu(r), &[x]);
                ch = out;
            }
            BlockSpec::Depthwise { bn } => {
                let nm = name("dw", &mut n);
                x = g.add(
                    nm.clone(),
                    Op::Depthwise(DepthwiseConv2d::new(&nm, ch, Conv2dGeom::same(3), &mut rng)),
                    &[x],
                );
                if bn {
                    let bnm = name("bn", &mut n);
                    x = g.add(bnm.clone(), Op::BatchNorm(BatchNorm::new(&bnm, ch, 0.9, 1e-5)), &[x]);
                }
                x = g.add(name("relu", &mut n), Op::Relu(Relu::new()), &[x]);
            }
            BlockSpec::Residual => {
                let nm = name("resconv", &mut n);
                let main = g.add(
                    nm.clone(),
                    Op::Conv(Conv2d::new(&nm, ch, ch, Conv2dGeom::same(3), &mut rng)),
                    &[x],
                );
                x = g.add(name("add", &mut n), Op::Add(EltwiseAdd::new()), &[main, x]);
            }
            BlockSpec::MaxPool => {
                if size >= 4 {
                    x = g.add(name("pool", &mut n), Op::MaxPool(MaxPool2d::k2s2()), &[x]);
                    size /= 2;
                }
            }
            BlockSpec::Leaky => {
                let nm = name("lconv", &mut n);
                x = g.add(
                    nm.clone(),
                    Op::Conv(Conv2d::new(&nm, ch, ch, Conv2dGeom::same(3), &mut rng)),
                    &[x],
                );
                x = g.add(name("lrelu", &mut n), Op::Relu(Relu::leaky(0.1)), &[x]);
            }
        }
    }
    let gap = g.add("gap", Op::GlobalAvgPool(GlobalAvgPool::new()), &[x]);
    let mut rng2 = init::rng(spec.seed + 1);
    let fc = g.add("fc", Op::Dense(Dense::new("fc", ch, 3, &mut rng2)), &[gap]);
    g.set_output(fc);
    g
}
