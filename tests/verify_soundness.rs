//! Property test for the static analyzer itself: on random quantized
//! graphs, the verifier must accept every stage the real pipeline
//! produces, the interval analysis must prove the lowered graph safe, and
//! everything the instrumented interpreter then *observes* must be
//! contained in that proven envelope (observed ⊆ proven).
//!
//! A containment failure means `tqt_verify::interval` is unsound — the
//! worst class of verifier bug — so this is deliberately hammered with
//! the same random-net generator (`tests/common/mod.rs`) the pipeline
//! bit-accuracy suite uses, including a wide-tailed input that forces
//! real saturation at the activation quantizers.

mod common;

use common::{build, net_gen, NetSpec};
use tqt_fixedpoint::lower;
use tqt_graph::{quantize_graph, QuantizeOptions, WeightBits};
use tqt_rt::check::Config;
use tqt_rt::{check, prop_assert};
use tqt_tensor::init;
use tqt_verify::{analyze, check_containment, checked_optimize, verify, Stage};

const DIMS: [usize; 4] = [2, 2, 8, 8];

#[test]
fn random_quantized_graphs_observed_within_proven() {
    check!(Config::cases(12), net_gen(), |spec: &NetSpec| {
        // The verifier accepts every stage the real pipeline produces...
        let mut g = build(spec);
        let r = verify(&g, &DIMS, Stage::Built);
        prop_assert!(r.is_clean(), "built stage:\n{r}");

        let r = checked_optimize(&mut g, &DIMS);
        prop_assert!(r.is_clean(), "transform invariants:\n{r}");
        let r = verify(&g, &DIMS, Stage::Optimized);
        prop_assert!(r.is_clean(), "optimized stage:\n{r}");

        quantize_graph(&mut g, QuantizeOptions::retrain_wt_th(WeightBits::Int8));
        let r = verify(&g, &DIMS, Stage::Quantized);
        prop_assert!(r.is_clean(), "quantized stage:\n{r}");

        let mut rng = init::rng(spec.seed + 3);
        let calib = init::normal([4, 2, 8, 8], 0.0, 1.0, &mut rng);
        g.calibrate(&calib);
        let r = verify(&g, &DIMS, Stage::Calibrated);
        prop_assert!(r.is_clean(), "calibrated stage:\n{r}");

        // ...the overflow/shift proof goes through on the lowered graph...
        let ig = lower(&mut g);
        let proven = analyze(&ig, &DIMS);
        prop_assert!(proven.proven(), "interval analysis:\n{}", proven.report);

        // ...and the instrumented run stays inside the proven envelope,
        // both on nominal inputs and on wide ones that actually saturate
        // the 8-bit quantizers.
        for sigma in [1.0f32, 4.0] {
            let x = init::normal(DIMS.to_vec(), 0.0, sigma, &mut rng);
            let (_, stats) = ig.run_with_stats(&x);
            let r = check_containment(&ig, &proven, &stats);
            prop_assert!(r.is_clean(), "containment at sigma {sigma}:\n{r}");
        }
        Ok(())
    });
}
