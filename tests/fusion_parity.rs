//! Differential fusion harness: the graph-level epilogue fusion
//! (`tqt_fixedpoint::fuse`) must be a pure scheduling transform. For
//! every zoo model, at batch 1 and 4 and at 1 and 4 worker threads, the
//! fused plan's outputs must be **bit-identical** to the unfused plan's,
//! and the total runtime saturation/overflow counters must match exactly
//! (the fused epilogue replays the same `shift_round`/clamp/add kernels
//! in the same order, so there is no tolerance to hide behind).
//!
//! Totals are compared rather than per-node stats because fusion changes
//! the node list: a `conv -> relu -> requant` chain becomes one fused
//! node whose stats aggregate the chain.

use tqt_fixedpoint::lower::{EpiStep, IntOp};
use tqt_fixedpoint::{fuse, lower};
use tqt_graph::{quantize_graph, transforms, QuantizeOptions, WeightBits};
use tqt_models::{ModelKind, INPUT_DIMS};
use tqt_rt::pool;
use tqt_tensor::init;

#[test]
fn fused_plans_are_bit_identical_across_the_zoo() {
    pool::set_threads(4);
    for (i, &kind) in ModelKind::all().iter().enumerate() {
        let seed = 70 + i as u64;
        let mut g = kind.build(seed);
        transforms::optimize(&mut g, &INPUT_DIMS);
        quantize_graph(&mut g, QuantizeOptions::retrain_wt_th(WeightBits::Int8));
        let mut rng = init::rng(seed + 200);
        g.calibrate(&init::normal([8, 3, 32, 32], 0.0, 1.0, &mut rng));
        let ig = lower(&mut g);

        let fg = fuse(ig.clone());
        assert!(
            fg.nodes().len() < ig.nodes().len(),
            "{}: fusion found no chain to collapse ({} nodes before and after)",
            kind.name(),
            ig.nodes().len()
        );

        for batch in [1usize, 4] {
            let x = init::normal([batch, 3, 32, 32], 0.0, 1.0, &mut rng);
            for serial in [false, true] {
                pool::force_serial(serial);
                let threads = if serial { 1 } else { 4 };
                let (y0, s0) = ig.run_with_stats(&x);
                let (y1, s1) = fg.run_with_stats(&x);
                assert_eq!(
                    y0,
                    y1,
                    "{}: fused output differs from unfused (batch {batch}, {threads} thread(s))",
                    kind.name()
                );
                assert_eq!(
                    s0.total_saturated(),
                    s1.total_saturated(),
                    "{}: fused saturation count differs (batch {batch}, {threads} thread(s))",
                    kind.name()
                );
                assert_eq!(
                    s0.total_overflowed(),
                    s1.total_overflowed(),
                    "{}: fused overflow count differs (batch {batch}, {threads} thread(s))",
                    kind.name()
                );
            }
            pool::force_serial(false);
        }
    }
    pool::set_threads(0);
}

/// DarkNet's `conv → leaky-relu → requant` chains must fuse like the
/// relu chains do: the fused graph carries `EpiStep::LeakyRelu` steps and
/// no standalone single-consumer leaky node survives directly downstream
/// of a conv. (Bit-identity of the fused epilogue is covered zoo-wide by
/// the test above — DarkNet included.)
#[test]
fn darknet_leaky_chains_fuse() {
    let mut g = ModelKind::DarkNet.build(77);
    transforms::optimize(&mut g, &INPUT_DIMS);
    quantize_graph(&mut g, QuantizeOptions::retrain_wt_th(WeightBits::Int8));
    let mut rng = init::rng(277);
    g.calibrate(&init::normal([8, 3, 32, 32], 0.0, 1.0, &mut rng));
    let ig = lower(&mut g);
    let standalone_before = ig
        .nodes()
        .iter()
        .filter(|n| matches!(n.op, IntOp::LeakyRelu { .. }))
        .count();
    assert!(standalone_before > 0, "DarkNet lowers with leaky-relu nodes");

    let fg = fuse(ig.clone());
    let fused_leaky = fg
        .nodes()
        .iter()
        .filter(|n| match &n.op {
            IntOp::Fused { epi, .. } => epi
                .iter()
                .any(|s| matches!(s, EpiStep::LeakyRelu { .. })),
            _ => false,
        })
        .count();
    assert_eq!(
        fused_leaky, standalone_before,
        "every single-consumer conv→leaky chain must fuse"
    );
    let standalone_after = fg
        .nodes()
        .iter()
        .filter(|n| matches!(n.op, IntOp::LeakyRelu { .. }))
        .count();
    assert_eq!(standalone_after, 0, "no leaky-relu node should survive fusion");
}
