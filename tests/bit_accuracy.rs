//! Cross-crate bit-accuracy: for representative models and both weight
//! precisions, the baked float inference graph and the integer engine
//! must produce identical outputs (Section 4.2's CPU/FPGA equivalence,
//! reproduced as f32-emulation/i64-engine equivalence).

use tqt_fixedpoint::lower;
use tqt_graph::{quantize_graph, transforms, QuantizeOptions, WeightBits};
use tqt_models::{ModelKind, INPUT_DIMS};
use tqt_nn::Mode;
use tqt_tensor::init;

fn check(model: ModelKind, bits: WeightBits, seed: u64) {
    let mut g = model.build(seed);
    transforms::optimize(&mut g, &INPUT_DIMS);
    quantize_graph(&mut g, QuantizeOptions::retrain_wt_th(bits));
    let mut rng = init::rng(seed + 1);
    let calib = init::normal([8, 3, 32, 32], 0.0, 1.0, &mut rng);
    g.calibrate(&calib);
    let ig = lower(&mut g);
    for trial in 0..3 {
        let x = init::normal([2, 3, 32, 32], 0.0, 1.0 + trial as f32 * 0.5, &mut rng);
        let yf = g.forward(&x, Mode::Eval);
        let yi = ig.run(&x).dequantize();
        assert_eq!(
            yf, yi,
            "{model:?} {bits:?} trial {trial}: float emulation != integer engine"
        );
    }
}

#[test]
fn residual_network_bit_accurate() {
    check(ModelKind::ResNet8, WeightBits::Int8, 11);
    check(ModelKind::ResNet8, WeightBits::Int4, 12);
}

#[test]
fn depthwise_network_bit_accurate() {
    check(ModelKind::MobileNetV1, WeightBits::Int8, 13);
    check(ModelKind::MobileNetV2, WeightBits::Int8, 14);
}

#[test]
fn branchy_network_bit_accurate() {
    check(ModelKind::InceptionV1, WeightBits::Int8, 15);
}

#[test]
fn leaky_relu_network_bit_accurate() {
    check(ModelKind::DarkNet, WeightBits::Int8, 16);
    check(ModelKind::DarkNet, WeightBits::Int4, 17);
}

#[test]
fn flatten_head_network_bit_accurate() {
    check(ModelKind::VggA, WeightBits::Int8, 18);
}
