//! Property-based integration tests: random small conv nets are built,
//! optimized, quantized, calibrated and lowered — and the pipeline's
//! invariants must hold for every one of them:
//!
//! * graph optimization preserves FP32 inference semantics;
//! * the quantized graph runs and approximates FP32;
//! * the integer engine is bit-exact to the baked float graph, on every
//!   random architecture (not just the fixed model in
//!   `tests/bit_accuracy.rs`), and that parity is itself independent of
//!   whether the tensor kernels run serial or parallel.

use tqt_fixedpoint::lower;
use tqt_graph::{quantize_graph, transforms, Graph, Op, QuantizeOptions, WeightBits};
use tqt_nn::{
    BatchNorm, Conv2d, Dense, DepthwiseConv2d, EltwiseAdd, GlobalAvgPool, MaxPool2d, Mode, Relu,
};
use tqt_rt::check::Config;
use tqt_rt::{check, prop_assert, prop_assert_eq, Gen, Rng};
use tqt_tensor::conv::Conv2dGeom;
use tqt_tensor::init;

/// A random architecture description.
#[derive(Debug, Clone)]
struct NetSpec {
    blocks: Vec<BlockSpec>,
    seed: u64,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum BlockSpec {
    Conv { ch: usize, bn: bool, relu6: bool },
    Depthwise { bn: bool },
    Residual,
    MaxPool,
    Leaky,
}

fn random_block(rng: &mut Rng) -> BlockSpec {
    match rng.gen_range(0..5u32) {
        0 => BlockSpec::Conv {
            ch: rng.gen_range(2usize..6),
            bn: rng.gen_bool(),
            relu6: rng.gen_bool(),
        },
        1 => BlockSpec::Depthwise { bn: rng.gen_bool() },
        2 => BlockSpec::Residual,
        3 => BlockSpec::MaxPool,
        _ => BlockSpec::Leaky,
    }
}

/// Generates a 1–4 block architecture with a weight seed. Shrinks by
/// dropping blocks (one at a time, then the whole tail) and zeroing the
/// seed, so failures reduce toward the smallest offending net.
fn net_gen() -> Gen<NetSpec> {
    Gen::new(
        |rng| {
            let n = rng.gen_range(1usize..5);
            NetSpec {
                blocks: (0..n).map(|_| random_block(rng)).collect(),
                seed: rng.gen_range(0u64..1000),
            }
        },
        |spec: &NetSpec| {
            let mut cands = Vec::new();
            for i in 0..spec.blocks.len() {
                if spec.blocks.len() > 1 {
                    let mut blocks = spec.blocks.clone();
                    blocks.remove(i);
                    cands.push(NetSpec {
                        blocks,
                        seed: spec.seed,
                    });
                }
            }
            if spec.seed != 0 {
                cands.push(NetSpec {
                    blocks: spec.blocks.clone(),
                    seed: 0,
                });
            }
            cands
        },
    )
}

/// Materializes the spec into a graph on 8x8 inputs with 2 input channels.
fn build(spec: &NetSpec) -> Graph {
    let mut rng = init::rng(spec.seed);
    let mut g = Graph::new();
    let mut x = g.add_input("input");
    let mut ch = 2usize;
    let mut size = 8usize;
    let mut n = 0usize;
    let name = |base: &str, n: &mut usize| {
        *n += 1;
        format!("{base}{n}")
    };
    for b in &spec.blocks {
        match *b {
            BlockSpec::Conv { ch: out, bn, relu6 } => {
                let nm = name("conv", &mut n);
                x = g.add(
                    nm.clone(),
                    Op::Conv(Conv2d::new(&nm, ch, out, Conv2dGeom::same(3), &mut rng)),
                    &[x],
                );
                if bn {
                    let bnm = name("bn", &mut n);
                    x = g.add(bnm.clone(), Op::BatchNorm(BatchNorm::new(&bnm, out, 0.9, 1e-5)), &[x]);
                }
                let r = if relu6 { Relu::relu6() } else { Relu::new() };
                x = g.add(name("relu", &mut n), Op::Relu(r), &[x]);
                ch = out;
            }
            BlockSpec::Depthwise { bn } => {
                let nm = name("dw", &mut n);
                x = g.add(
                    nm.clone(),
                    Op::Depthwise(DepthwiseConv2d::new(&nm, ch, Conv2dGeom::same(3), &mut rng)),
                    &[x],
                );
                if bn {
                    let bnm = name("bn", &mut n);
                    x = g.add(bnm.clone(), Op::BatchNorm(BatchNorm::new(&bnm, ch, 0.9, 1e-5)), &[x]);
                }
                x = g.add(name("relu", &mut n), Op::Relu(Relu::new()), &[x]);
            }
            BlockSpec::Residual => {
                let nm = name("resconv", &mut n);
                let main = g.add(
                    nm.clone(),
                    Op::Conv(Conv2d::new(&nm, ch, ch, Conv2dGeom::same(3), &mut rng)),
                    &[x],
                );
                x = g.add(name("add", &mut n), Op::Add(EltwiseAdd::new()), &[main, x]);
            }
            BlockSpec::MaxPool => {
                if size >= 4 {
                    x = g.add(name("pool", &mut n), Op::MaxPool(MaxPool2d::k2s2()), &[x]);
                    size /= 2;
                }
            }
            BlockSpec::Leaky => {
                let nm = name("lconv", &mut n);
                x = g.add(
                    nm.clone(),
                    Op::Conv(Conv2d::new(&nm, ch, ch, Conv2dGeom::same(3), &mut rng)),
                    &[x],
                );
                x = g.add(name("lrelu", &mut n), Op::Relu(Relu::leaky(0.1)), &[x]);
            }
        }
    }
    let gap = g.add("gap", Op::GlobalAvgPool(GlobalAvgPool::new()), &[x]);
    let mut rng2 = init::rng(spec.seed + 1);
    let fc = g.add("fc", Op::Dense(Dense::new("fc", ch, 3, &mut rng2)), &[gap]);
    g.set_output(fc);
    g
}

#[test]
fn optimize_preserves_semantics() {
    check!(Config::cases(12), net_gen(), |spec: &NetSpec| {
        let mut g = build(spec);
        let mut rng = init::rng(spec.seed + 2);
        let x = init::normal([2, 2, 8, 8], 0.0, 1.0, &mut rng);
        let before = g.forward(&x, Mode::Eval);
        transforms::optimize(&mut g, &[1, 2, 8, 8]);
        let after = g.forward(&x, Mode::Eval);
        let tol = 1e-3 * (1.0 + before.abs_max());
        prop_assert!(
            before.max_abs_diff(&after) < tol,
            "optimization changed outputs by {}",
            before.max_abs_diff(&after)
        );
        Ok(())
    });
}

#[test]
fn quantized_pipeline_bit_accurate() {
    check!(Config::cases(12), net_gen(), |spec: &NetSpec| {
        let mut g = build(spec);
        transforms::optimize(&mut g, &[1, 2, 8, 8]);
        quantize_graph(&mut g, QuantizeOptions::retrain_wt_th(WeightBits::Int8));
        let mut rng = init::rng(spec.seed + 3);
        let calib = init::normal([4, 2, 8, 8], 0.0, 1.0, &mut rng);
        g.calibrate(&calib);
        let ig = lower(&mut g);
        let x = init::normal([2, 2, 8, 8], 0.0, 1.3, &mut rng);
        let yf = g.forward(&x, Mode::Eval);
        let yi = ig.run(&x).dequantize();
        prop_assert_eq!(yf, yi);
        Ok(())
    });
}

/// Float-vs-fixed parity must hold regardless of the thread-pool
/// scheduling: the serial override and the parallel path must both be
/// bit-exact against the integer engine.
#[test]
fn quantized_pipeline_bit_accurate_serial_override() {
    check!(Config::cases(6), net_gen(), |spec: &NetSpec| {
        let mut g = build(spec);
        transforms::optimize(&mut g, &[1, 2, 8, 8]);
        quantize_graph(&mut g, QuantizeOptions::retrain_wt_th(WeightBits::Int8));
        let mut rng = init::rng(spec.seed + 3);
        let calib = init::normal([4, 2, 8, 8], 0.0, 1.0, &mut rng);
        g.calibrate(&calib);
        let ig = lower(&mut g);
        let x = init::normal([2, 2, 8, 8], 0.0, 1.3, &mut rng);
        let y_par = g.forward(&x, Mode::Eval);
        let yi_par = ig.run(&x).dequantize();
        tqt_rt::pool::force_serial(true);
        let y_ser = g.forward(&x, Mode::Eval);
        let yi_ser = ig.run(&x).dequantize();
        tqt_rt::pool::force_serial(false);
        prop_assert_eq!(&y_par, &y_ser);
        prop_assert_eq!(&yi_par, &yi_ser);
        prop_assert_eq!(y_par, yi_par);
        Ok(())
    });
}

#[test]
fn quantized_backward_produces_finite_gradients() {
    check!(Config::cases(12), net_gen(), |spec: &NetSpec| {
        let mut g = build(spec);
        transforms::optimize(&mut g, &[1, 2, 8, 8]);
        quantize_graph(&mut g, QuantizeOptions::retrain_wt_th(WeightBits::Int8));
        let mut rng = init::rng(spec.seed + 4);
        let calib = init::normal([4, 2, 8, 8], 0.0, 1.0, &mut rng);
        g.calibrate(&calib);
        let x = init::normal([2, 2, 8, 8], 0.0, 1.0, &mut rng);
        let y = g.forward(&x, Mode::Train);
        g.zero_grads();
        g.backward(&y);
        for p in g.params_mut() {
            prop_assert!(p.grad.all_finite(), "non-finite gradient in {}", p.name);
        }
        Ok(())
    });
}
