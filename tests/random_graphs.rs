//! Property-based integration tests: random small conv nets are built,
//! optimized, quantized, calibrated and lowered — and the pipeline's
//! invariants must hold for every one of them:
//!
//! * graph optimization preserves FP32 inference semantics;
//! * the quantized graph runs and approximates FP32;
//! * the integer engine is bit-exact to the baked float graph, on every
//!   random architecture (not just the fixed model in
//!   `tests/bit_accuracy.rs`), and that parity is itself independent of
//!   whether the tensor kernels run serial or parallel.
//!
//! The random-net generator lives in `tests/common/mod.rs`, shared with
//! the static-analysis soundness suite in `tests/verify_soundness.rs`.

mod common;

use common::{build, net_gen, NetSpec};
use tqt_fixedpoint::lower;
use tqt_graph::{quantize_graph, transforms, QuantizeOptions, WeightBits};
use tqt_nn::Mode;
use tqt_rt::check::Config;
use tqt_rt::{check, prop_assert, prop_assert_eq};
use tqt_tensor::init;

#[test]
fn optimize_preserves_semantics() {
    check!(Config::cases(12), net_gen(), |spec: &NetSpec| {
        let mut g = build(spec);
        let mut rng = init::rng(spec.seed + 2);
        let x = init::normal([2, 2, 8, 8], 0.0, 1.0, &mut rng);
        let before = g.forward(&x, Mode::Eval);
        transforms::optimize(&mut g, &[1, 2, 8, 8]);
        let after = g.forward(&x, Mode::Eval);
        let tol = 1e-3 * (1.0 + before.abs_max());
        prop_assert!(
            before.max_abs_diff(&after) < tol,
            "optimization changed outputs by {}",
            before.max_abs_diff(&after)
        );
        Ok(())
    });
}

#[test]
fn quantized_pipeline_bit_accurate() {
    check!(Config::cases(12), net_gen(), |spec: &NetSpec| {
        let mut g = build(spec);
        transforms::optimize(&mut g, &[1, 2, 8, 8]);
        quantize_graph(&mut g, QuantizeOptions::retrain_wt_th(WeightBits::Int8));
        let mut rng = init::rng(spec.seed + 3);
        let calib = init::normal([4, 2, 8, 8], 0.0, 1.0, &mut rng);
        g.calibrate(&calib);
        let ig = lower(&mut g);
        let x = init::normal([2, 2, 8, 8], 0.0, 1.3, &mut rng);
        let yf = g.forward(&x, Mode::Eval);
        let yi = ig.run(&x).dequantize();
        prop_assert_eq!(yf, yi);
        Ok(())
    });
}

/// Float-vs-fixed parity must hold regardless of the thread-pool
/// scheduling: the serial override and the parallel path must both be
/// bit-exact against the integer engine.
#[test]
fn quantized_pipeline_bit_accurate_serial_override() {
    check!(Config::cases(6), net_gen(), |spec: &NetSpec| {
        let mut g = build(spec);
        transforms::optimize(&mut g, &[1, 2, 8, 8]);
        quantize_graph(&mut g, QuantizeOptions::retrain_wt_th(WeightBits::Int8));
        let mut rng = init::rng(spec.seed + 3);
        let calib = init::normal([4, 2, 8, 8], 0.0, 1.0, &mut rng);
        g.calibrate(&calib);
        let ig = lower(&mut g);
        let x = init::normal([2, 2, 8, 8], 0.0, 1.3, &mut rng);
        let y_par = g.forward(&x, Mode::Eval);
        let yi_par = ig.run(&x).dequantize();
        tqt_rt::pool::force_serial(true);
        let y_ser = g.forward(&x, Mode::Eval);
        let yi_ser = ig.run(&x).dequantize();
        tqt_rt::pool::force_serial(false);
        prop_assert_eq!(&y_par, &y_ser);
        prop_assert_eq!(&yi_par, &yi_ser);
        prop_assert_eq!(y_par, yi_par);
        Ok(())
    });
}

#[test]
fn quantized_backward_produces_finite_gradients() {
    check!(Config::cases(12), net_gen(), |spec: &NetSpec| {
        let mut g = build(spec);
        transforms::optimize(&mut g, &[1, 2, 8, 8]);
        quantize_graph(&mut g, QuantizeOptions::retrain_wt_th(WeightBits::Int8));
        let mut rng = init::rng(spec.seed + 4);
        let calib = init::normal([4, 2, 8, 8], 0.0, 1.0, &mut rng);
        g.calibrate(&calib);
        let x = init::normal([2, 2, 8, 8], 0.0, 1.0, &mut rng);
        let y = g.forward(&x, Mode::Train);
        g.zero_grads();
        g.backward(&y);
        for p in g.params_mut() {
            prop_assert!(p.grad.all_finite(), "non-finite gradient in {}", p.name);
        }
        Ok(())
    });
}
