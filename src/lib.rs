//! Umbrella crate for the TQT reproduction: re-exports every workspace
//! crate so the repo-level examples and integration tests have one import
//! root. See the [`tqt`] crate for the experiment harness and README.md /
//! DESIGN.md for the map of the system.

pub use tqt;
pub use tqt_data;
pub use tqt_fixedpoint;
pub use tqt_graph;
pub use tqt_models;
pub use tqt_nn;
pub use tqt_quant;
pub use tqt_tensor;
