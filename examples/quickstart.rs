//! Quickstart: quantize a small CNN with TQT end to end.
//!
//! Builds a ResNet analogue, trains it briefly in FP32 on the synthetic
//! dataset, folds batch norms, quantizes it to INT8 with trainable
//! thresholds, calibrates, retrains with TQT, and finally lowers it to the
//! bit-accurate integer engine.
//!
//! Run with: `cargo run --example quickstart --release`

use tqt::config::TrainHyper;
use tqt::trainer::{evaluate, train};
use tqt_data::{calibration_batch, train_val, SynthConfig};
use tqt_fixedpoint::lower;
use tqt_graph::{quantize_graph, transforms, QuantizeOptions, WeightBits};
use tqt_models::{ModelKind, INPUT_DIMS};
use tqt_nn::Mode;

fn main() {
    // 1. Data: a synthetic 10-class image task (ImageNet stand-in).
    let cfg = SynthConfig::default();
    let (train_set, val_set) = train_val(&cfg, 640, 256);
    let steps_per_epoch = (train_set.len() / 32) as u64;

    // 2. FP32 pre-training.
    let mut g = ModelKind::ResNet8.build(42);
    let mut hyper = TrainHyper::pretrain(steps_per_epoch);
    hyper.epochs = 4;
    let fp32 = train(&mut g, &train_set, &val_set, &hyper);
    println!("FP32      top-1 = {:.1}%", fp32.best.top1 * 100.0);

    // 3. Graph optimization: fold batch norms, convert avg-pools.
    transforms::optimize(&mut g, &INPUT_DIMS);

    // 4. Quantize with trainable thresholds (8-bit weights/activations,
    //    per-tensor, symmetric, power-of-2 scales) and calibrate in
    //    topological order on 50 unlabeled images.
    quantize_graph(&mut g, QuantizeOptions::retrain_wt_th(WeightBits::Int8));
    let calib = calibration_batch(&val_set, 50, 7);
    g.calibrate(&calib);
    let (static_top1, _, _) = evaluate(&mut g, &val_set, 32);
    println!("calibrated top-1 = {:.1}% (before retraining)", static_top1 * 100.0);

    // 5. TQT retraining: weights and log2-thresholds trained jointly.
    let mut hyper = TrainHyper::retrain(steps_per_epoch);
    hyper.epochs = 3;
    let tqt = train(&mut g, &train_set, &val_set, &hyper);
    println!("TQT INT8  top-1 = {:.1}%", tqt.best.top1 * 100.0);
    let devs = tqt.threshold_deviations();
    println!(
        "thresholds trained: {} ({} moved integer bins)",
        devs.len(),
        devs.iter().filter(|&&d| d != 0).count()
    );

    // 6. Lower to the integer engine and verify bit-accuracy.
    let ig = lower(&mut g);
    let x = calibration_batch(&val_set, 8, 9);
    let y_float = g.forward(&x, Mode::Eval);
    let y_int = ig.run(&x).dequantize();
    assert_eq!(y_float, y_int, "integer engine must match the float emulation");
    println!("integer engine: bit-accurate to the quantized inference graph");
}
