//! Threshold-training dynamics on the toy L2 model (Sections 3.4 and
//! Appendix B): compares raw-SGD, log-SGD, normed-log-SGD and log-Adam
//! across input scales, prints the Adam hyperparameter guidelines of
//! Table 4, and renders an ASCII view of the converged sawtooth
//! oscillation that the power-of-2 constraint produces.
//!
//! Run with: `cargo run --example threshold_dynamics --release`

use tqt_quant::toy::{
    adam_guidelines, estimate_rg, find_critical_threshold, measure_oscillation, run_toy,
    ToyConfig, ToyMethod,
};

fn main() {
    println!("== Convergence across input scales (b = 8, 2000 steps, lr 0.1) ==");
    for sigma in [0.01f32, 1.0, 100.0] {
        let cfg = ToyConfig::figure8(8, sigma, 9);
        let star = find_critical_threshold(cfg.spec, sigma, 9);
        println!("\nsigma = {sigma:<7} log2 t* = {star}");
        for (name, method) in [
            ("raw SGD", ToyMethod::RawSgd),
            ("log SGD", ToyMethod::LogSgd),
            ("normed log SGD", ToyMethod::NormedLogSgd),
            ("log Adam", ToyMethod::LogAdam),
        ] {
            let trace = run_toy(cfg, method);
            let last = trace.log2_t.last().unwrap();
            let steps = trace
                .log2_t
                .iter()
                .position(|&v| (v - star).abs() < 0.75)
                .map(|s| s.to_string())
                .unwrap_or_else(|| "never".into());
            println!(
                "  {name:<15} final log2 t = {last:>9.3}  (within one bin after {steps} steps)"
            );
        }
    }

    println!("\n== Table 4 Adam guidelines ==");
    for bits in [4u32, 8] {
        let g = adam_guidelines(bits);
        println!(
            "  b = {bits}: alpha <= {:.3}, beta1 >= {:.3}, beta2 >= {:.4}, ~{:.0} steps",
            g.alpha_max, g.beta1_min, g.beta2_min, g.steps_estimate
        );
    }

    println!("\n== Converged oscillation (b = 8, sigma = 1, alpha = 0.01) ==");
    let mut cfg = ToyConfig::figure8(8, 1.0, 9);
    cfg.lr = 0.01;
    cfg.steps = 3000;
    let trace = run_toy(cfg, ToyMethod::LogAdam);
    let star = find_critical_threshold(cfg.spec, 1.0, 9);
    let rg = estimate_rg(cfg.spec, 1.0, star, 9);
    let osc = measure_oscillation(&trace, 400);
    println!(
        "  rg ~= {rg:.1}, oscillation amplitude {:.3} bins, period ~{:.0} steps",
        osc.amplitude, osc.period
    );
    // ASCII sparkline of the last 120 steps.
    let tail = &trace.log2_t[trace.log2_t.len() - 120..];
    let lo = tail.iter().copied().fold(f32::INFINITY, f32::min);
    let hi = tail.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let glyphs = ['_', '.', '-', '~', '^'];
    let line: String = tail
        .iter()
        .map(|&v| {
            let t = if hi > lo { (v - lo) / (hi - lo) } else { 0.5 };
            glyphs[((t * (glyphs.len() - 1) as f32).round()) as usize]
        })
        .collect();
    println!("  log2 t (last 120 steps): {line}");
    println!("  range [{lo:.4}, {hi:.4}] around log2 t* = {star}");
}
