//! The paper's motivating scenario: MobileNets are notoriously hard to
//! quantize per-tensor because depthwise convolutions have irregular
//! per-channel weight ranges. This example reproduces the qualitative
//! Table 1 / Section 6.2 story on the MobileNet v1 analogue:
//!
//! * static (calibrate-only) INT8 collapses,
//! * weight-only retraining recovers only part of the gap,
//! * TQT (weights + thresholds) closes it,
//!
//! and prints the per-layer threshold deviations showing depthwise weight
//! thresholds trading range for precision.
//!
//! Run with: `cargo run --example mobilenet_quantization --release`

use tqt::config::TrainHyper;
use tqt::trainer::{evaluate, train};
use tqt_data::{calibration_batch, train_val, SynthConfig};
use tqt_graph::{quantize_graph, transforms, QuantizeOptions, ThresholdMode, WeightBits};
use tqt_models::{ModelKind, INPUT_DIMS};
use tqt_quant::calib::ThresholdInit;

fn main() {
    let cfg = SynthConfig::default();
    let (train_set, val_set) = train_val(&cfg, 640, 256);
    let steps_per_epoch = (train_set.len() / 32) as u64;
    let calib = calibration_batch(&val_set, 50, 7);

    // FP32 pre-training (shared starting point for every scheme).
    let mut fp32 = ModelKind::MobileNetV1.build(42);
    let mut hyper = TrainHyper::pretrain(steps_per_epoch);
    hyper.epochs = 5;
    let base = train(&mut fp32, &train_set, &val_set, &hyper);
    println!("FP32 baseline        top-1 = {:.1}%", base.best.top1 * 100.0);
    let snapshot = fp32.state_dict();

    // Scheme A: static INT8 (no retraining).
    let mut g = ModelKind::MobileNetV1.build(42);
    g.load_state_dict(&snapshot);
    transforms::optimize(&mut g, &INPUT_DIMS);
    quantize_graph(&mut g, QuantizeOptions::static_int8());
    g.calibrate(&calib);
    let (t1, _, _) = evaluate(&mut g, &val_set, 32);
    println!("static INT8          top-1 = {:.1}%", t1 * 100.0);

    // Scheme B: weight-only retraining (thresholds frozen at calibration).
    let mut g = ModelKind::MobileNetV1.build(42);
    g.load_state_dict(&snapshot);
    transforms::optimize(&mut g, &INPUT_DIMS);
    quantize_graph(
        &mut g,
        QuantizeOptions {
            weight_bits: WeightBits::Int8,
            mode: ThresholdMode::Fixed,
            weight_init: ThresholdInit::Max,
            act_init: ThresholdInit::KlJ,
            merge_scales: true,
        },
    );
    g.calibrate(&calib);
    let mut hyper = TrainHyper::retrain(steps_per_epoch);
    hyper.epochs = 3;
    let wt = train(&mut g, &train_set, &val_set, &hyper);
    println!("retrain wt INT8      top-1 = {:.1}%", wt.best.top1 * 100.0);

    // Scheme C: TQT — weights and thresholds trained jointly.
    let mut g = ModelKind::MobileNetV1.build(42);
    g.load_state_dict(&snapshot);
    transforms::optimize(&mut g, &INPUT_DIMS);
    quantize_graph(&mut g, QuantizeOptions::retrain_wt_th(WeightBits::Int8));
    g.calibrate(&calib);
    let mut hyper = TrainHyper::retrain(steps_per_epoch);
    hyper.epochs = 3;
    let tqt = train(&mut g, &train_set, &val_set, &hyper);
    println!("retrain wt,th (TQT)  top-1 = {:.1}%", tqt.best.top1 * 100.0);

    println!("\nthreshold deviations d = ceil(log2 t_final) - ceil(log2 t_init):");
    for ((name, d), init) in tqt
        .threshold_names
        .iter()
        .zip(tqt.threshold_deviations())
        .zip(&tqt.threshold_init)
    {
        if d != 0 {
            println!("  {name:<40} d = {d:+}   (t: {:.4} -> trained)", 2f32.powf(*init));
        }
    }
}
