//! Deployment path: from a quantized graph to integer-only execution.
//!
//! Shows what the power-of-2/symmetric/per-tensor constraints buy at
//! deployment time: every layer's requantization is a bare bit-shift
//! (eq. 16), no zero-point cross-terms (Appendix A.1) and no fixed-point
//! multipliers (Appendix A.2). Prints the lowered integer program and
//! per-op Q-formats, then verifies bit-accuracy on random inputs.
//!
//! Run with: `cargo run --example fixed_point_deploy --release`

use tqt_data::{calibration_batch, generate, SynthConfig};
use tqt_fixedpoint::lower::{IntOp, LEAKY_ALPHA_FRAC};
use tqt_fixedpoint::lower;
use tqt_graph::{quantize_graph, transforms, QuantizeOptions};
use tqt_models::{ModelKind, INPUT_DIMS};
use tqt_nn::Mode;

fn main() {
    // A DarkNet analogue exercises the leaky-ReLU fixed-point topology.
    let mut g = ModelKind::DarkNet.build(3);
    transforms::optimize(&mut g, &INPUT_DIMS);
    quantize_graph(&mut g, QuantizeOptions::static_int8());
    let data = generate(&SynthConfig::default(), 64);
    let calib = calibration_batch(&data, 50, 1);
    g.calibrate(&calib);

    let ig = lower::lower(&mut g);
    println!("lowered integer program ({} ops):", ig.nodes().len());
    for node in ig.nodes() {
        let desc = match &node.op {
            IntOp::Input => "float input".into(),
            IntOp::QuantF32 { format } => {
                format!("quantize f32 -> Q(frac={}, {}b)", format.frac, format.bits)
            }
            IntOp::Requant { format } => format!(
                "requant: shift-round to frac={} ({}b {})",
                format.frac,
                format.bits,
                if format.signed { "signed" } else { "unsigned" }
            ),
            IntOp::Conv { wdims, depthwise, w_frac, .. } => format!(
                "{} {}x{}x{}x{} (w_frac={w_frac}, acc=i64)",
                if *depthwise { "dwconv" } else { "conv" },
                wdims[0],
                wdims[1],
                wdims[2],
                wdims[3]
            ),
            IntOp::Dense { in_dim, out_dim, w_frac, .. } => {
                format!("dense {in_dim}->{out_dim} (w_frac={w_frac})")
            }
            IntOp::Relu { cap_q: Some(c) } => format!("relu6 (cap_q={c})"),
            IntOp::Relu { cap_q: None } => "relu".into(),
            IntOp::LeakyRelu { alpha_q } => {
                format!("leaky relu (alpha = {alpha_q}/2^{LEAKY_ALPHA_FRAC})")
            }
            IntOp::MaxPool { .. } => "maxpool".into(),
            IntOp::GlobalAvgPool => "global avg pool (exact shift)".into(),
            IntOp::Add => "eltwise add (merged scales)".into(),
            IntOp::Concat => "concat (merged scales, lossless)".into(),
            IntOp::Flatten => "flatten".into(),
            IntOp::Fused { epi, .. } => {
                format!("fused conv/dense + {}-step register epilogue", epi.len())
            }
        };
        println!("  {:<28} {desc}", node.name);
    }

    // Bit-accuracy check on fresh inputs.
    let x = calibration_batch(&data, 8, 2);
    let y_float = g.forward(&x, Mode::Eval);
    let y_int = ig.run(&x).dequantize();
    assert_eq!(y_float, y_int);
    println!(
        "\nbit-accuracy verified: max |float - int| = {} over {} logits",
        y_float.max_abs_diff(&y_int),
        y_float.len()
    );
}
