//! Shared building blocks for the mini model zoo.

use tqt_graph::{Graph, NodeId, Op};
use tqt_nn::{BatchNorm, Conv2d, Dense, DepthwiseConv2d, MaxPool2d, Relu};
use tqt_tensor::conv::Conv2dGeom;

/// Which rectifier a block ends with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Act {
    /// Plain ReLU.
    Relu,
    /// ReLU capped at 6 (MobileNets).
    Relu6,
    /// Leaky ReLU with slope 0.1 (DarkNet).
    Leaky,
    /// No activation (e.g. MobileNet v2 linear bottlenecks).
    None,
}

impl Act {
    fn layer(self) -> Option<Relu> {
        match self {
            Act::Relu => Some(Relu::new()),
            Act::Relu6 => Some(Relu::relu6()),
            Act::Leaky => Some(Relu::leaky(0.1)),
            Act::None => None,
        }
    }
}

/// Incrementally builds a model graph with auto-numbered layer names.
#[derive(Debug)]
pub struct NetBuilder {
    /// The graph under construction.
    pub g: Graph,
    /// Seeded RNG for weight initialization.
    pub rng: tqt_tensor::init::Rng,
    counter: usize,
}

impl NetBuilder {
    /// Starts a builder with the input placeholder added.
    pub fn new(seed: u64) -> (Self, NodeId) {
        let mut g = Graph::new();
        let input = g.add_input("input");
        (
            NetBuilder {
                g,
                rng: tqt_tensor::init::rng(seed),
                counter: 0,
            },
            input,
        )
    }

    fn next_name(&mut self, base: &str) -> String {
        self.counter += 1;
        format!("{base}{}", self.counter)
    }

    /// conv → batch-norm → activation.
    pub fn conv_bn_act(
        &mut self,
        x: NodeId,
        in_ch: usize,
        out_ch: usize,
        geom: Conv2dGeom,
        act: Act,
    ) -> NodeId {
        let name = self.next_name("conv");
        let c = self.g.add(
            name.clone(),
            Op::Conv(Conv2d::new(&name, in_ch, out_ch, geom, &mut self.rng)),
            &[x],
        );
        let bn_name = format!("{name}_bn");
        let b = self.g.add(
            bn_name.clone(),
            Op::BatchNorm(BatchNorm::new(&bn_name, out_ch, 0.9, 1e-5)),
            &[c],
        );
        self.act(b, act)
    }

    /// conv → activation (no batch norm; VGG style).
    pub fn conv_act(
        &mut self,
        x: NodeId,
        in_ch: usize,
        out_ch: usize,
        geom: Conv2dGeom,
        act: Act,
    ) -> NodeId {
        let name = self.next_name("conv");
        let c = self.g.add(
            name.clone(),
            Op::Conv(Conv2d::new(&name, in_ch, out_ch, geom, &mut self.rng)),
            &[x],
        );
        self.act(c, act)
    }

    /// depthwise conv → batch-norm → activation.
    pub fn dw_bn_act(&mut self, x: NodeId, ch: usize, geom: Conv2dGeom, act: Act) -> NodeId {
        let name = self.next_name("dwconv");
        let c = self.g.add(
            name.clone(),
            Op::Depthwise(DepthwiseConv2d::new(&name, ch, geom, &mut self.rng)),
            &[x],
        );
        let bn_name = format!("{name}_bn");
        let b = self.g.add(
            bn_name.clone(),
            Op::BatchNorm(BatchNorm::new(&bn_name, ch, 0.9, 1e-5)),
            &[c],
        );
        self.act(b, act)
    }

    /// Appends the requested activation (or nothing).
    pub fn act(&mut self, x: NodeId, act: Act) -> NodeId {
        match act.layer() {
            Some(layer) => {
                let name = self.next_name("act");
                self.g.add(name, Op::Relu(layer), &[x])
            }
            None => x,
        }
    }

    /// 2x2 stride-2 max pooling.
    pub fn maxpool(&mut self, x: NodeId) -> NodeId {
        let name = self.next_name("pool");
        self.g.add(name, Op::MaxPool(MaxPool2d::k2s2()), &[x])
    }

    /// Global average pool → dense classifier head.
    pub fn gap_head(&mut self, x: NodeId, in_ch: usize, classes: usize) -> NodeId {
        let gap = self
            .g
            .add("gap", Op::GlobalAvgPool(tqt_nn::GlobalAvgPool::new()), &[x]);
        let fc = self.g.add(
            "logits",
            Op::Dense(Dense::new("logits", in_ch, classes, &mut self.rng)),
            &[gap],
        );
        self.g.set_output(fc);
        fc
    }

    /// Flatten → dense → act → dense classifier head (VGG style).
    pub fn flatten_head(
        &mut self,
        x: NodeId,
        features: usize,
        hidden: usize,
        classes: usize,
    ) -> NodeId {
        let f = self
            .g
            .add("flatten", Op::Flatten(tqt_nn::Flatten::new()), &[x]);
        let fc1 = self.g.add(
            "fc1",
            Op::Dense(Dense::new("fc1", features, hidden, &mut self.rng)),
            &[f],
        );
        let r = self.act(fc1, Act::Relu);
        let fc2 = self.g.add(
            "logits",
            Op::Dense(Dense::new("logits", hidden, classes, &mut self.rng)),
            &[r],
        );
        self.g.set_output(fc2);
        fc2
    }
}
