//! The mini model zoo: structurally faithful, 32×32-scaled counterparts of
//! the paper's evaluation networks (Table 3). Each family keeps the
//! architectural feature that drives the paper's per-family conclusions:
//!
//! | Mini model            | Stands in for            | Key structural feature |
//! |-----------------------|--------------------------|------------------------|
//! | `VggA` / `VggB`       | VGG 16 / 19              | plain conv stacks, no BN, FC head |
//! | `InceptionV1` / `V2`  | Inception v1–v4          | parallel branches merged by concat |
//! | `ResNet8/14/20`       | ResNet v1 50/101/152     | eltwise-add residuals, 1×1 shortcuts |
//! | `MobileNetV1` / `V2`  | MobileNet v1/v2 1.0 224  | depthwise separable convs (v2: inverted residuals, linear bottlenecks) |
//! | `DarkNet`             | DarkNet 19               | leaky-ReLU conv stacks |

use crate::builder::{Act, NetBuilder};
use tqt_graph::{Graph, Op};
use tqt_nn::{Concat, EltwiseAdd};
use tqt_tensor::conv::Conv2dGeom;

/// Number of classes in the synthetic benchmark.
pub const NUM_CLASSES: usize = 10;
/// Input image dimensions `[n, c, h, w]` with `n = 1`.
pub const INPUT_DIMS: [usize; 4] = [1, 3, 32, 32];

/// Identifies a zoo model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// Mini VGG, shallow variant (stands in for VGG 16).
    VggA,
    /// Mini VGG, deeper variant (stands in for VGG 19).
    VggB,
    /// Mini Inception with 5×5 branches (stands in for Inception v1).
    InceptionV1,
    /// Mini Inception with factorized 3×3+3×3 branches (Inception v2+).
    InceptionV2,
    /// Mini ResNet with 1 block per stage (family: ResNet v1 50).
    ResNet8,
    /// Mini ResNet with 2 blocks per stage (family: ResNet v1 101).
    ResNet14,
    /// Mini ResNet with 3 blocks per stage (family: ResNet v1 152).
    ResNet20,
    /// Mini MobileNet v1 (depthwise separable stacks).
    MobileNetV1,
    /// Mini MobileNet v2 (inverted residuals, linear bottlenecks).
    MobileNetV2,
    /// Mini DarkNet 19 (leaky ReLU).
    DarkNet,
}

impl ModelKind {
    /// All zoo models in Table 3 order.
    pub fn all() -> &'static [ModelKind] {
        &[
            ModelKind::VggA,
            ModelKind::VggB,
            ModelKind::InceptionV1,
            ModelKind::InceptionV2,
            ModelKind::ResNet8,
            ModelKind::ResNet14,
            ModelKind::ResNet20,
            ModelKind::MobileNetV1,
            ModelKind::MobileNetV2,
            ModelKind::DarkNet,
        ]
    }

    /// Stable lowercase name (CLI argument / checkpoint filename).
    pub fn name(&self) -> &'static str {
        match self {
            ModelKind::VggA => "vgg_a",
            ModelKind::VggB => "vgg_b",
            ModelKind::InceptionV1 => "inception_v1",
            ModelKind::InceptionV2 => "inception_v2",
            ModelKind::ResNet8 => "resnet8",
            ModelKind::ResNet14 => "resnet14",
            ModelKind::ResNet20 => "resnet20",
            ModelKind::MobileNetV1 => "mobilenet_v1",
            ModelKind::MobileNetV2 => "mobilenet_v2",
            ModelKind::DarkNet => "darknet",
        }
    }

    /// The paper network this model stands in for.
    pub fn stands_in_for(&self) -> &'static str {
        match self {
            ModelKind::VggA => "VGG 16",
            ModelKind::VggB => "VGG 19",
            ModelKind::InceptionV1 => "Inception v1",
            ModelKind::InceptionV2 => "Inception v2/v3/v4",
            ModelKind::ResNet8 => "ResNet v1 50",
            ModelKind::ResNet14 => "ResNet v1 101",
            ModelKind::ResNet20 => "ResNet v1 152",
            ModelKind::MobileNetV1 => "MobileNet v1 1.0 224",
            ModelKind::MobileNetV2 => "MobileNet v2 1.0 224",
            ModelKind::DarkNet => "DarkNet 19",
        }
    }

    /// Parses a model name as produced by [`name`](Self::name).
    pub fn parse(s: &str) -> Option<ModelKind> {
        ModelKind::all().iter().copied().find(|m| m.name() == s)
    }

    /// Input dims `[n, c, h, w]` the model is built for (`n = 1`); all zoo
    /// models share [`INPUT_DIMS`], but analyses should go through this
    /// accessor rather than the constant.
    pub fn input_dims(&self) -> [usize; 4] {
        INPUT_DIMS
    }

    /// Builds the model with weights initialized from `seed`.
    pub fn build(&self, seed: u64) -> Graph {
        match self {
            ModelKind::VggA => vgg(seed, &[1, 1, 1]),
            ModelKind::VggB => vgg(seed, &[2, 2, 2]),
            ModelKind::InceptionV1 => inception(seed, false),
            ModelKind::InceptionV2 => inception(seed, true),
            ModelKind::ResNet8 => resnet(seed, 1),
            ModelKind::ResNet14 => resnet(seed, 2),
            ModelKind::ResNet20 => resnet(seed, 3),
            ModelKind::MobileNetV1 => mobilenet_v1(seed),
            ModelKind::MobileNetV2 => mobilenet_v2(seed),
            ModelKind::DarkNet => darknet(seed),
        }
    }
}

impl std::fmt::Display for ModelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Plain conv stacks (no batch norm), maxpool between stages, FC head.
fn vgg(seed: u64, reps: &[usize]) -> Graph {
    let (mut b, mut x) = NetBuilder::new(seed);
    let widths = [12usize, 24, 48];
    let mut in_ch = 3;
    for (stage, &n) in reps.iter().enumerate() {
        let out_ch = widths[stage];
        for _ in 0..n {
            x = b.conv_act(x, in_ch, out_ch, Conv2dGeom::same(3), Act::Relu);
            in_ch = out_ch;
        }
        x = b.maxpool(x);
    }
    // 32 -> 16 -> 8 -> 4 spatial; features = 48 * 4 * 4.
    b.flatten_head(x, 48 * 4 * 4, 64, NUM_CLASSES);
    b.g
}

/// Inception block: 1×1, reduced 3×3, reduced 5×5 (or double-3×3), and
/// pool-projection branches concatenated.
fn inception(seed: u64, factorized: bool) -> Graph {
    let (mut b, x) = NetBuilder::new(seed);
    let stem = b.conv_bn_act(x, 3, 16, Conv2dGeom::same(3), Act::Relu);
    let stem = b.maxpool(stem);
    let blk1 = inception_block(&mut b, stem, 16, factorized); // out 32
    let p = b.maxpool(blk1);
    let blk2 = inception_block(&mut b, p, 32, factorized); // out 32
    b.gap_head(blk2, 32, NUM_CLASSES);
    b.g
}

fn inception_block(
    b: &mut NetBuilder,
    x: tqt_graph::NodeId,
    in_ch: usize,
    factorized: bool,
) -> tqt_graph::NodeId {
    // Branch widths: 8 + 12 + 8 + 4 = 32.
    let b1 = b.conv_bn_act(x, in_ch, 8, Conv2dGeom::new(1, 1, 0), Act::Relu);
    let r3 = b.conv_bn_act(x, in_ch, 8, Conv2dGeom::new(1, 1, 0), Act::Relu);
    let b2 = b.conv_bn_act(r3, 8, 12, Conv2dGeom::same(3), Act::Relu);
    let r5 = b.conv_bn_act(x, in_ch, 4, Conv2dGeom::new(1, 1, 0), Act::Relu);
    let b3 = if factorized {
        let m = b.conv_bn_act(r5, 4, 8, Conv2dGeom::same(3), Act::Relu);
        b.conv_bn_act(m, 8, 8, Conv2dGeom::same(3), Act::Relu)
    } else {
        b.conv_bn_act(r5, 4, 8, Conv2dGeom::new(5, 1, 2), Act::Relu)
    };
    let pool = {
        let name = format!("incpool_{x}");
        b.g.add(
            name,
            Op::MaxPool(tqt_nn::MaxPool2d::new(Conv2dGeom::new(3, 1, 1))),
            &[x],
        )
    };
    let b4 = b.conv_bn_act(pool, in_ch, 4, Conv2dGeom::new(1, 1, 0), Act::Relu);
    let name = format!("concat_{x}");
    b.g.add(name, Op::Concat(Concat::new()), &[b1, b2, b3, b4])
}

/// CIFAR-style ResNet v1: conv stem, three stages of basic blocks
/// (16/32/64 channels), strided 1×1 shortcut on stage transitions.
fn resnet(seed: u64, blocks_per_stage: usize) -> Graph {
    let (mut b, x) = NetBuilder::new(seed);
    let mut x = b.conv_bn_act(x, 3, 16, Conv2dGeom::same(3), Act::Relu);
    let mut in_ch = 16;
    for (stage, &out_ch) in [16usize, 32, 64].iter().enumerate() {
        for blk in 0..blocks_per_stage {
            let stride = if stage > 0 && blk == 0 { 2 } else { 1 };
            x = basic_block(&mut b, x, in_ch, out_ch, stride);
            in_ch = out_ch;
        }
    }
    b.gap_head(x, 64, NUM_CLASSES);
    b.g
}

fn basic_block(
    b: &mut NetBuilder,
    x: tqt_graph::NodeId,
    in_ch: usize,
    out_ch: usize,
    stride: usize,
) -> tqt_graph::NodeId {
    let main = b.conv_bn_act(x, in_ch, out_ch, Conv2dGeom::new(3, stride, 1), Act::Relu);
    let main = b.conv_bn_act(main, out_ch, out_ch, Conv2dGeom::same(3), Act::None);
    let shortcut = if stride != 1 || in_ch != out_ch {
        b.conv_bn_act(x, in_ch, out_ch, Conv2dGeom::new(1, stride, 0), Act::None)
    } else {
        x
    };
    let name = format!("resadd_{x}");
    let add = b.g.add(name, Op::Add(EltwiseAdd::new()), &[main, shortcut]);
    b.act(add, Act::Relu)
}

/// MobileNet v1: depthwise-separable stacks with ReLU6.
fn mobilenet_v1(seed: u64) -> Graph {
    let (mut b, x) = NetBuilder::new(seed);
    let mut x = b.conv_bn_act(x, 3, 8, Conv2dGeom::new(3, 2, 1), Act::Relu6); // 16x16
    let plan: &[(usize, usize)] = &[(16, 1), (32, 2), (32, 1), (64, 2), (64, 1)];
    let mut in_ch = 8;
    for &(out_ch, stride) in plan {
        x = b.dw_bn_act(x, in_ch, Conv2dGeom::new(3, stride, 1), Act::Relu6);
        x = b.conv_bn_act(x, in_ch, out_ch, Conv2dGeom::new(1, 1, 0), Act::Relu6);
        in_ch = out_ch;
    }
    b.gap_head(x, 64, NUM_CLASSES);
    b.g
}

/// MobileNet v2: inverted residual blocks (expand → depthwise → linear
/// bottleneck) with identity shortcuts where shapes allow.
fn mobilenet_v2(seed: u64) -> Graph {
    let (mut b, x) = NetBuilder::new(seed);
    let mut x = b.conv_bn_act(x, 3, 8, Conv2dGeom::new(3, 2, 1), Act::Relu6); // 16x16
    let mut in_ch = 8;
    // (out_ch, stride, expansion)
    let plan: &[(usize, usize, usize)] = &[(16, 1, 4), (16, 1, 4), (32, 2, 4), (32, 1, 4)];
    for &(out_ch, stride, t) in plan {
        let expanded = in_ch * t;
        let e = b.conv_bn_act(x, in_ch, expanded, Conv2dGeom::new(1, 1, 0), Act::Relu6);
        let d = b.dw_bn_act(e, expanded, Conv2dGeom::new(3, stride, 1), Act::Relu6);
        let p = b.conv_bn_act(d, expanded, out_ch, Conv2dGeom::new(1, 1, 0), Act::None);
        x = if stride == 1 && in_ch == out_ch {
            let name = format!("invres_{x}");
            b.g.add(name, Op::Add(EltwiseAdd::new()), &[p, x])
        } else {
            p
        };
        in_ch = out_ch;
    }
    b.gap_head(x, 32, NUM_CLASSES);
    b.g
}

/// DarkNet 19 style: conv-BN-leaky stacks with 1×1 squeeze layers.
fn darknet(seed: u64) -> Graph {
    let (mut b, x) = NetBuilder::new(seed);
    let mut x = b.conv_bn_act(x, 3, 8, Conv2dGeom::same(3), Act::Leaky);
    x = b.maxpool(x); // 16
    x = b.conv_bn_act(x, 8, 16, Conv2dGeom::same(3), Act::Leaky);
    x = b.maxpool(x); // 8
    x = b.conv_bn_act(x, 16, 32, Conv2dGeom::same(3), Act::Leaky);
    x = b.conv_bn_act(x, 32, 16, Conv2dGeom::new(1, 1, 0), Act::Leaky);
    x = b.conv_bn_act(x, 16, 32, Conv2dGeom::same(3), Act::Leaky);
    x = b.maxpool(x); // 4
    b.gap_head(x, 32, NUM_CLASSES);
    b.g
}

#[cfg(test)]
mod tests {
    use super::*;
    use tqt_nn::Mode;
    use tqt_tensor::{init, Tensor};

    #[test]
    fn all_models_build_and_run() {
        let mut rng = init::rng(90);
        let x = init::normal([2, 3, 32, 32], 0.0, 1.0, &mut rng);
        for kind in ModelKind::all() {
            let mut g = kind.build(1);
            let y = g.forward(&x, Mode::Eval);
            assert_eq!(y.dims(), &[2, NUM_CLASSES], "{kind} wrong output shape");
            assert!(y.all_finite(), "{kind} produced non-finite logits");
        }
    }

    #[test]
    fn all_models_backprop() {
        let mut rng = init::rng(91);
        let x = init::normal([2, 3, 32, 32], 0.0, 1.0, &mut rng);
        for kind in ModelKind::all() {
            let mut g = kind.build(2);
            let y = g.forward(&x, Mode::Train);
            g.zero_grads();
            g.backward(&y);
            // At least one weight gradient must be non-zero.
            let any_grad = g
                .params_mut()
                .iter()
                .any(|p| p.grad.data().iter().any(|&v| v != 0.0));
            assert!(any_grad, "{kind} produced no gradients");
        }
    }

    #[test]
    fn all_models_optimize_and_quantize() {
        use tqt_graph::{quantize_graph, transforms, QuantizeOptions};
        let mut rng = init::rng(92);
        let x = init::normal([2, 3, 32, 32], 0.0, 1.0, &mut rng);
        for kind in ModelKind::all() {
            let mut g = kind.build(3);
            let before = g.forward(&x, Mode::Eval);
            transforms::optimize(&mut g, &INPUT_DIMS);
            let folded = g.forward(&x, Mode::Eval);
            before.assert_close(&folded, 1e-3);
            // No batch norms left.
            assert!(
                !g.iter().any(|(_, n)| matches!(n.op, Op::BatchNorm(_))),
                "{kind} still has batch norms after optimize"
            );
            quantize_graph(&mut g, QuantizeOptions::static_int8());
            g.calibrate(&x);
            let yq = g.forward(&x, Mode::Eval);
            assert!(yq.all_finite(), "{kind} quantized output not finite");
        }
    }

    #[test]
    fn names_roundtrip() {
        for kind in ModelKind::all() {
            assert_eq!(ModelKind::parse(kind.name()), Some(*kind));
        }
        assert_eq!(ModelKind::parse("nope"), None);
    }

    #[test]
    fn seeds_change_weights() {
        let mut a = ModelKind::ResNet8.build(1);
        let mut b = ModelKind::ResNet8.build(2);
        let x = Tensor::ones([1, 3, 32, 32]);
        assert!(
            a.forward(&x, Mode::Eval).max_abs_diff(&b.forward(&x, Mode::Eval)) > 1e-6,
            "different seeds should give different nets"
        );
    }

    #[test]
    fn mobilenet_v2_has_residual_adds() {
        let g = ModelKind::MobileNetV2.build(1);
        let adds = g.iter().filter(|(_, n)| matches!(n.op, Op::Add(_))).count();
        assert!(adds >= 2, "expected inverted-residual adds, got {adds}");
    }

    #[test]
    fn darknet_uses_leaky_relu() {
        let g = ModelKind::DarkNet.build(1);
        let leaky = g
            .iter()
            .filter(|(_, n)| matches!(&n.op, Op::Relu(r) if r.negative_slope() > 0.0))
            .count();
        assert!(leaky >= 5, "darknet should be leaky-relu heavy, got {leaky}");
    }
}
