//! # tqt-models
//!
//! The mini model zoo standing in for the paper's TF-Slim evaluation
//! networks (see DESIGN.md for the substitution table). Each model is a
//! `tqt-graph` [`Graph`](tqt_graph::Graph) ready for FP32 training,
//! optimization and quantization.

pub mod builder;
pub mod zoo;

pub use builder::{Act, NetBuilder};
pub use zoo::{ModelKind, INPUT_DIMS, NUM_CLASSES};
