//! Fully-connected (dense / matmul) layer.

use crate::layer::{single, Layer, Mode};
use crate::param::{Param, ParamKind};
use tqt_tensor::{init, matmul, matmul_nt, matmul_tn, ops, Tensor};

/// A dense layer `y = x @ w + b` with `x: [n, in]`, `w: [in, out]`,
/// `b: [out]`.
#[derive(Debug)]
pub struct Dense {
    w: Param,
    b: Option<Param>,
    cached_x: Option<Tensor>,
}

impl Dense {
    /// Creates a dense layer with He-normal weights and zero bias.
    pub fn new(name: &str, in_dim: usize, out_dim: usize, rng: &mut init::Rng) -> Self {
        let w = init::he_normal([in_dim, out_dim], rng);
        Dense {
            w: Param::new(format!("{name}/weight"), w, ParamKind::Weight),
            b: Some(Param::new(
                format!("{name}/bias"),
                Tensor::zeros([out_dim]),
                ParamKind::Bias,
            )),
            cached_x: None,
        }
    }

    /// Creates a dense layer from explicit weight (and optional bias)
    /// tensors.
    ///
    /// # Panics
    ///
    /// Panics if `w` is not 2-D or `b` does not match `w`'s output dim.
    pub fn from_parts(name: &str, w: Tensor, b: Option<Tensor>) -> Self {
        assert_eq!(w.ndim(), 2, "dense weight must be 2-D, got {}", w.shape());
        if let Some(b) = &b {
            assert_eq!(
                b.dims(),
                &[w.dim(1)],
                "dense bias {} does not match weight {}",
                b.shape(),
                w.shape()
            );
        }
        Dense {
            w: Param::new(format!("{name}/weight"), w, ParamKind::Weight),
            b: b.map(|b| Param::new(format!("{name}/bias"), b, ParamKind::Bias)),
            cached_x: None,
        }
    }

    /// The weight parameter.
    pub fn weight(&self) -> &Param {
        &self.w
    }
}

impl Layer for Dense {
    fn op_name(&self) -> &'static str {
        "dense"
    }

    fn forward(&mut self, inputs: &[&Tensor], mode: Mode) -> Tensor {
        let x = single(inputs, "dense");
        assert_eq!(x.ndim(), 2, "dense input must be [n, in], got {}", x.shape());
        let mut y = matmul(x, &self.w.value);
        if let Some(b) = &self.b {
            ops::add_channel_inplace(&mut y, &b.value);
        }
        if mode == Mode::Train {
            self.cached_x = Some(x.clone());
        }
        y
    }

    fn backward(&mut self, gy: &Tensor) -> Vec<Tensor> {
        let x = self
            .cached_x
            .take()
            .expect("dense backward without cached forward");
        // dW = x^T @ gy ; dx = gy @ w^T ; db = sum_rows(gy)
        self.w.accumulate(&matmul_tn(&x, gy));
        if let Some(b) = &mut self.b {
            b.accumulate(&ops::sum_over_channel(gy));
        }
        vec![matmul_nt(gy, &self.w.value)]
    }

    fn params(&self) -> Vec<&Param> {
        let mut p = vec![&self.w];
        if let Some(b) = &self.b {
            p.push(b);
        }
        p
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut p = vec![&mut self.w];
        if let Some(b) = &mut self.b {
            p.push(b);
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::gradcheck_layer;

    #[test]
    fn forward_known_values() {
        let w = Tensor::from_vec([2, 2], vec![1., 2., 3., 4.]);
        let b = Tensor::from_slice(&[10., 20.]);
        let mut d = Dense::from_parts("d", w, Some(b));
        let x = Tensor::from_vec([1, 2], vec![1., 1.]);
        let y = d.forward(&[&x], Mode::Eval);
        assert_eq!(y.data(), &[14., 26.]);
    }

    #[test]
    fn gradcheck() {
        let mut rng = init::rng(1);
        let mut d = Dense::new("d", 5, 3, &mut rng);
        let x = init::normal([4, 5], 0.0, 1.0, &mut rng);
        gradcheck_layer(&mut d, &[x], 1e-2, 2e-2);
    }

    #[test]
    fn bias_gradient_is_row_sum() {
        let mut rng = init::rng(2);
        let mut d = Dense::new("d", 2, 2, &mut rng);
        let x = Tensor::from_vec([3, 2], vec![1.; 6]);
        d.forward(&[&x], Mode::Train);
        let gy = Tensor::from_vec([3, 2], vec![1., 2., 1., 2., 1., 2.]);
        d.backward(&gy);
        assert_eq!(d.params()[1].grad.data(), &[3.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "without cached forward")]
    fn backward_requires_forward() {
        let mut rng = init::rng(3);
        let mut d = Dense::new("d", 2, 2, &mut rng);
        d.backward(&Tensor::zeros([1, 2]));
    }
}
