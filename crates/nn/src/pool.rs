//! Pooling layers: max pooling, average pooling, global average pooling,
//! and flatten.
//!
//! Average pooling is also expressible as a depthwise convolution with
//! reciprocal weights — the transform Graffitist applies before
//! quantization (Section 4.1); the direct implementation here is the
//! reference the transform is validated against.

use crate::layer::{single, Layer, Mode};
use tqt_tensor::conv::Conv2dGeom;
use tqt_tensor::Tensor;

/// Max pooling over spatial windows of an NCHW tensor.
#[derive(Debug, Clone)]
pub struct MaxPool2d {
    geom: Conv2dGeom,
    /// For each output element, the flat input index of its max.
    cached_argmax: Option<(Vec<usize>, Vec<usize>)>, // (argmax, input dims as len-4)
}

impl MaxPool2d {
    /// Creates a max-pool layer with the given window geometry.
    pub fn new(geom: Conv2dGeom) -> Self {
        MaxPool2d {
            geom,
            cached_argmax: None,
        }
    }

    /// The standard 2x2 stride-2 pooling.
    pub fn k2s2() -> Self {
        MaxPool2d::new(Conv2dGeom::new(2, 2, 0))
    }

    /// The pooling geometry.
    pub fn geom(&self) -> Conv2dGeom {
        self.geom
    }
}

impl Layer for MaxPool2d {
    fn op_name(&self) -> &'static str {
        "max_pool"
    }

    fn forward(&mut self, inputs: &[&Tensor], mode: Mode) -> Tensor {
        let x = single(inputs, "max_pool");
        assert_eq!(x.ndim(), 4, "max_pool input must be NCHW, got {}", x.shape());
        let (n, c, h, w) = (x.dim(0), x.dim(1), x.dim(2), x.dim(3));
        let g = self.geom;
        let (oh, ow) = g.out_size(h, w);
        let mut out = vec![f32::NEG_INFINITY; n * c * oh * ow];
        let mut argmax = vec![0usize; n * c * oh * ow];
        let xd = x.data();
        for ni in 0..n {
            for ci in 0..c {
                let ibase = (ni * c + ci) * h * w;
                let obase = (ni * c + ci) * oh * ow;
                for oi in 0..oh {
                    for oj in 0..ow {
                        let mut best = f32::NEG_INFINITY;
                        let mut besti = 0usize;
                        for ki in 0..g.kh {
                            let ii = (oi * g.stride + ki) as isize - g.pad as isize;
                            if ii < 0 || ii >= h as isize {
                                continue;
                            }
                            for kj in 0..g.kw {
                                let jj = (oj * g.stride + kj) as isize - g.pad as isize;
                                if jj < 0 || jj >= w as isize {
                                    continue;
                                }
                                let idx = ibase + ii as usize * w + jj as usize;
                                if xd[idx] > best {
                                    best = xd[idx];
                                    besti = idx;
                                }
                            }
                        }
                        out[obase + oi * ow + oj] = best;
                        argmax[obase + oi * ow + oj] = besti;
                    }
                }
            }
        }
        if mode == Mode::Train {
            self.cached_argmax = Some((argmax, vec![n, c, h, w]));
        }
        Tensor::from_vec([n, c, oh, ow], out)
    }

    fn backward(&mut self, gy: &Tensor) -> Vec<Tensor> {
        let (argmax, dims) = self
            .cached_argmax
            .take()
            .expect("max_pool backward without cached forward");
        let mut gx = Tensor::zeros(dims);
        let gxd = gx.data_mut();
        for (o, &i) in argmax.iter().enumerate() {
            gxd[i] += gy.data()[o];
        }
        vec![gx]
    }
}

/// Average pooling over spatial windows (count includes padding positions,
/// i.e. the divisor is the full kernel size, matching the depthwise-conv
/// reciprocal-weights equivalence the paper uses).
#[derive(Debug, Clone)]
pub struct AvgPool2d {
    geom: Conv2dGeom,
    cached_dims: Option<Vec<usize>>,
}

impl AvgPool2d {
    /// Creates an average-pool layer.
    pub fn new(geom: Conv2dGeom) -> Self {
        AvgPool2d {
            geom,
            cached_dims: None,
        }
    }

    /// The pooling geometry.
    pub fn geom(&self) -> Conv2dGeom {
        self.geom
    }

    /// The reciprocal multiplier `1 / F²` (with `F` the kernel size) that
    /// the avgpool → depthwise-conv transform uses as weights.
    pub fn reciprocal(&self) -> f32 {
        1.0 / (self.geom.kh * self.geom.kw) as f32
    }
}

impl Layer for AvgPool2d {
    fn op_name(&self) -> &'static str {
        "avg_pool"
    }

    fn forward(&mut self, inputs: &[&Tensor], mode: Mode) -> Tensor {
        let x = single(inputs, "avg_pool");
        assert_eq!(x.ndim(), 4, "avg_pool input must be NCHW, got {}", x.shape());
        let (n, c, h, w) = (x.dim(0), x.dim(1), x.dim(2), x.dim(3));
        let g = self.geom;
        let (oh, ow) = g.out_size(h, w);
        let r = self.reciprocal();
        let mut out = vec![0.0f32; n * c * oh * ow];
        let xd = x.data();
        for ni in 0..n {
            for ci in 0..c {
                let ibase = (ni * c + ci) * h * w;
                let obase = (ni * c + ci) * oh * ow;
                for oi in 0..oh {
                    for oj in 0..ow {
                        let mut acc = 0.0f32;
                        for ki in 0..g.kh {
                            let ii = (oi * g.stride + ki) as isize - g.pad as isize;
                            if ii < 0 || ii >= h as isize {
                                continue;
                            }
                            for kj in 0..g.kw {
                                let jj = (oj * g.stride + kj) as isize - g.pad as isize;
                                if jj < 0 || jj >= w as isize {
                                    continue;
                                }
                                acc += xd[ibase + ii as usize * w + jj as usize];
                            }
                        }
                        out[obase + oi * ow + oj] = acc * r;
                    }
                }
            }
        }
        if mode == Mode::Train {
            self.cached_dims = Some(vec![n, c, h, w]);
        }
        Tensor::from_vec([n, c, oh, ow], out)
    }

    fn backward(&mut self, gy: &Tensor) -> Vec<Tensor> {
        let dims = self
            .cached_dims
            .take()
            .expect("avg_pool backward without cached forward");
        let (n, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
        let g = self.geom;
        let (oh, ow) = g.out_size(h, w);
        let r = self.reciprocal();
        let mut gx = Tensor::zeros(dims);
        let gxd = gx.data_mut();
        for ni in 0..n {
            for ci in 0..c {
                let ibase = (ni * c + ci) * h * w;
                let obase = (ni * c + ci) * oh * ow;
                for oi in 0..oh {
                    for oj in 0..ow {
                        let gv = gy.data()[obase + oi * ow + oj] * r;
                        for ki in 0..g.kh {
                            let ii = (oi * g.stride + ki) as isize - g.pad as isize;
                            if ii < 0 || ii >= h as isize {
                                continue;
                            }
                            for kj in 0..g.kw {
                                let jj = (oj * g.stride + kj) as isize - g.pad as isize;
                                if jj < 0 || jj >= w as isize {
                                    continue;
                                }
                                gxd[ibase + ii as usize * w + jj as usize] += gv;
                            }
                        }
                    }
                }
            }
        }
        vec![gx]
    }
}

/// Global average pooling: NCHW → `[N, C]` (the head of every model in the
/// zoo; the paper replaces `reduce_mean` with `avg_pool` before export,
/// which this layer matches by construction).
#[derive(Debug, Clone, Default)]
pub struct GlobalAvgPool {
    cached_dims: Option<Vec<usize>>,
}

impl GlobalAvgPool {
    /// Creates a global average pooling layer.
    pub fn new() -> Self {
        GlobalAvgPool { cached_dims: None }
    }
}

impl Layer for GlobalAvgPool {
    fn op_name(&self) -> &'static str {
        "global_avg_pool"
    }

    fn forward(&mut self, inputs: &[&Tensor], mode: Mode) -> Tensor {
        let x = single(inputs, "global_avg_pool");
        assert_eq!(x.ndim(), 4, "global_avg_pool input must be NCHW");
        let (n, c, h, w) = (x.dim(0), x.dim(1), x.dim(2), x.dim(3));
        let inv = 1.0 / (h * w) as f32;
        let mut out = vec![0.0f32; n * c];
        for ni in 0..n {
            for ci in 0..c {
                let base = (ni * c + ci) * h * w;
                out[ni * c + ci] = x.data()[base..base + h * w].iter().sum::<f32>() * inv;
            }
        }
        if mode == Mode::Train {
            self.cached_dims = Some(vec![n, c, h, w]);
        }
        Tensor::from_vec([n, c], out)
    }

    fn backward(&mut self, gy: &Tensor) -> Vec<Tensor> {
        let dims = self
            .cached_dims
            .take()
            .expect("global_avg_pool backward without cached forward");
        let (n, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
        let inv = 1.0 / (h * w) as f32;
        let mut gx = Tensor::zeros(dims);
        let gxd = gx.data_mut();
        for ni in 0..n {
            for ci in 0..c {
                let gv = gy.data()[ni * c + ci] * inv;
                let base = (ni * c + ci) * h * w;
                gxd[base..base + h * w].fill(gv);
            }
        }
        vec![gx]
    }
}

/// Flattens NCHW to `[N, C*H*W]` (2-D tensors pass through).
#[derive(Debug, Clone, Default)]
pub struct Flatten {
    cached_dims: Option<Vec<usize>>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Flatten { cached_dims: None }
    }
}

impl Layer for Flatten {
    fn op_name(&self) -> &'static str {
        "flatten"
    }

    fn forward(&mut self, inputs: &[&Tensor], mode: Mode) -> Tensor {
        let x = single(inputs, "flatten");
        if mode == Mode::Train {
            self.cached_dims = Some(x.dims().to_vec());
        }
        let n = x.dim(0);
        x.reshape([n, x.len() / n])
    }

    fn backward(&mut self, gy: &Tensor) -> Vec<Tensor> {
        let dims = self
            .cached_dims
            .take()
            .expect("flatten backward without cached forward");
        vec![gy.reshape(dims)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::gradcheck_layer;
    use tqt_tensor::init;

    #[test]
    fn max_pool_known() {
        let mut p = MaxPool2d::k2s2();
        let x = Tensor::from_vec([1, 1, 2, 2], vec![1., 2., 3., 4.]);
        let y = p.forward(&[&x], Mode::Eval);
        assert_eq!(y.data(), &[4.0]);
    }

    #[test]
    fn max_pool_routes_gradient_to_argmax() {
        let mut p = MaxPool2d::k2s2();
        let x = Tensor::from_vec([1, 1, 2, 2], vec![1., 2., 3., 4.]);
        p.forward(&[&x], Mode::Train);
        let g = p.backward(&Tensor::from_vec([1, 1, 1, 1], vec![5.0])).remove(0);
        assert_eq!(g.data(), &[0., 0., 0., 5.0]);
    }

    #[test]
    fn avg_pool_known() {
        let mut p = AvgPool2d::new(Conv2dGeom::new(2, 2, 0));
        let x = Tensor::from_vec([1, 1, 2, 2], vec![1., 2., 3., 4.]);
        let y = p.forward(&[&x], Mode::Eval);
        assert_eq!(y.data(), &[2.5]);
    }

    #[test]
    fn avg_pool_gradcheck() {
        let mut rng = init::rng(40);
        let mut p = AvgPool2d::new(Conv2dGeom::new(2, 2, 0));
        let x = init::normal([2, 2, 4, 4], 0.0, 1.0, &mut rng);
        gradcheck_layer(&mut p, &[x], 1e-2, 1e-2);
    }

    #[test]
    fn global_avg_pool_gradcheck() {
        let mut rng = init::rng(41);
        let mut p = GlobalAvgPool::new();
        let x = init::normal([2, 3, 4, 4], 0.0, 1.0, &mut rng);
        gradcheck_layer(&mut p, &[x], 1e-2, 1e-2);
    }

    #[test]
    fn flatten_roundtrip() {
        let mut f = Flatten::new();
        let x = Tensor::from_vec([2, 2, 1, 2], (0..8).map(|v| v as f32).collect());
        let y = f.forward(&[&x], Mode::Train);
        assert_eq!(y.dims(), &[2, 4]);
        let g = f.backward(&y).remove(0);
        assert_eq!(g.dims(), x.dims());
        assert_eq!(g.data(), x.data());
    }

    #[test]
    fn max_pool_gradcheck_distinct_values() {
        // Use strictly distinct values so the max is FD-differentiable.
        let mut p = MaxPool2d::k2s2();
        let x = Tensor::from_vec([1, 2, 4, 4], (0..32).map(|v| v as f32 * 0.37).collect());
        gradcheck_layer(&mut p, &[x], 1e-3, 1e-2);
    }
}
