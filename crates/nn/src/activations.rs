//! Pointwise activation layers: ReLU, ReLU6, and leaky ReLU (the DarkNet
//! activation with its dedicated quantization topology in Section 4.3).

use crate::layer::{single, Layer, Mode};
use tqt_tensor::Tensor;

/// Rectified linear unit, optionally capped (ReLU6), with an optional
/// leaky negative slope.
///
/// * `Relu::new()` — standard ReLU.
/// * `Relu::relu6()` — ReLU capped at 6 (MobileNet).
/// * `Relu::leaky(alpha)` — leaky ReLU (DarkNet uses `alpha = 0.1`).
#[derive(Debug, Clone)]
pub struct Relu {
    cap: Option<f32>,
    negative_slope: f32,
    cached_x: Option<Tensor>,
}

impl Relu {
    /// Standard ReLU: `max(x, 0)`.
    pub fn new() -> Self {
        Relu {
            cap: None,
            negative_slope: 0.0,
            cached_x: None,
        }
    }

    /// ReLU6: `min(max(x, 0), 6)`.
    pub fn relu6() -> Self {
        Relu {
            cap: Some(6.0),
            negative_slope: 0.0,
            cached_x: None,
        }
    }

    /// Leaky ReLU: `x` for `x > 0`, `alpha * x` otherwise.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= alpha < 1`.
    pub fn leaky(alpha: f32) -> Self {
        assert!(
            (0.0..1.0).contains(&alpha),
            "leaky slope must be in [0,1), got {alpha}"
        );
        Relu {
            cap: None,
            negative_slope: alpha,
            cached_x: None,
        }
    }

    /// ReLU capped at an arbitrary value (used by the fixed-point lowering
    /// to snap the ReLU6 cap onto the integer grid).
    ///
    /// # Panics
    ///
    /// Panics unless `cap > 0`.
    pub fn capped(cap: f32) -> Self {
        assert!(cap > 0.0, "cap must be positive, got {cap}");
        Relu {
            cap: Some(cap),
            negative_slope: 0.0,
            cached_x: None,
        }
    }

    /// Replaces the negative slope (used by the fixed-point lowering to
    /// snap leaky-ReLU's α onto a fixed-point grid).
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= alpha < 1`.
    pub fn set_negative_slope(&mut self, alpha: f32) {
        assert!(
            (0.0..1.0).contains(&alpha),
            "leaky slope must be in [0,1), got {alpha}"
        );
        self.negative_slope = alpha;
    }

    /// The cap value, if any.
    pub fn cap(&self) -> Option<f32> {
        self.cap
    }

    /// The negative slope (0 for plain/capped ReLU).
    pub fn negative_slope(&self) -> f32 {
        self.negative_slope
    }

    /// The pointwise forward map (public so the planned executor can run
    /// the identical element function over slot buffers).
    pub fn apply(&self, v: f32) -> f32 {
        let mut y = if v > 0.0 { v } else { self.negative_slope * v };
        if let Some(c) = self.cap {
            y = y.min(c);
        }
        y
    }

    /// The pointwise sub-gradient at pre-activation `v` (public for the
    /// planned executor).
    pub fn grad_at(&self, v: f32) -> f32 {
        if v <= 0.0 {
            self.negative_slope
        } else if let Some(c) = self.cap {
            if v >= c {
                0.0
            } else {
                1.0
            }
        } else {
            1.0
        }
    }
}

impl Default for Relu {
    fn default() -> Self {
        Relu::new()
    }
}

impl Layer for Relu {
    fn op_name(&self) -> &'static str {
        if self.negative_slope > 0.0 {
            "leaky_relu"
        } else if self.cap.is_some() {
            "relu6"
        } else {
            "relu"
        }
    }

    fn forward(&mut self, inputs: &[&Tensor], mode: Mode) -> Tensor {
        let x = single(inputs, "relu");
        if mode == Mode::Train {
            self.cached_x = Some(x.clone());
        }
        x.map(|v| self.apply(v))
    }

    fn backward(&mut self, gy: &Tensor) -> Vec<Tensor> {
        let x = self
            .cached_x
            .take()
            .expect("relu backward without cached forward");
        vec![gy.zip_map(&x, |g, v| g * self.grad_at(v))]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::gradcheck_layer;
    use tqt_tensor::init;

    #[test]
    fn relu_forward() {
        let mut r = Relu::new();
        let y = r.forward(&[&Tensor::from_slice(&[-1.0, 0.0, 2.0])], Mode::Eval);
        assert_eq!(y.data(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn relu6_caps() {
        let mut r = Relu::relu6();
        let y = r.forward(&[&Tensor::from_slice(&[-1.0, 3.0, 9.0])], Mode::Eval);
        assert_eq!(y.data(), &[0.0, 3.0, 6.0]);
    }

    #[test]
    fn leaky_negative_slope() {
        let mut r = Relu::leaky(0.1);
        let y = r.forward(&[&Tensor::from_slice(&[-2.0, 4.0])], Mode::Eval);
        assert_eq!(y.data(), &[-0.2, 4.0]);
    }

    #[test]
    fn gradients_mask_correctly() {
        let mut r = Relu::relu6();
        let x = Tensor::from_slice(&[-1.0, 3.0, 9.0]);
        r.forward(&[&x], Mode::Train);
        let g = r.backward(&Tensor::from_slice(&[1.0, 1.0, 1.0])).remove(0);
        assert_eq!(g.data(), &[0.0, 1.0, 0.0]);
    }

    #[test]
    fn leaky_gradcheck() {
        let mut rng = init::rng(30);
        let mut r = Relu::leaky(0.1);
        // Keep probes away from the kink at 0.
        let x = init::uniform([64], 0.2, 2.0, &mut rng)
            .zip_map(&init::uniform([64], -2.0, -0.2, &mut rng), |a, b| {
                if (a + b) > 0.0 {
                    a
                } else {
                    b
                }
            });
        gradcheck_layer(&mut r, &[x], 1e-3, 1e-2);
    }

    #[test]
    #[should_panic(expected = "leaky slope")]
    fn rejects_bad_slope() {
        Relu::leaky(1.5);
    }
}
