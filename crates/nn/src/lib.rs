//! # tqt-nn
//!
//! A from-scratch neural-network layer library with hand-derived
//! backpropagation, built on [`tqt_tensor`]. This is the training substrate
//! the TQT reproduction runs on — the role TensorFlow plays for the
//! original paper.
//!
//! Provides the [`Layer`] trait and implementations for every operation the
//! paper's model zoo needs (dense, conv2d, depthwise conv, batch-norm with
//! freezeable statistics, ReLU/ReLU6/leaky-ReLU, max/avg/global pooling,
//! eltwise-add, concat, flatten), softmax cross-entropy, SGD/Adam/RMSProp
//! optimizers with name-keyed state, and the paper's staircase learning-rate
//! schedules.
//!
//! # Examples
//!
//! ```
//! use tqt_nn::{Dense, Layer, Mode, optim::{Adam, Optimizer}};
//! use tqt_tensor::{init, Tensor};
//!
//! let mut rng = init::rng(0);
//! let mut layer = Dense::new("fc", 4, 2, &mut rng);
//! let x = init::normal([8, 4], 0.0, 1.0, &mut rng);
//! let y = layer.forward(&[&x], Mode::Train);
//! let grads = layer.backward(&y); // dL/dx for L = 0.5 sum y^2
//! assert_eq!(grads[0].dims(), &[8, 4]);
//!
//! let mut opt = Adam::paper(1e-3);
//! opt.step(&mut layer.params_mut());
//! ```

pub mod activations;
pub mod arena;
pub mod batchnorm;
pub mod conv;
pub mod dense;
pub mod layer;
pub mod loss;
pub mod merge;
pub mod optim;
pub mod param;
pub mod pool;
pub mod schedule;
#[doc(hidden)]
pub mod testutil;

pub use activations::Relu;
pub use arena::{ParamArena, PooledAdam};
pub use batchnorm::BatchNorm;
pub use conv::{Conv2d, DepthwiseConv2d};
pub use dense::Dense;
pub use layer::{Layer, Mode};
pub use merge::{Concat, EltwiseAdd};
pub use param::{Param, ParamKind};
pub use pool::{AvgPool2d, Flatten, GlobalAvgPool, MaxPool2d};
