//! Learning-rate schedules. The paper decays exponentially "with staircase
//! enabled": the rate drops by a fixed factor every fixed number of steps,
//! with the step interval scaled by `24 / batch_size` (Section 5.2).

/// Exponential staircase decay: `lr(step) = lr0 * decay^floor(step / interval)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StaircaseDecay {
    /// Initial learning rate.
    pub lr0: f32,
    /// Multiplicative decay factor per staircase drop.
    pub decay: f32,
    /// Steps between drops.
    pub interval: u64,
}

impl StaircaseDecay {
    /// Creates a staircase schedule.
    ///
    /// # Panics
    ///
    /// Panics if `lr0 <= 0`, `decay` is outside `(0, 1]`, or
    /// `interval == 0`.
    pub fn new(lr0: f32, decay: f32, interval: u64) -> Self {
        assert!(lr0 > 0.0, "initial learning rate must be positive");
        assert!(decay > 0.0 && decay <= 1.0, "decay must be in (0,1]");
        assert!(interval > 0, "interval must be positive");
        StaircaseDecay {
            lr0,
            decay,
            interval,
        }
    }

    /// The paper's weight schedule: decay 0.94 every `3000 * (24/N)` steps
    /// for batch size `N`.
    pub fn paper_weights(lr0: f32, batch_size: usize) -> Self {
        StaircaseDecay::new(lr0, 0.94, scaled_interval(3000, batch_size))
    }

    /// The paper's threshold schedule: decay 0.5 every `1000 * (24/N)`
    /// steps for batch size `N`.
    pub fn paper_thresholds(lr0: f32, batch_size: usize) -> Self {
        StaircaseDecay::new(lr0, 0.5, scaled_interval(1000, batch_size))
    }

    /// Learning rate at a given global step.
    pub fn at(&self, step: u64) -> f32 {
        self.lr0 * self.decay.powi((step / self.interval) as i32)
    }
}

/// Scales a step interval by `24 / batch_size` as in Section 5.2, keeping
/// at least one step.
///
/// # Panics
///
/// Panics if `batch_size == 0`.
pub fn scaled_interval(base: u64, batch_size: usize) -> u64 {
    assert!(batch_size > 0, "batch size must be positive");
    ((base as f64 * 24.0 / batch_size as f64).round() as u64).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn staircase_holds_then_drops() {
        let s = StaircaseDecay::new(1.0, 0.5, 10);
        assert_eq!(s.at(0), 1.0);
        assert_eq!(s.at(9), 1.0);
        assert_eq!(s.at(10), 0.5);
        assert_eq!(s.at(25), 0.25);
    }

    #[test]
    fn paper_intervals_scale_with_batch() {
        // Batch 24 => base interval; batch 12 => doubled.
        assert_eq!(StaircaseDecay::paper_weights(1e-6, 24).interval, 3000);
        assert_eq!(StaircaseDecay::paper_weights(1e-6, 12).interval, 6000);
        assert_eq!(StaircaseDecay::paper_thresholds(1e-2, 16).interval, 1500);
    }

    #[test]
    #[should_panic(expected = "decay")]
    fn rejects_bad_decay() {
        StaircaseDecay::new(1.0, 0.0, 10);
    }
}
