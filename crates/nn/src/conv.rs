//! Convolution layers: standard and depthwise, with optional bias.

use crate::layer::{single, Layer, Mode};
use crate::param::{Param, ParamKind};
use tqt_tensor::conv::{
    conv2d, conv2d_backward, depthwise_conv2d, depthwise_conv2d_backward, Conv2dGeom,
};
use tqt_tensor::{init, ops, Tensor};

/// Standard 2-D convolution layer (`[out, in, kh, kw]` weights, NCHW data).
#[derive(Debug)]
pub struct Conv2d {
    w: Param,
    b: Option<Param>,
    geom: Conv2dGeom,
    cached_x: Option<Tensor>,
}

impl Conv2d {
    /// Creates a conv layer with He-normal weights and zero bias.
    pub fn new(
        name: &str,
        in_ch: usize,
        out_ch: usize,
        geom: Conv2dGeom,
        rng: &mut init::Rng,
    ) -> Self {
        let w = init::he_normal([out_ch, in_ch, geom.kh, geom.kw], rng);
        Conv2d {
            w: Param::new(format!("{name}/weight"), w, ParamKind::Weight),
            b: Some(Param::new(
                format!("{name}/bias"),
                Tensor::zeros([out_ch]),
                ParamKind::Bias,
            )),
            geom,
            cached_x: None,
        }
    }

    /// Creates a conv layer from explicit tensors.
    ///
    /// # Panics
    ///
    /// Panics if `w` is not 4-D, its spatial dims disagree with `geom`, or
    /// the bias length does not match the output channels.
    pub fn from_parts(name: &str, w: Tensor, b: Option<Tensor>, geom: Conv2dGeom) -> Self {
        assert_eq!(w.ndim(), 4, "conv weight must be 4-D, got {}", w.shape());
        assert_eq!(
            (w.dim(2), w.dim(3)),
            (geom.kh, geom.kw),
            "weight spatial dims {}x{} disagree with geometry {}x{}",
            w.dim(2),
            w.dim(3),
            geom.kh,
            geom.kw
        );
        if let Some(b) = &b {
            assert_eq!(b.dims(), &[w.dim(0)], "bias does not match out channels");
        }
        Conv2d {
            w: Param::new(format!("{name}/weight"), w, ParamKind::Weight),
            b: b.map(|b| Param::new(format!("{name}/bias"), b, ParamKind::Bias)),
            geom,
            cached_x: None,
        }
    }

    /// The convolution geometry.
    pub fn geom(&self) -> Conv2dGeom {
        self.geom
    }

    /// The weight parameter.
    pub fn weight(&self) -> &Param {
        &self.w
    }
}

impl Layer for Conv2d {
    fn op_name(&self) -> &'static str {
        "conv2d"
    }

    fn forward(&mut self, inputs: &[&Tensor], mode: Mode) -> Tensor {
        let x = single(inputs, "conv2d");
        let mut y = conv2d(x, &self.w.value, self.geom);
        if let Some(b) = &self.b {
            ops::add_channel_inplace(&mut y, &b.value);
        }
        if mode == Mode::Train {
            self.cached_x = Some(x.clone());
        }
        y
    }

    fn backward(&mut self, gy: &Tensor) -> Vec<Tensor> {
        let x = self
            .cached_x
            .take()
            .expect("conv2d backward without cached forward");
        let (gx, gw) = conv2d_backward(&x, &self.w.value, gy, self.geom);
        self.w.accumulate(&gw);
        if let Some(b) = &mut self.b {
            b.accumulate(&ops::sum_over_channel(gy));
        }
        vec![gx]
    }

    fn params(&self) -> Vec<&Param> {
        let mut p = vec![&self.w];
        if let Some(b) = &self.b {
            p.push(b);
        }
        p
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut p = vec![&mut self.w];
        if let Some(b) = &mut self.b {
            p.push(b);
        }
        p
    }
}

/// Depthwise 2-D convolution layer (`[c, 1, kh, kw]` weights), the
/// MobileNet building block with irregular per-channel weight ranges that
/// makes per-tensor quantization hard — the paper's motivating case.
#[derive(Debug)]
pub struct DepthwiseConv2d {
    w: Param,
    b: Option<Param>,
    geom: Conv2dGeom,
    cached_x: Option<Tensor>,
}

impl DepthwiseConv2d {
    /// Creates a depthwise conv layer with He-normal weights and zero bias.
    pub fn new(name: &str, channels: usize, geom: Conv2dGeom, rng: &mut init::Rng) -> Self {
        let w = init::he_normal([channels, 1, geom.kh, geom.kw], rng);
        DepthwiseConv2d {
            w: Param::new(format!("{name}/weight"), w, ParamKind::Weight),
            b: Some(Param::new(
                format!("{name}/bias"),
                Tensor::zeros([channels]),
                ParamKind::Bias,
            )),
            geom,
            cached_x: None,
        }
    }

    /// Creates a depthwise layer from explicit tensors.
    ///
    /// # Panics
    ///
    /// Panics if `w` is not `[c, 1, kh, kw]` matching `geom`.
    pub fn from_parts(name: &str, w: Tensor, b: Option<Tensor>, geom: Conv2dGeom) -> Self {
        assert_eq!(w.ndim(), 4, "depthwise weight must be 4-D");
        assert_eq!(w.dim(1), 1, "depthwise channel multiplier must be 1");
        assert_eq!((w.dim(2), w.dim(3)), (geom.kh, geom.kw));
        if let Some(b) = &b {
            assert_eq!(b.dims(), &[w.dim(0)], "bias does not match channels");
        }
        DepthwiseConv2d {
            w: Param::new(format!("{name}/weight"), w, ParamKind::Weight),
            b: b.map(|b| Param::new(format!("{name}/bias"), b, ParamKind::Bias)),
            geom,
            cached_x: None,
        }
    }

    /// The convolution geometry.
    pub fn geom(&self) -> Conv2dGeom {
        self.geom
    }
}

impl Layer for DepthwiseConv2d {
    fn op_name(&self) -> &'static str {
        "depthwise_conv2d"
    }

    fn forward(&mut self, inputs: &[&Tensor], mode: Mode) -> Tensor {
        let x = single(inputs, "depthwise_conv2d");
        let mut y = depthwise_conv2d(x, &self.w.value, self.geom);
        if let Some(b) = &self.b {
            ops::add_channel_inplace(&mut y, &b.value);
        }
        if mode == Mode::Train {
            self.cached_x = Some(x.clone());
        }
        y
    }

    fn backward(&mut self, gy: &Tensor) -> Vec<Tensor> {
        let x = self
            .cached_x
            .take()
            .expect("depthwise backward without cached forward");
        let (gx, gw) = depthwise_conv2d_backward(&x, &self.w.value, gy, self.geom);
        self.w.accumulate(&gw);
        if let Some(b) = &mut self.b {
            b.accumulate(&ops::sum_over_channel(gy));
        }
        vec![gx]
    }

    fn params(&self) -> Vec<&Param> {
        let mut p = vec![&self.w];
        if let Some(b) = &self.b {
            p.push(b);
        }
        p
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut p = vec![&mut self.w];
        if let Some(b) = &mut self.b {
            p.push(b);
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::gradcheck_layer;

    #[test]
    fn conv_gradcheck() {
        let mut rng = init::rng(10);
        let mut l = Conv2d::new("c", 2, 3, Conv2dGeom::new(3, 2, 1), &mut rng);
        let x = init::normal([2, 2, 5, 5], 0.0, 1.0, &mut rng);
        gradcheck_layer(&mut l, &[x], 1e-2, 3e-2);
    }

    #[test]
    fn depthwise_gradcheck() {
        let mut rng = init::rng(11);
        let mut l = DepthwiseConv2d::new("dw", 3, Conv2dGeom::same(3), &mut rng);
        let x = init::normal([2, 3, 4, 4], 0.0, 1.0, &mut rng);
        gradcheck_layer(&mut l, &[x], 1e-2, 3e-2);
    }

    #[test]
    fn conv_bias_broadcasts() {
        let w = Tensor::zeros([2, 1, 1, 1]);
        let b = Tensor::from_slice(&[1.0, -1.0]);
        let mut l = Conv2d::from_parts("c", w, Some(b), Conv2dGeom::new(1, 1, 0));
        let x = Tensor::zeros([1, 1, 2, 2]);
        let y = l.forward(&[&x], Mode::Eval);
        assert_eq!(y.data(), &[1., 1., 1., 1., -1., -1., -1., -1.]);
    }

    #[test]
    fn output_shape_stride2() {
        let mut rng = init::rng(12);
        let mut l = Conv2d::new("c", 3, 8, Conv2dGeom::new(3, 2, 1), &mut rng);
        let y = l.forward(&[&Tensor::zeros([1, 3, 32, 32])], Mode::Eval);
        assert_eq!(y.dims(), &[1, 8, 16, 16]);
    }
}
