//! Trainable parameters and their gradient storage.

use tqt_tensor::Tensor;

/// What role a parameter plays, used by the trainer to route parameters to
/// the right optimizer group (the paper trains weights and thresholds with
/// different learning rates and decay schedules).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ParamKind {
    /// Convolution / dense weights.
    Weight,
    /// Bias vectors.
    Bias,
    /// Batch-norm scale (gamma) and shift (beta).
    BatchNorm,
    /// Quantization log-thresholds (`log2 t`).
    Threshold,
}

/// A named trainable tensor with accumulated gradient.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Unique name within a graph (e.g. `conv1/weight`).
    pub name: String,
    /// Current value.
    pub value: Tensor,
    /// Accumulated gradient (same shape as `value`).
    pub grad: Tensor,
    /// Parameter role for optimizer-group routing.
    pub kind: ParamKind,
    /// Whether the optimizer may update this parameter. Frozen thresholds
    /// and fixed weights set this to `false`.
    pub trainable: bool,
}

impl Param {
    /// Creates a trainable parameter with a zeroed gradient.
    pub fn new(name: impl Into<String>, value: Tensor, kind: ParamKind) -> Self {
        let grad = Tensor::zeros(value.shape().clone());
        Param {
            name: name.into(),
            value,
            grad,
            kind,
            trainable: true,
        }
    }

    /// Zeroes the accumulated gradient.
    pub fn zero_grad(&mut self) {
        self.grad.data_mut().fill(0.0);
    }

    /// Adds `g` into the accumulated gradient.
    ///
    /// # Panics
    ///
    /// Panics if `g` has a different shape than the parameter.
    pub fn accumulate(&mut self, g: &Tensor) {
        tqt_tensor::ops::axpy(&mut self.grad, 1.0, g);
    }

    /// Convenience for scalar parameters (log-thresholds): the single value.
    ///
    /// # Panics
    ///
    /// Panics if the parameter is not scalar.
    pub fn scalar(&self) -> f32 {
        self.value.item()
    }

    /// Adds `g` to a scalar parameter's gradient.
    ///
    /// # Panics
    ///
    /// Panics if the parameter is not scalar.
    pub fn accumulate_scalar(&mut self, g: f32) {
        assert_eq!(self.grad.len(), 1, "accumulate_scalar on non-scalar param");
        self.grad.data_mut()[0] += g;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulate_and_zero() {
        let mut p = Param::new("w", Tensor::zeros([2]), ParamKind::Weight);
        p.accumulate(&Tensor::from_slice(&[1.0, 2.0]));
        p.accumulate(&Tensor::from_slice(&[0.5, 0.5]));
        assert_eq!(p.grad.data(), &[1.5, 2.5]);
        p.zero_grad();
        assert_eq!(p.grad.data(), &[0.0, 0.0]);
    }

    #[test]
    fn scalar_param() {
        let mut p = Param::new("log2_t", Tensor::scalar(1.5), ParamKind::Threshold);
        assert_eq!(p.scalar(), 1.5);
        p.accumulate_scalar(0.25);
        p.accumulate_scalar(0.25);
        assert_eq!(p.grad.item(), 0.5);
    }
}
