//! Batch normalization over channels with trainable scale/shift, moving
//! statistics, and the freeze switch the paper uses after one epoch of
//! quantized retraining (Section 5.2).

use crate::layer::{single, Layer, Mode};
use crate::param::{Param, ParamKind};
use tqt_tensor::{ops, reduce, Tensor};

/// Per-channel batch normalization for NCHW (or `[N, C]`) tensors.
///
/// Three statistics regimes:
/// * training (default): normalize by batch statistics, update moving
///   averages;
/// * frozen ([`freeze_stats`](Self::freeze_stats)): normalize by moving
///   averages even in training mode (gamma/beta still train) — the paper's
///   "freeze batch norm moving mean and variance updates post convergence";
/// * eval: always moving averages.
#[derive(Debug)]
pub struct BatchNorm {
    gamma: Param,
    beta: Param,
    running_mean: Tensor,
    running_var: Tensor,
    momentum: f32,
    eps: f32,
    stats_frozen: bool,
    cache: Option<BnCache>,
}

#[derive(Debug)]
struct BnCache {
    xhat: Tensor,
    inv_std: Tensor,
    /// Whether the forward pass used batch statistics (full BN backward)
    /// or frozen moving statistics (affine backward).
    batch_stats: bool,
}

impl BatchNorm {
    /// Creates a batch-norm layer with unit gamma, zero beta, and the given
    /// moving-average momentum (the fraction of the *old* average kept per
    /// step; typical 0.9–0.99).
    ///
    /// # Panics
    ///
    /// Panics if `momentum` is outside `[0, 1)` or `eps <= 0`.
    pub fn new(name: &str, channels: usize, momentum: f32, eps: f32) -> Self {
        assert!(
            (0.0..1.0).contains(&momentum),
            "momentum must be in [0,1), got {momentum}"
        );
        assert!(eps > 0.0, "eps must be positive");
        BatchNorm {
            gamma: Param::new(format!("{name}/gamma"), Tensor::ones([channels]), ParamKind::BatchNorm),
            beta: Param::new(format!("{name}/beta"), Tensor::zeros([channels]), ParamKind::BatchNorm),
            running_mean: Tensor::zeros([channels]),
            running_var: Tensor::ones([channels]),
            momentum,
            eps,
            stats_frozen: false,
            cache: None,
        }
    }

    /// Stops moving-statistic updates; training passes normalize by the
    /// moving averages from now on.
    pub fn freeze_stats(&mut self) {
        self.stats_frozen = true;
    }

    /// Whether moving statistics are frozen.
    pub fn stats_frozen(&self) -> bool {
        self.stats_frozen
    }

    /// The per-channel folding parameters `(scale, shift)` with
    /// `scale = gamma / sqrt(var + eps)` and `shift = beta - mean * scale`,
    /// using moving statistics — what batch-norm folding multiplies into a
    /// preceding convolution's weights and bias (Section 4.1).
    pub fn fold_params(&self) -> (Tensor, Tensor) {
        let scale = self
            .gamma
            .value
            .zip_map(&self.running_var, |g, v| g / (v + self.eps).sqrt());
        let shift = self
            .beta
            .value
            .zip_map(&self.running_mean.zip_map(&scale, |m, s| m * s), |b, ms| b - ms);
        (scale, shift)
    }

    /// Overrides the moving statistics (used by tests and by graph
    /// transforms that need deterministic statistics).
    ///
    /// # Panics
    ///
    /// Panics if the tensors do not have shape `[channels]`.
    pub fn set_running_stats(&mut self, mean: Tensor, var: Tensor) {
        assert!(mean.shape().same_as(self.running_mean.shape()), "bad mean shape");
        assert!(var.shape().same_as(self.running_var.shape()), "bad var shape");
        self.running_mean = mean;
        self.running_var = var;
    }

    /// Moving mean and variance.
    pub fn running_stats(&self) -> (&Tensor, &Tensor) {
        (&self.running_mean, &self.running_var)
    }

    /// The numerical-stability epsilon (public for the planned executor).
    pub fn eps(&self) -> f32 {
        self.eps
    }

    /// The running-stats momentum (public for the planned executor).
    pub fn momentum(&self) -> f32 {
        self.momentum
    }

    /// Applies one moving-average update
    /// `running = momentum * running + (1 - momentum) * batch` in place.
    /// Shared by the layer forward and the planned executor so both paths
    /// perform the identical per-element update sequence.
    ///
    /// # Panics
    ///
    /// Panics if `mean` or `var` does not have `channels` elements.
    pub fn update_running_stats(&mut self, mean: &[f32], var: &[f32]) {
        assert_eq!(mean.len(), self.running_mean.len(), "bad mean length");
        assert_eq!(var.len(), self.running_var.len(), "bad var length");
        let m = self.momentum;
        for (old, &new) in self.running_mean.data_mut().iter_mut().zip(mean) {
            *old = m * *old + (1.0 - m) * new;
        }
        for (old, &new) in self.running_var.data_mut().iter_mut().zip(var) {
            *old = m * *old + (1.0 - m) * new;
        }
    }

    fn normalize_with(&self, x: &Tensor, mean: &Tensor, var: &Tensor) -> (Tensor, Tensor) {
        let inv_std = var.map(|v| 1.0 / (v + self.eps).sqrt());
        let centered = ops::add_channel(x, &mean.map(|m| -m));
        let xhat = ops::mul_channel(&centered, &inv_std);
        (xhat, inv_std)
    }
}

impl Layer for BatchNorm {
    fn op_name(&self) -> &'static str {
        "batch_norm"
    }

    fn forward(&mut self, inputs: &[&Tensor], mode: Mode) -> Tensor {
        let x = single(inputs, "batch_norm");
        let use_batch_stats = mode == Mode::Train && !self.stats_frozen;
        let (xhat, inv_std) = if use_batch_stats {
            let mean = reduce::mean_over_channel(x);
            let var = reduce::var_over_channel(x, &mean);
            self.update_running_stats(mean.data(), var.data());
            self.normalize_with(x, &mean, &var)
        } else {
            let (mean, var) = (self.running_mean.clone(), self.running_var.clone());
            self.normalize_with(x, &mean, &var)
        };
        let y = ops::add_channel(&ops::mul_channel(&xhat, &self.gamma.value), &self.beta.value);
        if mode == Mode::Train {
            self.cache = Some(BnCache {
                xhat,
                inv_std,
                batch_stats: use_batch_stats,
            });
        }
        y
    }

    fn backward(&mut self, gy: &Tensor) -> Vec<Tensor> {
        let cache = self
            .cache
            .take()
            .expect("batch_norm backward without cached forward");
        let BnCache {
            xhat,
            inv_std,
            batch_stats,
        } = cache;
        // Common parameter gradients.
        self.gamma
            .accumulate(&ops::sum_over_channel(&ops::mul(gy, &xhat)));
        self.beta.accumulate(&ops::sum_over_channel(gy));

        let scale = self.gamma.value.zip_map(&inv_std, |g, s| g * s);
        if !batch_stats {
            // Frozen statistics: the op is a per-channel affine map.
            return vec![ops::mul_channel(gy, &scale)];
        }
        // Full batch-norm backward:
        // dx = scale * (gy - mean(gy) - xhat * mean(gy * xhat)) per channel.
        let count = (gy.len() / gy.dim(1)) as f32;
        let mean_gy = ops::sum_over_channel(gy).map(|v| v / count);
        let mean_gy_xhat = ops::sum_over_channel(&ops::mul(gy, &xhat)).map(|v| v / count);
        let centered = ops::add_channel(gy, &mean_gy.map(|m| -m));
        let correction = ops::mul_channel(&xhat, &mean_gy_xhat);
        let dx = ops::mul_channel(&ops::sub(&centered, &correction), &scale);
        vec![dx]
    }

    fn params(&self) -> Vec<&Param> {
        vec![&self.gamma, &self.beta]
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.gamma, &mut self.beta]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tqt_tensor::init;

    #[test]
    fn normalizes_batch_to_zero_mean_unit_var() {
        let mut bn = BatchNorm::new("bn", 2, 0.9, 1e-5);
        let mut rng = init::rng(20);
        let x = init::normal([8, 2, 4, 4], 3.0, 2.0, &mut rng);
        let y = bn.forward(&[&x], Mode::Train);
        let m = reduce::mean_over_channel(&y);
        let v = reduce::var_over_channel(&y, &m);
        for c in 0..2 {
            assert!(m.data()[c].abs() < 1e-4, "mean {}", m.data()[c]);
            assert!((v.data()[c] - 1.0).abs() < 1e-3, "var {}", v.data()[c]);
        }
    }

    #[test]
    fn eval_uses_running_stats() {
        let mut bn = BatchNorm::new("bn", 1, 0.9, 1e-5);
        bn.set_running_stats(Tensor::from_slice(&[2.0]), Tensor::from_slice(&[4.0]));
        let x = Tensor::from_vec([1, 1, 1, 2], vec![2.0, 4.0]);
        let y = bn.forward(&[&x], Mode::Eval);
        // (2-2)/2 = 0 ; (4-2)/2 = 1
        assert!((y.data()[0]).abs() < 1e-3);
        assert!((y.data()[1] - 1.0).abs() < 1e-3);
    }

    #[test]
    fn frozen_stats_stop_updating() {
        let mut bn = BatchNorm::new("bn", 1, 0.5, 1e-5);
        bn.freeze_stats();
        let before = bn.running_stats().0.clone();
        let x = Tensor::from_vec([2, 1, 1, 1], vec![10.0, 20.0]);
        bn.forward(&[&x], Mode::Train);
        assert_eq!(bn.running_stats().0, &before);
    }

    #[test]
    fn running_stats_converge_to_distribution() {
        let mut bn = BatchNorm::new("bn", 1, 0.8, 1e-5);
        let mut rng = init::rng(21);
        for _ in 0..200 {
            let x = init::normal([16, 1, 2, 2], 5.0, 3.0, &mut rng);
            bn.forward(&[&x], Mode::Train);
        }
        let (m, v) = bn.running_stats();
        assert!((m.data()[0] - 5.0).abs() < 0.3, "mean {}", m.data()[0]);
        assert!((v.data()[0] - 9.0).abs() < 1.5, "var {}", v.data()[0]);
    }

    #[test]
    fn gradcheck_frozen_stats() {
        let mut rng = init::rng(22);
        let mut bn = BatchNorm::new("bn", 3, 0.9, 1e-5);
        bn.params_mut()[0].value = init::uniform([3], 0.5, 1.5, &mut rng);
        bn.params_mut()[1].value = init::uniform([3], -0.5, 0.5, &mut rng);
        bn.set_running_stats(
            init::uniform([3], -0.5, 0.5, &mut rng),
            init::uniform([3], 0.5, 2.0, &mut rng),
        );
        // Freeze statistics so training and eval forwards coincide (the
        // affine path); the gradcheck utility probes through Eval.
        bn.freeze_stats();
        let x = init::normal([4, 3, 2, 2], 0.0, 1.0, &mut rng);
        crate::testutil::gradcheck_layer(&mut bn, &[x], 1e-2, 3e-2);
    }

    #[test]
    fn gradcheck_batch_stats_manual() {
        // Finite-difference the batch-statistics path directly (the
        // generic utility probes through Eval, which uses different
        // statistics).
        let mut rng = init::rng(24);
        let mut bn = BatchNorm::new("bn", 2, 0.9, 1e-5);
        bn.params_mut()[0].value = init::uniform([2], 0.5, 1.5, &mut rng);
        bn.params_mut()[1].value = init::uniform([2], -0.5, 0.5, &mut rng);
        let x = init::normal([3, 2, 2, 2], 0.5, 1.3, &mut rng);
        let y = bn.forward(&[&x], Mode::Train);
        let gy = y.clone(); // L = 0.5 sum y^2
        let dx = bn.backward(&gy).remove(0);
        let loss = |bn: &mut BatchNorm, x: &Tensor| -> f64 {
            let y = bn.forward(&[x], Mode::Train);
            y.data().iter().map(|&v| 0.5 * (v as f64) * (v as f64)).sum()
        };
        let eps = 1e-2f32;
        for &i in &[0usize, 5, 11, 17, 23] {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let fd = ((loss(&mut bn, &xp) - loss(&mut bn, &xm)) / (2.0 * eps as f64)) as f32;
            assert!(
                (fd - dx.data()[i]).abs() < 3e-2 * (1.0 + fd.abs()),
                "batch-stats input grad mismatch at {i}: fd={fd} analytic={}",
                dx.data()[i]
            );
        }
    }

    #[test]
    fn batch_backward_zero_sum_identity() {
        // With batch statistics, the per-channel input gradient must have
        // zero mean and be orthogonal to xhat (both follow from the
        // projection structure of the BN backward).
        let mut rng = init::rng(23);
        let mut bn = BatchNorm::new("bn", 2, 0.9, 1e-5);
        let x = init::normal([4, 2, 3, 3], 1.0, 2.0, &mut rng);
        let y = bn.forward(&[&x], Mode::Train);
        let gy = init::normal(y.shape().clone(), 0.0, 1.0, &mut rng);
        let dx = bn.backward(&gy).remove(0);
        let sums = ops::sum_over_channel(&dx);
        for c in 0..2 {
            assert!(sums.data()[c].abs() < 1e-3, "channel {c} sum {}", sums.data()[c]);
        }
    }

    #[test]
    fn fold_params_linearize_the_op() {
        let mut bn = BatchNorm::new("bn", 1, 0.9, 1e-5);
        bn.set_running_stats(Tensor::from_slice(&[1.5]), Tensor::from_slice(&[0.25]));
        bn.params_mut()[0].value = Tensor::from_slice(&[2.0]); // gamma
        bn.params_mut()[1].value = Tensor::from_slice(&[0.5]); // beta
        let (scale, shift) = bn.fold_params();
        let x = Tensor::from_vec([1, 1, 1, 3], vec![0.0, 1.5, 3.0]);
        let y = bn.forward(&[&x], Mode::Eval);
        let folded = x.map(|v| v * scale.data()[0] + shift.data()[0]);
        y.assert_close(&folded, 1e-4);
    }
}
