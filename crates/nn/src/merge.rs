//! Multi-input merge layers: elementwise add (ResNet shortcuts) and
//! channel concatenation (Inception branches). Both have dedicated
//! quantization topologies in the paper's Section 4.3: eltwise-add merges
//! its input scales, and concat is lossless because input scales are
//! merged explicitly.

use crate::layer::{pair, Layer, Mode};
use tqt_tensor::{ops, Tensor};

/// Elementwise addition of two same-shaped tensors.
#[derive(Debug, Clone, Default)]
pub struct EltwiseAdd {
    seen_forward: bool,
}

impl EltwiseAdd {
    /// Creates an eltwise-add layer.
    pub fn new() -> Self {
        EltwiseAdd {
            seen_forward: false,
        }
    }
}

impl Layer for EltwiseAdd {
    fn op_name(&self) -> &'static str {
        "eltwise_add"
    }

    fn forward(&mut self, inputs: &[&Tensor], mode: Mode) -> Tensor {
        let (a, b) = pair(inputs, "eltwise_add");
        if mode == Mode::Train {
            self.seen_forward = true;
        }
        ops::add(a, b)
    }

    fn backward(&mut self, gy: &Tensor) -> Vec<Tensor> {
        assert!(
            self.seen_forward,
            "eltwise_add backward without cached forward"
        );
        self.seen_forward = false;
        vec![gy.clone(), gy.clone()]
    }
}

/// Concatenation along the channel dimension (dim 1) of NCHW or `[N, C]`
/// tensors.
#[derive(Debug, Clone, Default)]
pub struct Concat {
    cached_channels: Option<Vec<usize>>,
}

impl Concat {
    /// Creates a concat layer.
    pub fn new() -> Self {
        Concat {
            cached_channels: None,
        }
    }
}

impl Layer for Concat {
    fn op_name(&self) -> &'static str {
        "concat"
    }

    fn forward(&mut self, inputs: &[&Tensor], mode: Mode) -> Tensor {
        assert!(inputs.len() >= 2, "concat needs at least 2 inputs");
        let first = inputs[0];
        assert!(
            first.ndim() == 2 || first.ndim() == 4,
            "concat supports [N,C] or NCHW tensors"
        );
        let n = first.dim(0);
        let spatial: Vec<usize> = first.dims()[2..].to_vec();
        let mut channels = Vec::with_capacity(inputs.len());
        for t in inputs {
            assert_eq!(t.dim(0), n, "concat batch mismatch");
            assert_eq!(&t.dims()[2..], &spatial[..], "concat spatial mismatch");
            channels.push(t.dim(1));
        }
        let c_out: usize = channels.iter().sum();
        let spatial_len: usize = spatial.iter().product::<usize>().max(1);
        let mut dims = vec![n, c_out];
        dims.extend(&spatial);
        let mut out = Tensor::zeros(dims);
        let od = out.data_mut();
        for ni in 0..n {
            let mut c_off = 0usize;
            for t in inputs {
                let c = t.dim(1);
                let src = &t.data()[ni * c * spatial_len..(ni + 1) * c * spatial_len];
                let dst_base = (ni * c_out + c_off) * spatial_len;
                od[dst_base..dst_base + c * spatial_len].copy_from_slice(src);
                c_off += c;
            }
        }
        if mode == Mode::Train {
            self.cached_channels = Some(channels);
        }
        out
    }

    fn backward(&mut self, gy: &Tensor) -> Vec<Tensor> {
        let channels = self
            .cached_channels
            .take()
            .expect("concat backward without cached forward");
        let n = gy.dim(0);
        let c_out = gy.dim(1);
        let spatial: Vec<usize> = gy.dims()[2..].to_vec();
        let spatial_len: usize = spatial.iter().product::<usize>().max(1);
        let mut grads = Vec::with_capacity(channels.len());
        let mut c_off = 0usize;
        for &c in &channels {
            let mut dims = vec![n, c];
            dims.extend(&spatial);
            let mut g = Tensor::zeros(dims);
            let gd = g.data_mut();
            for ni in 0..n {
                let src_base = (ni * c_out + c_off) * spatial_len;
                let dst_base = ni * c * spatial_len;
                gd[dst_base..dst_base + c * spatial_len]
                    .copy_from_slice(&gy.data()[src_base..src_base + c * spatial_len]);
            }
            grads.push(g);
            c_off += c;
        }
        grads
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_forward_backward() {
        let mut l = EltwiseAdd::new();
        let a = Tensor::from_slice(&[1.0, 2.0]);
        let b = Tensor::from_slice(&[10.0, 20.0]);
        let y = l.forward(&[&a, &b], Mode::Train);
        assert_eq!(y.data(), &[11.0, 22.0]);
        let gs = l.backward(&Tensor::from_slice(&[1.0, -1.0]));
        assert_eq!(gs.len(), 2);
        assert_eq!(gs[0].data(), &[1.0, -1.0]);
        assert_eq!(gs[1].data(), &[1.0, -1.0]);
    }

    #[test]
    fn concat_4d_roundtrip() {
        let mut l = Concat::new();
        let a = Tensor::from_vec([1, 1, 1, 2], vec![1., 2.]);
        let b = Tensor::from_vec([1, 2, 1, 2], vec![3., 4., 5., 6.]);
        let y = l.forward(&[&a, &b], Mode::Train);
        assert_eq!(y.dims(), &[1, 3, 1, 2]);
        assert_eq!(y.data(), &[1., 2., 3., 4., 5., 6.]);
        let gs = l.backward(&y);
        assert_eq!(gs[0].data(), a.data());
        assert_eq!(gs[1].data(), b.data());
    }

    #[test]
    fn concat_2d() {
        let mut l = Concat::new();
        let a = Tensor::from_vec([2, 1], vec![1., 2.]);
        let b = Tensor::from_vec([2, 2], vec![3., 4., 5., 6.]);
        let y = l.forward(&[&a, &b], Mode::Eval);
        assert_eq!(y.dims(), &[2, 3]);
        assert_eq!(y.data(), &[1., 3., 4., 2., 5., 6.]);
    }

    #[test]
    fn concat_batched_interleaves_correctly() {
        let mut l = Concat::new();
        let a = Tensor::from_vec([2, 1, 1, 1], vec![1., 2.]);
        let b = Tensor::from_vec([2, 1, 1, 1], vec![10., 20.]);
        let y = l.forward(&[&a, &b], Mode::Eval);
        assert_eq!(y.data(), &[1., 10., 2., 20.]);
    }

    #[test]
    #[should_panic(expected = "spatial mismatch")]
    fn concat_checks_spatial() {
        let mut l = Concat::new();
        let a = Tensor::zeros([1, 1, 2, 2]);
        let b = Tensor::zeros([1, 1, 3, 3]);
        l.forward(&[&a, &b], Mode::Eval);
    }
}
