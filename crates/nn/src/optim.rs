//! Optimizers over [`Param`] collections: SGD, Adam and RMSProp, with the
//! parameter-group routing the paper's training scheme needs (weights at
//! lr 1e-6 with one decay schedule, thresholds at lr 1e-2 with another).

use crate::param::{Param, ParamKind};
use tqt_tensor::Tensor;

/// A gradient-descent update rule over a fixed set of parameters.
///
/// State is keyed by parameter *name*, so the same optimizer instance can
/// be fed the parameter list in any order (and subsets can be frozen out)
/// without corrupting moments.
pub trait Optimizer: std::fmt::Debug {
    /// Applies one update step to each trainable parameter using its
    /// accumulated gradient, then leaves the gradient untouched (callers
    /// zero gradients at the start of each step).
    fn step(&mut self, params: &mut [&mut Param]);

    /// Sets the learning rate (for schedules).
    fn set_lr(&mut self, lr: f32);

    /// The current learning rate.
    fn lr(&self) -> f32;
}

/// Plain stochastic gradient descent with optional momentum.
#[derive(Debug)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: std::collections::HashMap<String, Tensor>,
}

impl Sgd {
    /// Creates an SGD optimizer.
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0` or `momentum` is outside `[0, 1)`.
    pub fn new(lr: f32, momentum: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0,1)");
        Sgd {
            lr,
            momentum,
            velocity: std::collections::HashMap::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [&mut Param]) {
        for p in params.iter_mut().filter(|p| p.trainable) {
            if self.momentum == 0.0 { // tqt:allow(float-eq): exact sentinel for plain SGD
                let lr = self.lr;
                for (v, &g) in p.value.data_mut().iter_mut().zip(p.grad.data()) {
                    *v -= lr * g;
                }
            } else {
                let vel = self
                    .velocity
                    .entry(p.name.clone())
                    .or_insert_with(|| Tensor::zeros(p.value.shape().clone()));
                for ((v, vel), &g) in p
                    .value
                    .data_mut()
                    .iter_mut()
                    .zip(vel.data_mut())
                    .zip(p.grad.data())
                {
                    *vel = self.momentum * *vel + g;
                    *v -= self.lr * *vel;
                }
            }
        }
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    fn lr(&self) -> f32 {
        self.lr
    }
}

#[derive(Debug)]
struct AdamSlot {
    m: Tensor,
    v: Tensor,
    t: u64,
}

/// Adam (Kingma & Ba, 2014) with bias correction — the optimizer the paper
/// uses for both weights and thresholds, with β1 = 0.9, β2 = 0.999 chosen
/// per the Appendix C convergence analysis.
#[derive(Debug)]
pub struct Adam {
    lr: f32,
    beta1: f64,
    beta2: f64,
    eps: f64,
    slots: std::collections::HashMap<String, AdamSlot>,
}

impl Adam {
    /// Creates an Adam optimizer.
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0` or a β is outside `[0, 1)`.
    pub fn new(lr: f32, beta1: f64, beta2: f64) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&beta1), "beta1 must be in [0,1)");
        assert!((0.0..1.0).contains(&beta2), "beta2 must be in [0,1)");
        Adam {
            lr,
            beta1,
            beta2,
            eps: 1e-8,
            slots: std::collections::HashMap::new(),
        }
    }

    /// The paper's settings: β1 = 0.9, β2 = 0.999.
    pub fn paper(lr: f32) -> Self {
        Adam::new(lr, 0.9, 0.999)
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [&mut Param]) {
        for p in params.iter_mut().filter(|p| p.trainable) {
            let slot = self.slots.entry(p.name.clone()).or_insert_with(|| AdamSlot {
                m: Tensor::zeros(p.value.shape().clone()),
                v: Tensor::zeros(p.value.shape().clone()),
                t: 0,
            });
            slot.t += 1;
            let bc1 = 1.0 - self.beta1.powi(slot.t as i32);
            let bc2 = 1.0 - self.beta2.powi(slot.t as i32);
            let lr = self.lr as f64;
            for (((v, m), vv), &g) in p
                .value
                .data_mut()
                .iter_mut()
                .zip(slot.m.data_mut())
                .zip(slot.v.data_mut())
                .zip(p.grad.data())
            {
                let g = g as f64;
                let m64 = self.beta1 * *m as f64 + (1.0 - self.beta1) * g;
                let v64 = self.beta2 * *vv as f64 + (1.0 - self.beta2) * g * g;
                *m = m64 as f32;
                *vv = v64 as f32;
                let update = lr * (m64 / bc1) / ((v64 / bc2).sqrt() + self.eps);
                *v -= update as f32;
            }
        }
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    fn lr(&self) -> f32 {
        self.lr
    }
}

/// RMSProp (Hinton et al., 2012), included for the Appendix B discussion of
/// adaptive optimizers as implicit gradient normalizers.
#[derive(Debug)]
pub struct RmsProp {
    lr: f32,
    decay: f64,
    eps: f64,
    ms: std::collections::HashMap<String, Tensor>,
}

impl RmsProp {
    /// Creates an RMSProp optimizer.
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0` or `decay` is outside `[0, 1)`.
    pub fn new(lr: f32, decay: f64) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&decay), "decay must be in [0,1)");
        RmsProp {
            lr,
            decay,
            eps: 1e-8,
            ms: std::collections::HashMap::new(),
        }
    }
}

impl Optimizer for RmsProp {
    fn step(&mut self, params: &mut [&mut Param]) {
        for p in params.iter_mut().filter(|p| p.trainable) {
            let ms = self
                .ms
                .entry(p.name.clone())
                .or_insert_with(|| Tensor::zeros(p.value.shape().clone()));
            for ((v, s), &g) in p
                .value
                .data_mut()
                .iter_mut()
                .zip(ms.data_mut())
                .zip(p.grad.data())
            {
                let g = g as f64;
                let s64 = self.decay * *s as f64 + (1.0 - self.decay) * g * g;
                *s = s64 as f32;
                *v -= (self.lr as f64 * g / (s64.sqrt() + self.eps)) as f32;
            }
        }
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    fn lr(&self) -> f32 {
        self.lr
    }
}

/// Filters a parameter list down to the given kinds (for the paper's
/// weight/threshold optimizer groups).
pub fn filter_kinds<'a, 'b>(
    params: &'b mut Vec<&'a mut Param>,
    kinds: &[ParamKind],
) -> Vec<&'b mut &'a mut Param> {
    params
        .iter_mut()
        .filter(|p| kinds.contains(&p.kind))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::ParamKind;

    fn quad_param(v: f32) -> Param {
        Param::new("x", Tensor::scalar(v), ParamKind::Weight)
    }

    /// Minimize f(x) = x^2 (gradient 2x) and check convergence.
    fn minimize(opt: &mut dyn Optimizer, steps: usize, x0: f32) -> f32 {
        let mut p = quad_param(x0);
        for _ in 0..steps {
            p.zero_grad();
            let g = 2.0 * p.value.item();
            p.accumulate_scalar(g);
            opt.step(&mut [&mut p]);
        }
        p.value.item()
    }

    #[test]
    fn sgd_minimizes_quadratic() {
        let mut opt = Sgd::new(0.1, 0.0);
        assert!(minimize(&mut opt, 100, 3.0).abs() < 1e-4);
    }

    #[test]
    fn sgd_momentum_minimizes_quadratic() {
        let mut opt = Sgd::new(0.05, 0.9);
        assert!(minimize(&mut opt, 300, 3.0).abs() < 1e-3);
    }

    #[test]
    fn adam_minimizes_quadratic() {
        let mut opt = Adam::paper(0.1);
        assert!(minimize(&mut opt, 300, 3.0).abs() < 1e-2);
    }

    #[test]
    fn rmsprop_minimizes_quadratic() {
        let mut opt = RmsProp::new(0.05, 0.9);
        assert!(minimize(&mut opt, 400, 3.0).abs() < 0.05);
    }

    #[test]
    fn frozen_params_not_updated() {
        let mut p = quad_param(2.0);
        p.trainable = false;
        p.accumulate_scalar(10.0);
        let mut opt = Sgd::new(0.1, 0.0);
        opt.step(&mut [&mut p]);
        assert_eq!(p.value.item(), 2.0);
    }

    #[test]
    fn adam_first_step_equals_lr() {
        let mut p = quad_param(0.0);
        p.accumulate_scalar(100.0);
        let mut opt = Adam::paper(0.01);
        opt.step(&mut [&mut p]);
        assert!((p.value.item() + 0.01).abs() < 1e-6);
    }

    #[test]
    fn adam_state_keyed_by_name_survives_reordering() {
        let mut a = Param::new("a", Tensor::scalar(1.0), ParamKind::Weight);
        let mut b = Param::new("b", Tensor::scalar(1.0), ParamKind::Weight);
        let mut opt = Adam::paper(0.1);
        a.accumulate_scalar(1.0);
        b.accumulate_scalar(-1.0);
        opt.step(&mut [&mut a, &mut b]);
        a.zero_grad();
        b.zero_grad();
        a.accumulate_scalar(1.0);
        b.accumulate_scalar(-1.0);
        // Reordered second step: moments must follow the names.
        opt.step(&mut [&mut b, &mut a]);
        assert!(a.value.item() < 1.0);
        assert!(b.value.item() > 1.0);
        assert!((a.value.item() - 1.0).abs() - (b.value.item() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn filter_kinds_selects_groups() {
        let mut a = Param::new("w", Tensor::scalar(0.0), ParamKind::Weight);
        let mut b = Param::new("t", Tensor::scalar(0.0), ParamKind::Threshold);
        let mut all: Vec<&mut Param> = vec![&mut a, &mut b];
        let thr = filter_kinds(&mut all, &[ParamKind::Threshold]);
        assert_eq!(thr.len(), 1);
        assert_eq!(thr[0].name, "t");
    }
}
