//! Contiguous parameter/gradient arena and the pooled Adam update.
//!
//! The per-`Param` optimizer path ([`crate::optim::Adam`]) walks a
//! HashMap of per-tensor moment slots and updates each parameter in its
//! own serial loop. At training-step frequency that costs a map lookup,
//! two tensor allocations (first step) and a cache-cold walk per
//! parameter. The arena instead lays every parameter out back-to-back in
//! one `Vec<f32>` (values and gradients as twin buffers), and
//! [`PooledAdam`] keeps its first/second moments as twin buffers of the
//! same layout — one fused pass updates values, moments and gradients
//! reads in lockstep over contiguous memory, fanned out over the worker
//! pool in fixed [`ELEM_BLOCK`]-sized chunks.
//!
//! **Bit-identity contract:** the per-element update is exactly the
//! scalar sequence of [`crate::optim::Adam::step`] — same f64
//! intermediate math, same f32 stores — and elements are independent, so
//! the fused pass is bit-identical to the per-parameter reference at any
//! thread count. Per-segment step counters replicate the lazy per-name
//! slot behavior: a segment's `t` advances only on steps where it is
//! trainable and selected, so freezing a threshold stops its bias
//! correction exactly like dropping it from the legacy parameter list.
//! `crates/nn/tests/pooled_adam.rs` proves both properties.

use crate::param::{Param, ParamKind};
use tqt_rt::pool;

/// Fixed block size for the pooled update's parallel loops; constant so
/// the partition is thread-count independent (each element is touched by
/// exactly one closure invocation regardless — the constant only fixes
/// the scheduling grain).
const ELEM_BLOCK: usize = 4096;

/// One parameter's slice of the arena.
#[derive(Debug, Clone)]
pub struct Segment {
    /// The parameter's unique name (state-dict key).
    pub name: String,
    /// Parameter group (weight / bias / batch-norm / threshold).
    pub kind: ParamKind,
    /// Start offset into the arena buffers.
    pub offset: usize,
    /// Element count.
    pub len: usize,
    /// Whether the pooled optimizer may update this segment (refreshed
    /// from the graph each step so threshold freezing takes effect).
    pub trainable: bool,
}

impl Segment {
    /// The segment's index range into the arena buffers.
    pub fn range(&self) -> std::ops::Range<usize> {
        self.offset..self.offset + self.len
    }
}

/// Values and gradients for a fixed parameter set, each contiguous.
#[derive(Debug)]
pub struct ParamArena {
    vals: Vec<f32>,
    grads: Vec<f32>,
    segments: Vec<Segment>,
}

impl ParamArena {
    /// Builds an arena with one segment per parameter, in the given
    /// order, copying the current values in and zeroing all gradients.
    pub fn from_params(params: &[&Param]) -> Self {
        let total: usize = params.iter().map(|p| p.value.len()).sum();
        let mut vals = Vec::with_capacity(total);
        let mut segments = Vec::with_capacity(params.len());
        for p in params {
            segments.push(Segment {
                name: p.name.clone(),
                kind: p.kind,
                offset: vals.len(),
                len: p.value.len(),
                trainable: p.trainable,
            });
            vals.extend_from_slice(p.value.data());
        }
        ParamArena {
            grads: vec![0.0; vals.len()],
            vals,
            segments,
        }
    }

    /// The segment table, in construction order.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Total element count across all segments.
    pub fn len(&self) -> usize {
        self.vals.len()
    }

    /// Whether the arena holds no parameters.
    pub fn is_empty(&self) -> bool {
        self.vals.is_empty()
    }

    /// Segment `i`'s values.
    pub fn val(&self, i: usize) -> &[f32] {
        &self.vals[self.segments[i].range()]
    }

    /// Segment `i`'s values, mutably.
    pub fn val_mut(&mut self, i: usize) -> &mut [f32] {
        let r = self.segments[i].range();
        &mut self.vals[r]
    }

    /// Segment `i`'s gradient.
    pub fn grad(&self, i: usize) -> &[f32] {
        &self.grads[self.segments[i].range()]
    }

    /// Segment `i`'s gradient, mutably.
    pub fn grad_mut(&mut self, i: usize) -> &mut [f32] {
        let r = self.segments[i].range();
        &mut self.grads[r]
    }

    /// Segment `i`'s values and gradient, mutably, at once (they live in
    /// distinct buffers, so the borrows are disjoint).
    pub fn val_grad_mut(&mut self, i: usize) -> (&mut [f32], &mut [f32]) {
        let r = self.segments[i].range();
        (&mut self.vals[r.clone()], &mut self.grads[r])
    }

    /// Updates a segment's trainable flag (threshold freezing).
    pub fn set_trainable(&mut self, i: usize, trainable: bool) {
        self.segments[i].trainable = trainable;
    }

    /// Zeroes every gradient.
    pub fn zero_grads(&mut self) {
        self.grads.fill(0.0);
    }
}

/// Adam over a [`ParamArena`]: moments stored as twin arena-layout
/// buffers, updates fused into one pooled pass per segment. See the
/// module docs for the bit-identity contract with
/// [`crate::optim::Adam`].
#[derive(Debug)]
pub struct PooledAdam {
    lr: f32,
    beta1: f64,
    beta2: f64,
    eps: f64,
    m: Vec<f32>,
    v: Vec<f32>,
    t: Vec<u64>,
}

impl PooledAdam {
    /// Creates a pooled Adam for `arena`'s layout.
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0` or a β is outside `[0, 1)`.
    pub fn new(lr: f32, beta1: f64, beta2: f64, arena: &ParamArena) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&beta1), "beta1 must be in [0,1)");
        assert!((0.0..1.0).contains(&beta2), "beta2 must be in [0,1)");
        PooledAdam {
            lr,
            beta1,
            beta2,
            eps: 1e-8,
            m: vec![0.0; arena.len()],
            v: vec![0.0; arena.len()],
            t: vec![0; arena.segments().len()],
        }
    }

    /// The paper's settings: β1 = 0.9, β2 = 0.999.
    pub fn paper(lr: f32, arena: &ParamArena) -> Self {
        PooledAdam::new(lr, 0.9, 0.999, arena)
    }

    /// Sets the learning rate (for schedules).
    pub fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    /// The current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// One Adam step over every trainable segment whose kind is in
    /// `kinds` (the paper's weight/threshold optimizer groups). Skipped
    /// segments keep their step counters, exactly like parameters absent
    /// from a legacy optimizer call.
    pub fn step(&mut self, arena: &mut ParamArena, kinds: &[ParamKind]) {
        let (beta1, beta2, eps) = (self.beta1, self.beta2, self.eps);
        let lr = self.lr as f64;
        for (i, seg) in arena.segments.iter().enumerate() {
            if !seg.trainable || !kinds.contains(&seg.kind) {
                continue;
            }
            self.t[i] += 1;
            let bc1 = 1.0 - beta1.powi(self.t[i] as i32);
            let bc2 = 1.0 - beta2.powi(self.t[i] as i32);
            let r = seg.range();
            pool::par_chunks_mut4(
                &mut arena.vals[r.clone()],
                &mut arena.grads[r.clone()],
                &mut self.m[r.clone()],
                &mut self.v[r],
                ELEM_BLOCK,
                |_, vals, grads, ms, vs| {
                    for (((val, &g), m), vv) in vals
                        .iter_mut()
                        .zip(grads.iter())
                        .zip(ms.iter_mut())
                        .zip(vs.iter_mut())
                    {
                        // Exactly the legacy Adam per-element sequence.
                        let g = g as f64;
                        let m64 = beta1 * *m as f64 + (1.0 - beta1) * g;
                        let v64 = beta2 * *vv as f64 + (1.0 - beta2) * g * g;
                        *m = m64 as f32;
                        *vv = v64 as f32;
                        let update = lr * (m64 / bc1) / ((v64 / bc2).sqrt() + eps);
                        *val -= update as f32;
                    }
                },
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tqt_tensor::Tensor;

    #[test]
    fn layout_is_contiguous_in_order() {
        let a = Param::new("a", Tensor::zeros([3]), ParamKind::Weight);
        let b = Param::new("b", Tensor::scalar(1.0), ParamKind::Threshold);
        let arena = ParamArena::from_params(&[&a, &b]);
        assert_eq!(arena.len(), 4);
        assert_eq!(arena.segments()[0].range(), 0..3);
        assert_eq!(arena.segments()[1].range(), 3..4);
        assert_eq!(arena.val(1), &[1.0]);
    }

    #[test]
    fn first_step_moves_by_lr() {
        // Same invariant as the legacy adam_first_step_equals_lr test.
        let p = Param::new("x", Tensor::scalar(0.0), ParamKind::Weight);
        let mut arena = ParamArena::from_params(&[&p]);
        arena.grad_mut(0)[0] = 100.0;
        let mut opt = PooledAdam::paper(0.01, &arena);
        opt.step(&mut arena, &[ParamKind::Weight]);
        assert!((arena.val(0)[0] + 0.01).abs() < 1e-6);
    }

    #[test]
    fn kind_filter_and_freeze_skip_segments() {
        let w = Param::new("w", Tensor::scalar(0.0), ParamKind::Weight);
        let t = Param::new("t", Tensor::scalar(0.0), ParamKind::Threshold);
        let mut arena = ParamArena::from_params(&[&w, &t]);
        arena.grad_mut(0)[0] = 1.0;
        arena.grad_mut(1)[0] = 1.0;
        let mut opt = PooledAdam::paper(0.1, &arena);
        opt.step(&mut arena, &[ParamKind::Weight]);
        assert!(arena.val(0)[0] != 0.0);
        assert_eq!(arena.val(1)[0], 0.0, "threshold excluded by kind filter");
        arena.set_trainable(0, false);
        let before = arena.val(0)[0];
        opt.step(&mut arena, &[ParamKind::Weight]);
        assert_eq!(arena.val(0)[0], before, "frozen segment untouched");
        assert_eq!(opt.t[0], 1, "frozen segment's step counter stalls");
    }
}
