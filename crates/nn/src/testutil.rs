//! Finite-difference gradient checking for layers (test support, also used
//! by downstream crates' tests).

use crate::layer::{Layer, Mode};
use tqt_tensor::Tensor;

/// Loss used for gradient checks: `L = 0.5 Σ y²`, whose upstream gradient
/// is `y` itself.
fn loss_of(y: &Tensor) -> f64 {
    y.data().iter().map(|&v| 0.5 * (v as f64) * (v as f64)).sum()
}

fn forward_loss(layer: &mut dyn Layer, inputs: &[Tensor]) -> f64 {
    let refs: Vec<&Tensor> = inputs.iter().collect();
    loss_of(&layer.forward(&refs, Mode::Eval))
}

/// Finite-difference checks a layer's input and parameter gradients under
/// the `0.5 Σ y²` loss, sampling a handful of coordinates of each tensor.
///
/// # Panics
///
/// Panics (failing the test) when any sampled analytic gradient differs
/// from the central difference by more than `tol`.
pub fn gradcheck_layer(layer: &mut dyn Layer, inputs: &[Tensor], eps: f32, tol: f32) {
    // Analytic pass.
    let refs: Vec<&Tensor> = inputs.iter().collect();
    let y = layer.forward(&refs, Mode::Train);
    let gy = y.clone();
    for p in layer.params_mut() {
        p.zero_grad();
    }
    let input_grads = layer.backward(&gy);
    assert_eq!(
        input_grads.len(),
        inputs.len(),
        "backward must return one gradient per input"
    );

    // Check input gradients.
    for (ii, x) in inputs.iter().enumerate() {
        let samples = sample_indices(x.len());
        for &i in &samples {
            let mut plus = inputs.to_vec();
            plus[ii].data_mut()[i] += eps;
            let mut minus = inputs.to_vec();
            minus[ii].data_mut()[i] -= eps;
            let fd = ((forward_loss(layer, &plus) - forward_loss(layer, &minus))
                / (2.0 * eps as f64)) as f32;
            let analytic = input_grads[ii].data()[i];
            assert!(
                (fd - analytic).abs() <= tol * (1.0 + fd.abs()),
                "input {ii} grad mismatch at {i}: fd={fd} analytic={analytic}"
            );
        }
    }

    // Check parameter gradients. We perturb through params_mut on each
    // probe, restoring afterwards.
    let n_params = layer.params().len();
    for pi in 0..n_params {
        let (len, grads): (usize, Vec<f32>) = {
            let p = layer.params()[pi];
            (p.value.len(), p.grad.data().to_vec())
        };
        for &i in &sample_indices(len) {
            let orig = layer.params_mut()[pi].value.data()[i];
            layer.params_mut()[pi].value.data_mut()[i] = orig + eps;
            let lp = forward_loss(layer, inputs);
            layer.params_mut()[pi].value.data_mut()[i] = orig - eps;
            let lm = forward_loss(layer, inputs);
            layer.params_mut()[pi].value.data_mut()[i] = orig;
            let fd = ((lp - lm) / (2.0 * eps as f64)) as f32;
            let analytic = grads[i];
            assert!(
                (fd - analytic).abs() <= tol * (1.0 + fd.abs()),
                "param {pi} grad mismatch at {i}: fd={fd} analytic={analytic}"
            );
        }
    }
}

/// Deterministic spread of up to 8 probe indices over a tensor.
fn sample_indices(len: usize) -> Vec<usize> {
    if len == 0 {
        return Vec::new();
    }
    let n = len.min(8);
    (0..n).map(|k| k * (len - 1) / n.max(1)).collect()
}
