//! The [`Layer`] trait: stateful forward/backward building blocks that the
//! graph executor composes into networks.

use crate::param::Param;
use tqt_tensor::Tensor;

/// Whether a forward pass is a training step (batch statistics, cached
/// activations for backward) or inference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Training: layers cache activations for backward and batch-norm uses
    /// batch statistics (unless frozen).
    Train,
    /// Inference: no caching, batch-norm uses moving statistics.
    Eval,
}

/// A neural-network operation with explicit, hand-derived backward pass.
///
/// A layer may take several inputs (eltwise-add, concat) and produces one
/// output. During a `Mode::Train` forward pass it caches whatever it needs;
/// `backward` consumes that cache, *accumulates* parameter gradients into
/// its [`Param`]s, and returns the gradients with respect to each input in
/// order.
pub trait Layer: std::fmt::Debug + Send {
    /// Human-readable operation name (e.g. `"conv2d"`).
    fn op_name(&self) -> &'static str;

    /// Runs the layer on `inputs`, caching state for backward when
    /// `mode == Mode::Train`.
    ///
    /// # Panics
    ///
    /// Implementations panic if the number or shapes of inputs are invalid
    /// for the layer.
    fn forward(&mut self, inputs: &[&Tensor], mode: Mode) -> Tensor;

    /// Backpropagates `gy` through the cached forward pass, returning one
    /// gradient per input.
    ///
    /// # Panics
    ///
    /// Implementations panic if no training-mode forward pass preceded this
    /// call or if `gy` has the wrong shape.
    fn backward(&mut self, gy: &Tensor) -> Vec<Tensor>;

    /// This layer's trainable parameters (empty for stateless layers).
    fn params(&self) -> Vec<&Param> {
        Vec::new()
    }

    /// Mutable access to this layer's trainable parameters.
    fn params_mut(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }
}

/// Helper for single-input layers: unwraps the input slice.
///
/// # Panics
///
/// Panics if `inputs` does not contain exactly one tensor.
pub fn single<'a>(inputs: &[&'a Tensor], op: &str) -> &'a Tensor {
    assert_eq!(
        inputs.len(),
        1,
        "{op} expects exactly 1 input, got {}",
        inputs.len()
    );
    inputs[0]
}

/// Helper for two-input layers.
///
/// # Panics
///
/// Panics if `inputs` does not contain exactly two tensors.
pub fn pair<'a>(inputs: &[&'a Tensor], op: &str) -> (&'a Tensor, &'a Tensor) {
    assert_eq!(
        inputs.len(),
        2,
        "{op} expects exactly 2 inputs, got {}",
        inputs.len()
    );
    (inputs[0], inputs[1])
}
