//! Softmax cross-entropy loss and classification metrics.

use tqt_tensor::{reduce, Tensor};

/// Softmax cross-entropy over a batch of logits.
///
/// Returns `(mean_loss, dlogits)` where `dlogits = (softmax - onehot) / n`
/// — the gradient of the mean loss with respect to the logits.
///
/// # Panics
///
/// Panics if `logits` is not `[n, k]`, `labels.len() != n`, or any label is
/// out of range.
pub fn softmax_cross_entropy(logits: &Tensor, labels: &[usize]) -> (f32, Tensor) {
    assert_eq!(logits.ndim(), 2, "logits must be [n, k], got {}", logits.shape());
    let (n, k) = (logits.dim(0), logits.dim(1));
    assert_eq!(labels.len(), n, "labels length {} != batch {}", labels.len(), n);
    let mut dlogits = Tensor::zeros([n, k]);
    let mut loss = 0.0f64;
    let inv_n = 1.0 / n as f32;
    for i in 0..n {
        assert!(labels[i] < k, "label {} out of range for {k} classes", labels[i]);
        let row = &logits.data()[i * k..(i + 1) * k];
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let exps: Vec<f64> = row.iter().map(|&v| ((v - max) as f64).exp()).collect();
        let sum: f64 = exps.iter().sum();
        let drow = &mut dlogits.data_mut()[i * k..(i + 1) * k];
        for j in 0..k {
            let p = (exps[j] / sum) as f32;
            drow[j] = p * inv_n;
        }
        drow[labels[i]] -= inv_n;
        loss += -(exps[labels[i]] / sum).ln();
    }
    ((loss / n as f64) as f32, dlogits)
}

/// Softmax probabilities of a batch of logits (for inspection; training
/// uses the fused loss above).
///
/// # Panics
///
/// Panics if `logits` is not 2-D.
pub fn softmax(logits: &Tensor) -> Tensor {
    assert_eq!(logits.ndim(), 2, "logits must be [n, k]");
    let (n, k) = (logits.dim(0), logits.dim(1));
    let mut out = Tensor::zeros([n, k]);
    for i in 0..n {
        let row = &logits.data()[i * k..(i + 1) * k];
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let exps: Vec<f32> = row.iter().map(|&v| (v - max).exp()).collect();
        let sum: f32 = exps.iter().sum();
        for (j, &e) in exps.iter().enumerate() {
            out.data_mut()[i * k + j] = e / sum;
        }
    }
    out
}

/// Top-1 and top-5 accuracy of logits against labels, as fractions in
/// `[0, 1]`. Top-5 falls back to top-`k` when there are fewer than 5
/// classes.
///
/// # Panics
///
/// Panics if shapes disagree.
pub fn topk_accuracy(logits: &Tensor, labels: &[usize]) -> (f32, f32) {
    assert_eq!(logits.ndim(), 2, "logits must be [n, k]");
    let n = logits.dim(0);
    assert_eq!(labels.len(), n, "labels length mismatch");
    let kk = logits.dim(1).min(5);
    let top = reduce::topk_rows(logits, kk);
    let mut top1 = 0usize;
    let mut top5 = 0usize;
    for i in 0..n {
        if top[i][0] == labels[i] {
            top1 += 1;
        }
        if top[i].contains(&labels[i]) {
            top5 += 1;
        }
    }
    (top1 as f32 / n as f32, top5 as f32 / n as f32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_logits_loss_is_log_k() {
        let logits = Tensor::zeros([2, 4]);
        let (loss, _) = softmax_cross_entropy(&logits, &[0, 3]);
        assert!((loss - (4.0f32).ln()).abs() < 1e-6);
    }

    #[test]
    fn gradient_sums_to_zero_per_row() {
        let logits = Tensor::from_vec([2, 3], vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]);
        let (_, d) = softmax_cross_entropy(&logits, &[0, 2]);
        for i in 0..2 {
            let s: f32 = d.data()[i * 3..(i + 1) * 3].iter().sum();
            assert!(s.abs() < 1e-6);
        }
    }

    #[test]
    fn gradient_finite_difference() {
        let logits = Tensor::from_vec([2, 3], vec![0.3, -1.2, 0.8, 2.0, 0.1, -0.4]);
        let labels = [2usize, 0];
        let (_, d) = softmax_cross_entropy(&logits, &labels);
        let eps = 1e-3f32;
        for i in 0..logits.len() {
            let mut lp = logits.clone();
            lp.data_mut()[i] += eps;
            let mut lm = logits.clone();
            lm.data_mut()[i] -= eps;
            let fd = (softmax_cross_entropy(&lp, &labels).0
                - softmax_cross_entropy(&lm, &labels).0)
                / (2.0 * eps);
            assert!(
                (fd - d.data()[i]).abs() < 1e-3,
                "grad mismatch at {i}: fd={fd} analytic={}",
                d.data()[i]
            );
        }
    }

    #[test]
    fn numerically_stable_for_large_logits() {
        let logits = Tensor::from_vec([1, 2], vec![1000.0, 0.0]);
        let (loss, d) = softmax_cross_entropy(&logits, &[0]);
        assert!(loss.is_finite() && loss >= 0.0);
        assert!(d.all_finite());
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let logits = Tensor::from_vec([2, 3], vec![1., 2., 3., -5., 0., 5.]);
        let p = softmax(&logits);
        for i in 0..2 {
            let s: f32 = p.data()[i * 3..(i + 1) * 3].iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn accuracy_counts() {
        let logits = Tensor::from_vec(
            [2, 6],
            vec![
                0.9, 0.05, 0.02, 0.01, 0.01, 0.01, // argmax 0
                0.1, 0.2, 0.3, 0.15, 0.15, 0.1, // argmax 2
            ],
        );
        let (t1, t5) = topk_accuracy(&logits, &[0, 5]);
        assert_eq!(t1, 0.5);
        assert_eq!(t5, 0.5); // label 5 has the smallest logit in row 2
    }
}
