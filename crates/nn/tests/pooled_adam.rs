//! Property test for the pooled Adam (satellite of the planned-executor
//! PR): the fused arena update must be bit-identical to the legacy
//! per-parameter [`tqt_nn::optim::Adam`] across random shapes, multiple
//! steps, optimizer groups, mid-run freezing, and thread counts — the
//! trainer's switch to [`tqt_nn::PooledAdam`] is only sound if parameter
//! evolution does not change by a single bit.

use tqt_nn::optim::{Adam, Optimizer};
use tqt_nn::{Param, ParamArena, ParamKind, PooledAdam};
use tqt_rt::pool;
use tqt_tensor::init;

/// Builds a mixed bag of parameters shaped like a small QAT model:
/// conv/dense weights, biases, batch-norm pairs, scalar thresholds.
/// Sizes straddle the pooled pass's 4096-element block boundary.
fn make_params(rng: &mut init::Rng) -> Vec<Param> {
    let spec: &[(&str, &[usize], ParamKind)] = &[
        ("conv1/weight", &[16, 3, 3, 3], ParamKind::Weight),
        ("conv1/bias", &[16], ParamKind::Bias),
        ("bn1/gamma", &[16], ParamKind::BatchNorm),
        ("bn1/beta", &[16], ParamKind::BatchNorm),
        ("conv2/weight", &[32, 16, 3, 3], ParamKind::Weight),
        ("fc/weight", &[10, 4099], ParamKind::Weight),
        ("fc/bias", &[10], ParamKind::Bias),
        ("conv1/act_log2_t", &[1], ParamKind::Threshold),
        ("conv1/wt_log2_t", &[1], ParamKind::Threshold),
        ("fc/act_log2_t", &[1], ParamKind::Threshold),
    ];
    spec.iter()
        .map(|&(name, dims, kind)| {
            Param::new(name, init::uniform(dims.to_vec(), -1.0, 1.0, rng), kind)
        })
        .collect()
}

/// Fills both copies of the parameter set with the same random gradients.
fn fill_grads(legacy: &mut [Param], arena: &mut ParamArena, rng: &mut init::Rng) {
    for (i, p) in legacy.iter_mut().enumerate() {
        let g = init::uniform(p.value.shape().clone(), -0.5, 0.5, rng);
        p.grad = g.clone();
        arena.grad_mut(i).copy_from_slice(g.data());
    }
}

const WEIGHT_KINDS: [ParamKind; 3] = [ParamKind::Weight, ParamKind::Bias, ParamKind::BatchNorm];

/// Runs `steps` optimizer steps on both paths and asserts bit-identical
/// values after every step. Freezes one weight and one threshold halfway
/// through to exercise the per-segment step-counter semantics.
fn run_parity(threads: usize, steps: usize, seed: u64) {
    pool::set_threads(threads);
    let mut rng = init::rng(seed);
    let mut legacy = make_params(&mut rng);
    let mut arena = ParamArena::from_params(&legacy.iter().collect::<Vec<_>>());

    let (wlr, tlr) = (1e-2, 1e-3);
    let mut wopt = Adam::paper(wlr);
    let mut topt = Adam::paper(tlr);
    let mut pooled_w = PooledAdam::paper(wlr, &arena);
    let mut pooled_t = PooledAdam::paper(tlr, &arena);

    for step in 0..steps {
        if step == steps / 2 {
            // Freeze a weight and a threshold mid-run: their moments and
            // step counters must stall identically on both paths.
            for (i, p) in legacy.iter_mut().enumerate() {
                if p.name == "conv2/weight" || p.name == "fc/act_log2_t" {
                    p.trainable = false;
                    arena.set_trainable(i, false);
                }
            }
        }
        // Mid-run learning-rate drop, as the staircase schedules do.
        if step == 2 * steps / 3 {
            wopt.set_lr(wlr * 0.1);
            pooled_w.set_lr(wlr * 0.1);
        }
        fill_grads(&mut legacy, &mut arena, &mut rng);

        // Partition into the trainer's two optimizer groups.
        let mut weights: Vec<&mut Param> = Vec::new();
        let mut thresholds: Vec<&mut Param> = Vec::new();
        for p in legacy.iter_mut() {
            if p.kind == ParamKind::Threshold {
                thresholds.push(p);
            } else {
                weights.push(p);
            }
        }
        wopt.step(&mut weights);
        topt.step(&mut thresholds);
        pooled_w.step(&mut arena, &WEIGHT_KINDS);
        pooled_t.step(&mut arena, &[ParamKind::Threshold]);

        for (i, p) in legacy.iter().enumerate() {
            let (lbits, abits): (Vec<u32>, Vec<u32>) = (
                p.value.data().iter().map(|v| v.to_bits()).collect(),
                arena.val(i).iter().map(|v| v.to_bits()).collect(),
            );
            assert_eq!(
                lbits, abits,
                "step {step}, param {}: pooled Adam diverged from legacy ({threads} threads)",
                p.name
            );
        }
    }
    pool::set_threads(0);
}

#[test]
fn pooled_adam_matches_legacy_serial() {
    run_parity(1, 9, 1234);
}

#[test]
fn pooled_adam_matches_legacy_four_threads() {
    run_parity(4, 9, 1234);
}

#[test]
fn pooled_adam_thread_count_invariant() {
    // Same seed at 1 and 4 threads must land on the same bits; parity
    // with the (serial) legacy path at both counts already implies this,
    // but assert it directly against a 3-thread run for a third schedule.
    run_parity(3, 6, 99);
}
