//! Concurrency verification drivers (`TQT-V019`–`TQT-V022`): runs the
//! `tqt-rt` schedule model checker, the fold-partition determinism
//! check, and the happens-before findings collection, reporting through
//! the same stable-code [`Report`] machinery as the graph passes.
//!
//! * [`check_schedules`] — exhaustively model-checks the pool's
//!   claim/complete protocol over the pinned bounded configuration suite
//!   (`tqt_rt::sched::protocol_configs`): deadlock-freedom
//!   (`TQT-V019`), exactly-once block execution and panic delivery
//!   (`TQT-V020`). A refutation carries the counterexample
//!   interleaving.
//! * [`check_batch_schedules`] — same treatment for the serving
//!   admission queue's batching protocol
//!   (`tqt_rt::sched::batch_protocol_configs`): every interleaving of
//!   submit, deadline expiry, dispatch, complete, and drain must
//!   dispatch each request exactly once and drain cleanly; refutations
//!   are `TQT-V024` with the counterexample schedule.
//! * [`check_fold_partition`] — runs `pool::par_fold_blocks` under
//!   several forced thread counts and compares every produced partition
//!   with the closed-form specification `sched::fold_partition`; any
//!   thread-count dependence is `TQT-V021` (it would break the
//!   bit-identical deterministic reductions the quantizer gradients rely
//!   on).
//! * [`collect_hb_findings`] — drains the runtime happens-before
//!   sanitizer's registry (`tqt_rt::hb`, populated while the `sanitize`
//!   feature is active) into `TQT-V022` diagnostics.

use crate::diag::{Code, Report};
use tqt_rt::{hb, pool, sched};

/// Outcome summary of a model-checking sweep.
#[derive(Debug, Clone)]
pub struct SchedSummary {
    /// Configurations explored.
    pub configs: usize,
    /// Total distinct states across all configurations.
    pub states: usize,
    /// Whether every configuration was explored exhaustively (false in
    /// smoke mode, where a per-config state budget truncates).
    pub complete: bool,
}

/// Model-checks the pinned protocol suite. `budget` bounds the states
/// explored per configuration (`None` = exhaustive; CI proof mode).
/// Violations land in the report as `TQT-V019`/`TQT-V020` with the
/// counterexample schedule.
pub fn check_schedules(budget: Option<usize>) -> (Report, SchedSummary) {
    let mut r = Report::new();
    let configs = sched::protocol_configs();
    let mut summary = SchedSummary {
        configs: configs.len(),
        states: 0,
        complete: true,
    };
    for cfg in &configs {
        let out = sched::check(cfg, budget.unwrap_or(usize::MAX));
        summary.states += out.states;
        summary.complete &= out.complete;
        if let Some(v) = out.violation {
            let code = match v.property {
                sched::Property::Deadlock => Code::SchedDeadlock,
                _ => Code::SchedProtocol,
            };
            r.push_global(code, format!("{cfg:?}: {v}"));
        }
    }
    (r, summary)
}

/// Model-checks the pinned serving batch-protocol suite
/// (`sched::batch_protocol_configs`). `budget` bounds the states
/// explored per configuration (`None` = exhaustive; CI proof mode).
/// Violations land in the report as `TQT-V024` with the counterexample
/// schedule.
pub fn check_batch_schedules(budget: Option<usize>) -> (Report, SchedSummary) {
    let mut r = Report::new();
    let configs = sched::batch_protocol_configs();
    let mut summary = SchedSummary {
        configs: configs.len(),
        states: 0,
        complete: true,
    };
    for cfg in &configs {
        let out = sched::batch_check(cfg, budget.unwrap_or(usize::MAX));
        summary.states += out.states;
        summary.complete &= out.complete;
        if let Some(v) = out.violation {
            r.push_global(Code::BatchProtocol, format!("{cfg:?}: {v}"));
        }
    }
    (r, summary)
}

/// Verifies `par_fold_blocks`' partition is a pure function of `(len,
/// block)` by comparing the partition actually produced under several
/// forced thread counts with the closed-form specification. Restores the
/// automatic thread count before returning.
pub fn check_fold_partition() -> Report {
    let mut r = Report::new();
    let grid = [
        (0usize, 1usize),
        (5, 4),
        (10, 3),
        (1000, 64),
        (1003, 17),
        (4096, 4096),
    ];
    for &(len, block) in &grid {
        let spec = sched::fold_partition(len, block);
        for &t in &[1usize, 2, 5, 16] {
            pool::set_threads(t);
            let got = pool::par_fold_blocks(len, block, |b, range| (b, range));
            if got != spec {
                r.push_global(
                    Code::FoldPartition,
                    format!(
                        "par_fold_blocks(len={len}, block={block}) under {t} thread(s) \
                         produced {} blocks {:?}…, specification {:?}…",
                        got.len(),
                        got.first(),
                        spec.first()
                    ),
                );
            }
        }
    }
    pool::set_threads(0);
    r
}

/// Whether the happens-before sanitizer is compiled into this build.
pub fn hb_enabled() -> bool {
    hb::enabled()
}

/// Drains the happens-before sanitizer registry into `TQT-V022`
/// diagnostics (empty report = the sanitized run was clean, or the
/// sanitizer is off).
pub fn collect_hb_findings() -> Report {
    let mut r = Report::new();
    for f in hb::take_findings() {
        r.push_global(Code::HappensBefore, f);
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_budget_suite_is_clean() {
        // A tight budget still must not *refute* anything — violations
        // are independent of the exploration order.
        let (r, summary) = check_schedules(Some(20_000));
        assert!(r.is_clean(), "{r}");
        assert!(summary.configs >= 20);
        assert!(summary.states > 0);
    }

    #[test]
    fn batch_smoke_budget_suite_is_clean() {
        let (r, summary) = check_batch_schedules(Some(20_000));
        assert!(r.is_clean(), "{r}");
        assert!(summary.configs >= 16);
        assert!(summary.states > 0);
    }

    #[test]
    fn batch_refutation_maps_to_v024() {
        // Route a seeded-bug refutation through the report machinery by
        // hand — the mapping is what is under test (the checker itself
        // is proven in tqt-rt).
        let cfg = sched::BatchConfig {
            clients: 1,
            requests_per_client: 1,
            workers: 1,
            ladder: &[1, 2],
            shutdown: false,
            bug: Some(sched::BatchBug::SleepOnDue),
        };
        let out = sched::batch_check(&cfg, 1_000_000);
        let v = out.violation.expect("seeded bug must be refuted");
        let mut r = Report::new();
        r.push_global(Code::BatchProtocol, format!("{cfg:?}: {v}"));
        assert!(r.has(Code::BatchProtocol), "{r}");
        assert!(r.render().contains("TQT-V024"));
    }

    #[test]
    fn fold_partition_matches_spec_across_thread_counts() {
        let r = check_fold_partition();
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn hb_collection_maps_to_v022() {
        // Inject directly through the registry: the mapping is what is
        // under test (the sanitizer itself is tested in tqt-rt).
        hb::report("test-site", "synthetic finding");
        let r = collect_hb_findings();
        assert!(r.has(Code::HappensBefore), "{r}");
        assert!(collect_hb_findings().is_clean(), "drained");
    }
}
