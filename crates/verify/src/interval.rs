//! Interval and bit-width dataflow over the lowered [`IntGraph`]: proves
//! that no i64 accumulator can overflow for *any* input (or refutes with a
//! counterexample), and that every requantization shift is legal.
//!
//! The analysis is an abstract interpretation in `i128`: each node gets a
//! sound value interval `[lo, hi]` containing every element the node can
//! ever produce. Compute bounds are *exact per output channel* — they use
//! the actual baked weights, not worst-case magnitudes — so the proof is
//! tight enough to hold 16-bit weights against 8-bit activations while
//! still refuting genuinely unsafe graphs.
//!
//! Soundness of the overflow check for convolutions: an accumulator's
//! partial sum after any prefix of taps lies in `[Σ min(term_i), Σ
//! max(term_i)]` over the full tap set, because every remaining term's
//! minimum contribution is ≤ 0 in the lower bound and ≥ 0 in the upper
//! bound (padding is modeled by including 0 in each tap's term interval).
//! Hence if the final-sum interval (including bias, both with and without)
//! fits i64, no intermediate i64 accumulation can wrap either.

use crate::diag::{Code, Report};
use tqt_fixedpoint::lower::{EpiStep, IntGraph, IntNode, IntOp, LEAKY_ALPHA_FRAC};
use tqt_fixedpoint::QFormat;

/// Legal magnitude for a requantization shift: `shift_round` shifts an
/// `i64` by `|shift|` bits, so anything past 63 is undefined.
pub const MAX_SHIFT: i32 = 63;

const I64_LO: i128 = i64::MIN as i128;
const I64_HI: i128 = i64::MAX as i128;

/// Proven facts about one node's output.
#[derive(Debug, Clone, Copy)]
pub struct NodeFacts {
    /// Sound lower bound on any output element.
    pub lo: i128,
    /// Sound upper bound on any output element.
    pub hi: i128,
    /// Whether a requantization at this node can clamp (pre-saturation
    /// interval escapes the target format). `false` proves the runtime
    /// saturation counter stays 0.
    pub can_saturate: bool,
    /// The Q-format the node's output is declared in, when it has one.
    pub format: Option<QFormat>,
}

/// Result of the dataflow: per-node facts plus findings.
#[derive(Debug)]
pub struct IntervalReport {
    /// Facts per node, indexed like [`IntGraph::nodes`].
    pub nodes: Vec<NodeFacts>,
    /// `TQT-V010`–`TQT-V013` findings.
    pub report: Report,
}

impl IntervalReport {
    /// Whether the overflow/shift proofs all went through.
    pub fn proven(&self) -> bool {
        self.report.is_clean()
    }
}

/// The producer chain of `id` (following first inputs back to the graph
/// input), rendered for counterexample messages.
pub(crate) fn path_to(nodes: &[IntNode], id: usize) -> String {
    let mut chain = Vec::new();
    let mut cur = id;
    loop {
        chain.push(nodes[cur].name.as_str());
        match nodes[cur].inputs.first() {
            Some(&p) => cur = p,
            None => break,
        }
    }
    chain.reverse();
    chain.join(" -> ")
}

fn term_bounds(w: i128, lo: i128, hi: i128, include_zero: bool) -> (i128, i128) {
    let a = w * lo;
    let b = w * hi;
    let (mut tlo, mut thi) = (a.min(b), a.max(b));
    if include_zero {
        tlo = tlo.min(0);
        thi = thi.max(0);
    }
    (tlo, thi)
}

/// Exact per-output-channel accumulator bounds for a convolution over an
/// input interval (shared by the standalone [`IntOp::Conv`] transfer, the
/// fused-node core, and the translation validator's fused-chain walk).
/// Bounds cover the biased final value and every unbiased partial sum
/// (see the module soundness note).
pub(crate) fn conv_core_bounds(
    w: &[i64],
    wdims: [usize; 4],
    bias: Option<&[i64]>,
    padded: bool,
    xlo: i128,
    xhi: i128,
) -> (i128, i128) {
    let [co_n, ci_n, kh, kw] = wdims;
    let taps = ci_n * kh * kw;
    let mut lo = i128::MAX;
    let mut hi = i128::MIN;
    for co in 0..co_n {
        let mut pos = 0i128;
        let mut neg = 0i128;
        for t in 0..taps {
            let (tlo, thi) = term_bounds(i128::from(w[co * taps + t]), xlo, xhi, padded);
            neg += tlo;
            pos += thi;
        }
        let b = bias.map(|b| i128::from(b[co])).unwrap_or(0);
        lo = lo.min((neg + b).min(neg));
        hi = hi.max((pos + b).max(pos));
    }
    (lo, hi)
}

/// Exact per-output-unit accumulator bounds for a dense layer (shared by
/// the standalone [`IntOp::Dense`] transfer, the fused-node core, and the
/// translation validator's fused-chain walk).
pub(crate) fn dense_core_bounds(
    w: &[i64],
    in_dim: usize,
    out_dim: usize,
    bias: Option<&[i64]>,
    xlo: i128,
    xhi: i128,
) -> (i128, i128) {
    let mut lo = i128::MAX;
    let mut hi = i128::MIN;
    for o in 0..out_dim {
        let mut pos = 0i128;
        let mut neg = 0i128;
        for i in 0..in_dim {
            let (tlo, thi) = term_bounds(i128::from(w[i * out_dim + o]), xlo, xhi, false);
            neg += tlo;
            pos += thi;
        }
        let b = bias.map(|b| i128::from(b[o])).unwrap_or(0);
        lo = lo.min((neg + b).min(neg));
        hi = hi.max((pos + b).max(pos));
    }
    (lo, hi)
}

/// Runs the interval/bit-width dataflow. `input_dims` is the `[n, c, h,
/// w]` the graph executes on (needed to resolve pooling spatial sizes).
pub fn analyze(ig: &IntGraph, input_dims: &[usize]) -> IntervalReport {
    let nodes = ig.nodes();
    let mut r = Report::new();
    let mut facts: Vec<NodeFacts> = Vec::with_capacity(nodes.len());
    let mut shapes: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];

    for (id, node) in nodes.iter().enumerate() {
        let fin = node.inputs.first().map(|&i| facts[i]);
        let sin: Vec<&[usize]> = node.inputs.iter().map(|&i| shapes[i].as_slice()).collect();
        let mut fact = NodeFacts {
            lo: 0,
            hi: 0,
            can_saturate: false,
            format: None,
        };
        let mut shape: Vec<usize> = sin.first().map(|s| s.to_vec()).unwrap_or_default();
        match &node.op {
            IntOp::Input => {
                shape = input_dims.to_vec();
            }
            IntOp::QuantF32 { format } => {
                // The float input is arbitrary; quantization saturates it
                // into the representable range, which may clamp.
                fact.lo = i128::from(format.qmin());
                fact.hi = i128::from(format.qmax());
                fact.can_saturate = true;
                fact.format = Some(*format);
            }
            IntOp::Requant { format } => {
                let fi = fin.expect("requant has an input");
                let in_frac = fi.format.map(|f| f.frac).unwrap_or(0);
                let shift = in_frac - format.frac;
                if shift.abs() > MAX_SHIFT {
                    r.push(
                        Code::IllegalShift,
                        node.name.clone(),
                        format!(
                            "requant shift {shift} (frac {in_frac} -> {}) exceeds \
                             the legal |shift| <= {MAX_SHIFT}",
                            format.frac
                        ),
                    );
                }
                // shift_round is monotone; round-half-even moves a value by
                // at most half an output ulp, covered by widening one.
                let (plo, phi) = if shift <= 0 {
                    let f = 1i128 << i128::from(-shift).min(126);
                    (fi.lo.saturating_mul(f), fi.hi.saturating_mul(f))
                } else {
                    let half = 1i128 << (shift - 1).min(126);
                    ((fi.lo - half) >> shift, (fi.hi + half) >> shift)
                };
                let (qlo, qhi) = (i128::from(format.qmin()), i128::from(format.qmax()));
                fact.can_saturate = plo < qlo || phi > qhi;
                fact.lo = plo.max(qlo);
                fact.hi = phi.min(qhi);
                fact.format = Some(*format);
            }
            IntOp::Conv {
                w,
                wdims,
                bias,
                geom,
                w_frac,
                ..
            } => {
                let fi = fin.expect("conv has an input");
                // Padding can drop any tap, so each term interval includes 0.
                let (lo, hi) =
                    conv_core_bounds(w, *wdims, bias.as_deref(), geom.pad > 0, fi.lo, fi.hi);
                if lo < I64_LO || hi > I64_HI {
                    r.push(
                        Code::Overflow,
                        node.name.clone(),
                        overflow_detail(nodes, id, lo, hi, input_dims),
                    );
                }
                fact.lo = lo;
                fact.hi = hi;
                let in_frac = fi.format.map(|f| f.frac).unwrap_or(0);
                fact.format = Some(QFormat::new(in_frac + w_frac, 64, true));
                if sin[0].len() == 4 {
                    let (oh, ow) = geom.out_size(sin[0][2], sin[0][3]);
                    shape = vec![sin[0][0], wdims[0], oh, ow];
                }
            }
            IntOp::Dense {
                w,
                in_dim,
                out_dim,
                bias,
                w_frac,
            } => {
                let fi = fin.expect("dense has an input");
                let (lo, hi) =
                    dense_core_bounds(w, *in_dim, *out_dim, bias.as_deref(), fi.lo, fi.hi);
                if lo < I64_LO || hi > I64_HI {
                    r.push(
                        Code::Overflow,
                        node.name.clone(),
                        overflow_detail(nodes, id, lo, hi, input_dims),
                    );
                }
                fact.lo = lo;
                fact.hi = hi;
                let in_frac = fi.format.map(|f| f.frac).unwrap_or(0);
                fact.format = Some(QFormat::new(in_frac + w_frac, 64, true));
                shape = vec![sin[0].first().copied().unwrap_or(1), *out_dim];
            }
            IntOp::Fused { core, epi } => {
                let fi = fin.expect("fused has an input");
                // Legality: arity must match the epilogue's residual steps.
                let residuals = epi
                    .iter()
                    .filter(|s| matches!(s, EpiStep::AddResidual))
                    .count();
                if residuals + 1 != node.inputs.len() || residuals > 1 {
                    r.push(
                        Code::IllegalFusion,
                        node.name.clone(),
                        format!(
                            "{} AddResidual step(s) but {} input(s); a fused node takes \
                             exactly one data input plus one per residual step \
                             (counterexample path: {})",
                            residuals,
                            node.inputs.len(),
                            path_to(nodes, id)
                        ),
                    );
                }
                // Core: the same exact per-channel accumulator bounds as the
                // standalone conv/dense transfers (V011 on escape).
                let in_frac = fi.format.map(|f| f.frac).unwrap_or(0);
                let (mut lo, mut hi, mut cur_format) = match &**core {
                    IntOp::Conv {
                        w,
                        wdims,
                        bias,
                        geom,
                        w_frac,
                        ..
                    } => {
                        let (lo, hi) = conv_core_bounds(
                            w,
                            *wdims,
                            bias.as_deref(),
                            geom.pad > 0,
                            fi.lo,
                            fi.hi,
                        );
                        if sin[0].len() == 4 {
                            let (oh, ow) = geom.out_size(sin[0][2], sin[0][3]);
                            shape = vec![sin[0][0], wdims[0], oh, ow];
                        }
                        (lo, hi, QFormat::new(in_frac + w_frac, 64, true))
                    }
                    IntOp::Dense {
                        w,
                        in_dim,
                        out_dim,
                        bias,
                        w_frac,
                    } => {
                        let (lo, hi) =
                            dense_core_bounds(w, *in_dim, *out_dim, bias.as_deref(), fi.lo, fi.hi);
                        shape = vec![sin[0].first().copied().unwrap_or(1), *out_dim];
                        (lo, hi, QFormat::new(in_frac + w_frac, 64, true))
                    }
                    other => {
                        r.push(
                            Code::IllegalFusion,
                            node.name.clone(),
                            format!(
                                "fused core must be a conv or dense producer, found {:?} \
                                 (counterexample path: {})",
                                std::mem::discriminant(other),
                                path_to(nodes, id)
                            ),
                        );
                        (fi.lo, fi.hi, QFormat::new(in_frac, 64, true))
                    }
                };
                if lo < I64_LO || hi > I64_HI {
                    r.push(
                        Code::Overflow,
                        node.name.clone(),
                        overflow_detail(nodes, id, lo, hi, input_dims),
                    );
                }
                // Fold the epilogue with the same transfers the standalone
                // Requant/Add/Relu nodes get.
                let mut residual_slot = 1usize;
                for (step_idx, step) in epi.iter().enumerate() {
                    match step {
                        EpiStep::Requant { format } => {
                            let shift = cur_format.frac - format.frac;
                            if shift.abs() > MAX_SHIFT {
                                r.push(
                                    Code::IllegalFusion,
                                    node.name.clone(),
                                    format!(
                                        "epilogue step {step_idx} requantizes with shift \
                                         {shift} (frac {} -> {}), outside the legal \
                                         |shift| <= {MAX_SHIFT} (counterexample path: {})",
                                        cur_format.frac,
                                        format.frac,
                                        path_to(nodes, id)
                                    ),
                                );
                            }
                            let (plo, phi) = if shift <= 0 {
                                let f = 1i128 << i128::from(-shift).min(126);
                                (lo.saturating_mul(f), hi.saturating_mul(f))
                            } else {
                                let half = 1i128 << (shift - 1).min(126);
                                ((lo - half) >> shift, (hi + half) >> shift)
                            };
                            let (qlo, qhi) =
                                (i128::from(format.qmin()), i128::from(format.qmax()));
                            if plo < qlo || phi > qhi {
                                fact.can_saturate = true;
                            }
                            lo = plo.max(qlo);
                            hi = phi.min(qhi);
                            cur_format = *format;
                        }
                        EpiStep::AddResidual => {
                            let Some(&rid) = node.inputs.get(residual_slot) else {
                                // Arity mismatch already reported above.
                                continue;
                            };
                            residual_slot += 1;
                            let rf = facts[rid];
                            if rf.format != Some(cur_format) {
                                r.push(
                                    Code::IllegalFusion,
                                    node.name.clone(),
                                    format!(
                                        "epilogue step {step_idx} adds residual `{}` in \
                                         format {:?}, but the fused accumulator is in \
                                         {:?} — scales must be merged before fusing \
                                         (counterexample path: {})",
                                        nodes[rid].name,
                                        rf.format,
                                        cur_format,
                                        path_to(nodes, id)
                                    ),
                                );
                            }
                            lo += rf.lo;
                            hi += rf.hi;
                            if lo < I64_LO || hi > I64_HI {
                                r.push(
                                    Code::Overflow,
                                    node.name.clone(),
                                    overflow_detail(nodes, id, lo, hi, input_dims),
                                );
                            }
                            cur_format = QFormat::new(cur_format.frac, 64, true);
                        }
                        EpiStep::Relu { cap_q } => {
                            let cap = cap_q.map(i128::from).unwrap_or(i128::MAX);
                            lo = lo.max(0).min(cap);
                            hi = hi.max(0).min(cap);
                        }
                        EpiStep::LeakyRelu { alpha_q } => {
                            // Same transfer as the standalone node: the
                            // envelope of `max(v << A, v * alpha)` over the
                            // interval endpoints (exact for monotone alpha).
                            let a = i128::from(*alpha_q);
                            let f = |v: i128| (v << LEAKY_ALPHA_FRAC).max(v * a);
                            let cands = [f(lo), f(hi)];
                            lo = *cands.iter().min().expect("nonempty");
                            hi = *cands.iter().max().expect("nonempty");
                            if lo < I64_LO || hi > I64_HI {
                                r.push(
                                    Code::Overflow,
                                    node.name.clone(),
                                    overflow_detail(nodes, id, lo, hi, input_dims),
                                );
                            }
                            cur_format =
                                QFormat::new(cur_format.frac + LEAKY_ALPHA_FRAC, 64, true);
                        }
                    }
                }
                fact.lo = lo;
                fact.hi = hi;
                fact.format = Some(cur_format);
            }
            IntOp::Relu { cap_q } => {
                let fi = fin.expect("relu has an input");
                let cap = cap_q.map(i128::from).unwrap_or(i128::MAX);
                fact.lo = fi.lo.max(0).min(cap);
                fact.hi = fi.hi.max(0).min(cap);
                fact.format = fi.format;
            }
            IntOp::LeakyRelu { alpha_q } => {
                let fi = fin.expect("leaky relu has an input");
                let a = i128::from(*alpha_q);
                let f = |v: i128| (v << LEAKY_ALPHA_FRAC).max(v * a);
                // Monotone for alpha >= 0; take the envelope otherwise.
                let cands = [f(fi.lo), f(fi.hi)];
                fact.lo = *cands.iter().min().expect("nonempty");
                fact.hi = *cands.iter().max().expect("nonempty");
                if fact.lo < I64_LO || fact.hi > I64_HI {
                    r.push(
                        Code::Overflow,
                        node.name.clone(),
                        overflow_detail(nodes, id, fact.lo, fact.hi, input_dims),
                    );
                }
                fact.format = fi
                    .format
                    .map(|f| QFormat::new(f.frac + LEAKY_ALPHA_FRAC, 64, true));
            }
            IntOp::MaxPool { geom } => {
                let fi = fin.expect("maxpool has an input");
                fact = fi;
                fact.can_saturate = false;
                if sin[0].len() == 4 {
                    let (oh, ow) = geom.out_size(sin[0][2], sin[0][3]);
                    shape = vec![sin[0][0], sin[0][1], oh, ow];
                }
            }
            IntOp::GlobalAvgPool => {
                let fi = fin.expect("gap has an input");
                if sin[0].len() != 4 {
                    r.push(
                        Code::FormatViolation,
                        node.name.clone(),
                        format!("global avg pool needs a 4-D input, got {:?}", sin[0]),
                    );
                } else {
                    let hw = sin[0][2] * sin[0][3];
                    if !hw.is_power_of_two() {
                        r.push(
                            Code::FormatViolation,
                            node.name.clone(),
                            format!(
                                "global avg pool over non-power-of-two spatial size \
                                 {}x{}; exact fixed-point division needs 2^k elements",
                                sin[0][2], sin[0][3]
                            ),
                        );
                    } else {
                        let hw = hw as i128;
                        fact.lo = fi.lo.saturating_mul(hw).min(0);
                        fact.hi = fi.hi.saturating_mul(hw).max(0);
                        if fact.lo < I64_LO || fact.hi > I64_HI {
                            r.push(
                                Code::Overflow,
                                node.name.clone(),
                                overflow_detail(nodes, id, fact.lo, fact.hi, input_dims),
                            );
                        }
                        fact.format = fi.format.map(|f| {
                            QFormat::new(f.frac + (sin[0][2] * sin[0][3]).trailing_zeros() as i32, 64, true)
                        });
                        shape = vec![sin[0][0], sin[0][1]];
                    }
                }
            }
            IntOp::Add => {
                let a = facts[node.inputs[0]];
                let b = facts[node.inputs[1]];
                if a.format != b.format {
                    r.push(
                        Code::MergeMismatch,
                        node.name.clone(),
                        format!(
                            "add operands are in different formats ({:?} vs {:?}); \
                             scales must be merged before lowering",
                            a.format, b.format
                        ),
                    );
                }
                fact.lo = a.lo + b.lo;
                fact.hi = a.hi + b.hi;
                if fact.lo < I64_LO || fact.hi > I64_HI {
                    r.push(
                        Code::Overflow,
                        node.name.clone(),
                        overflow_detail(nodes, id, fact.lo, fact.hi, input_dims),
                    );
                }
                fact.format = a.format.map(|f| QFormat::new(f.frac, 64, true));
            }
            IntOp::Concat => {
                let ins: Vec<NodeFacts> = node.inputs.iter().map(|&i| facts[i]).collect();
                let first = ins[0];
                for (slot, fi) in ins.iter().enumerate().skip(1) {
                    if fi.format != first.format {
                        r.push(
                            Code::MergeMismatch,
                            node.name.clone(),
                            format!(
                                "concat input {slot} format {:?} differs from input 0 \
                                 format {:?}",
                                fi.format, first.format
                            ),
                        );
                    }
                }
                fact.lo = ins.iter().map(|f| f.lo).min().expect("nonempty");
                fact.hi = ins.iter().map(|f| f.hi).max().expect("nonempty");
                fact.format = first.format;
                if sin.iter().all(|s| s.len() >= 2) {
                    let mut out = sin[0].to_vec();
                    out[1] = sin.iter().map(|s| s[1]).sum();
                    shape = out;
                }
            }
            IntOp::Flatten => {
                let fi = fin.expect("flatten has an input");
                fact = fi;
                fact.can_saturate = false;
                if !sin[0].is_empty() {
                    shape = vec![sin[0][0], sin[0][1..].iter().product::<usize>().max(1)];
                }
            }
        }
        facts.push(fact);
        shapes[id] = shape;
    }

    IntervalReport {
        nodes: facts,
        report: r,
    }
}

fn overflow_detail(
    nodes: &[IntNode],
    id: usize,
    lo: i128,
    hi: i128,
    input_dims: &[usize],
) -> String {
    format!(
        "proven interval [{lo}, {hi}] escapes i64 [{}, {}]; \
         counterexample: input shape {:?}, path {}",
        i64::MIN,
        i64::MAX,
        input_dims,
        path_to(nodes, id)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use tqt_fixedpoint::lower::IntNode;

    /// QuantF32(32-bit) -> Dense with 16-bit-scale weights over a huge
    /// inner dim: the final accumulator provably escapes i64.
    fn overflowing_dense() -> IntGraph {
        let in_dim = 8;
        // |w| = 2^45 each; |x| <= 2^31; 8 taps -> ~2^79 >> i64.
        let w = vec![1i64 << 45; in_dim];
        let nodes = vec![
            IntNode {
                name: "input".into(),
                op: IntOp::Input,
                inputs: vec![],
            },
            IntNode {
                name: "qin".into(),
                op: IntOp::QuantF32 {
                    format: QFormat::new(0, 32, true),
                },
                inputs: vec![0],
            },
            IntNode {
                name: "fc".into(),
                op: IntOp::Dense {
                    w,
                    in_dim,
                    out_dim: 1,
                    bias: None,
                    w_frac: 0,
                },
                inputs: vec![1],
            },
        ];
        IntGraph::from_parts(nodes, 2)
    }

    #[test]
    fn refutes_overflowing_dense_with_path() {
        let ig = overflowing_dense();
        let ir = analyze(&ig, &[1, 8]);
        assert!(ir.report.has(Code::Overflow), "{}", ir.report);
        let d = &ir.report.diags[0];
        assert!(d.detail.contains("input -> qin -> fc"), "{}", d.detail);
    }

    #[test]
    fn proves_small_dense_safe() {
        let nodes = vec![
            IntNode {
                name: "input".into(),
                op: IntOp::Input,
                inputs: vec![],
            },
            IntNode {
                name: "qin".into(),
                op: IntOp::QuantF32 {
                    format: QFormat::new(4, 8, true),
                },
                inputs: vec![0],
            },
            IntNode {
                name: "fc".into(),
                op: IntOp::Dense {
                    w: vec![3, -2, 5, 7],
                    in_dim: 2,
                    out_dim: 2,
                    bias: Some(vec![10, -10]),
                    w_frac: 4,
                },
                inputs: vec![1],
            },
        ];
        let ig = IntGraph::from_parts(nodes, 2);
        let ir = analyze(&ig, &[1, 2]);
        assert!(ir.proven(), "{}", ir.report);
        // Exact per-channel bound: x in [-128,127], col0 w = [3, 5]:
        // pos = 127*3 + 127*5 = 1016, neg = -128*3 + -128*5 = -1024.
        let f = ir.nodes[2];
        assert!(f.lo <= -1024 - 10 && f.hi >= 1016 + 10, "{f:?}");
    }

    #[test]
    fn flags_illegal_requant_shift() {
        let nodes = vec![
            IntNode {
                name: "input".into(),
                op: IntOp::Input,
                inputs: vec![],
            },
            IntNode {
                name: "qin".into(),
                op: IntOp::QuantF32 {
                    format: QFormat::new(70, 8, true),
                },
                inputs: vec![0],
            },
            IntNode {
                name: "rq".into(),
                op: IntOp::Requant {
                    format: QFormat::new(0, 8, true),
                },
                inputs: vec![1],
            },
        ];
        let ig = IntGraph::from_parts(nodes, 2);
        let ir = analyze(&ig, &[1, 4]);
        assert!(ir.report.has(Code::IllegalShift), "{}", ir.report);
    }

    #[test]
    fn flags_non_pow2_gap() {
        let nodes = vec![
            IntNode {
                name: "input".into(),
                op: IntOp::Input,
                inputs: vec![],
            },
            IntNode {
                name: "qin".into(),
                op: IntOp::QuantF32 {
                    format: QFormat::new(4, 8, true),
                },
                inputs: vec![0],
            },
            IntNode {
                name: "gap".into(),
                op: IntOp::GlobalAvgPool,
                inputs: vec![1],
            },
        ];
        let ig = IntGraph::from_parts(nodes, 2);
        let ir = analyze(&ig, &[1, 2, 3, 3]);
        assert!(ir.report.has(Code::FormatViolation), "{}", ir.report);
    }
}
