//! Transform invariant checking: re-verifies the graph after every pass of
//! the optimization pipeline and probes that each pass preserved inference
//! semantics.
//!
//! `TQT-V014` findings are attributed to the pass that introduced them, so
//! a broken rewrite is named directly instead of surfacing later as an
//! unrelated shape or lowering failure.

use crate::diag::{Code, Report};
use crate::shape::{check_structure, infer_shapes};
use tqt_fixedpoint::{IntGraph, Provenance};
use tqt_graph::{transforms, Graph};
use tqt_nn::Mode;
use tqt_tensor::{init, Tensor};

/// Absolute tolerance of the semantic probe.
const PROBE_ATOL: f32 = 1e-4;
/// Relative tolerance of the semantic probe (batch-norm folding reorders
/// float arithmetic, so bit-equality is not expected).
const PROBE_RTOL: f32 = 1e-3;

fn max_deviation(a: &Tensor, b: &Tensor) -> f32 {
    a.data()
        .iter()
        .zip(b.data())
        .map(|(&x, &y)| (x - y).abs() / (PROBE_ATOL + PROBE_RTOL * y.abs()).max(f32::MIN_POSITIVE))
        .fold(0.0f32, f32::max)
}

/// Runs the full transform pipeline like `transforms::optimize`, but
/// re-verifies structure and shapes after every pass and compares a probe
/// forward pass against the pre-pipeline output. Every violation is
/// reported as `TQT-V014` naming the offending pass (the underlying
/// finding is kept in the message).
pub fn checked_optimize(g: &mut Graph, input_dims: &[usize]) -> Report {
    checked_pipeline(g, input_dims, &transforms::pipeline())
}

/// [`checked_optimize`] over an explicit pass list. Exposed so tests can
/// feed a deliberately broken pass and assert it is caught and attributed.
pub fn checked_pipeline(g: &mut Graph, input_dims: &[usize], passes: &[transforms::Pass]) -> Report {
    let mut report = Report::new();
    let mut rng = init::rng(0x7177_7665);
    let probe = init::normal(input_dims.to_vec(), 0.0, 1.0, &mut rng);
    let before = g.forward(&probe, Mode::Eval);

    for &(pass_name, pass) in passes {
        pass(g, input_dims);

        let mut after_pass = check_structure(g);
        after_pass.merge(infer_shapes(g, input_dims).report);
        for d in after_pass.diags {
            report.push_global(
                Code::TransformInvariant,
                format!(
                    "pass `{pass_name}` left the graph invalid: {} {} ({})",
                    d.code,
                    d.node.as_deref().unwrap_or("<graph>"),
                    d.detail
                ),
            );
        }

        let after = g.forward(&probe, Mode::Eval);
        if after.dims() != before.dims() {
            report.push_global(
                Code::TransformInvariant,
                format!(
                    "pass `{pass_name}` changed the output shape {:?} -> {:?}",
                    before.dims(),
                    after.dims()
                ),
            );
        } else {
            let dev = max_deviation(&after, &before);
            if dev > 1.0 {
                report.push_global(
                    Code::TransformInvariant,
                    format!(
                        "pass `{pass_name}` changed inference semantics: max probe \
                         deviation {dev:.1}x tolerance (atol {PROBE_ATOL}, rtol {PROBE_RTOL})"
                    ),
                );
            }
        }
    }
    report
}

/// Runs the graph-level epilogue fusion ([`tqt_fixedpoint::fuse`]) over a
/// lowered graph and re-proves the result, returning the fused graph and
/// every finding:
///
/// * a probe inference must be **bit-identical** — outputs, format, and
///   total saturation/overflow counters (fusion replays the exact
///   standalone kernels, so unlike the float pipeline there is no
///   tolerance; any deviation is a `TQT-V014`);
/// * the fused graph must re-prove under the interval dataflow
///   (`TQT-V011`/`TQT-V012`, fusion legality `TQT-V023`);
/// * the fused graph's slot plan must re-verify alias-free
///   (`TQT-V016`–`TQT-V018`).
pub fn checked_fuse(ig: &IntGraph, input_dims: &[usize]) -> (IntGraph, Report) {
    let (fused, _prov, facts, mut report) =
        checked_fuse_with_provenance(ig, &Provenance::default(), input_dims);
    report.merge(facts.report);
    (fused, report)
}

/// [`checked_fuse`], additionally threading a [`Provenance`] map through
/// the rewrite (fused nodes gain `Fused` entries naming their members)
/// and returning the fused graph's [`IntervalReport`] so callers can
/// reuse the one interval analysis this pass already ran — the verify bin
/// feeds it straight into the translation validator instead of
/// re-analyzing per pass. The interval findings stay in the returned
/// `IntervalReport` (not merged into the `Report`), so callers choose
/// where to surface them exactly once.
pub fn checked_fuse_with_provenance(
    ig: &IntGraph,
    prov: &Provenance,
    input_dims: &[usize],
) -> (IntGraph, Provenance, crate::interval::IntervalReport, Report) {
    let mut report = Report::new();
    let (fused, chains) = tqt_fixedpoint::fuse_with_chains(ig.clone());
    let mut fprov = prov.clone();
    fprov.record_fusion(&chains);

    let mut rng = init::rng(0x6675_7365);
    let probe = init::normal(input_dims.to_vec(), 0.0, 1.0, &mut rng);
    let (y0, s0) = ig.run_with_stats(&probe);
    let (y1, s1) = fused.run_with_stats(&probe);
    if y0 != y1 {
        report.push_global(
            Code::TransformInvariant,
            format!(
                "fusion changed inference: unfused output {:?} in {:?}, fused {:?} in {:?}",
                y0.dims(),
                y0.format,
                y1.dims(),
                y1.format
            ),
        );
    }
    if (s0.total_saturated(), s0.total_overflowed())
        != (s1.total_saturated(), s1.total_overflowed())
    {
        report.push_global(
            Code::TransformInvariant,
            format!(
                "fusion changed runtime counters: saturated {} -> {}, overflowed {} -> {}",
                s0.total_saturated(),
                s1.total_saturated(),
                s0.total_overflowed(),
                s1.total_overflowed()
            ),
        );
    }

    let facts = crate::interval::analyze(&fused, input_dims);
    report.merge(crate::plan_check::check_plan(&fused, &fused.plan(input_dims)));
    (fused, fprov, facts, report)
}

/// Runs the requant-rebalancing pass ([`tqt_fixedpoint::rebalance`]) over a
/// lowered graph and re-proves the result, returning the rebalanced graph,
/// the extended provenance (inserted coercions gain `Quant` entries), the
/// graph's [`IntervalReport`], and every finding:
///
/// * the rebalanced graph must be **well-typed** under the grid type
///   system ([`crate::gridtype::infer_int_grids`]) — any surviving
///   `TQT-V031`–`TQT-V034` means the pass failed to repair (or broke) a
///   merge;
/// * it must re-prove under the interval dataflow
///   (`TQT-V011`/`TQT-V012`) and the slot-plan alias checks
///   (`TQT-V016`–`TQT-V018`).
///
/// Unlike [`checked_fuse_with_provenance`] there is no bit-identity probe:
/// the *input* graph of this pass is by definition not executable when it
/// needs repair (an unmerged add sums incommensurate grids), so there is
/// no reference run to compare against. Bit-accuracy of the rebalanced
/// graph is instead proven against the exact dyadic reference by the
/// translation validator and `tests/rebalance_parity.rs`. As with fusion,
/// interval findings stay in the returned `IntervalReport` so callers
/// surface them exactly once.
pub fn checked_rebalance_with_provenance(
    ig: &IntGraph,
    prov: &Provenance,
    input_dims: &[usize],
) -> (IntGraph, Provenance, crate::interval::IntervalReport, Report) {
    let mut report = Report::new();
    let (rg, rprov, _records) = tqt_fixedpoint::rebalance_with_provenance(ig, prov);

    report.merge(crate::gridtype::infer_int_grids(&rg, input_dims).report);
    let facts = crate::interval::analyze(&rg, input_dims);
    report.merge(crate::plan_check::check_plan(&rg, &rg.plan(input_dims)));
    (rg, rprov, facts, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tqt_graph::Op;
    use tqt_nn::{BatchNorm, Conv2d, Relu};
    use tqt_tensor::conv::Conv2dGeom;

    #[test]
    fn pipeline_preserves_semantics_on_conv_bn_relu() {
        let mut rng = init::rng(42);
        let mut g = Graph::new();
        let x = g.add_input("x");
        let c = g.add(
            "c1",
            Op::Conv(Conv2d::new("c1", 2, 4, Conv2dGeom::same(3), &mut rng)),
            &[x],
        );
        let b = g.add("bn1", Op::BatchNorm(BatchNorm::new("bn1", 4, 0.9, 1e-5)), &[c]);
        let r = g.add("r1", Op::Relu(Relu::new()), &[b]);
        g.set_output(r);
        // Give the BN non-trivial running stats so folding actually rewrites.
        let warm = init::normal([4, 2, 8, 8], 0.5, 2.0, &mut rng);
        g.forward(&warm, Mode::Train);

        let report = checked_optimize(&mut g, &[1, 2, 8, 8]);
        assert!(report.is_clean(), "{report}");
        assert!(
            !g.iter().any(|(_, n)| matches!(n.op, Op::BatchNorm(_))),
            "pipeline should fold the batch norm"
        );
    }
}
