//! # tqt-verify
//!
//! Static analysis for TQT graphs: a pass framework that *proves* the
//! properties the rest of the stack otherwise discovers at runtime (or
//! never).
//!
//! * [`diag`] — stable error codes (`TQT-V001` …) and batched reports;
//! * [`shape`] — structural checks and symbolic shape/dtype inference over
//!   the float [`Graph`];
//! * [`lint`] — the quantization lint set (unquantized compute edges, dead
//!   thresholds, degenerate scales, unfolded batch norms, unmerged scales
//!   at add/concat);
//! * [`gridtype`] — the grid type system: dataflow inference assigning
//!   every edge of both IRs a `Grid { scale_num, shift, zp, bits, signed }`
//!   type, with meet at merges and checked coercions
//!   (`TQT-V031`–`TQT-V034`); the typing discipline the `rebalance`
//!   codegen pass in `tqt-fixedpoint` is certified against;
//! * [`interval`] — interval/bit-width dataflow over the lowered
//!   [`IntGraph`](tqt_fixedpoint::IntGraph): proves i64 accumulators
//!   cannot overflow (or refutes with a counterexample path) and that
//!   every requantization shift is legal;
//! * [`passes`] — transform invariant checking: re-verifies after every
//!   pass of the optimization pipeline;
//! * [`sanitize`] — cross-checks the runtime sanitizer counters against
//!   the static proofs (observed ⊆ proven);
//! * [`plan_check`] — independent alias-freedom proof over the executor's
//!   buffer-slot plan: re-derived liveness and occupancy simulation
//!   (`TQT-V016`–`TQT-V018`);
//! * [`sched_check`] — drivers for the `tqt-rt` concurrency proofs:
//!   bounded model checking of the pool protocol (`TQT-V019`/`TQT-V020`),
//!   fold-partition determinism (`TQT-V021`), and happens-before
//!   sanitizer findings (`TQT-V022`);
//! * [`translate`] — translation validation of the fake-quant →
//!   fixed-point lowering: proves each lowered node bit-exact against the
//!   exact rational fake-quant reference (`tqt_quant::exact`) over its
//!   full input lattice, or refutes with a concrete counterexample input
//!   (`TQT-V025`–`TQT-V030`).
//!
//! The float-graph entry point is [`verify`]; lowered graphs go through
//! [`interval::analyze`]. Both return a [`Report`] instead of panicking,
//! so one run over a model zoo surfaces every finding at once.

pub mod diag;
pub mod gridtype;
pub mod interval;
pub mod lint;
pub mod passes;
pub mod plan_check;
pub mod sanitize;
pub mod sched_check;
pub mod shape;
pub mod translate;

pub use diag::{Code, Diag, Report};
pub use gridtype::{infer_float_grids, infer_int_grids, Grid, GridReport};
pub use interval::{analyze, IntervalReport};
pub use passes::{
    checked_fuse, checked_fuse_with_provenance, checked_optimize, checked_pipeline,
    checked_rebalance_with_provenance,
};
pub use translate::certify;
pub use plan_check::{check_float_plan, check_plan};
pub use sanitize::check_containment;
pub use sched_check::{
    check_batch_schedules, check_fold_partition, check_schedules, collect_hb_findings,
};
pub use shape::{check_structure, infer_shapes, ShapeReport};

use tqt_graph::Graph;

/// How far along the build/optimize/quantize/calibrate pipeline a graph
/// is. Later stages enable stricter lints: an un-folded batch norm is fine
/// in a freshly built graph but a `TQT-V008` after the transform pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Stage {
    /// Freshly constructed, before the transform pipeline.
    Built,
    /// After `transforms::optimize`: no batch norms or average pools.
    Optimized,
    /// After `quantize_graph`: every compute edge quantized.
    Quantized,
    /// After calibration: every threshold has a value.
    Calibrated,
}

/// Verifies a float graph at `stage`: structure, shapes, and the full lint
/// set. Returns every finding (clean report = verified).
pub fn verify(g: &Graph, input_dims: &[usize], stage: Stage) -> Report {
    let mut r = check_structure(g);
    if !r.is_clean() {
        // Shape inference and lints index by edges the structural pass just
        // rejected; run them only on structurally sound graphs.
        return r;
    }
    r.merge(infer_shapes(g, input_dims).report);
    r.merge(lint::lint(g, stage));
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use tqt_graph::{quantize_graph, transforms, QuantizeOptions, Op};
    use tqt_nn::{Conv2d, Dense, GlobalAvgPool, Relu};
    use tqt_tensor::conv::Conv2dGeom;
    use tqt_tensor::init;

    #[test]
    fn full_pipeline_verifies_at_every_stage() {
        let mut rng = init::rng(17);
        let mut g = Graph::new();
        let x = g.add_input("input");
        let c1 = g.add(
            "conv1",
            Op::Conv(Conv2d::new("conv1", 2, 4, Conv2dGeom::same(3), &mut rng)),
            &[x],
        );
        let r1 = g.add("relu1", Op::Relu(Relu::relu6()), &[c1]);
        let gap = g.add("gap", Op::GlobalAvgPool(GlobalAvgPool::new()), &[r1]);
        let fc = g.add("fc", Op::Dense(Dense::new("fc", 4, 3, &mut rng)), &[gap]);
        g.set_output(fc);
        let dims = [1, 2, 8, 8];

        assert!(verify(&g, &dims, Stage::Built).is_clean());
        transforms::optimize(&mut g, &dims);
        assert!(verify(&g, &dims, Stage::Optimized).is_clean());
        quantize_graph(&mut g, QuantizeOptions::static_int8());
        let r = verify(&g, &dims, Stage::Quantized);
        assert!(r.is_clean(), "{r}");
        let calib = init::normal([4, 2, 8, 8], 0.0, 1.0, &mut rng);
        g.calibrate(&calib);
        let r = verify(&g, &dims, Stage::Calibrated);
        assert!(r.is_clean(), "{r}");
    }
}
