//! Cross-checking the runtime sanitizer against the static proofs:
//! everything the instrumented interpreter *observed* must be contained in
//! what the interval analysis *proved* (observed ⊆ proven).
//!
//! A violation here (`TQT-V015`) means the static analysis is unsound —
//! the most serious class of verifier bug — so the property test in
//! `tests/verify_soundness.rs` hammers this check with random graphs.

use crate::diag::{Code, Report};
use crate::interval::IntervalReport;
use tqt_fixedpoint::lower::RunStats;
use tqt_fixedpoint::IntGraph;

/// Checks one instrumented run against the proven envelope. Reports
/// `TQT-V015` for every containment violation:
///
/// * an observed output value outside the proven interval;
/// * saturation observed at a node proven saturation-free;
/// * any wrapped i64 accumulator at a node the overflow proof covered.
pub fn check_containment(ig: &IntGraph, proven: &IntervalReport, observed: &RunStats) -> Report {
    let mut r = Report::new();
    if proven.nodes.len() != observed.nodes.len() {
        r.push_global(
            Code::SanitizerViolation,
            format!(
                "proven facts cover {} nodes but the run observed {}",
                proven.nodes.len(),
                observed.nodes.len()
            ),
        );
        return r;
    }
    for ((node, facts), obs) in ig
        .nodes()
        .iter()
        .zip(&proven.nodes)
        .zip(&observed.nodes)
    {
        let (olo, ohi) = (i128::from(obs.lo), i128::from(obs.hi));
        if olo < facts.lo || ohi > facts.hi {
            r.push(
                Code::SanitizerViolation,
                node.name.clone(),
                format!(
                    "observed range [{}, {}] escapes proven interval [{}, {}]",
                    obs.lo, obs.hi, facts.lo, facts.hi
                ),
            );
        }
        if obs.saturated > 0 && !facts.can_saturate {
            r.push(
                Code::SanitizerViolation,
                node.name.clone(),
                format!(
                    "{} elements saturated at a node proven saturation-free",
                    obs.saturated
                ),
            );
        }
        if obs.overflowed > 0 {
            r.push(
                Code::SanitizerViolation,
                node.name.clone(),
                format!(
                    "{} i64 accumulators wrapped at runtime (overflow proof violated)",
                    obs.overflowed
                ),
            );
        }
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interval::analyze;
    use tqt_fixedpoint::lower::{IntNode, IntOp};
    use tqt_fixedpoint::QFormat;
    use tqt_tensor::init;

    #[test]
    fn observed_is_contained_in_proven_for_a_real_run() {
        let nodes = vec![
            IntNode {
                name: "input".into(),
                op: IntOp::Input,
                inputs: vec![],
            },
            IntNode {
                name: "qin".into(),
                op: IntOp::QuantF32 {
                    format: QFormat::new(4, 8, true),
                },
                inputs: vec![0],
            },
            IntNode {
                name: "fc".into(),
                op: IntOp::Dense {
                    w: vec![3, -2, 5, 7],
                    in_dim: 2,
                    out_dim: 2,
                    bias: Some(vec![10, -10]),
                    w_frac: 4,
                },
                inputs: vec![1],
            },
            IntNode {
                name: "relu".into(),
                op: IntOp::Relu { cap_q: None },
                inputs: vec![2],
            },
        ];
        let ig = IntGraph::from_parts(nodes, 3);
        let proven = analyze(&ig, &[3, 2]);
        assert!(proven.proven(), "{}", proven.report);

        let mut rng = init::rng(9);
        let x = init::normal([3, 2], 0.0, 20.0, &mut rng);
        let (_, stats) = ig.run_with_stats(&x);
        let r = check_containment(&ig, &proven, &stats);
        assert!(r.is_clean(), "{r}");
        // The wide normal input does saturate the 8-bit quantizer, and the
        // analysis predicted that it could.
        assert!(proven.nodes[1].can_saturate);
    }

    #[test]
    fn escaping_observation_is_v015() {
        let nodes = vec![
            IntNode {
                name: "input".into(),
                op: IntOp::Input,
                inputs: vec![],
            },
            IntNode {
                name: "qin".into(),
                op: IntOp::QuantF32 {
                    format: QFormat::new(0, 8, true),
                },
                inputs: vec![0],
            },
        ];
        let ig = IntGraph::from_parts(nodes, 1);
        let proven = analyze(&ig, &[1, 4]);
        let mut rng = init::rng(2);
        let x = init::normal([1, 4], 0.0, 1.0, &mut rng);
        let (_, mut stats) = ig.run_with_stats(&x);
        // Forge an observation outside the proven envelope.
        stats.nodes[1].hi = i64::from(i32::MAX);
        let r = check_containment(&ig, &proven, &stats);
        assert!(r.has(Code::SanitizerViolation), "{r}");
    }
}
