//! Translation validation for the fake-quant → fixed-point lowering:
//! statically proves, per lowered node, that the integer realization
//! (i64 accumulate, power-of-2 requant with round-half-to-even,
//! saturation, fused epilogues incl. leaky-ReLU) computes **exactly** the
//! rational-arithmetic fake-quant reference (eq. 4/11 with pow2 scales)
//! over the node's full input lattice — or refutes with a concrete
//! counterexample input (`TQT-V025`–`TQT-V030`).
//!
//! The reference semantics is `tqt_quant::exact`: dyadic-rational
//! arithmetic with no floating point anywhere, independently formulated
//! from the kernels it judges. The proof target is *int engine ≡ exact
//! rational fake-quant reference*; agreement with the f32 emulation of
//! the baked float graph stays an empirical property (bit-accuracy
//! harness) because the f32 program is itself only equal to the rational
//! reference by the pow2-exactness lemmas below.
//!
//! # Proof structure
//!
//! Each node class gets a closed-form equivalence argument, and the
//! certifier *checks the argument's witness points* by bounded-exhaustive
//! enumeration rather than trusting it:
//!
//! * **Quantization sites** (`QuantF32`): `v / s` with `s = 2^-f` is exact
//!   in f32 except when the result is subnormal (then both sides round to
//!   0, as the exact magnitude is `< 2^-126 < 1/2`) or overflows (then
//!   both sides clip). So realization and reference can only differ at
//!   rounding decisions, which change exactly at the tie points
//!   `(2q+1)·2^-(f+1)` — the certifier enumerates every grid point, tie
//!   point and its f32 neighbors for small bit-widths, and a stratified
//!   cover (always including the clip boundaries) beyond.
//! * **Requantization** (`Requant`, fused `Requant` steps): the kernel
//!   `shift_round` and the dyadic reference are both periodic,
//!   `f(v + k·2^(shift+1)) = f(v) + 2k`, so equality over one double
//!   period implies equality everywhere; the certifier checks a dense
//!   double-period window (plus windows at the proven interval endpoints)
//!   for small shifts and all rounding-class representatives for large
//!   ones. Non-positive shifts are exact left shifts on both sides and
//!   reduce to an overflow check against the proven interval.
//! * **Compute cores** (`Conv`/`Dense`): the i64 dot product *is* the
//!   exact rational sum on the product grid `2^-(fx+fw)` provided no
//!   accumulator wraps — which the interval analysis proves separately
//!   (`TQT-V011`); the certifier's job reduces to re-deriving every baked
//!   constant (quantized weights, grid-snapped biases) from the recorded
//!   original floats in exact arithmetic.
//! * **Epilogues** (`Relu`, `LeakyRelu`, `Add`, fused chains): monotone
//!   lattice maps commute with on-grid clipping, and
//!   `max(v·2^-f, α·2^-A·v·2^-f) = 2^-(f+A)·max(v<<A, αv)` is an exact
//!   integer identity — the obligations are that the snapped constants
//!   match their exact re-derivation *on the grid of their chain
//!   position* and that merge operands share one grid (`TQT-V028`).
//!
//! The certifier consumes the [`Provenance`] map recorded by
//! [`lower_with_provenance`](tqt_fixedpoint::lower::lower_with_provenance)
//! (original float constants plus every scale/zero-point/rounding
//! decision) and the [`IntervalReport`] facts for sound input ranges.
//! NaN inputs are outside the certified domain: the fake-quant reference
//! does not define them and the float graph propagates them.

use crate::diag::{Code, Report};
use crate::interval::{path_to, IntervalReport};
use tqt_fixedpoint::lower::{
    EpiStep, IntGraph, IntNode, IntOp, NodeProv, Provenance, RoundMode, LEAKY_ALPHA_FRAC,
};
use tqt_fixedpoint::requant::shift_round;
use tqt_fixedpoint::QFormat;
use tqt_quant::exact::{fake_quant_int, round_to_grid, shift_round_ref};
use tqt_quant::round_half_even;

/// Bit-widths up to which the quantization lattice is enumerated
/// exhaustively (every grid point, tie point, and f32 neighbor).
const EXHAUSTIVE_BITS: u32 = 12;

/// Requant shifts up to which a full double period (`2^(shift+1)` values)
/// is checked densely; larger shifts use rounding-class representatives.
const EXHAUSTIVE_SHIFT: i32 = 12;

/// Strided sample count per quant site beyond [`EXHAUSTIVE_BITS`].
const STRATIFIED_SAMPLES: i128 = 512;

/// Lower fake-quant clip limit `n` for a `bits`-wide grid (eq. 3),
/// derived independently from `QFormat::qmin` so the `TQT-V030` check is
/// not a tautology.
fn clip_lo(bits: u32, signed: bool) -> i128 {
    if !signed {
        0
    } else if bits >= 64 {
        i128::from(i64::MIN)
    } else {
        -(1i128 << (bits - 1))
    }
}

/// Upper fake-quant clip limit `p` (eq. 3), independent of
/// `QFormat::qmax`.
fn clip_hi(bits: u32, signed: bool) -> i128 {
    if bits >= 64 || (!signed && bits >= 63) {
        i128::from(i64::MAX)
    } else if signed {
        (1i128 << (bits - 1)) - 1
    } else {
        (1i128 << bits) - 1
    }
}

/// The next f32 toward `+inf` (bit-level successor; total order on the
/// non-negative/negative halves of the f32 line).
fn next_up(x: f32) -> f32 {
    if x.is_nan() || x == f32::INFINITY {
        return x;
    }
    // Exact ±0 test: canonicalize -0.0 so the bit-successor arithmetic
    // below starts from +0's pattern.
    let bits = if x == 0.0 { 0 } else { x.to_bits() }; // tqt:allow(float-eq): exact ±0 canonicalization
    if (bits >> 31) == 0 {
        f32::from_bits(bits + 1)
    } else if bits == 0x8000_0000 {
        f32::from_bits(1)
    } else {
        f32::from_bits(bits - 1)
    }
}

/// The next f32 toward `-inf`.
fn next_down(x: f32) -> f32 {
    -next_up(-x)
}

/// The integer realization of a quantization site, mirroring the
/// executor's `quantf32_into` / `QTensor::quantize` element rule.
fn quant_real(v: f32, format: QFormat) -> i64 {
    let raw = round_half_even(v / format.scale()) as i64;
    raw.clamp(format.qmin(), format.qmax())
}

/// Emits the grid/tie/neighbor witness values around integer coordinate
/// `q` of the `2^-frac` grid into `out` (skipping non-finite construction
/// artifacts; ±inf are covered separately).
fn push_witnesses(q: i128, frac: i32, out: &mut Vec<f32>) {
    let s = 2f64.powi(-frac);
    let grid = (q as f64 * s) as f32;
    let tie = ((2 * q + 1) as f64 * s / 2.0) as f32;
    for v in [grid, tie] {
        if v.is_finite() {
            out.push(v);
            out.push(next_up(v));
            out.push(next_down(v));
        }
    }
}

/// One quantization/requantization site's declared decisions (shared
/// between standalone nodes and fused epilogue steps).
struct QuantSite<'a> {
    node: &'a str,
    path: String,
    format: QFormat,
    prov: &'a NodeProv,
}

/// Checks the structural obligations of a quant site: declared rounding
/// mode (`TQT-V026`, with a concrete tie witness), declared zero-point
/// (`TQT-V027`), declared clip range vs the independent eq.-3 derivation
/// (`TQT-V030`), and declared grid vs the emitted format (`TQT-V025`).
/// Returns `false` when a finding fired (callers skip enumeration then:
/// the declared reference is already known wrong).
fn check_quant_site(site: &QuantSite<'_>, r: &mut Report) -> bool {
    let NodeProv::Quant {
        bits,
        signed,
        frac,
        zero_point,
        round,
    } = site.prov
    else {
        r.push(
            Code::NotBitExact,
            site.node,
            format!(
                "quantization site has no Quant provenance record; the \
                 lowering decision cannot be validated (counterexample \
                 path: {})",
                site.path
            ),
        );
        return false;
    };
    let mut ok = true;
    if *round != RoundMode::HalfEven {
        // Tie witness on the declared grid: v = 3·2^-(frac+1) rounds to 2
        // under half-even but 1 under truncation (and 2 under
        // half-away-from-zero only by coincidence of sign).
        let tie = (3f64 * 2f64.powi(-(frac + 1))) as f32;
        let kernel = quant_real(tie, site.format);
        r.push(
            Code::RoundingMismatch,
            site.node,
            format!(
                "declared rounding mode {round:?}, but the kernel rounds \
                 half to even: tie input {tie:e} (3·2^-{}) yields {kernel} \
                 under the kernel, {} under {round:?} (counterexample \
                 path: {})",
                frac + 1,
                match round {
                    RoundMode::Truncate => 1,
                    _ => 2,
                },
                site.path
            ),
        );
        ok = false;
    }
    if *zero_point != 0 {
        r.push(
            Code::ZeroPointDrift,
            site.node,
            format!(
                "declared zero-point {zero_point}, but the symmetric \
                 power-of-2 realization applies no correction: input 0 maps \
                 to 0, not {zero_point} (counterexample path: {})",
                site.path
            ),
        );
        ok = false;
    }
    let (want_lo, want_hi) = (clip_lo(*bits, *signed), clip_hi(*bits, *signed));
    let (got_lo, got_hi) = (
        i128::from(site.format.qmin()),
        i128::from(site.format.qmax()),
    );
    if want_lo != got_lo || want_hi != got_hi {
        r.push(
            Code::ClampRangeMismatch,
            site.node,
            format!(
                "declared {bits}-bit {} grid clips to [{want_lo}, \
                 {want_hi}] (eq. 3), but the integer clamp saturates to \
                 [{got_lo}, {got_hi}]; boundary input {} is mapped \
                 differently (counterexample path: {})",
                if *signed { "signed" } else { "unsigned" },
                if want_hi != got_hi { want_hi.min(got_hi) + 1 } else { want_lo.max(got_lo) - 1 },
                site.path
            ),
        );
        ok = false;
    }
    if *frac != site.format.frac {
        r.push(
            Code::NotBitExact,
            site.node,
            format!(
                "declared grid 2^-{frac} disagrees with the emitted format \
                 2^-{}; every off-grid input is a counterexample \
                 (counterexample path: {})",
                site.format.frac, site.path
            ),
        );
        ok = false;
    }
    ok
}

/// Proves a `QuantF32` site bit-exact against the exact rational
/// reference over its full input lattice (witness enumeration of the
/// closed-form argument in the module docs).
fn certify_quantf32(site: &QuantSite<'_>, r: &mut Report) {
    if !check_quant_site(site, r) {
        return;
    }
    let format = site.format;
    let (qmin, qmax) = (i128::from(format.qmin()), i128::from(format.qmax()));
    let mut witnesses: Vec<f32> = vec![
        0.0,
        -0.0,
        f32::from_bits(1), // smallest subnormal
        -f32::from_bits(1),
        f32::MIN_POSITIVE,
        -f32::MIN_POSITIVE,
        f32::MAX,
        -f32::MAX,
        f32::INFINITY,
        f32::NEG_INFINITY,
    ];
    if format.bits <= EXHAUSTIVE_BITS {
        for q in (qmin - 2)..=(qmax + 2) {
            push_witnesses(q, format.frac, &mut witnesses);
        }
    } else {
        let span = (qmax - qmin).max(1);
        let stride = (span / STRATIFIED_SAMPLES).max(1);
        let mut q = qmin - 2;
        while q <= qmax + 2 {
            push_witnesses(q, format.frac, &mut witnesses);
            q += stride;
        }
        for q in [qmin - 2, qmin - 1, qmin, -1, 0, 1, qmax - 1, qmax, qmax + 1, qmax + 2] {
            push_witnesses(q, format.frac, &mut witnesses);
        }
    }
    for v in witnesses {
        let real = i128::from(quant_real(v, format));
        let Some(reference) = fake_quant_int(v, format.frac, qmin, qmax) else {
            continue; // NaN: outside the certified domain
        };
        if real != reference {
            r.push(
                Code::NotBitExact,
                site.node,
                format!(
                    "quantization of input {v:e} (bits {:#010x}) yields \
                     {real} but the exact rational reference yields \
                     {reference} on the 2^-{} grid (counterexample path: \
                     {})",
                    v.to_bits(),
                    format.frac,
                    site.path
                ),
            );
            return; // one counterexample per site
        }
    }
}

/// Proves a requantization (standalone `Requant` or fused `Requant`
/// step) bit-exact: `shift_round` against the dyadic reference over the
/// node's proven input interval, exploiting shift periodicity.
fn certify_requant(site: &QuantSite<'_>, in_frac: i32, lo: i128, hi: i128, r: &mut Report) {
    if !check_quant_site(site, r) {
        return;
    }
    let shift = in_frac - site.format.frac;
    if shift.abs() > 63 {
        return; // already refuted by the interval pass (TQT-V012/V023)
    }
    let lo64 = lo.clamp(i128::from(i64::MIN), i128::from(i64::MAX)) as i64;
    let hi64 = hi.clamp(i128::from(i64::MIN), i128::from(i64::MAX)) as i64;
    if shift <= 0 {
        // Exact left shift on both sides; only i64 wrap can diverge.
        for v in [lo64, hi64] {
            let exact = i128::from(v) << shift.unsigned_abs();
            if i64::try_from(exact).is_err() {
                r.push(
                    Code::NotBitExact,
                    site.node,
                    format!(
                        "requant left shift by {} wraps i64 on reachable \
                         input {v} (exact value {exact}); reference is the \
                         exact product (counterexample path: {})",
                        -shift, site.path
                    ),
                );
                return;
            }
        }
        return;
    }
    let mut check = |v: i64| -> bool {
        let kernel = shift_round(v, shift);
        match shift_round_ref(v, shift) {
            Some(reference) if reference == kernel => true,
            reference => {
                r.push(
                    Code::NotBitExact,
                    site.node,
                    format!(
                        "shift_round({v}, {shift}) = {kernel} but the exact \
                         rational reference is {reference:?} \
                         (counterexample path: {})",
                        site.path
                    ),
                );
                false
            }
        }
    };
    if shift <= EXHAUSTIVE_SHIFT {
        // One dense double period around 0 (periodicity extends it to all
        // of i64), plus windows at the proven interval endpoints to
        // witness the lemma where the values actually live.
        let period = 1i64 << (shift + 1);
        for v in -period..=period {
            if !check(v) {
                return;
            }
        }
        for base in [lo64, hi64] {
            for off in -64i64..=64 {
                let Some(v) = base.checked_add(off) else { continue };
                if !check(v) {
                    return;
                }
            }
        }
    } else {
        // Rounding-class representatives: every (floor parity × remainder
        // class) pair near 0 and near both interval endpoints.
        let period = 1i64 << shift;
        let half = period >> 1;
        let rems = [0i64, 1, half - 1, half, half + 1, period - 1];
        for base in [0i64, lo64 & !(2 * period - 1), hi64 & !(2 * period - 1)] {
            for parity in 0..2i64 {
                for &rem in &rems {
                    let v = base
                        .checked_add(parity * period)
                        .and_then(|b| b.checked_add(rem));
                    let Some(v) = v else { continue };
                    if !check(v) {
                        return;
                    }
                }
            }
        }
    }
}

/// Re-derives every baked compute constant (quantized weights, biases on
/// the accumulator grid) from the recorded original floats in exact
/// rational arithmetic (`TQT-V025` on any divergence), and checks the
/// declared accumulator grid.
#[allow(clippy::too_many_arguments)]
fn certify_compute(
    node: &str,
    path: &str,
    w: &[i64],
    bias: Option<&[i64]>,
    w_frac: i32,
    in_frac: i32,
    prov: &NodeProv,
    r: &mut Report,
) {
    let NodeProv::Compute {
        orig_w,
        w_frac: p_wfrac,
        w_bits,
        w_signed,
        orig_bias,
        acc_frac,
    } = prov
    else {
        r.push(
            Code::NotBitExact,
            node,
            format!(
                "compute core has no Compute provenance record; baked \
                 weights cannot be validated (counterexample path: {path})"
            ),
        );
        return;
    };
    if *p_wfrac != w_frac {
        r.push(
            Code::NotBitExact,
            node,
            format!(
                "declared weight grid 2^-{p_wfrac} disagrees with the baked \
                 node's 2^-{w_frac} (counterexample path: {path})"
            ),
        );
        return;
    }
    if *acc_frac != in_frac + w_frac {
        r.push(
            Code::NotBitExact,
            node,
            format!(
                "declared accumulator grid 2^-{acc_frac} is not the product \
                 grid 2^-({in_frac}+{w_frac}); every nonzero activation is \
                 a counterexample (counterexample path: {path})"
            ),
        );
        return;
    }
    if orig_w.len() != w.len() {
        r.push(
            Code::NotBitExact,
            node,
            format!(
                "provenance records {} original weights but the baked node \
                 holds {} (counterexample path: {path})",
                orig_w.len(),
                w.len()
            ),
        );
        return;
    }
    let (wlo, whi) = (clip_lo(*w_bits, *w_signed), clip_hi(*w_bits, *w_signed));
    let mut first: Option<(usize, i128, i64)> = None;
    let mut mismatches = 0usize;
    for (i, (&orig, &baked)) in orig_w.iter().zip(w).enumerate() {
        let expected = fake_quant_int(orig, w_frac, wlo, whi);
        if expected != Some(i128::from(baked)) {
            mismatches += 1;
            if first.is_none() {
                first = Some((i, expected.unwrap_or(0), baked));
            }
        }
    }
    if let Some((i, expected, baked)) = first {
        r.push(
            Code::NotBitExact,
            node,
            format!(
                "baked weight [{i}] is {baked} but exact fake-quant of the \
                 original {} on the {}-bit 2^-{w_frac} grid is {expected} \
                 ({mismatches} weight(s) diverge; counterexample path: \
                 {path})",
                orig_w[i], w_bits
            ),
        );
        return;
    }
    match (orig_bias, bias) {
        (None, None) => {}
        (Some(orig), Some(baked)) if orig.len() == baked.len() => {
            for (i, (&o, &b)) in orig.iter().zip(baked).enumerate() {
                let expected = round_to_grid(o, *acc_frac);
                if expected != Some(i128::from(b)) {
                    r.push(
                        Code::NotBitExact,
                        node,
                        format!(
                            "baked bias [{i}] is {b} but the exact snap of \
                             the original {o} onto the accumulator grid \
                             2^-{acc_frac} is {expected:?} (counterexample \
                             path: {path})"
                        ),
                    );
                    return;
                }
            }
        }
        _ => {
            r.push(
                Code::NotBitExact,
                node,
                format!(
                    "bias presence/length disagrees between provenance and \
                     the baked node (counterexample path: {path})"
                ),
            );
        }
    }
}

/// Checks a standalone ReLU against its provenance: the cap constant must
/// be the exact grid snap of the recorded original on the *input* grid.
fn certify_relu(
    node: &str,
    path: &str,
    cap_q: Option<i64>,
    in_frac: i32,
    prov: &NodeProv,
    fused: bool,
    r: &mut Report,
) {
    // In a fused chain a mis-derived constant is an epilogue-semantics
    // divergence (the chain no longer replays the standalone nodes);
    // standalone it is a plain bit-exactness failure.
    let code = if fused { Code::EpilogueMismatch } else { Code::NotBitExact };
    let NodeProv::Relu { orig_cap, frac } = prov else {
        r.push(
            code,
            node,
            format!(
                "relu has no Relu provenance record (counterexample path: \
                 {path})"
            ),
        );
        return;
    };
    if *frac != in_frac {
        r.push(
            code,
            node,
            format!(
                "relu cap was snapped on the 2^-{frac} grid but the node \
                 executes on 2^-{in_frac}; inputs between the two grids' \
                 cap levels are counterexamples (counterexample path: \
                 {path})"
            ),
        );
        return;
    }
    let expected = orig_cap.and_then(|c| round_to_grid(c, in_frac));
    if expected != cap_q.map(i128::from) {
        r.push(
            code,
            node,
            format!(
                "relu cap is {cap_q:?} but the exact snap of the original \
                 {orig_cap:?} onto the 2^-{in_frac} grid is {expected:?}; \
                 any input above the smaller cap is a counterexample \
                 (counterexample path: {path})"
            ),
        );
    }
}

/// Checks a leaky ReLU's slope constant against its provenance (the
/// `max(v<<A, αv)` realization is an exact integer identity once the
/// snapped slope matches).
fn certify_leaky(
    node: &str,
    path: &str,
    alpha_q: i64,
    prov: &NodeProv,
    fused: bool,
    r: &mut Report,
) {
    let code = if fused { Code::EpilogueMismatch } else { Code::NotBitExact };
    let NodeProv::Leaky { orig_alpha } = prov else {
        r.push(
            code,
            node,
            format!(
                "leaky relu has no Leaky provenance record (counterexample \
                 path: {path})"
            ),
        );
        return;
    };
    let expected = round_to_grid(*orig_alpha, LEAKY_ALPHA_FRAC);
    if expected != Some(i128::from(alpha_q)) {
        r.push(
            code,
            node,
            format!(
                "leaky slope is {alpha_q} but the exact Q{LEAKY_ALPHA_FRAC} \
                 snap of the original {orig_alpha} is {expected:?}; any \
                 negative input is a counterexample (counterexample path: \
                 {path})"
            ),
        );
    }
}

/// Flags merge operands on different grids: the integer add/concat treats
/// both operands as coordinates of one grid, so differing fractional
/// lengths make the sum meaningless (`TQT-V028`).
fn certify_merge(
    node: &str,
    path: &str,
    what: &str,
    operands: &[(usize, Option<QFormat>)],
    nodes: &[IntNode],
    r: &mut Report,
) {
    let Some((first_id, Some(first))) = operands.first().copied() else {
        return;
    };
    for &(id, f) in &operands[1..] {
        let Some(f) = f else { continue };
        if f.frac != first.frac {
            r.push(
                Code::ScaleMergeViolation,
                node,
                format!(
                    "{what} operand `{}` is on grid 2^-{} but operand `{}` \
                     is on 2^-{}; the integer {what} sums raw coordinates, \
                     so e.g. both operands reading 1 denote different reals \
                     — merge the producers onto one threshold before \
                     lowering (counterexample path: {path})",
                    nodes[first_id].name, first.frac, nodes[id].name, f.frac
                ),
            );
            return;
        }
    }
}

/// Certifies every node of a lowered graph against its provenance: proves
/// the integer realization equal to the exact rational fake-quant
/// reference, or reports `TQT-V025`–`TQT-V030` findings with concrete
/// counterexample inputs/paths. `facts` must come from
/// [`crate::interval::analyze`] over the same graph (sound input
/// intervals; its `TQT-V011` overflow proof is the precondition under
/// which i64 accumulation is exact).
pub fn certify(
    ig: &IntGraph,
    prov: &Provenance,
    facts: &IntervalReport,
    _input_dims: &[usize],
) -> Report {
    let nodes = ig.nodes();
    let mut r = Report::new();
    for (id, node) in nodes.iter().enumerate() {
        let path = path_to(nodes, id);
        let in_fact = node.inputs.first().map(|&i| facts.nodes[i]);
        let in_frac = in_fact.and_then(|f| f.format).map(|f| f.frac).unwrap_or(0);
        let np = prov.get(&node.name);
        match &node.op {
            IntOp::Input | IntOp::MaxPool { .. } | IntOp::Flatten => {}
            IntOp::GlobalAvgPool => {
                // Exact i128 sum with a pow2 spatial divisor folded into
                // the grid: exact by construction; non-pow2 sizes are
                // already refuted as TQT-V013 by the interval pass.
            }
            IntOp::QuantF32 { format } => {
                let site = QuantSite {
                    node: &node.name,
                    path: path.clone(),
                    format: *format,
                    prov: np.unwrap_or(&NodeProv::Opaque),
                };
                certify_quantf32(&site, &mut r);
            }
            IntOp::Requant { format } => {
                let (lo, hi) = in_fact.map(|f| (f.lo, f.hi)).unwrap_or((0, 0));
                let site = QuantSite {
                    node: &node.name,
                    path: path.clone(),
                    format: *format,
                    prov: np.unwrap_or(&NodeProv::Opaque),
                };
                certify_requant(&site, in_frac, lo, hi, &mut r);
            }
            IntOp::Conv { w, bias, w_frac, .. } => {
                certify_compute(
                    &node.name,
                    &path,
                    w,
                    bias.as_deref(),
                    *w_frac,
                    in_frac,
                    np.unwrap_or(&NodeProv::Opaque),
                    &mut r,
                );
            }
            IntOp::Dense { w, bias, w_frac, .. } => {
                certify_compute(
                    &node.name,
                    &path,
                    w,
                    bias.as_deref(),
                    *w_frac,
                    in_frac,
                    np.unwrap_or(&NodeProv::Opaque),
                    &mut r,
                );
            }
            IntOp::Relu { cap_q } => {
                certify_relu(
                    &node.name,
                    &path,
                    *cap_q,
                    in_frac,
                    np.unwrap_or(&NodeProv::Opaque),
                    false,
                    &mut r,
                );
            }
            IntOp::LeakyRelu { alpha_q } => {
                certify_leaky(
                    &node.name,
                    &path,
                    *alpha_q,
                    np.unwrap_or(&NodeProv::Opaque),
                    false,
                    &mut r,
                );
            }
            IntOp::Add | IntOp::Concat => {
                let what = if matches!(node.op, IntOp::Add) { "add" } else { "concat" };
                let operands: Vec<(usize, Option<QFormat>)> = node
                    .inputs
                    .iter()
                    .map(|&i| (i, facts.nodes[i].format))
                    .collect();
                certify_merge(&node.name, &path, what, &operands, nodes, &mut r);
            }
            IntOp::Fused { core, epi } => {
                certify_fused(ig, prov, facts, id, core, epi, &path, &mut r);
            }
        }
    }
    r
}

/// Certifies a fused node: structure against the chain record
/// (`TQT-V029`), each member against its own provenance with the running
/// chain grid, and residual merges (`TQT-V028`).
#[allow(clippy::too_many_arguments)]
fn certify_fused(
    ig: &IntGraph,
    prov: &Provenance,
    facts: &IntervalReport,
    id: usize,
    core: &IntOp,
    epi: &[EpiStep],
    path: &str,
    r: &mut Report,
) {
    let nodes = ig.nodes();
    let node = &nodes[id];
    let Some(NodeProv::Fused { members }) = prov.get(&node.name) else {
        r.push(
            Code::EpilogueMismatch,
            node.name.clone(),
            format!(
                "fused node has no Fused provenance record; the chain it \
                 replaced cannot be validated (counterexample path: {path})"
            ),
        );
        return;
    };
    if members.len() != epi.len() + 1 {
        r.push(
            Code::EpilogueMismatch,
            node.name.clone(),
            format!(
                "fused epilogue has {} step(s) but the chain record names \
                 {} member(s) (core + one per step expected); the fused \
                 node does not replay the chain it replaced \
                 (counterexample path: {path})",
                epi.len(),
                members.len()
            ),
        );
        return;
    }
    let in_fact = node.inputs.first().map(|&i| facts.nodes[i]);
    let in_frac = in_fact.and_then(|f| f.format).map(|f| f.frac).unwrap_or(0);
    let (in_lo, in_hi) = in_fact.map(|f| (f.lo, f.hi)).unwrap_or((0, 0));
    // Core: same obligations as a standalone conv/dense, and the same
    // exact per-channel accumulator bounds as the interval pass (sound
    // input ranges for the epilogue requant witness windows; the chain's
    // reachable set is much tighter than the raw i64 range, and the
    // left-shift wrap check must not refute unreachable inputs).
    let core_prov = prov.get(&members[0]).unwrap_or(&NodeProv::Opaque);
    let (mut cur_frac, mut lo, mut hi) = match core {
        IntOp::Conv {
            w,
            wdims,
            bias,
            geom,
            w_frac,
            ..
        } => {
            certify_compute(
                &node.name,
                path,
                w,
                bias.as_deref(),
                *w_frac,
                in_frac,
                core_prov,
                r,
            );
            let (lo, hi) = crate::interval::conv_core_bounds(
                w,
                *wdims,
                bias.as_deref(),
                geom.pad > 0,
                in_lo,
                in_hi,
            );
            (in_frac + w_frac, lo, hi)
        }
        IntOp::Dense {
            w,
            in_dim,
            out_dim,
            bias,
            w_frac,
        } => {
            certify_compute(
                &node.name,
                path,
                w,
                bias.as_deref(),
                *w_frac,
                in_frac,
                core_prov,
                r,
            );
            let (lo, hi) = crate::interval::dense_core_bounds(
                w,
                *in_dim,
                *out_dim,
                bias.as_deref(),
                in_lo,
                in_hi,
            );
            (in_frac + w_frac, lo, hi)
        }
        _ => return, // non-compute core: already TQT-V023
    };
    let mut residual_slot = 1usize;
    for (step_idx, (step, member)) in epi.iter().zip(&members[1..]).enumerate() {
        let mp = prov.get(member).unwrap_or(&NodeProv::Opaque);
        match step {
            EpiStep::Requant { format } => {
                if !matches!(mp, NodeProv::Quant { .. }) {
                    r.push(
                        Code::EpilogueMismatch,
                        node.name.clone(),
                        format!(
                            "epilogue step {step_idx} is a requant but chain \
                             member `{member}` was lowered as a different \
                             kind (counterexample path: {path})"
                        ),
                    );
                    return;
                }
                let site = QuantSite {
                    node: &node.name,
                    path: path.to_string(),
                    format: *format,
                    prov: mp,
                };
                certify_requant(&site, cur_frac, lo, hi, r);
                cur_frac = format.frac;
                lo = i128::from(format.qmin());
                hi = i128::from(format.qmax());
            }
            EpiStep::AddResidual => {
                let Some(&rid) = node.inputs.get(residual_slot) else {
                    return; // arity mismatch: already TQT-V023
                };
                residual_slot += 1;
                let rf = facts.nodes[rid].format;
                if rf.map(|f| f.frac) != Some(cur_frac) {
                    r.push(
                        Code::ScaleMergeViolation,
                        node.name.clone(),
                        format!(
                            "fused residual `{}` is on grid {:?} but the \
                             chain accumulator is on 2^-{cur_frac} at step \
                             {step_idx}; the add sums incommensurate grids \
                             (counterexample path: {path})",
                            nodes[rid].name,
                            rf.map(|f| f.frac)
                        ),
                    );
                }
                let rfac = facts.nodes[rid];
                lo += rfac.lo;
                hi += rfac.hi;
            }
            EpiStep::Relu { cap_q } => {
                certify_relu(&node.name, path, *cap_q, cur_frac, mp, true, r);
                let cap = cap_q.map(i128::from).unwrap_or(i128::MAX);
                lo = lo.max(0).min(cap);
                hi = hi.max(0).min(cap);
            }
            EpiStep::LeakyRelu { alpha_q } => {
                certify_leaky(&node.name, path, *alpha_q, mp, true, r);
                let a = i128::from(*alpha_q);
                let f = |v: i128| (v << LEAKY_ALPHA_FRAC).max(v.saturating_mul(a));
                let (nlo, nhi) = (f(lo).min(f(hi)), f(lo).max(f(hi)));
                lo = nlo;
                hi = nhi;
                cur_frac += LEAKY_ALPHA_FRAC;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clip_limits_match_qformat_on_common_widths() {
        // The independent derivation must agree with QFormat on every
        // width the pipeline emits — the V030 check then only fires on
        // genuinely inconsistent declarations.
        for bits in 2..=32u32 {
            for signed in [false, true] {
                let f = QFormat::new(0, bits, signed);
                assert_eq!(clip_lo(bits, signed), i128::from(f.qmin()), "{bits}/{signed}");
                assert_eq!(clip_hi(bits, signed), i128::from(f.qmax()), "{bits}/{signed}");
            }
        }
    }

    #[test]
    fn next_up_down_step_one_ulp() {
        assert_eq!(next_up(0.0), f32::from_bits(1));
        assert_eq!(next_down(0.0), -f32::from_bits(1));
        assert_eq!(next_up(1.0), f32::from_bits(1.0f32.to_bits() + 1));
        assert_eq!(next_down(1.0), f32::from_bits(1.0f32.to_bits() - 1));
        assert!(next_up(1.5) > 1.5);
        assert!(next_down(-2.0) < -2.0);
    }

    #[test]
    fn quant_real_agrees_with_exact_reference_on_dense_sweep() {
        let format = QFormat::new(5, 6, true);
        let (qmin, qmax) = (i128::from(format.qmin()), i128::from(format.qmax()));
        let mut v = -2.0f32;
        while v < 2.0 {
            assert_eq!(
                Some(i128::from(quant_real(v, format))),
                fake_quant_int(v, format.frac, qmin, qmax),
                "v={v}"
            );
            v = next_up(v + 1e-4);
        }
    }
}
