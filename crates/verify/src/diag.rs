//! Diagnostics: stable error codes, per-node findings, and reports.
//!
//! Every analysis in this crate reports through [`Report`] rather than
//! panicking, so callers can batch-lint a whole model zoo and CI can print
//! every finding in one run. Codes are stable identifiers (`TQT-V001` …)
//! documented in `DESIGN.md`; tests assert on codes, never on message
//! text.

use std::fmt;

/// A stable diagnostic code. The numeric part never changes meaning once
/// released; retired codes are left as gaps rather than reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Code {
    /// `TQT-V001` — structural violation: missing input/output, bad arity,
    /// forward edge, dangling threshold reference.
    Structure,
    /// `TQT-V002` — shape or dtype inference failure: rank/channel/feature
    /// mismatch between a node and its inputs or weights.
    Shape,
    /// `TQT-V003` — a compute op consumes an edge that is not on a
    /// quantized grid (missing activation quantizer).
    UnquantizedEdge,
    /// `TQT-V004` — a compute op has no weight quantizer attached.
    MissingWeightQuant,
    /// `TQT-V005` — a threshold in the side table is referenced by no
    /// quant node and no weight quantizer (dead threshold).
    DeadThreshold,
    /// `TQT-V006` — a referenced threshold was never calibrated.
    Uncalibrated,
    /// `TQT-V007` — a threshold yields a degenerate scale: non-finite
    /// `log2 t` or a fractional length outside the shiftable range.
    DegenerateScale,
    /// `TQT-V008` — a batch-norm survives where the graph is expected to
    /// be folded.
    UnfoldedBatchNorm,
    /// `TQT-V009` — an average pool survives where the graph is expected
    /// to be converted to depthwise form.
    UnconvertedAvgPool,
    /// `TQT-V010` — merge-node inputs disagree on quantization: an
    /// add/concat whose operands are on different grids (unmerged scales).
    MergeMismatch,
    /// `TQT-V011` — an i64 accumulator can overflow: the proven value
    /// interval of a node escapes the i64 range.
    Overflow,
    /// `TQT-V012` — a requantization shift is outside the legal range.
    IllegalShift,
    /// `TQT-V013` — fixed-point format violation: e.g. a global average
    /// pool over a non-power-of-two spatial size, or a malformed Q-format.
    FormatViolation,
    /// `TQT-V014` — a graph transform broke an invariant: the graph fails
    /// re-verification or changes semantics after a pass.
    TransformInvariant,
    /// `TQT-V015` — runtime sanitizer contradiction: observed behavior
    /// escapes the statically proven envelope (observed ⊄ proven).
    SanitizerViolation,
    /// `TQT-V016` — executor-plan aliasing: a node writes a buffer slot
    /// while a live tensor (a pending consumer's operand, the graph
    /// output, or the writer's own input) still occupies it.
    PlanAlias,
    /// `TQT-V017` — executor-plan stale read: a node reads a slot whose
    /// occupant is not the producing write (slot released or overwritten
    /// before the last consumer executed).
    PlanStaleRead,
    /// `TQT-V018` — executor-plan storage violation: slot capacity below
    /// the assigned tensor, a per-node length that contradicts
    /// independent shape re-derivation, or scratch-arena accounting that
    /// disagrees with the plan.
    PlanStorage,
    /// `TQT-V019` — schedule deadlock: the bounded model checker found a
    /// reachable pool-protocol state with no enabled thread before the
    /// region completed.
    SchedDeadlock,
    /// `TQT-V020` — schedule protocol violation: a lost or duplicated
    /// block, corrupted completion count, or a panic not delivered to
    /// the submitting thread, with a counterexample interleaving.
    SchedProtocol,
    /// `TQT-V021` — fold-partition violation: `par_fold_blocks` produced
    /// a block partition that depends on the thread count (breaking
    /// bit-identical deterministic reduction).
    FoldPartition,
    /// `TQT-V022` — happens-before violation from the runtime sanitizer:
    /// overlapping (or non-covering) mutable block ranges in a parallel
    /// region, or a scratch checkout escaping its block.
    HappensBefore,
    /// `TQT-V023` — illegal fusion: a fused node whose structure or
    /// epilogue breaks the fusion legality conditions — a core that is
    /// not conv/dense, a residual add whose operand is on a different
    /// grid than the accumulator at that epilogue position, an epilogue
    /// requant whose shift is outside the legal range, or an arity that
    /// contradicts the epilogue's residual steps.
    IllegalFusion,
    /// `TQT-V024` — serving batch-protocol violation: the bounded model
    /// checker found an interleaving of the admission queue where a
    /// request is lost or dispatched twice, a deadline-expired request
    /// is stranded behind a partial batch, or a drain exits with
    /// requests still queued — with a counterexample schedule.
    BatchProtocol,
    /// `TQT-V025` — node lowering not bit-exact: the translation validator
    /// found an input (or baked constant) where the integer realization
    /// disagrees with the exact rational fake-quant reference, or the
    /// provenance needed to prove equivalence is missing/inconsistent.
    NotBitExact,
    /// `TQT-V026` — requant rounding-mode mismatch: a lowering decision
    /// declares a rounding rule other than round-half-to-even while the
    /// integer kernel implements banker's rounding, with a concrete tie
    /// input as witness.
    RoundingMismatch,
    /// `TQT-V027` — zero-point correction error: the declared zero-point
    /// is non-zero but the symmetric power-of-2 realization applies no
    /// correction (or vice versa).
    ZeroPointDrift,
    /// `TQT-V028` — Add/Concat operand scale-merge violation: merge-node
    /// operands carry different requant formats, so the integer add sums
    /// incommensurate grids (the unmerged-scale gap of ROADMAP item 2).
    ScaleMergeViolation,
    /// `TQT-V029` — fused-epilogue semantics diverge from the unfused
    /// chain: member count or step kind disagrees with the chain's
    /// provenance, or a fused constant (cap, slope) was snapped on the
    /// wrong grid for its chain position.
    EpilogueMismatch,
    /// `TQT-V030` — saturation-range mismatch: the integer clamp range at
    /// a (re)quantization site differs from the fake-quant clip range
    /// `[n, p]` implied by the declared bits/signedness (eq. 3).
    ClampRangeMismatch,
    /// `TQT-V031` — grid-type contradiction: dataflow inference derived
    /// two incompatible `Grid` types for one edge (e.g. the operands of a
    /// merge node sit on different power-of-2 grids), reported with both
    /// deriving paths as the counterexample.
    GridContradiction,
    /// `TQT-V032` — uninferable edge: grid-type inference reached an edge
    /// whose type cannot be derived from any quantization site (a compute
    /// op consuming an ungridded input, or a pooling reduction whose
    /// scale factor is not a power of two).
    UninferableGrid,
    /// `TQT-V033` — redundant requant lint: a coercion whose target grid
    /// is identical (scale, zero-point, bits, signedness) to the grid
    /// already inferred on its input edge; the node is a no-op.
    RedundantRequant,
    /// `TQT-V034` — illegal coercion: a requant between two inferred
    /// grids that cannot be realized by the integer engine — shift
    /// outside `[-63, 63]` or a zero-point that overflows the target
    /// format's representable range.
    IllegalCoercion,
}

impl Code {
    /// The stable identifier, e.g. `"TQT-V011"`.
    pub fn id(self) -> &'static str {
        match self {
            Code::Structure => "TQT-V001",
            Code::Shape => "TQT-V002",
            Code::UnquantizedEdge => "TQT-V003",
            Code::MissingWeightQuant => "TQT-V004",
            Code::DeadThreshold => "TQT-V005",
            Code::Uncalibrated => "TQT-V006",
            Code::DegenerateScale => "TQT-V007",
            Code::UnfoldedBatchNorm => "TQT-V008",
            Code::UnconvertedAvgPool => "TQT-V009",
            Code::MergeMismatch => "TQT-V010",
            Code::Overflow => "TQT-V011",
            Code::IllegalShift => "TQT-V012",
            Code::FormatViolation => "TQT-V013",
            Code::TransformInvariant => "TQT-V014",
            Code::SanitizerViolation => "TQT-V015",
            Code::PlanAlias => "TQT-V016",
            Code::PlanStaleRead => "TQT-V017",
            Code::PlanStorage => "TQT-V018",
            Code::SchedDeadlock => "TQT-V019",
            Code::SchedProtocol => "TQT-V020",
            Code::FoldPartition => "TQT-V021",
            Code::HappensBefore => "TQT-V022",
            Code::IllegalFusion => "TQT-V023",
            Code::BatchProtocol => "TQT-V024",
            Code::NotBitExact => "TQT-V025",
            Code::RoundingMismatch => "TQT-V026",
            Code::ZeroPointDrift => "TQT-V027",
            Code::ScaleMergeViolation => "TQT-V028",
            Code::EpilogueMismatch => "TQT-V029",
            Code::ClampRangeMismatch => "TQT-V030",
            Code::GridContradiction => "TQT-V031",
            Code::UninferableGrid => "TQT-V032",
            Code::RedundantRequant => "TQT-V033",
            Code::IllegalCoercion => "TQT-V034",
        }
    }

    /// One-line description of what the code means.
    pub fn title(self) -> &'static str {
        match self {
            Code::Structure => "structural violation",
            Code::Shape => "shape/dtype inference failure",
            Code::UnquantizedEdge => "unquantized compute edge",
            Code::MissingWeightQuant => "missing weight quantizer",
            Code::DeadThreshold => "dead threshold",
            Code::Uncalibrated => "uncalibrated threshold",
            Code::DegenerateScale => "degenerate scale",
            Code::UnfoldedBatchNorm => "unfolded batch norm",
            Code::UnconvertedAvgPool => "unconverted average pool",
            Code::MergeMismatch => "merge-node quantization mismatch",
            Code::Overflow => "accumulator overflow",
            Code::IllegalShift => "illegal requantization shift",
            Code::FormatViolation => "fixed-point format violation",
            Code::TransformInvariant => "transform invariant violation",
            Code::SanitizerViolation => "runtime sanitizer violation",
            Code::PlanAlias => "executor-plan slot aliasing",
            Code::PlanStaleRead => "executor-plan stale read",
            Code::PlanStorage => "executor-plan storage violation",
            Code::SchedDeadlock => "pool schedule deadlock",
            Code::SchedProtocol => "pool schedule protocol violation",
            Code::FoldPartition => "thread-dependent fold partition",
            Code::HappensBefore => "happens-before violation",
            Code::IllegalFusion => "illegal epilogue fusion",
            Code::BatchProtocol => "serving batch-protocol violation",
            Code::NotBitExact => "node lowering not bit-exact",
            Code::RoundingMismatch => "requant rounding-mode mismatch",
            Code::ZeroPointDrift => "zero-point correction error",
            Code::ScaleMergeViolation => "operand scale-merge violation",
            Code::EpilogueMismatch => "fused-epilogue semantics mismatch",
            Code::ClampRangeMismatch => "saturation-range mismatch",
            Code::GridContradiction => "grid-type contradiction",
            Code::UninferableGrid => "uninferable grid type",
            Code::RedundantRequant => "redundant requantization",
            Code::IllegalCoercion => "illegal grid coercion",
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// A single finding: code, the node it anchors to (if any), and detail.
#[derive(Debug, Clone)]
pub struct Diag {
    /// The stable code.
    pub code: Code,
    /// Name of the offending node, when the finding is node-local.
    pub node: Option<String>,
    /// Human-readable specifics: what was found, and for refutations the
    /// counterexample (shape, interval, node path).
    pub detail: String,
}

impl fmt::Display for Diag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.node {
            Some(n) => write!(f, "{} [{}] at `{n}`: {}", self.code, self.code.title(), self.detail),
            None => write!(f, "{} [{}]: {}", self.code, self.code.title(), self.detail),
        }
    }
}

/// An ordered collection of findings from one or more analyses.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// The findings, in discovery order.
    pub diags: Vec<Diag>,
}

impl Report {
    /// An empty report.
    pub fn new() -> Self {
        Report::default()
    }

    /// Records a finding anchored to a node.
    pub fn push(&mut self, code: Code, node: impl Into<String>, detail: impl Into<String>) {
        self.diags.push(Diag {
            code,
            node: Some(node.into()),
            detail: detail.into(),
        });
    }

    /// Records a graph-level finding.
    pub fn push_global(&mut self, code: Code, detail: impl Into<String>) {
        self.diags.push(Diag {
            code,
            node: None,
            detail: detail.into(),
        });
    }

    /// Whether no analysis found anything.
    pub fn is_clean(&self) -> bool {
        self.diags.is_empty()
    }

    /// Appends all findings of `other`.
    pub fn merge(&mut self, other: Report) {
        self.diags.extend(other.diags);
    }

    /// Whether any finding carries `code`.
    pub fn has(&self, code: Code) -> bool {
        self.diags.iter().any(|d| d.code == code)
    }

    /// The distinct codes present, sorted.
    pub fn codes(&self) -> Vec<Code> {
        let mut v: Vec<Code> = self.diags.iter().map(|d| d.code).collect();
        v.sort();
        v.dedup();
        v
    }

    /// Renders every finding, one per line.
    pub fn render(&self) -> String {
        self.diags
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_distinct() {
        let all = [
            Code::Structure,
            Code::Shape,
            Code::UnquantizedEdge,
            Code::MissingWeightQuant,
            Code::DeadThreshold,
            Code::Uncalibrated,
            Code::DegenerateScale,
            Code::UnfoldedBatchNorm,
            Code::UnconvertedAvgPool,
            Code::MergeMismatch,
            Code::Overflow,
            Code::IllegalShift,
            Code::FormatViolation,
            Code::TransformInvariant,
            Code::SanitizerViolation,
            Code::PlanAlias,
            Code::PlanStaleRead,
            Code::PlanStorage,
            Code::SchedDeadlock,
            Code::SchedProtocol,
            Code::FoldPartition,
            Code::HappensBefore,
            Code::IllegalFusion,
            Code::BatchProtocol,
            Code::NotBitExact,
            Code::RoundingMismatch,
            Code::ZeroPointDrift,
            Code::ScaleMergeViolation,
            Code::EpilogueMismatch,
            Code::ClampRangeMismatch,
            Code::GridContradiction,
            Code::UninferableGrid,
            Code::RedundantRequant,
            Code::IllegalCoercion,
        ];
        let mut ids: Vec<&str> = all.iter().map(|c| c.id()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), all.len(), "duplicate code ids");
        for c in all {
            assert!(c.id().starts_with("TQT-V"), "unexpected id scheme {}", c.id());
        }
    }

    #[test]
    fn report_collects_and_renders() {
        let mut r = Report::new();
        assert!(r.is_clean());
        r.push(Code::Overflow, "conv1", "interval [0, 2^70] escapes i64");
        r.push_global(Code::Structure, "no output set");
        assert!(!r.is_clean());
        assert!(r.has(Code::Overflow));
        assert!(!r.has(Code::Shape));
        assert_eq!(r.codes(), vec![Code::Structure, Code::Overflow]);
        let text = r.render();
        assert!(text.contains("TQT-V011"));
        assert!(text.contains("conv1"));
    }
}
