//! Grid type system: whole-graph quantization-format inference over both
//! IRs.
//!
//! Every edge of a quantized graph carries values on exactly one
//! *quantization grid* — `value = scale_num · 2^-shift · (int - zp)` — and
//! the paper's fixed-point mapping (§3, eq. 3–5) only composes when the
//! grids agree wherever values meet. This pass makes that invariant a
//! statically inferred *type system*: a forward dataflow assigns each edge
//! a [`Grid`] type via per-op transfer functions, takes the meet at merge
//! nodes, and checks every coercion (requant) for subsumption and
//! legality. Violations are reported with stable codes:
//!
//! * `TQT-V031` — grid-type contradiction: two incompatible required types
//!   on one edge (e.g. add/concat operands deriving different grids), with
//!   the two deriving paths as counterexample;
//! * `TQT-V032` — uninferable edge: a value-interpreting op consumes an
//!   edge whose grid cannot be derived from any quantization site (or a
//!   pooling reduction whose scale factor is not a power of two);
//! * `TQT-V033` — redundant requant lint: a coercion onto the grid its
//!   input already has (the node is a no-op);
//! * `TQT-V034` — illegal coercion: a grid-to-grid requant the integer
//!   engine cannot realize (shift outside `[-63, 63]`, a zero-point that
//!   overflows the target container, or a zero-point change — the
//!   symmetric power-of-2 engine applies no correction).
//!
//! The checker runs on the float [`Graph`] ([`infer_float_grids`], after
//! calibration) and on the lowered/fused [`IntGraph`]
//! ([`infer_int_grids`]); the `rebalance` pass in `tqt-fixedpoint`
//! consumes the same typing discipline to insert the minimal coercions at
//! unmerged merges, and this pass certifies the result is well-typed.

use crate::diag::{Code, Report};
use crate::interval::{path_to, MAX_SHIFT};
use std::fmt;
use tqt_fixedpoint::lower::{EpiStep, IntGraph, IntNode, IntOp, LEAKY_ALPHA_FRAC};
use tqt_fixedpoint::QFormat;
use tqt_graph::{Graph, Op};

/// The quantization-grid type of one edge:
/// `value = scale_num · 2^-shift · (int - zp)`, stored in a `bits`-wide
/// (un)signed container. The TQT scheme is symmetric power-of-2, so
/// inference only ever derives `scale_num = 1, zp = 0`; the general fields
/// exist so the checker can refute hand-built (or future per-channel)
/// grids rather than silently assuming them away.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grid {
    /// Rational scale numerator (always 1 for power-of-2 grids).
    pub scale_num: i64,
    /// Binary scale exponent: scale = `scale_num * 2^-shift`.
    pub shift: i32,
    /// Zero-point (always 0 for the symmetric scheme).
    pub zp: i64,
    /// Container bit-width (`64` marks the wide accumulator type).
    pub bits: u32,
    /// Container signedness.
    pub signed: bool,
}

impl Grid {
    /// A grid with every field explicit.
    pub fn new(scale_num: i64, shift: i32, zp: i64, bits: u32, signed: bool) -> Self {
        Grid { scale_num, shift, zp, bits, signed }
    }

    /// The grid a [`QFormat`] denotes (symmetric, power-of-2).
    pub fn from_format(f: QFormat) -> Self {
        Grid::new(1, f.frac, 0, f.bits, f.signed)
    }

    /// The wide-accumulator supertype on the same scale: adds and leaky
    /// multiplies leave the value set but widen the container to i64.
    pub fn widened(self) -> Self {
        Grid { bits: 64, signed: true, ..self }
    }

    /// Whether two grids denote the same real-value mapping — the meet
    /// condition at merge nodes. Container width is *not* part of this:
    /// an i8 value and the i64 accumulator holding it are on one grid.
    pub fn scale_compatible(&self, other: &Grid) -> bool {
        self.scale_num == other.scale_num && self.shift == other.shift && self.zp == other.zp
    }
}

impl fmt::Display for Grid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}*2^{} zp={} {}{}",
            self.scale_num,
            -self.shift,
            self.zp,
            if self.signed { "s" } else { "u" },
            self.bits
        )
    }
}

/// Result of one grid-inference run: the per-edge types (indexed by node
/// id; `None` = untyped float edge) plus every finding.
#[derive(Debug)]
pub struct GridReport {
    /// Inferred output grid per node (the type of the node's out-edges).
    pub grids: Vec<Option<Grid>>,
    /// `TQT-V031`–`TQT-V034` findings.
    pub report: Report,
}

impl GridReport {
    /// Whether the graph is well-typed (no findings).
    pub fn typed(&self) -> bool {
        self.report.is_clean()
    }
}

/// Whether `zp` is representable in a `bits`-wide (un)signed container.
fn zp_fits(zp: i64, bits: u32, signed: bool) -> bool {
    let f = QFormat::new(0, bits, signed);
    zp >= f.qmin() && zp <= f.qmax()
}

/// Checks one explicit coercion `from -> to` (a requant node or epilogue
/// step): redundancy (`TQT-V033`) and realizability (`TQT-V034`).
fn check_coercion(r: &mut Report, name: &str, from: Grid, to: Grid, path: &str) {
    if from == to {
        r.push(
            Code::RedundantRequant,
            name,
            format!("coercion to the identical grid {to} is a no-op; path: {path}"),
        );
        return;
    }
    let shift = from.shift - to.shift;
    if shift.abs() > MAX_SHIFT {
        r.push(
            Code::IllegalCoercion,
            name,
            format!(
                "coercion {from} -> {to} needs shift {shift}, outside the legal \
                 |shift| <= {MAX_SHIFT}; path: {path}"
            ),
        );
    }
    if !zp_fits(to.zp, to.bits, to.signed) {
        r.push(
            Code::IllegalCoercion,
            name,
            format!(
                "target zero-point {} overflows the {}-bit {} container; path: {path}",
                to.zp,
                to.bits,
                if to.signed { "signed" } else { "unsigned" }
            ),
        );
    } else if from.zp != to.zp {
        r.push(
            Code::IllegalCoercion,
            name,
            format!(
                "coercion changes the zero-point {} -> {}; the symmetric power-of-2 \
                 engine applies no correction; path: {path}"
            , from.zp, to.zp),
        );
    }
}

fn uninferable(r: &mut Report, name: &str, what: &str, path: &str) {
    r.push(Code::UninferableGrid, name, format!("{what}; path: {path}"));
}

/// Reports a `TQT-V031` at merge node `name`: operands `a` and `b` derive
/// incompatible grids, with both deriving paths as counterexample.
#[allow(clippy::too_many_arguments)]
fn contradiction(
    r: &mut Report,
    name: &str,
    a_name: &str,
    a: Grid,
    a_path: &str,
    b_name: &str,
    b: Grid,
    b_path: &str,
) {
    r.push(
        Code::GridContradiction,
        name,
        format!(
            "edge requires two incompatible grid types: operand `{a_name}` derives \
             {a} via {a_path}, but operand `{b_name}` derives {b} via {b_path}"
        ),
    );
}

/// Grid-type inference over a lowered [`IntGraph`]. `input_dims` is the
/// `[n, c, h, w]` the graph executes on (needed only to resolve pooling
/// reduction factors). Runs on unfused and fused graphs alike.
pub fn infer_int_grids(ig: &IntGraph, input_dims: &[usize]) -> GridReport {
    let nodes = ig.nodes();
    let n = nodes.len();
    let mut r = Report::new();
    let mut grids: Vec<Option<Grid>> = Vec::with_capacity(n);
    let mut shapes: Vec<Vec<usize>> = vec![Vec::new(); n];

    for (id, node) in nodes.iter().enumerate() {
        let gin = node.inputs.first().and_then(|&i| grids[i]);
        let sin: Vec<&[usize]> = node.inputs.iter().map(|&i| shapes[i].as_slice()).collect();
        let mut shape: Vec<usize> = sin.first().map(|s| s.to_vec()).unwrap_or_default();
        let grid = match &node.op {
            IntOp::Input => {
                shape = input_dims.to_vec();
                None
            }
            IntOp::QuantF32 { format } => Some(Grid::from_format(*format)),
            IntOp::Requant { format } => {
                let to = Grid::from_format(*format);
                match gin {
                    None => uninferable(
                        &mut r,
                        &node.name,
                        "requantization consumes an edge with no inferable grid",
                        &path_to(nodes, id),
                    ),
                    Some(from) => {
                        check_coercion(&mut r, &node.name, from, to, &path_to(nodes, id))
                    }
                }
                Some(to)
            }
            IntOp::Conv { wdims, geom, w_frac, .. } => {
                if sin[0].len() == 4 {
                    let (oh, ow) = geom.out_size(sin[0][2], sin[0][3]);
                    shape = vec![sin[0][0], wdims[0], oh, ow];
                }
                compute_out(&mut r, nodes, id, gin, *w_frac)
            }
            IntOp::Dense { out_dim, w_frac, .. } => {
                shape = vec![sin[0].first().copied().unwrap_or(1), *out_dim];
                compute_out(&mut r, nodes, id, gin, *w_frac)
            }
            IntOp::Relu { .. } => match gin {
                None => {
                    uninferable(
                        &mut r,
                        &node.name,
                        "relu consumes an edge with no inferable grid",
                        &path_to(nodes, id),
                    );
                    None
                }
                some => some,
            },
            IntOp::LeakyRelu { .. } => match gin {
                None => {
                    uninferable(
                        &mut r,
                        &node.name,
                        "leaky relu consumes an edge with no inferable grid",
                        &path_to(nodes, id),
                    );
                    None
                }
                Some(g) => Some(Grid {
                    shift: g.shift + LEAKY_ALPHA_FRAC,
                    ..g.widened()
                }),
            },
            IntOp::MaxPool { geom } => {
                if sin[0].len() == 4 {
                    let (oh, ow) = geom.out_size(sin[0][2], sin[0][3]);
                    shape = vec![sin[0][0], sin[0][1], oh, ow];
                }
                gin
            }
            IntOp::GlobalAvgPool => gap_out(&mut r, nodes, id, gin, sin[0], &mut shape),
            IntOp::Add => {
                let ga = node.inputs.first().and_then(|&i| grids[i]);
                let gb = node.inputs.get(1).and_then(|&i| grids[i]);
                if let (Some(a), Some(b)) = (ga, gb) {
                    if !a.scale_compatible(&b) {
                        let (ia, ib) = (node.inputs[0], node.inputs[1]);
                        contradiction(
                            &mut r,
                            &node.name,
                            &nodes[ia].name,
                            a,
                            &path_to(nodes, ia),
                            &nodes[ib].name,
                            b,
                            &path_to(nodes, ib),
                        );
                    }
                } else {
                    for &i in &node.inputs {
                        if grids[i].is_none() {
                            uninferable(
                                &mut r,
                                &node.name,
                                &format!("add operand `{}` has no inferable grid", nodes[i].name),
                                &path_to(nodes, i),
                            );
                        }
                    }
                }
                ga.or(gb).map(Grid::widened)
            }
            IntOp::Concat => {
                let first = node.inputs.first().and_then(|&i| grids[i]);
                for (slot, &i) in node.inputs.iter().enumerate() {
                    match (grids[i], first) {
                        (None, _) => uninferable(
                            &mut r,
                            &node.name,
                            &format!(
                                "concat operand {slot} (`{}`) has no inferable grid",
                                nodes[i].name
                            ),
                            &path_to(nodes, i),
                        ),
                        (Some(gi), Some(g0)) if slot > 0 && !gi.scale_compatible(&g0) => {
                            let i0 = node.inputs[0];
                            contradiction(
                                &mut r,
                                &node.name,
                                &nodes[i0].name,
                                g0,
                                &path_to(nodes, i0),
                                &nodes[i].name,
                                gi,
                                &path_to(nodes, i),
                            );
                        }
                        _ => {}
                    }
                }
                if sin.iter().all(|s| s.len() >= 2) {
                    let mut out = sin[0].to_vec();
                    out[1] = sin.iter().map(|s| s[1]).sum();
                    shape = out;
                }
                first
            }
            IntOp::Flatten => {
                if !sin[0].is_empty() {
                    shape = vec![sin[0][0], sin[0][1..].iter().product::<usize>().max(1)];
                }
                gin
            }
            IntOp::Fused { core, epi } => {
                let mut cur = match gin {
                    None => {
                        uninferable(
                            &mut r,
                            &node.name,
                            "fused core consumes an edge with no inferable grid",
                            &path_to(nodes, id),
                        );
                        None
                    }
                    Some(g) => match &**core {
                        IntOp::Conv { wdims, geom, w_frac, .. } => {
                            if sin[0].len() == 4 {
                                let (oh, ow) = geom.out_size(sin[0][2], sin[0][3]);
                                shape = vec![sin[0][0], wdims[0], oh, ow];
                            }
                            Some(Grid {
                                shift: g.shift + w_frac,
                                ..g.widened()
                            })
                        }
                        IntOp::Dense { out_dim, w_frac, .. } => {
                            shape = vec![sin[0].first().copied().unwrap_or(1), *out_dim];
                            Some(Grid {
                                shift: g.shift + w_frac,
                                ..g.widened()
                            })
                        }
                        // A non-conv/dense core is a TQT-V023 (fusion
                        // legality), owned by the interval pass.
                        _ => Some(g),
                    },
                };
                let mut residual_slot = 1usize;
                for (si, step) in epi.iter().enumerate() {
                    match step {
                        EpiStep::Requant { format } => {
                            let to = Grid::from_format(*format);
                            if let Some(from) = cur {
                                check_coercion(
                                    &mut r,
                                    &node.name,
                                    from,
                                    to,
                                    &format!("epilogue step {si} of {}", path_to(nodes, id)),
                                );
                            }
                            cur = Some(to);
                        }
                        EpiStep::AddResidual => {
                            let rid = node.inputs.get(residual_slot).copied();
                            residual_slot += 1;
                            if let (Some(rid), Some(c)) = (rid, cur) {
                                match grids[rid] {
                                    None => uninferable(
                                        &mut r,
                                        &node.name,
                                        &format!(
                                            "fused residual `{}` has no inferable grid",
                                            nodes[rid].name
                                        ),
                                        &path_to(nodes, rid),
                                    ),
                                    Some(rg) if !rg.scale_compatible(&c) => contradiction(
                                        &mut r,
                                        &node.name,
                                        &node.name,
                                        c,
                                        &format!(
                                            "epilogue step {si} of {}",
                                            path_to(nodes, id)
                                        ),
                                        &nodes[rid].name,
                                        rg,
                                        &path_to(nodes, rid),
                                    ),
                                    _ => {}
                                }
                                cur = Some(c.widened());
                            }
                        }
                        EpiStep::Relu { .. } => {}
                        EpiStep::LeakyRelu { .. } => {
                            if let Some(c) = cur.as_mut() {
                                *c = Grid {
                                    shift: c.shift + LEAKY_ALPHA_FRAC,
                                    ..c.widened()
                                };
                            }
                        }
                    }
                }
                cur
            }
        };
        grids.push(grid);
        shapes[id] = shape;
    }

    GridReport { grids, report: r }
}

/// Transfer for a conv/dense core: the accumulator grid `2^-(fx + fw)` in
/// a wide signed container, or `TQT-V032` if the input edge is untyped.
fn compute_out(
    r: &mut Report,
    nodes: &[IntNode],
    id: usize,
    gin: Option<Grid>,
    w_frac: i32,
) -> Option<Grid> {
    match gin {
        None => {
            uninferable(
                r,
                &nodes[id].name,
                "compute op consumes an edge with no inferable grid",
                &path_to(nodes, id),
            );
            None
        }
        Some(g) => Some(Grid {
            shift: g.shift + w_frac,
            ..g.widened()
        }),
    }
}

/// Transfer for a global average pool: the exact-sum formulation scales by
/// `1/hw`, which is a grid shift only when `hw` is a power of two.
fn gap_out(
    r: &mut Report,
    nodes: &[IntNode],
    id: usize,
    gin: Option<Grid>,
    sin: &[usize],
    shape: &mut Vec<usize>,
) -> Option<Grid> {
    if sin.len() != 4 {
        uninferable(
            r,
            &nodes[id].name,
            "global average pool needs a 4-D input shape to resolve its reduction factor",
            &path_to(nodes, id),
        );
        return None;
    }
    let hw = sin[2] * sin[3];
    if !hw.is_power_of_two() {
        uninferable(
            r,
            &nodes[id].name,
            &format!(
                "global average pool reduces over {hw} elements; the 1/{hw} scale \
                 is not a power of two, so the output grid is not expressible"
            ),
            &path_to(nodes, id),
        );
        return None;
    }
    *shape = vec![sin[0], sin[1]];
    match gin {
        None => {
            uninferable(
                r,
                &nodes[id].name,
                "global average pool consumes an edge with no inferable grid",
                &path_to(nodes, id),
            );
            None
        }
        Some(g) => Some(Grid {
            shift: g.shift + hw.trailing_zeros() as i32,
            ..g.widened()
        }),
    }
}

/// The producer chain of float node `id`, rendered like
/// [`path_to`] for counterexample messages.
fn float_path(g: &Graph, id: usize) -> String {
    let mut chain = Vec::new();
    let mut cur = id;
    loop {
        chain.push(g.node(cur).name.as_str());
        match g.node(cur).inputs.first() {
            Some(&p) if p < cur => cur = p,
            _ => break,
        }
    }
    chain.reverse();
    chain.join(" -> ")
}

/// Grid-type inference over a calibrated float [`Graph`] — the same
/// transfer functions as [`infer_int_grids`], applied before lowering so
/// contradictions are caught at the stage that can still fix them (by
/// re-tying thresholds or running the `rebalance` pass after lowering).
/// `input_dims` resolves pooling reduction factors via shape inference.
pub fn infer_float_grids(g: &Graph, input_dims: &[usize]) -> GridReport {
    let n = g.len();
    let mut r = Report::new();
    let shapes = crate::shape::infer_shapes(g, input_dims).shapes;
    let mut grids: Vec<Option<Grid>> = vec![None; n];

    for (id, node) in g.iter() {
        if node.inputs.iter().any(|&i| i >= id) {
            continue; // structural failure, owned by check_structure
        }
        let gin = node.inputs.first().and_then(|&i| grids[i]);
        grids[id] = match &node.op {
            Op::Input => None,
            Op::Quant { tid } => match g.thresholds().get(*tid) {
                Some(ts) if ts.calibrated => {
                    let to = Grid::new(
                        1,
                        ts.spec.fractional_length(ts.log2_t()),
                        0,
                        ts.spec.bits(),
                        ts.spec.signed(),
                    );
                    if let Some(from) = gin {
                        check_coercion(&mut r, &node.name, from, to, &float_path(g, id));
                    }
                    Some(to)
                }
                _ => {
                    // Dangling tid is a TQT-V001, uncalibrated a TQT-V006;
                    // either way the edge's grid cannot be derived.
                    uninferable(
                        &mut r,
                        &node.name,
                        "quantization site has no calibrated threshold; grid uninferable",
                        &float_path(g, id),
                    );
                    None
                }
            },
            Op::Conv(_) | Op::Depthwise(_) | Op::Dense(_) => {
                let wf = node
                    .wq
                    .as_ref()
                    .and_then(|wq| g.thresholds().get(wq.tid))
                    .filter(|ts| ts.calibrated)
                    .map(|ts| ts.spec.fractional_length(ts.log2_t()));
                match (gin, wf) {
                    (Some(gi), Some(w_frac)) => Some(Grid {
                        shift: gi.shift + w_frac,
                        ..gi.widened()
                    }),
                    (None, _) => {
                        uninferable(
                            &mut r,
                            &node.name,
                            "compute op consumes an edge with no inferable grid",
                            &float_path(g, id),
                        );
                        None
                    }
                    (_, None) => {
                        // Missing quantizer is a TQT-V004; here it just
                        // means the accumulator grid cannot be derived.
                        uninferable(
                            &mut r,
                            &node.name,
                            "compute op has no calibrated weight quantizer; accumulator \
                             grid uninferable",
                            &float_path(g, id),
                        );
                        None
                    }
                }
            }
            Op::Relu(rl) => match (gin, rl.negative_slope() > 0.0) {
                (Some(gi), true) => Some(Grid {
                    shift: gi.shift + LEAKY_ALPHA_FRAC,
                    ..gi.widened()
                }),
                (Some(gi), false) => Some(gi),
                (None, _) => {
                    uninferable(
                        &mut r,
                        &node.name,
                        "relu consumes an edge with no inferable grid",
                        &float_path(g, id),
                    );
                    None
                }
            },
            Op::GlobalAvgPool(_) => {
                let sin = node
                    .inputs
                    .first()
                    .and_then(|&i| shapes.get(i))
                    .map(|s| s.as_slice())
                    .unwrap_or(&[]);
                match (gin, sin.len() == 4 && (sin[2] * sin[3]).is_power_of_two()) {
                    (Some(gi), true) => Some(Grid {
                        shift: gi.shift + (sin[2] * sin[3]).trailing_zeros() as i32,
                        ..gi.widened()
                    }),
                    (Some(_), false) => {
                        uninferable(
                            &mut r,
                            &node.name,
                            "global average pool reduction factor is not a resolvable \
                             power of two; output grid not expressible",
                            &float_path(g, id),
                        );
                        None
                    }
                    (None, _) => {
                        uninferable(
                            &mut r,
                            &node.name,
                            "global average pool consumes an edge with no inferable grid",
                            &float_path(g, id),
                        );
                        None
                    }
                }
            }
            Op::Add(_) | Op::Concat(_) => {
                let in_grids: Vec<Option<Grid>> =
                    node.inputs.iter().map(|&i| grids[i]).collect();
                let first = in_grids.first().copied().flatten();
                for (slot, gi) in in_grids.iter().enumerate() {
                    match (gi, first) {
                        (None, _) => uninferable(
                            &mut r,
                            &node.name,
                            &format!(
                                "merge operand {slot} (`{}`) has no inferable grid",
                                g.node(node.inputs[slot]).name
                            ),
                            &float_path(g, node.inputs[slot]),
                        ),
                        (Some(gi), Some(g0)) if slot > 0 && !gi.scale_compatible(&g0) => {
                            contradiction(
                                &mut r,
                                &node.name,
                                &g.node(node.inputs[0]).name,
                                g0,
                                &float_path(g, node.inputs[0]),
                                &g.node(node.inputs[slot]).name,
                                *gi,
                                &float_path(g, node.inputs[slot]),
                            );
                        }
                        _ => {}
                    }
                }
                if matches!(node.op, Op::Add(_)) {
                    first.map(Grid::widened)
                } else {
                    first
                }
            }
            // Value-preserving data movement (and the stage-lint-owned
            // batch-norm/avg-pool survivors): the grid passes through.
            Op::Identity | Op::MaxPool(_) | Op::Flatten(_) | Op::AvgPool(_) | Op::BatchNorm(_) => {
                gin
            }
        };
    }

    GridReport { grids, report: r }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tqt_fixedpoint::lower::IntNode;

    fn q(frac: i32, bits: u32) -> QFormat {
        QFormat::new(frac, bits, true)
    }

    /// input -> qin -> rq -> relu: every edge gets a grid, no findings.
    #[test]
    fn straight_chain_is_well_typed() {
        let nodes = vec![
            IntNode { name: "input".into(), op: IntOp::Input, inputs: vec![] },
            IntNode {
                name: "qin".into(),
                op: IntOp::QuantF32 { format: q(4, 8) },
                inputs: vec![0],
            },
            IntNode {
                name: "rq".into(),
                op: IntOp::Requant { format: q(2, 8) },
                inputs: vec![1],
            },
            IntNode { name: "relu".into(), op: IntOp::Relu { cap_q: None }, inputs: vec![2] },
        ];
        let ig = IntGraph::from_parts(nodes, 3);
        let gr = infer_int_grids(&ig, &[1, 4]);
        assert!(gr.typed(), "{}", gr.report);
        assert_eq!(gr.grids[1], Some(Grid::new(1, 4, 0, 8, true)));
        assert_eq!(gr.grids[2], Some(Grid::new(1, 2, 0, 8, true)));
        assert_eq!(gr.grids[3], Some(Grid::new(1, 2, 0, 8, true)));
    }

    /// Merge-compatibility ignores container width, identity does not.
    #[test]
    fn grid_compatibility_semantics() {
        let a = Grid::new(1, 4, 0, 8, true);
        let wide = a.widened();
        assert!(a.scale_compatible(&wide));
        assert_ne!(a, wide, "identity (V033) must distinguish container width");
        assert!(!a.scale_compatible(&Grid::new(1, 3, 0, 8, true)));
        assert!(!a.scale_compatible(&Grid::new(1, 4, 1, 8, true)));
    }

    /// The add transfer widens the container but keeps the scale.
    #[test]
    fn add_widens_to_accumulator() {
        let nodes = vec![
            IntNode { name: "input".into(), op: IntOp::Input, inputs: vec![] },
            IntNode {
                name: "qin".into(),
                op: IntOp::QuantF32 { format: q(3, 8) },
                inputs: vec![0],
            },
            IntNode {
                name: "ra".into(),
                op: IntOp::Requant { format: q(2, 8) },
                inputs: vec![1],
            },
            IntNode {
                name: "rb".into(),
                op: IntOp::Requant { format: q(2, 8) },
                inputs: vec![1],
            },
            IntNode { name: "add".into(), op: IntOp::Add, inputs: vec![2, 3] },
        ];
        let ig = IntGraph::from_parts(nodes, 4);
        let gr = infer_int_grids(&ig, &[1, 4]);
        assert!(gr.typed(), "{}", gr.report);
        assert_eq!(gr.grids[4], Some(Grid::new(1, 2, 0, 64, true)));
    }
}
