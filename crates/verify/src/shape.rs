//! Structural checks and symbolic shape/dtype inference over the float
//! graph.
//!
//! Unlike `Graph::infer_shapes` (which dry-runs the graph on a zero
//! tensor), this pass computes shapes symbolically from op metadata alone:
//! it needs no mutable borrow, runs in microseconds on zoo models, and —
//! crucially for a verifier — keeps going after the first inconsistency so
//! one run reports every violation.

use crate::diag::{Code, Report};
use tqt_graph::ir::op_params;
use tqt_graph::{Graph, Node, Op};
use tqt_nn::ParamKind;

/// Result of shape inference: one shape per node (empty for nodes whose
/// shape could not be derived), plus every structural/shape finding.
#[derive(Debug)]
pub struct ShapeReport {
    /// Inferred output dims per node, indexed by node id. An empty vec
    /// means inference failed for that node (a diagnostic explains why).
    pub shapes: Vec<Vec<usize>>,
    /// Structural (`TQT-V001`) and shape (`TQT-V002`) findings.
    pub report: Report,
}

/// Expected input arity of an op, as `(min, max)`.
fn arity(op: &Op) -> (usize, usize) {
    match op {
        Op::Input => (0, 0),
        Op::Add(_) => (2, 2),
        Op::Concat(_) => (2, usize::MAX),
        _ => (1, 1),
    }
}

/// Checks graph structure: input/output presence, topological edge order,
/// arity, and threshold-table references. Reports `TQT-V001`.
pub fn check_structure(g: &Graph) -> Report {
    let mut r = Report::new();
    match g.try_input_id() {
        None => r.push_global(Code::Structure, "graph has no input placeholder"),
        Some(i) => {
            if !matches!(g.node(i).op, Op::Input) {
                r.push(Code::Structure, g.node(i).name.clone(), "input id is not an Input op");
            }
        }
    }
    match g.try_output_id() {
        None => r.push_global(Code::Structure, "graph has no output set"),
        Some(o) if o >= g.len() => {
            r.push_global(Code::Structure, format!("output id {o} out of range"))
        }
        _ => {}
    }
    for (id, node) in g.iter() {
        for &i in &node.inputs {
            if i >= id {
                r.push(
                    Code::Structure,
                    node.name.clone(),
                    format!("input edge {i} is not an earlier node (ids must be topological)"),
                );
            }
        }
        let (lo, hi) = arity(&node.op);
        let n = node.inputs.len();
        if n < lo || n > hi {
            r.push(
                Code::Structure,
                node.name.clone(),
                format!("op `{}` expects {lo}..={hi} inputs, has {n}", op_desc(node)),
            );
        }
        if let Op::Quant { tid } = node.op {
            if tid >= g.thresholds().len() {
                r.push(
                    Code::Structure,
                    node.name.clone(),
                    format!("quant references threshold {tid}, table has {}", g.thresholds().len()),
                );
            }
        }
        if let Some(wq) = &node.wq {
            if wq.tid >= g.thresholds().len() {
                r.push(
                    Code::Structure,
                    node.name.clone(),
                    format!(
                        "weight quantizer references threshold {}, table has {}",
                        wq.tid,
                        g.thresholds().len()
                    ),
                );
            }
            if !node.op.is_compute() {
                r.push(
                    Code::Structure,
                    node.name.clone(),
                    format!("non-compute op `{}` carries a weight quantizer", op_desc(node)),
                );
            }
        }
    }
    r
}

fn op_desc(node: &Node) -> &'static str {
    node.op.name()
}

/// Dims of an op's weight tensor, if it has one.
fn weight_dims(op: &Op) -> Option<Vec<usize>> {
    op_params(op)
        .into_iter()
        .find(|p| p.kind == ParamKind::Weight)
        .map(|p| p.value.dims().to_vec())
}

/// Channel count of a batch-norm (its per-channel parameter length).
fn bn_channels(op: &Op) -> Option<usize> {
    op_params(op).first().map(|p| p.value.len())
}

/// Symbolic shape inference. `input_dims` is the `[n, c, h, w]` the graph
/// will execute on. Reports `TQT-V002` for every inconsistency found;
/// nodes downstream of a failure get an empty shape and are skipped rather
/// than cascading spurious findings.
pub fn infer_shapes(g: &Graph, input_dims: &[usize]) -> ShapeReport {
    let mut r = Report::new();
    let mut shapes: Vec<Vec<usize>> = vec![Vec::new(); g.len()];
    for (id, node) in g.iter() {
        // Structural problems are check_structure's job; here just avoid
        // indexing out of range.
        if node.inputs.iter().any(|&i| i >= id) {
            continue;
        }
        let ins: Vec<&[usize]> = node.inputs.iter().map(|&i| shapes[i].as_slice()).collect();
        if !matches!(node.op, Op::Input) && ins.iter().any(|s| s.is_empty()) {
            continue; // upstream failure already reported
        }
        let name = node.name.clone();
        let fail = |r: &mut Report, detail: String| {
            r.push(Code::Shape, name.clone(), detail);
        };
        let out: Option<Vec<usize>> = match &node.op {
            Op::Input => Some(input_dims.to_vec()),
            Op::Identity | Op::Relu(_) | Op::Quant { .. } => Some(ins[0].to_vec()),
            Op::BatchNorm(_) => {
                let c = bn_channels(&node.op).unwrap_or(0);
                if ins[0].len() < 2 || ins[0][1] != c {
                    fail(
                        &mut r,
                        format!("batch norm over {c} channels applied to input shape {:?}", ins[0]),
                    );
                    None
                } else {
                    Some(ins[0].to_vec())
                }
            }
            Op::Conv(l) => conv_shape(ins[0], weight_dims(&node.op), l.geom(), false)
                .map_err(|e| fail(&mut r, e))
                .ok(),
            Op::Depthwise(l) => conv_shape(ins[0], weight_dims(&node.op), l.geom(), true)
                .map_err(|e| fail(&mut r, e))
                .ok(),
            Op::Dense(_) => {
                let wd = weight_dims(&node.op).unwrap_or_default();
                if ins[0].len() != 2 {
                    fail(&mut r, format!("dense needs a 2-D `[n, features]` input, got {:?}", ins[0]));
                    None
                } else if wd.len() != 2 || ins[0][1] != wd[0] {
                    fail(
                        &mut r,
                        format!("dense weight {:?} does not accept {} input features", wd, ins[0][1]),
                    );
                    None
                } else {
                    Some(vec![ins[0][0], wd[1]])
                }
            }
            Op::MaxPool(l) => pool_shape(ins[0], l.geom()).map_err(|e| fail(&mut r, e)).ok(),
            Op::AvgPool(l) => pool_shape(ins[0], l.geom()).map_err(|e| fail(&mut r, e)).ok(),
            Op::GlobalAvgPool(_) => {
                if ins[0].len() != 4 {
                    fail(&mut r, format!("global avg pool needs a 4-D input, got {:?}", ins[0]));
                    None
                } else {
                    Some(vec![ins[0][0], ins[0][1]])
                }
            }
            Op::Flatten(_) => {
                if ins[0].is_empty() {
                    None
                } else {
                    Some(vec![ins[0][0], ins[0][1..].iter().product::<usize>().max(1)])
                }
            }
            Op::Add(_) => {
                if ins.len() == 2 && ins[0] != ins[1] {
                    fail(
                        &mut r,
                        format!("eltwise add of mismatched shapes {:?} vs {:?}", ins[0], ins[1]),
                    );
                    None
                } else {
                    Some(ins[0].to_vec())
                }
            }
            Op::Concat(_) => {
                let first = ins[0];
                let mut channels = 0usize;
                let mut ok = first.len() >= 2;
                for s in &ins {
                    if s.len() != first.len()
                        || s[0] != first[0]
                        || s.get(2..) != first.get(2..)
                    {
                        ok = false;
                    }
                    channels += s.get(1).copied().unwrap_or(0);
                }
                if !ok {
                    fail(
                        &mut r,
                        format!(
                            "concat inputs must agree outside the channel dim, got {:?}",
                            ins.iter().map(|s| s.to_vec()).collect::<Vec<_>>()
                        ),
                    );
                    None
                } else {
                    let mut out = first.to_vec();
                    out[1] = channels;
                    Some(out)
                }
            }
        };
        if let Some(s) = out {
            shapes[id] = s;
        }
    }
    ShapeReport { shapes, report: r }
}

fn conv_shape(
    xin: &[usize],
    wdims: Option<Vec<usize>>,
    geom: tqt_tensor::conv::Conv2dGeom,
    depthwise: bool,
) -> Result<Vec<usize>, String> {
    let wd = wdims.ok_or_else(|| "conv has no weight tensor".to_string())?;
    if xin.len() != 4 {
        return Err(format!("conv needs a 4-D `[n, c, h, w]` input, got {xin:?}"));
    }
    if wd.len() != 4 {
        return Err(format!("conv weight must be 4-D `[co, ci, kh, kw]`, got {wd:?}"));
    }
    let (n, c, h, w) = (xin[0], xin[1], xin[2], xin[3]);
    let expect_ci = if depthwise { 1 } else { c };
    let expect_co_src = if depthwise { c } else { wd[0] };
    if wd[1] != expect_ci || (depthwise && wd[0] != c) {
        return Err(format!(
            "weight {wd:?} does not match {c} input channels (depthwise: {depthwise})"
        ));
    }
    if wd[2] != geom.kh || wd[3] != geom.kw {
        return Err(format!(
            "weight kernel {}x{} disagrees with geometry {}x{}",
            wd[2], wd[3], geom.kh, geom.kw
        ));
    }
    if h + 2 * geom.pad < geom.kh || w + 2 * geom.pad < geom.kw {
        return Err(format!(
            "kernel {}x{} does not fit padded input {h}x{w} (pad {})",
            geom.kh, geom.kw, geom.pad
        ));
    }
    let (oh, ow) = geom.out_size(h, w);
    Ok(vec![n, expect_co_src, oh, ow])
}

fn pool_shape(xin: &[usize], geom: tqt_tensor::conv::Conv2dGeom) -> Result<Vec<usize>, String> {
    if xin.len() != 4 {
        return Err(format!("pool needs a 4-D `[n, c, h, w]` input, got {xin:?}"));
    }
    let (h, w) = (xin[2], xin[3]);
    if h + 2 * geom.pad < geom.kh || w + 2 * geom.pad < geom.kw {
        return Err(format!(
            "pool window {}x{} does not fit padded input {h}x{w} (pad {})",
            geom.kh, geom.kw, geom.pad
        ));
    }
    let (oh, ow) = geom.out_size(h, w);
    Ok(vec![xin[0], xin[1], oh, ow])
}

#[cfg(test)]
mod tests {
    use super::*;
    use tqt_nn::{Conv2d, Dense, Relu};
    use tqt_tensor::conv::Conv2dGeom;
    use tqt_tensor::init;

    fn toy() -> Graph {
        let mut rng = init::rng(7);
        let mut g = Graph::new();
        let x = g.add_input("x");
        let c = g.add(
            "c1",
            Op::Conv(Conv2d::new("c1", 3, 8, Conv2dGeom::same(3), &mut rng)),
            &[x],
        );
        let r = g.add("r1", Op::Relu(Relu::new()), &[c]);
        g.set_output(r);
        g
    }

    #[test]
    fn clean_graph_infers_shapes() {
        let g = toy();
        assert!(check_structure(&g).is_clean());
        let sr = infer_shapes(&g, &[2, 3, 16, 16]);
        assert!(sr.report.is_clean(), "{}", sr.report);
        assert_eq!(sr.shapes[g.output_id()], vec![2, 8, 16, 16]);
    }

    #[test]
    fn channel_mismatch_is_v002() {
        let g = toy();
        // 5 channels into a conv built for 3.
        let sr = infer_shapes(&g, &[2, 5, 16, 16]);
        assert!(sr.report.has(Code::Shape), "{}", sr.report);
        // Downstream nodes do not cascade extra findings.
        assert_eq!(sr.report.diags.len(), 1, "{}", sr.report);
    }

    #[test]
    fn missing_output_is_v001() {
        let mut rng = init::rng(3);
        let mut g = Graph::new();
        let x = g.add_input("x");
        g.add("d", Op::Dense(Dense::new("d", 4, 2, &mut rng)), &[x]);
        let r = check_structure(&g);
        assert!(r.has(Code::Structure), "{r}");
    }
}
