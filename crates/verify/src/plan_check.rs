//! Plan verifier (`TQT-V016`–`TQT-V018`): an independent alias-freedom
//! proof over [`IntPlan`]'s buffer-slot assignment.
//!
//! The executor ([`tqt_fixedpoint::IntExecutor`]) reads every operand
//! from, and writes every result into, a small set of reusable slots the
//! planner assigned by liveness analysis. One off-by-one in that
//! analysis silently corrupts inference — a node would read a buffer
//! another node already overwrote — so this pass re-proves the plan from
//! scratch, **treating the planner as untrusted**:
//!
//! * per-node element counts are re-derived from the graph's shape rules
//!   (a mirror written against the runtime kernels, not a call into the
//!   planner) and compared with the plan (`TQT-V018`);
//! * per-node liveness is re-derived (a value is live from its
//!   definition to its last consumer; the graph output is live forever)
//!   and the whole execution is simulated over slot occupancy: every
//!   write into a slot holding a live value is `TQT-V016`, every read
//!   that does not see its producing write is `TQT-V017`, every
//!   capacity shortfall is `TQT-V018`;
//! * the executor's only workspace outside the slots — the per-image
//!   im2col checkout from the thread-local scratch arena — is re-derived
//!   and compared with the plan's accounting (`TQT-V018`), proving
//!   im2col scratch is sized and held apart from slot storage (the arena
//!   is a distinct allocation by construction; the sanitizer's
//!   `TQT-V022` covers its checkout discipline at runtime).
//!
//! Every refutation carries the producer-chain path of the offending
//! node as a counterexample. The mutation tests
//! (`crates/verify/tests/plan_mutations.rs`) inject a liveness
//! off-by-one and a premature slot release and assert this pass refutes
//! both with the correct node.

use crate::diag::{Code, Report};
use crate::interval::path_to;
use tqt_fixedpoint::intgemm::{packed_lhs_len, packed_rhs_len};
use tqt_fixedpoint::lower::{IntGraph, IntOp, LEAKY_ALPHA_FRAC};
use tqt_fixedpoint::IntPlan;
use tqt_graph::fplan::FloatPlan;
use tqt_graph::{Graph, Op as FOp};
use tqt_tensor::conv::{conv2d_bwd_ws, conv2d_fwd_ws};
use tqt_tensor::gemm::packed_a_len;

/// Independently re-derived facts about one planned graph.
#[derive(Debug)]
struct Derived {
    /// Element count per node (0 for the float-input placeholder).
    lens: Vec<usize>,
    /// Last node id that needs each node's value (`usize::MAX` for the
    /// graph output, which must survive the whole run).
    last_use: Vec<usize>,
    /// im2col scratch high-water mark in elements.
    scratch_elems: usize,
}

/// Re-derives per-node output element counts from the op semantics. This
/// intentionally re-implements the shape rules against the kernel
/// contracts instead of calling the planner, so a planner bug cannot
/// vouch for itself.
fn derive(g: &IntGraph, input_dims: &[usize]) -> Derived {
    let nodes = g.nodes();
    let n = nodes.len();
    let mut dims: Vec<Vec<usize>> = Vec::with_capacity(n);
    let mut scratch_elems = 0usize;
    for node in nodes {
        let i0 = node.inputs.first().copied();
        let d = match &node.op {
            // The float input placeholder owns no integer storage.
            IntOp::Input => vec![0],
            IntOp::QuantF32 { .. } => input_dims.to_vec(),
            IntOp::Requant { .. } | IntOp::Relu { .. } | IntOp::LeakyRelu { .. } => {
                let _ = LEAKY_ALPHA_FRAC; // format-only ops: size-preserving
                dims[i0.expect("unary op arity")].clone() // tqt:allow(expect): from_parts guarantees arity
            }
            IntOp::Conv {
                wdims,
                geom,
                depthwise,
                ..
            } => {
                let ish = &dims[i0.expect("conv arity")]; // tqt:allow(expect): from_parts guarantees arity
                let (oh, ow) = geom.out_size(ish[2], ish[3]);
                if !depthwise {
                    // The kernel's per-image im2col checkout:
                    // (c·kh·kw) × (oh·ow) elements.
                    scratch_elems =
                        scratch_elems.max(ish[1] * geom.kh * geom.kw * oh * ow);
                }
                vec![ish[0], wdims[0], oh, ow]
            }
            IntOp::Dense { out_dim, .. } => {
                let ish = &dims[i0.expect("dense arity")]; // tqt:allow(expect): from_parts guarantees arity
                vec![ish[0], *out_dim]
            }
            IntOp::MaxPool { geom } => {
                let ish = &dims[i0.expect("maxpool arity")]; // tqt:allow(expect): from_parts guarantees arity
                let (oh, ow) = geom.out_size(ish[2], ish[3]);
                vec![ish[0], ish[1], oh, ow]
            }
            IntOp::GlobalAvgPool => {
                let ish = &dims[i0.expect("gap arity")]; // tqt:allow(expect): from_parts guarantees arity
                vec![ish[0], ish[1]]
            }
            IntOp::Add => dims[node.inputs[0]].clone(),
            IntOp::Concat => {
                let ish = &dims[node.inputs[0]];
                let c: usize = node.inputs.iter().map(|&i| dims[i][1]).sum();
                let mut d = vec![ish[0], c];
                d.extend(&ish[2..]);
                d
            }
            IntOp::Flatten => {
                let ish = &dims[i0.expect("flatten arity")]; // tqt:allow(expect): from_parts guarantees arity
                vec![ish[0], ish.iter().product::<usize>() / ish[0]]
            }
            IntOp::Fused { core, .. } => {
                // The epilogue (requant/add/relu) is size-preserving, so the
                // fused node's storage is exactly its core's output; a fused
                // conv core still checks out the same im2col scratch.
                let ish = &dims[i0.expect("fused arity")]; // tqt:allow(expect): from_parts guarantees arity
                match &**core {
                    IntOp::Conv {
                        wdims,
                        geom,
                        depthwise,
                        ..
                    } => {
                        let (oh, ow) = geom.out_size(ish[2], ish[3]);
                        if !depthwise {
                            scratch_elems =
                                scratch_elems.max(ish[1] * geom.kh * geom.kw * oh * ow);
                        }
                        vec![ish[0], wdims[0], oh, ow]
                    }
                    IntOp::Dense { out_dim, .. } => vec![ish[0], *out_dim],
                    // Illegal core: the interval pass refutes it as
                    // TQT-V023; keep the storage derivation harmless.
                    _ => vec![0],
                }
            }
        };
        dims.push(d);
    }
    let lens: Vec<usize> = dims.iter().map(|d| d.iter().product()).collect();
    let mut last_use = vec![0usize; n];
    for (id, node) in nodes.iter().enumerate() {
        for &i in &node.inputs {
            last_use[i] = last_use[i].max(id);
        }
    }
    last_use[g.output_id()] = usize::MAX;
    Derived {
        lens,
        last_use,
        scratch_elems,
    }
}

/// The packed-panel element count the weight arena must reserve for a
/// node, re-derived from the packing contracts in
/// [`tqt_fixedpoint::intgemm`]: conv weights pack as an MR-tall LHS over
/// `cout × (cin·kh·kw)`, dense weights as an NR-wide RHS over
/// `in_dim × out_dim`. Depthwise convs and non-compute ops pack nothing.
fn expected_panel_len(op: &IntOp) -> Option<usize> {
    let core = match op {
        IntOp::Fused { core, .. } => core,
        other => other,
    };
    match core {
        IntOp::Conv {
            wdims,
            depthwise: false,
            ..
        } => Some(packed_lhs_len(wdims[0], wdims[1] * wdims[2] * wdims[3])),
        IntOp::Dense {
            in_dim, out_dim, ..
        } => Some(packed_rhs_len(*in_dim, *out_dim)),
        _ => None,
    }
}

/// Proves (or refutes, with a counterexample node path) that `plan` is
/// alias-free for `g`: every read sees its producing write, no write
/// lands on a live value, every slot fits its tensors, and scratch
/// accounting matches. A clean [`Report`] is the proof.
pub fn check_plan(g: &IntGraph, plan: &IntPlan) -> Report {
    let mut r = Report::new();
    let nodes = g.nodes();
    let n = nodes.len();
    let d = derive(g, plan.input_dims());

    if plan.num_nodes() != n {
        r.push_global(
            Code::PlanStorage,
            format!("plan covers {} nodes, graph has {n}", plan.num_nodes()),
        );
        return r;
    }

    // 1. Storage facts: re-derived lengths and slot capacities (V018).
    for id in 0..n {
        if plan.len_of(id) != d.lens[id] {
            r.push(
                Code::PlanStorage,
                &nodes[id].name,
                format!(
                    "plan says {} elements, shape re-derivation says {} (path: {})",
                    plan.len_of(id),
                    d.lens[id],
                    path_to(nodes, id)
                ),
            );
        }
        let s = plan.slot_of(id);
        if s >= plan.num_slots() {
            r.push(
                Code::PlanStorage,
                &nodes[id].name,
                format!("assigned slot {s} out of range ({} slots)", plan.num_slots()),
            );
        } else if plan.slot_len(s) < d.lens[id] {
            r.push(
                Code::PlanStorage,
                &nodes[id].name,
                format!(
                    "slot {s} holds {} elements but node needs {} (path: {})",
                    plan.slot_len(s),
                    d.lens[id],
                    path_to(nodes, id)
                ),
            );
        }
    }
    if plan.scratch_elems() != d.scratch_elems {
        r.push_global(
            Code::PlanStorage,
            format!(
                "plan accounts {} im2col scratch elements, kernel contracts require {}",
                plan.scratch_elems(),
                d.scratch_elems
            ),
        );
    }

    // 1b. Weight-arena facts (V018): every non-depthwise conv / dense
    // core (standalone or fused) must own a packed panel of the
    // re-derived packed length, inside the arena, pairwise disjoint —
    // a wrong extent would make the GEMM read another layer's weights.
    let arena = plan.weight_arena_elems();
    let mut panels: Vec<(usize, usize, usize)> = Vec::new();
    for (id, node) in nodes.iter().enumerate() {
        let want = expected_panel_len(&node.op);
        match (plan.weight_panel(id), want) {
            (Some((off, len)), Some(el)) => {
                if len != el {
                    r.push(
                        Code::PlanStorage,
                        &nodes[id].name,
                        format!(
                            "packed weight panel holds {len} elements, packing \
                             re-derivation says {el} (path: {})",
                            path_to(nodes, id)
                        ),
                    );
                } else if off + len > arena {
                    r.push(
                        Code::PlanStorage,
                        &nodes[id].name,
                        format!(
                            "packed weight panel [{off}, {}) escapes the {arena}-element \
                             arena (path: {})",
                            off + len,
                            path_to(nodes, id)
                        ),
                    );
                } else {
                    panels.push((off, len, id));
                }
            }
            (None, Some(_)) => {
                r.push(
                    Code::PlanStorage,
                    &nodes[id].name,
                    format!(
                        "no packed weight panel for a packable core (path: {})",
                        path_to(nodes, id)
                    ),
                );
            }
            (Some(_), None) => {
                r.push(
                    Code::PlanStorage,
                    &nodes[id].name,
                    "packed weight panel assigned to a node with no packable weights",
                );
            }
            (None, None) => {}
        }
    }
    panels.sort_unstable();
    for pair in panels.windows(2) {
        let (off_a, len_a, a) = pair[0];
        let (off_b, _, b) = pair[1];
        if off_a + len_a > off_b {
            r.push(
                Code::PlanStorage,
                &nodes[b].name,
                format!(
                    "packed weight panel at {off_b} overlaps `{}`'s panel \
                     [{off_a}, {})",
                    nodes[a].name,
                    off_a + len_a
                ),
            );
        }
    }

    if !r.is_clean() {
        // Occupancy simulation below indexes by the storage facts just
        // refuted; stop at the stronger finding.
        return r;
    }

    // 2. Occupancy simulation over the re-derived liveness (V016/V017).
    let mut occupant: Vec<Option<usize>> = vec![None; plan.num_slots()];
    for (id, node) in nodes.iter().enumerate() {
        // Reads: each live operand must still be in its slot.
        for &i in &node.inputs {
            if d.lens[i] == 0 {
                continue;
            }
            let s = plan.slot_of(i);
            if occupant[s] != Some(i) {
                let holder = match occupant[s] {
                    Some(v) => format!("now holds `{}`", nodes[v].name),
                    None => "was never written".to_string(),
                };
                r.push(
                    Code::PlanStaleRead,
                    &nodes[id].name,
                    format!(
                        "reads operand `{}` from slot {s}, but the slot {holder} — the \
                         producing write was released or overwritten early \
                         (counterexample path: {})",
                        nodes[i].name,
                        path_to(nodes, id)
                    ),
                );
            }
        }
        // Write: the node's slot must hold no live value.
        if d.lens[id] == 0 {
            continue;
        }
        let s = plan.slot_of(id);
        if let Some(v) = occupant[s] {
            let live = d.last_use[v] >= id && v != id;
            if live {
                let stranded = if d.last_use[v] == usize::MAX {
                    "the graph output".to_string()
                } else {
                    format!("consumer `{}`", nodes[d.last_use[v].min(n - 1)].name)
                };
                r.push(
                    Code::PlanAlias,
                    &nodes[id].name,
                    format!(
                        "writes slot {s} while `{}` (produced at node {v}) is still \
                         live — {stranded} would read clobbered data \
                         (counterexample path: {})",
                        nodes[v].name,
                        path_to(nodes, id)
                    ),
                );
            }
        }
        occupant[s] = Some(id);
    }

    // 3. The graph output must have survived the whole run.
    let out = g.output_id();
    if d.lens[out] > 0 && occupant[plan.slot_of(out)] != Some(out) {
        r.push(
            Code::PlanStaleRead,
            &nodes[out].name,
            format!(
                "graph output no longer occupies slot {} after the final node",
                plan.slot_of(out)
            ),
        );
    }
    r
}

/// Proves (or refutes) that a [`FloatPlan`] — the training-step tape of
/// forward activations, xhats, gradients, and fan-in temps — is
/// alias-free for `g`, extending the `TQT-V016`–`TQT-V018` proofs from
/// inference plans to the full forward+backward tape. The planner is
/// again untrusted:
///
/// * value element counts are re-derived from the legacy executor's own
///   shape inference (a dry run of the reference path, not a call into
///   the planner) and compared per value (`TQT-V018`);
/// * the plan-owned `ws`/`wpack`/`qw` arena accounting is re-derived from
///   the kernel workspace contracts (`conv2d_fwd_ws`, `conv2d_bwd_ws`,
///   depthwise `n·kelems`, `packed_a_len`) and the graph's weight
///   quantizers (`TQT-V018`);
/// * the forward tape must structurally match the graph (step *i*
///   defines activation *i* and reads exactly node *i*'s inputs);
/// * the whole tape is simulated over slot occupancy with the same
///   clobber/stale-read refutations as the inference checker
///   (`TQT-V016`/`TQT-V017`). Unlike inference plans, a training step may
///   legally write a value and read it in the same step (fan-in temps):
///   reads of earlier-defined values are validated *before* the step's
///   writes land, reads of step-local values after.
///
/// `g` is only mutated by shape inference. A clean [`Report`] is the
/// proof; the float mutation test injects a premature slot release and
/// asserts the refutation names the victim value.
pub fn check_float_plan(g: &mut Graph, plan: &FloatPlan) -> Report {
    let mut r = Report::new();
    let n = g.len();
    let shapes = g.infer_shapes(plan.input_dims());
    let ref_lens: Vec<usize> = shapes.iter().map(|s| s.iter().product()).collect();
    let nv = plan.num_values();

    // 1. Value storage facts (V018): re-derived lengths, slot ranges and
    // capacities.
    for v in 0..nv {
        let node = plan.kind_of(v).node();
        if node >= n {
            r.push_global(
                Code::PlanStorage,
                format!("value {v} refers to node {node}, graph has {n}"),
            );
            return r;
        }
        let name = plan.value_name(g, v);
        if plan.len_of(v) != ref_lens[node] {
            r.push(
                Code::PlanStorage,
                &name,
                format!(
                    "plan says {} elements, the reference executor's shape \
                     inference says {}",
                    plan.len_of(v),
                    ref_lens[node]
                ),
            );
        }
        let s = plan.slot_of(v);
        if s >= plan.num_slots() {
            r.push(
                Code::PlanStorage,
                &name,
                format!("assigned slot {s} out of range ({} slots)", plan.num_slots()),
            );
        } else if plan.slot_len(s) < plan.len_of(v) {
            r.push(
                Code::PlanStorage,
                &name,
                format!(
                    "slot {s} holds {} elements but the value needs {}",
                    plan.slot_len(s),
                    plan.len_of(v)
                ),
            );
        }
    }
    // Xhat values must exist exactly on batch-norm nodes: the backward
    // pass reads them instead of the raw input.
    for id in 0..n {
        let is_bn = matches!(g.node(id).op, FOp::BatchNorm(_));
        if plan.xhat_of(id).is_some() != is_bn {
            r.push(
                Code::PlanStorage,
                &g.node(id).name,
                if is_bn {
                    "batch-norm node has no planned xhat value"
                } else {
                    "non-batch-norm node carries an xhat value"
                },
            );
        }
    }

    // 2. Plan-owned arena accounting (V018): mirror the kernel workspace
    // contracts instead of trusting the planner's own sums.
    let (mut ws_need, mut wpack_need, mut qw_total) = (0usize, 0usize, 0usize);
    let mut qw_segs: Vec<(usize, usize, usize)> = Vec::new();
    for id in 0..n {
        let node = g.node(id);
        let ish = &shapes[node.inputs.first().copied().unwrap_or(id)];
        let weight_elems = tqt_graph::ir::op_params(&node.op)
            .into_iter()
            .find(|p| p.kind == tqt_nn::ParamKind::Weight)
            .map(|p| p.value.len());
        match &node.op {
            FOp::Conv(l) => {
                let (nb, c, h, w) = (ish[0], ish[1], ish[2], ish[3]);
                let g2 = l.geom();
                let cout = shapes[id][1];
                ws_need = ws_need
                    .max(nb * conv2d_fwd_ws(c, h, w, g2))
                    .max(nb * conv2d_bwd_ws(c, h, w, cout, g2));
                wpack_need = wpack_need.max(packed_a_len(cout, c * g2.kh * g2.kw));
            }
            FOp::Depthwise(_) => {
                let kelems = weight_elems.unwrap_or(0);
                ws_need = ws_need.max(ish[0] * kelems);
            }
            _ => {}
        }
        match (node.wq.is_some(), plan.qw_seg(id), weight_elems) {
            (true, Some((off, len)), Some(el)) => {
                if len != el {
                    r.push(
                        Code::PlanStorage,
                        &node.name,
                        format!("quantized-weight segment holds {len} elements, weight has {el}"),
                    );
                } else {
                    qw_segs.push((off, len, id));
                }
                qw_total += el;
            }
            (true, None, Some(el)) => {
                r.push(
                    Code::PlanStorage,
                    &node.name,
                    "weight-quantized node has no quantized-weight segment",
                );
                qw_total += el;
            }
            (false, Some(_), _) => {
                r.push(
                    Code::PlanStorage,
                    &node.name,
                    "quantized-weight segment on a node without a weight quantizer",
                );
            }
            _ => {}
        }
    }
    if plan.scratch_elems() != ws_need {
        r.push_global(
            Code::PlanStorage,
            format!(
                "plan accounts {} workspace elements, kernel contracts require {ws_need}",
                plan.scratch_elems()
            ),
        );
    }
    if plan.wpack_elems() != wpack_need {
        r.push_global(
            Code::PlanStorage,
            format!(
                "plan accounts {} packed-filter elements, packing contracts require {wpack_need}",
                plan.wpack_elems()
            ),
        );
    }
    if plan.qw_elems() != qw_total {
        r.push_global(
            Code::PlanStorage,
            format!(
                "plan accounts {} quantized-weight elements, weight quantizers require {qw_total}",
                plan.qw_elems()
            ),
        );
    }
    qw_segs.sort_unstable();
    for pair in qw_segs.windows(2) {
        let (off_a, len_a, a) = pair[0];
        let (off_b, _, b) = pair[1];
        if off_a + len_a > off_b {
            r.push(
                Code::PlanStorage,
                &g.node(b).name,
                format!(
                    "quantized-weight segment at {off_b} overlaps `{}`'s segment [{off_a}, {})",
                    g.node(a).name,
                    off_a + len_a
                ),
            );
        }
    }
    if let Some(&(off, len, ref_id)) = qw_segs.last() {
        if off + len > plan.qw_elems() {
            r.push(
                Code::PlanStorage,
                &g.node(ref_id).name,
                format!(
                    "quantized-weight segment [{off}, {}) escapes the {}-element arena",
                    off + len,
                    plan.qw_elems()
                ),
            );
        }
    }

    // 3. Forward-tape structure: step i must define activation i from
    // exactly node i's inputs (the executor dispatches by node id).
    let steps = plan.steps();
    if steps.len() != n + 1 + plan.bwd_steps().len() {
        r.push_global(
            Code::PlanStorage,
            format!(
                "tape has {} steps; graph requires {} forward + 1 seed + {} backward",
                steps.len(),
                n,
                plan.bwd_steps().len()
            ),
        );
    }
    for (id, st) in steps.iter().enumerate().take(n) {
        if st.writes.first() != Some(&id) {
            r.push(
                Code::PlanStorage,
                &g.node(id).name,
                "forward step does not define the node's activation first",
            );
        }
        if st.reads != g.node(id).inputs {
            r.push(
                Code::PlanStorage,
                &g.node(id).name,
                "forward step reads disagree with the node's inputs",
            );
        }
    }

    if !r.is_clean() {
        // The occupancy simulation indexes by the storage facts just
        // refuted; stop at the stronger finding.
        return r;
    }

    // 4. Occupancy simulation over re-derived liveness (V016/V017).
    let mut last_read = vec![0usize; nv];
    for (si, step) in steps.iter().enumerate() {
        for &rd in &step.reads {
            last_read[rd] = last_read[rd].max(si);
        }
    }
    let out_act = g.output_id();
    last_read[out_act] = usize::MAX; // pinned: logits survive the run
    let mut occupant: Vec<Option<usize>> = vec![None; plan.num_slots()];
    let mut defined_at: Vec<Option<usize>> = vec![None; nv];
    for (si, step) in steps.iter().enumerate() {
        // Reads of values defined in earlier steps must still be in
        // their slots *before* this step's writes land.
        for &rd in &step.reads {
            match defined_at[rd] {
                Some(_) => {
                    if occupant[plan.slot_of(rd)] != Some(rd) {
                        stale_read(&mut r, g, plan, rd, si, occupant[plan.slot_of(rd)]);
                    }
                }
                None => {
                    if !step.writes.contains(&rd) {
                        r.push(
                            Code::PlanStaleRead,
                            plan.value_name(g, rd),
                            format!("read at step {si} before any write defines it"),
                        );
                    }
                }
            }
        }
        for &w in &step.writes {
            if defined_at[w].is_some() {
                r.push(
                    Code::PlanStorage,
                    plan.value_name(g, w),
                    format!("defined twice (again at step {si}); the tape is not SSA"),
                );
            }
            let s = plan.slot_of(w);
            if let Some(v) = occupant[s] {
                if v != w && last_read[v] >= si {
                    r.push(
                        Code::PlanAlias,
                        plan.value_name(g, w),
                        format!(
                            "step {si} writes slot {s} while `{}` is still live \
                             (last read at step {}) — the pending consumer would \
                             read clobbered data",
                            plan.value_name(g, v),
                            if last_read[v] == usize::MAX {
                                "end-of-tape (pinned)".to_string()
                            } else {
                                last_read[v].to_string()
                            }
                        ),
                    );
                }
            }
            occupant[s] = Some(w);
            defined_at[w] = Some(si);
        }
        // Same-step write-then-read (fan-in accumulation) is legal;
        // validate those reads now that the writes landed.
        for &rd in &step.reads {
            if defined_at[rd] == Some(si) && occupant[plan.slot_of(rd)] != Some(rd) {
                stale_read(&mut r, g, plan, rd, si, occupant[plan.slot_of(rd)]);
            }
        }
    }

    // 5. The logits must have survived the whole training step.
    if occupant[plan.slot_of(out_act)] != Some(out_act) {
        r.push(
            Code::PlanStaleRead,
            &g.node(out_act).name,
            format!(
                "graph output no longer occupies slot {} after the final step",
                plan.slot_of(out_act)
            ),
        );
    }
    r
}

/// Pushes the V017 refutation for a stranded read, naming the victim
/// value so mutation tests can pin the counterexample.
fn stale_read(
    r: &mut Report,
    g: &Graph,
    plan: &FloatPlan,
    rd: usize,
    si: usize,
    holder: Option<usize>,
) {
    let holder = match holder {
        Some(v) => format!("now holds `{}`", plan.value_name(g, v)),
        None => "was never written".to_string(),
    };
    r.push(
        Code::PlanStaleRead,
        plan.value_name(g, rd),
        format!(
            "read at step {si} from slot {}, but the slot {holder} — the \
             producing write was released or overwritten early",
            plan.slot_of(rd)
        ),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use tqt_fixedpoint::lower::IntNode;
    use tqt_fixedpoint::QFormat;

    fn q8(frac: i32) -> QFormat {
        QFormat::new(frac, 8, true)
    }

    fn diamond() -> IntGraph {
        let nodes = vec![
            IntNode {
                name: "in".into(),
                op: IntOp::Input,
                inputs: vec![],
            },
            IntNode {
                name: "q".into(),
                op: IntOp::QuantF32 { format: q8(4) },
                inputs: vec![0],
            },
            IntNode {
                name: "relu".into(),
                op: IntOp::Relu { cap_q: None },
                inputs: vec![1],
            },
            IntNode {
                name: "rq".into(),
                op: IntOp::Requant { format: q8(4) },
                inputs: vec![1],
            },
            IntNode {
                name: "add".into(),
                op: IntOp::Add,
                inputs: vec![2, 3],
            },
        ];
        IntGraph::from_parts(nodes, 4)
    }

    #[test]
    fn clean_plans_are_proven() {
        let g = diamond();
        for dims in [vec![1, 32], vec![4, 32]] {
            let plan = g.plan(&dims);
            let r = check_plan(&g, &plan);
            assert!(r.is_clean(), "{r}");
        }
    }

    #[test]
    fn chain_plan_is_proven() {
        let nodes = vec![
            IntNode {
                name: "in".into(),
                op: IntOp::Input,
                inputs: vec![],
            },
            IntNode {
                name: "q".into(),
                op: IntOp::QuantF32 { format: q8(4) },
                inputs: vec![0],
            },
            IntNode {
                name: "r1".into(),
                op: IntOp::Requant { format: q8(3) },
                inputs: vec![1],
            },
            IntNode {
                name: "r2".into(),
                op: IntOp::Requant { format: q8(2) },
                inputs: vec![2],
            },
            IntNode {
                name: "flat".into(),
                op: IntOp::Flatten,
                inputs: vec![3],
            },
        ];
        let g = IntGraph::from_parts(nodes, 4);
        let plan = g.plan(&[2, 16]);
        let r = check_plan(&g, &plan);
        assert!(r.is_clean(), "{r}");
    }
}
