//! Plan verifier (`TQT-V016`–`TQT-V018`): an independent alias-freedom
//! proof over [`IntPlan`]'s buffer-slot assignment.
//!
//! The executor ([`tqt_fixedpoint::IntExecutor`]) reads every operand
//! from, and writes every result into, a small set of reusable slots the
//! planner assigned by liveness analysis. One off-by-one in that
//! analysis silently corrupts inference — a node would read a buffer
//! another node already overwrote — so this pass re-proves the plan from
//! scratch, **treating the planner as untrusted**:
//!
//! * per-node element counts are re-derived from the graph's shape rules
//!   (a mirror written against the runtime kernels, not a call into the
//!   planner) and compared with the plan (`TQT-V018`);
//! * per-node liveness is re-derived (a value is live from its
//!   definition to its last consumer; the graph output is live forever)
//!   and the whole execution is simulated over slot occupancy: every
//!   write into a slot holding a live value is `TQT-V016`, every read
//!   that does not see its producing write is `TQT-V017`, every
//!   capacity shortfall is `TQT-V018`;
//! * the executor's only workspace outside the slots — the per-image
//!   im2col checkout from the thread-local scratch arena — is re-derived
//!   and compared with the plan's accounting (`TQT-V018`), proving
//!   im2col scratch is sized and held apart from slot storage (the arena
//!   is a distinct allocation by construction; the sanitizer's
//!   `TQT-V022` covers its checkout discipline at runtime).
//!
//! Every refutation carries the producer-chain path of the offending
//! node as a counterexample. The mutation tests
//! (`crates/verify/tests/plan_mutations.rs`) inject a liveness
//! off-by-one and a premature slot release and assert this pass refutes
//! both with the correct node.

use crate::diag::{Code, Report};
use crate::interval::path_to;
use tqt_fixedpoint::intgemm::{packed_lhs_len, packed_rhs_len};
use tqt_fixedpoint::lower::{IntGraph, IntOp, LEAKY_ALPHA_FRAC};
use tqt_fixedpoint::IntPlan;

/// Independently re-derived facts about one planned graph.
#[derive(Debug)]
struct Derived {
    /// Element count per node (0 for the float-input placeholder).
    lens: Vec<usize>,
    /// Last node id that needs each node's value (`usize::MAX` for the
    /// graph output, which must survive the whole run).
    last_use: Vec<usize>,
    /// im2col scratch high-water mark in elements.
    scratch_elems: usize,
}

/// Re-derives per-node output element counts from the op semantics. This
/// intentionally re-implements the shape rules against the kernel
/// contracts instead of calling the planner, so a planner bug cannot
/// vouch for itself.
fn derive(g: &IntGraph, input_dims: &[usize]) -> Derived {
    let nodes = g.nodes();
    let n = nodes.len();
    let mut dims: Vec<Vec<usize>> = Vec::with_capacity(n);
    let mut scratch_elems = 0usize;
    for node in nodes {
        let i0 = node.inputs.first().copied();
        let d = match &node.op {
            // The float input placeholder owns no integer storage.
            IntOp::Input => vec![0],
            IntOp::QuantF32 { .. } => input_dims.to_vec(),
            IntOp::Requant { .. } | IntOp::Relu { .. } | IntOp::LeakyRelu { .. } => {
                let _ = LEAKY_ALPHA_FRAC; // format-only ops: size-preserving
                dims[i0.expect("unary op arity")].clone() // tqt:allow(expect): from_parts guarantees arity
            }
            IntOp::Conv {
                wdims,
                geom,
                depthwise,
                ..
            } => {
                let ish = &dims[i0.expect("conv arity")]; // tqt:allow(expect): from_parts guarantees arity
                let (oh, ow) = geom.out_size(ish[2], ish[3]);
                if !depthwise {
                    // The kernel's per-image im2col checkout:
                    // (c·kh·kw) × (oh·ow) elements.
                    scratch_elems =
                        scratch_elems.max(ish[1] * geom.kh * geom.kw * oh * ow);
                }
                vec![ish[0], wdims[0], oh, ow]
            }
            IntOp::Dense { out_dim, .. } => {
                let ish = &dims[i0.expect("dense arity")]; // tqt:allow(expect): from_parts guarantees arity
                vec![ish[0], *out_dim]
            }
            IntOp::MaxPool { geom } => {
                let ish = &dims[i0.expect("maxpool arity")]; // tqt:allow(expect): from_parts guarantees arity
                let (oh, ow) = geom.out_size(ish[2], ish[3]);
                vec![ish[0], ish[1], oh, ow]
            }
            IntOp::GlobalAvgPool => {
                let ish = &dims[i0.expect("gap arity")]; // tqt:allow(expect): from_parts guarantees arity
                vec![ish[0], ish[1]]
            }
            IntOp::Add => dims[node.inputs[0]].clone(),
            IntOp::Concat => {
                let ish = &dims[node.inputs[0]];
                let c: usize = node.inputs.iter().map(|&i| dims[i][1]).sum();
                let mut d = vec![ish[0], c];
                d.extend(&ish[2..]);
                d
            }
            IntOp::Flatten => {
                let ish = &dims[i0.expect("flatten arity")]; // tqt:allow(expect): from_parts guarantees arity
                vec![ish[0], ish.iter().product::<usize>() / ish[0]]
            }
            IntOp::Fused { core, .. } => {
                // The epilogue (requant/add/relu) is size-preserving, so the
                // fused node's storage is exactly its core's output; a fused
                // conv core still checks out the same im2col scratch.
                let ish = &dims[i0.expect("fused arity")]; // tqt:allow(expect): from_parts guarantees arity
                match &**core {
                    IntOp::Conv {
                        wdims,
                        geom,
                        depthwise,
                        ..
                    } => {
                        let (oh, ow) = geom.out_size(ish[2], ish[3]);
                        if !depthwise {
                            scratch_elems =
                                scratch_elems.max(ish[1] * geom.kh * geom.kw * oh * ow);
                        }
                        vec![ish[0], wdims[0], oh, ow]
                    }
                    IntOp::Dense { out_dim, .. } => vec![ish[0], *out_dim],
                    // Illegal core: the interval pass refutes it as
                    // TQT-V023; keep the storage derivation harmless.
                    _ => vec![0],
                }
            }
        };
        dims.push(d);
    }
    let lens: Vec<usize> = dims.iter().map(|d| d.iter().product()).collect();
    let mut last_use = vec![0usize; n];
    for (id, node) in nodes.iter().enumerate() {
        for &i in &node.inputs {
            last_use[i] = last_use[i].max(id);
        }
    }
    last_use[g.output_id()] = usize::MAX;
    Derived {
        lens,
        last_use,
        scratch_elems,
    }
}

/// The packed-panel element count the weight arena must reserve for a
/// node, re-derived from the packing contracts in
/// [`tqt_fixedpoint::intgemm`]: conv weights pack as an MR-tall LHS over
/// `cout × (cin·kh·kw)`, dense weights as an NR-wide RHS over
/// `in_dim × out_dim`. Depthwise convs and non-compute ops pack nothing.
fn expected_panel_len(op: &IntOp) -> Option<usize> {
    let core = match op {
        IntOp::Fused { core, .. } => core,
        other => other,
    };
    match core {
        IntOp::Conv {
            wdims,
            depthwise: false,
            ..
        } => Some(packed_lhs_len(wdims[0], wdims[1] * wdims[2] * wdims[3])),
        IntOp::Dense {
            in_dim, out_dim, ..
        } => Some(packed_rhs_len(*in_dim, *out_dim)),
        _ => None,
    }
}

/// Proves (or refutes, with a counterexample node path) that `plan` is
/// alias-free for `g`: every read sees its producing write, no write
/// lands on a live value, every slot fits its tensors, and scratch
/// accounting matches. A clean [`Report`] is the proof.
pub fn check_plan(g: &IntGraph, plan: &IntPlan) -> Report {
    let mut r = Report::new();
    let nodes = g.nodes();
    let n = nodes.len();
    let d = derive(g, plan.input_dims());

    if plan.num_nodes() != n {
        r.push_global(
            Code::PlanStorage,
            format!("plan covers {} nodes, graph has {n}", plan.num_nodes()),
        );
        return r;
    }

    // 1. Storage facts: re-derived lengths and slot capacities (V018).
    for id in 0..n {
        if plan.len_of(id) != d.lens[id] {
            r.push(
                Code::PlanStorage,
                &nodes[id].name,
                format!(
                    "plan says {} elements, shape re-derivation says {} (path: {})",
                    plan.len_of(id),
                    d.lens[id],
                    path_to(nodes, id)
                ),
            );
        }
        let s = plan.slot_of(id);
        if s >= plan.num_slots() {
            r.push(
                Code::PlanStorage,
                &nodes[id].name,
                format!("assigned slot {s} out of range ({} slots)", plan.num_slots()),
            );
        } else if plan.slot_len(s) < d.lens[id] {
            r.push(
                Code::PlanStorage,
                &nodes[id].name,
                format!(
                    "slot {s} holds {} elements but node needs {} (path: {})",
                    plan.slot_len(s),
                    d.lens[id],
                    path_to(nodes, id)
                ),
            );
        }
    }
    if plan.scratch_elems() != d.scratch_elems {
        r.push_global(
            Code::PlanStorage,
            format!(
                "plan accounts {} im2col scratch elements, kernel contracts require {}",
                plan.scratch_elems(),
                d.scratch_elems
            ),
        );
    }

    // 1b. Weight-arena facts (V018): every non-depthwise conv / dense
    // core (standalone or fused) must own a packed panel of the
    // re-derived packed length, inside the arena, pairwise disjoint —
    // a wrong extent would make the GEMM read another layer's weights.
    let arena = plan.weight_arena_elems();
    let mut panels: Vec<(usize, usize, usize)> = Vec::new();
    for (id, node) in nodes.iter().enumerate() {
        let want = expected_panel_len(&node.op);
        match (plan.weight_panel(id), want) {
            (Some((off, len)), Some(el)) => {
                if len != el {
                    r.push(
                        Code::PlanStorage,
                        &nodes[id].name,
                        format!(
                            "packed weight panel holds {len} elements, packing \
                             re-derivation says {el} (path: {})",
                            path_to(nodes, id)
                        ),
                    );
                } else if off + len > arena {
                    r.push(
                        Code::PlanStorage,
                        &nodes[id].name,
                        format!(
                            "packed weight panel [{off}, {}) escapes the {arena}-element \
                             arena (path: {})",
                            off + len,
                            path_to(nodes, id)
                        ),
                    );
                } else {
                    panels.push((off, len, id));
                }
            }
            (None, Some(_)) => {
                r.push(
                    Code::PlanStorage,
                    &nodes[id].name,
                    format!(
                        "no packed weight panel for a packable core (path: {})",
                        path_to(nodes, id)
                    ),
                );
            }
            (Some(_), None) => {
                r.push(
                    Code::PlanStorage,
                    &nodes[id].name,
                    "packed weight panel assigned to a node with no packable weights",
                );
            }
            (None, None) => {}
        }
    }
    panels.sort_unstable();
    for pair in panels.windows(2) {
        let (off_a, len_a, a) = pair[0];
        let (off_b, _, b) = pair[1];
        if off_a + len_a > off_b {
            r.push(
                Code::PlanStorage,
                &nodes[b].name,
                format!(
                    "packed weight panel at {off_b} overlaps `{}`'s panel \
                     [{off_a}, {})",
                    nodes[a].name,
                    off_a + len_a
                ),
            );
        }
    }

    if !r.is_clean() {
        // Occupancy simulation below indexes by the storage facts just
        // refuted; stop at the stronger finding.
        return r;
    }

    // 2. Occupancy simulation over the re-derived liveness (V016/V017).
    let mut occupant: Vec<Option<usize>> = vec![None; plan.num_slots()];
    for (id, node) in nodes.iter().enumerate() {
        // Reads: each live operand must still be in its slot.
        for &i in &node.inputs {
            if d.lens[i] == 0 {
                continue;
            }
            let s = plan.slot_of(i);
            if occupant[s] != Some(i) {
                let holder = match occupant[s] {
                    Some(v) => format!("now holds `{}`", nodes[v].name),
                    None => "was never written".to_string(),
                };
                r.push(
                    Code::PlanStaleRead,
                    &nodes[id].name,
                    format!(
                        "reads operand `{}` from slot {s}, but the slot {holder} — the \
                         producing write was released or overwritten early \
                         (counterexample path: {})",
                        nodes[i].name,
                        path_to(nodes, id)
                    ),
                );
            }
        }
        // Write: the node's slot must hold no live value.
        if d.lens[id] == 0 {
            continue;
        }
        let s = plan.slot_of(id);
        if let Some(v) = occupant[s] {
            let live = d.last_use[v] >= id && v != id;
            if live {
                let stranded = if d.last_use[v] == usize::MAX {
                    "the graph output".to_string()
                } else {
                    format!("consumer `{}`", nodes[d.last_use[v].min(n - 1)].name)
                };
                r.push(
                    Code::PlanAlias,
                    &nodes[id].name,
                    format!(
                        "writes slot {s} while `{}` (produced at node {v}) is still \
                         live — {stranded} would read clobbered data \
                         (counterexample path: {})",
                        nodes[v].name,
                        path_to(nodes, id)
                    ),
                );
            }
        }
        occupant[s] = Some(id);
    }

    // 3. The graph output must have survived the whole run.
    let out = g.output_id();
    if d.lens[out] > 0 && occupant[plan.slot_of(out)] != Some(out) {
        r.push(
            Code::PlanStaleRead,
            &nodes[out].name,
            format!(
                "graph output no longer occupies slot {} after the final node",
                plan.slot_of(out)
            ),
        );
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use tqt_fixedpoint::lower::IntNode;
    use tqt_fixedpoint::QFormat;

    fn q8(frac: i32) -> QFormat {
        QFormat::new(frac, 8, true)
    }

    fn diamond() -> IntGraph {
        let nodes = vec![
            IntNode {
                name: "in".into(),
                op: IntOp::Input,
                inputs: vec![],
            },
            IntNode {
                name: "q".into(),
                op: IntOp::QuantF32 { format: q8(4) },
                inputs: vec![0],
            },
            IntNode {
                name: "relu".into(),
                op: IntOp::Relu { cap_q: None },
                inputs: vec![1],
            },
            IntNode {
                name: "rq".into(),
                op: IntOp::Requant { format: q8(4) },
                inputs: vec![1],
            },
            IntNode {
                name: "add".into(),
                op: IntOp::Add,
                inputs: vec![2, 3],
            },
        ];
        IntGraph::from_parts(nodes, 4)
    }

    #[test]
    fn clean_plans_are_proven() {
        let g = diamond();
        for dims in [vec![1, 32], vec![4, 32]] {
            let plan = g.plan(&dims);
            let r = check_plan(&g, &plan);
            assert!(r.is_clean(), "{r}");
        }
    }

    #[test]
    fn chain_plan_is_proven() {
        let nodes = vec![
            IntNode {
                name: "in".into(),
                op: IntOp::Input,
                inputs: vec![],
            },
            IntNode {
                name: "q".into(),
                op: IntOp::QuantF32 { format: q8(4) },
                inputs: vec![0],
            },
            IntNode {
                name: "r1".into(),
                op: IntOp::Requant { format: q8(3) },
                inputs: vec![1],
            },
            IntNode {
                name: "r2".into(),
                op: IntOp::Requant { format: q8(2) },
                inputs: vec![2],
            },
            IntNode {
                name: "flat".into(),
                op: IntOp::Flatten,
                inputs: vec![3],
            },
        ];
        let g = IntGraph::from_parts(nodes, 4);
        let plan = g.plan(&[2, 16]);
        let r = check_plan(&g, &plan);
        assert!(r.is_clean(), "{r}");
    }
}
