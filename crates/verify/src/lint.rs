//! Quantization lints over the float graph.
//!
//! Mirrors the grid-propagation logic of `tqt_fixedpoint::lower` — which
//! enforces the same invariants dynamically with panics — but statically
//! and exhaustively: one pass reports *every* violation, annotated with a
//! stable code, instead of dying on the first.

use crate::diag::{Code, Report};
use crate::Stage;
use tqt_graph::{Graph, Op, ThresholdId};

/// Largest fractional length a threshold may imply: beyond this, the
/// requantization shifts the grid difference compiles to stop being legal
/// i64 shifts (see `TQT-V012`).
pub const MAX_FRAC: i32 = 62;

/// Quantization grid a float node's output lives on, as far as static
/// analysis can tell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Grid {
    /// Raw float (no quantizer between this node and the input).
    Float,
    /// Quantized: fractional length plus the threshold that produced the
    /// grid (accumulator grids carry the *weight* threshold of the
    /// producing compute op).
    Fixed { frac: i32, tid: ThresholdId },
}

/// Runs the lint set appropriate to `stage`. See [`Code`] for the catalog;
/// this pass owns `TQT-V003` … `TQT-V010`.
pub fn lint(g: &Graph, stage: Stage) -> Report {
    let mut r = Report::new();

    // --- Threshold-table lints -------------------------------------------
    let mut referenced = vec![false; g.thresholds().len()];
    for (_, node) in g.iter() {
        if let Op::Quant { tid } = node.op {
            if let Some(slot) = referenced.get_mut(tid) {
                *slot = true;
            }
        }
        if let Some(wq) = &node.wq {
            if let Some(slot) = referenced.get_mut(wq.tid) {
                *slot = true;
            }
        }
    }
    for (tid, ts) in g.thresholds().iter().enumerate() {
        if !referenced[tid] {
            r.push_global(
                Code::DeadThreshold,
                format!("threshold {tid} (`{}`) is referenced by no node", ts.param.name),
            );
            continue;
        }
        if stage >= Stage::Calibrated && !ts.calibrated {
            r.push_global(
                Code::Uncalibrated,
                format!("threshold {tid} (`{}`) was never calibrated", ts.param.name),
            );
        }
        if ts.calibrated {
            let l = ts.log2_t();
            let frac = ts.spec.fractional_length(l);
            if !l.is_finite() {
                r.push_global(
                    Code::DegenerateScale,
                    format!("threshold {tid} (`{}`) has non-finite log2 t = {l}", ts.param.name),
                );
            } else if frac.abs() > MAX_FRAC {
                r.push_global(
                    Code::DegenerateScale,
                    format!(
                        "threshold {tid} (`{}`) implies fractional length {frac} \
                         (|frac| > {MAX_FRAC}); scale 2^{} is out of shiftable range",
                        ts.param.name, -frac
                    ),
                );
            }
        }
    }

    // --- Stage-gated structural lints ------------------------------------
    for (_, node) in g.iter() {
        match &node.op {
            Op::BatchNorm(_) if stage >= Stage::Optimized => {
                r.push(
                    Code::UnfoldedBatchNorm,
                    node.name.clone(),
                    "batch norm survives after the transform pipeline; fold before quantizing",
                );
            }
            Op::AvgPool(_) if stage >= Stage::Optimized => {
                r.push(
                    Code::UnconvertedAvgPool,
                    node.name.clone(),
                    "average pool survives after the transform pipeline; convert to depthwise",
                );
            }
            _ => {}
        }
    }

    if stage < Stage::Quantized {
        return r;
    }

    // --- Grid propagation (mirrors lower.rs frac propagation) ------------
    let mut grids: Vec<Grid> = vec![Grid::Float; g.len()];
    for (id, node) in g.iter() {
        if node.inputs.iter().any(|&i| i >= id) {
            continue; // structural failure, reported by check_structure
        }
        let gin = node.inputs.first().map(|&i| grids[i]);
        grids[id] = match &node.op {
            Op::Input => Grid::Float,
            Op::Quant { tid } => {
                if let Some(ts) = g.thresholds().get(*tid) {
                    if ts.calibrated {
                        Grid::Fixed {
                            frac: ts.spec.fractional_length(ts.log2_t()),
                            tid: *tid,
                        }
                    } else {
                        // Uncalibrated already reported; frac unknown, but
                        // the edge *is* quantized — use a placeholder so
                        // V003 does not fire spuriously.
                        Grid::Fixed { frac: 0, tid: *tid }
                    }
                } else {
                    Grid::Float
                }
            }
            Op::Conv(_) | Op::Depthwise(_) | Op::Dense(_) => {
                if gin == Some(Grid::Float) {
                    r.push(
                        Code::UnquantizedEdge,
                        node.name.clone(),
                        "compute op consumes a float edge; insert an activation quantizer",
                    );
                }
                match &node.wq {
                    None => {
                        r.push(
                            Code::MissingWeightQuant,
                            node.name.clone(),
                            "compute op has no weight quantizer attached",
                        );
                        Grid::Float
                    }
                    Some(wq) => match (gin, g.thresholds().get(wq.tid)) {
                        (Some(Grid::Fixed { frac: fx, .. }), Some(ts)) if ts.calibrated => {
                            Grid::Fixed {
                                frac: fx + ts.spec.fractional_length(ts.log2_t()),
                                tid: wq.tid,
                            }
                        }
                        _ => Grid::Float,
                    },
                }
            }
            Op::Relu(rl) => match gin {
                Some(Grid::Fixed { frac, tid }) if rl.negative_slope() > 0.0 => Grid::Fixed {
                    frac: frac + tqt_fixedpoint::lower::LEAKY_ALPHA_FRAC,
                    tid,
                },
                Some(gi) => gi,
                None => Grid::Float,
            },
            Op::GlobalAvgPool(_) => {
                // frac grows by log2(hw), resolved with shapes; the grid is
                // still the producer's threshold for merge purposes.
                gin.unwrap_or(Grid::Float)
            }
            Op::Add(_) | Op::Concat(_) => {
                let in_grids: Vec<Grid> = node.inputs.iter().map(|&i| grids[i]).collect();
                let first = in_grids[0];
                for (slot, gi) in in_grids.iter().enumerate().skip(1) {
                    if *gi != first {
                        r.push(
                            Code::MergeMismatch,
                            node.name.clone(),
                            format!(
                                "merge input {slot} is on grid {gi:?} but input 0 is on \
                                 {first:?}; merge inputs must share one scale (paper §4.3)"
                            ),
                        );
                    }
                    // Requant-format-aware variant: both operands already
                    // fixed but on *different* grids means the lowering
                    // will emit an add over incommensurate requant
                    // formats — the TQT-V028 scale-merge gap.
                    if let (
                        Grid::Fixed { frac: f0, .. },
                        Grid::Fixed { frac: fi, .. },
                    ) = (first, *gi)
                    {
                        if f0 != fi {
                            r.push(
                                Code::ScaleMergeViolation,
                                node.name.clone(),
                                format!(
                                    "merge input {slot} is on grid 2^-{fi} but input 0 is \
                                     on 2^-{f0}: the integer add will sum incommensurate \
                                     requant formats. Fix: share one activation threshold \
                                     across both producers (re-run calibration with the \
                                     merge inputs tied), or run the `rebalance` pass in \
                                     `tqt-fixedpoint` after lowering — it inserts the \
                                     minimal coercions and re-certifies the result \
                                     (`checked_rebalance_with_provenance`)"
                                ),
                            );
                        }
                    }
                }
                first
            }
            Op::Identity | Op::MaxPool(_) | Op::AvgPool(_) | Op::Flatten(_) | Op::BatchNorm(_) => {
                gin.unwrap_or(Grid::Float)
            }
        };
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use tqt_graph::{quantize_graph, transforms, QuantizeOptions};
    use tqt_nn::{Conv2d, Relu};
    use tqt_tensor::conv::Conv2dGeom;
    use tqt_tensor::init;

    fn quantized_toy() -> Graph {
        let mut rng = init::rng(11);
        let mut g = Graph::new();
        let x = g.add_input("x");
        let c = g.add(
            "c1",
            Op::Conv(Conv2d::new("c1", 2, 4, Conv2dGeom::same(3), &mut rng)),
            &[x],
        );
        let r = g.add("r1", Op::Relu(Relu::new()), &[c]);
        g.set_output(r);
        transforms::optimize(&mut g, &[1, 2, 8, 8]);
        quantize_graph(&mut g, QuantizeOptions::static_int8());
        let calib = init::normal([2, 2, 8, 8], 0.0, 1.0, &mut rng);
        g.calibrate(&calib);
        g
    }

    #[test]
    fn quantized_calibrated_graph_is_clean() {
        let g = quantized_toy();
        let r = lint(&g, Stage::Calibrated);
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn unquantized_compute_is_v003_v004() {
        let mut rng = init::rng(5);
        let mut g = Graph::new();
        let x = g.add_input("x");
        let c = g.add(
            "c1",
            Op::Conv(Conv2d::new("c1", 2, 4, Conv2dGeom::same(3), &mut rng)),
            &[x],
        );
        g.set_output(c);
        let r = lint(&g, Stage::Quantized);
        assert!(r.has(Code::UnquantizedEdge), "{r}");
        assert!(r.has(Code::MissingWeightQuant), "{r}");
    }

    #[test]
    fn uncalibrated_is_v006_only_at_calibrated_stage() {
        let mut rng = init::rng(6);
        let mut g = Graph::new();
        let x = g.add_input("x");
        let c = g.add(
            "c1",
            Op::Conv(Conv2d::new("c1", 2, 4, Conv2dGeom::same(3), &mut rng)),
            &[x],
        );
        g.set_output(c);
        quantize_graph(&mut g, QuantizeOptions::static_int8());
        assert!(!lint(&g, Stage::Quantized).has(Code::Uncalibrated));
        assert!(lint(&g, Stage::Calibrated).has(Code::Uncalibrated));
    }
}
