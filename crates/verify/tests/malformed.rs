//! Negative tests: one hand-built malformed graph per diagnostic code.
//!
//! Every `TQT-V*` code documented in `DESIGN.md` gets a graph constructed
//! to violate exactly that invariant, and the suite asserts the verifier
//! rejects it *with that code* (never by matching message text). This
//! pins the code catalog: renumbering or silently dropping a check breaks
//! a test here by name.

use tqt_fixedpoint::lower::{IntNode, IntOp, NodeProv, Provenance, RoundMode};
use tqt_fixedpoint::{EpiStep, IntGraph, QFormat};
use tqt_graph::{
    quantize_graph, transforms, Graph, Op, QuantizeOptions, ThresholdMode, ThresholdState,
    WeightQuant,
};
use tqt_nn::{AvgPool2d, BatchNorm, Conv2d, Dense, EltwiseAdd, GlobalAvgPool, Relu};
use tqt_quant::calib::ThresholdInit;
use tqt_quant::QuantSpec;
use tqt_tensor::conv::Conv2dGeom;
use tqt_tensor::init;
use tqt_verify::{
    analyze, certify, check_containment, check_structure, checked_pipeline, infer_int_grids,
    infer_shapes,
};
use tqt_verify::{Code, Stage};

fn int8_threshold(g: &mut Graph, name: &str, log2_t: f32) -> usize {
    let tid = g.add_threshold(ThresholdState::new(
        name,
        QuantSpec::INT8,
        ThresholdInit::Max,
        ThresholdMode::Fixed,
    ));
    g.thresholds_mut()[tid].set_log2_t(log2_t);
    tid
}

/// `TQT-V001`: a graph with no output set.
#[test]
fn v001_missing_output() {
    let mut rng = init::rng(1);
    let mut g = Graph::new();
    let x = g.add_input("x");
    g.add("fc", Op::Dense(Dense::new("fc", 4, 2, &mut rng)), &[x]);
    let r = check_structure(&g);
    assert!(r.has(Code::Structure), "{r}");
}

/// `TQT-V001`: a quant node referencing a threshold the side table does
/// not have, and a weight quantizer on a non-compute op.
#[test]
fn v001_dangling_threshold_and_misplaced_wq() {
    let mut g = Graph::new();
    let x = g.add_input("x");
    let q = g.add("q", Op::Quant { tid: 99 }, &[x]);
    let rl = g.add("relu", Op::Relu(Relu::new()), &[q]);
    g.node_mut(rl).wq = Some(WeightQuant::new(98));
    g.set_output(rl);
    let r = check_structure(&g);
    let hits = r.diags.iter().filter(|d| d.code == Code::Structure).count();
    assert!(hits >= 3, "expected dangling tid x2 + misplaced wq, got:\n{r}");
}

/// `TQT-V002`: a conv built for 3 input channels fed a 5-channel tensor.
#[test]
fn v002_channel_mismatch() {
    let mut rng = init::rng(2);
    let mut g = Graph::new();
    let x = g.add_input("x");
    let c = g.add(
        "c1",
        Op::Conv(Conv2d::new("c1", 3, 8, Conv2dGeom::same(3), &mut rng)),
        &[x],
    );
    g.set_output(c);
    let sr = infer_shapes(&g, &[1, 5, 16, 16]);
    assert!(sr.report.has(Code::Shape), "{}", sr.report);
}

/// `TQT-V002`: dense weight does not accept the incoming feature count.
#[test]
fn v002_dense_feature_mismatch() {
    let mut rng = init::rng(3);
    let mut g = Graph::new();
    let x = g.add_input("x");
    let gap = g.add("gap", Op::GlobalAvgPool(GlobalAvgPool::new()), &[x]);
    let fc = g.add("fc", Op::Dense(Dense::new("fc", 7, 2, &mut rng)), &[gap]);
    g.set_output(fc);
    // GAP of [1, 4, 8, 8] yields 4 features; the dense wants 7.
    let sr = infer_shapes(&g, &[1, 4, 8, 8]);
    assert!(sr.report.has(Code::Shape), "{}", sr.report);
}

/// `TQT-V003`: a compute op with a weight quantizer but no activation
/// quantizer on its data edge.
#[test]
fn v003_unquantized_compute_edge() {
    let mut rng = init::rng(4);
    let mut g = Graph::new();
    let x = g.add_input("x");
    let c = g.add(
        "c1",
        Op::Conv(Conv2d::new("c1", 2, 4, Conv2dGeom::same(3), &mut rng)),
        &[x],
    );
    g.set_output(c);
    let tid = int8_threshold(&mut g, "c1.w.t", 0.0);
    g.node_mut(c).wq = Some(WeightQuant::new(tid));
    let r = tqt_verify::lint::lint(&g, Stage::Quantized);
    assert!(r.has(Code::UnquantizedEdge), "{r}");
    assert!(!r.has(Code::MissingWeightQuant), "{r}");
}

/// `TQT-V004`: a compute op whose input is quantized but which has no
/// weight quantizer.
#[test]
fn v004_missing_weight_quant() {
    let mut rng = init::rng(5);
    let mut g = Graph::new();
    let x = g.add_input("x");
    let tid = int8_threshold(&mut g, "act.t", 2.0);
    let q = g.add("q", Op::Quant { tid }, &[x]);
    let c = g.add(
        "c1",
        Op::Conv(Conv2d::new("c1", 2, 4, Conv2dGeom::same(3), &mut rng)),
        &[q],
    );
    g.set_output(c);
    let r = tqt_verify::lint::lint(&g, Stage::Quantized);
    assert!(r.has(Code::MissingWeightQuant), "{r}");
    assert!(!r.has(Code::UnquantizedEdge), "{r}");
}

/// `TQT-V005`: a threshold in the side table that nothing references.
#[test]
fn v005_dead_threshold() {
    let mut rng = init::rng(6);
    let mut g = Graph::new();
    let x = g.add_input("x");
    let fc = g.add("fc", Op::Dense(Dense::new("fc", 4, 2, &mut rng)), &[x]);
    g.set_output(fc);
    int8_threshold(&mut g, "orphan.t", 1.0);
    let r = tqt_verify::lint::lint(&g, Stage::Built);
    assert!(r.has(Code::DeadThreshold), "{r}");
}

/// `TQT-V006`: a referenced threshold that was never calibrated, at the
/// calibrated stage.
#[test]
fn v006_uncalibrated_threshold() {
    let mut rng = init::rng(7);
    let mut g = Graph::new();
    let x = g.add_input("x");
    let c = g.add(
        "c1",
        Op::Conv(Conv2d::new("c1", 2, 4, Conv2dGeom::same(3), &mut rng)),
        &[x],
    );
    g.set_output(c);
    quantize_graph(&mut g, QuantizeOptions::static_int8());
    // No g.calibrate() call.
    let r = tqt_verify::lint::lint(&g, Stage::Calibrated);
    assert!(r.has(Code::Uncalibrated), "{r}");
    assert!(!tqt_verify::lint::lint(&g, Stage::Quantized).has(Code::Uncalibrated));
}

/// `TQT-V007`: calibration produced a non-finite `log2 t`, and separately a
/// threshold so small its fractional length leaves the shiftable range.
#[test]
fn v007_degenerate_scale() {
    let mut rng = init::rng(8);
    let mut g = Graph::new();
    let x = g.add_input("x");
    let c = g.add(
        "c1",
        Op::Conv(Conv2d::new("c1", 2, 4, Conv2dGeom::same(3), &mut rng)),
        &[x],
    );
    g.set_output(c);
    quantize_graph(&mut g, QuantizeOptions::static_int8());
    let calib = init::normal([2, 2, 8, 8], 0.0, 1.0, &mut rng);
    g.calibrate(&calib);
    assert!(tqt_verify::lint::lint(&g, Stage::Calibrated).is_clean());

    g.thresholds_mut()[0].set_log2_t(f32::NAN);
    assert!(tqt_verify::lint::lint(&g, Stage::Calibrated).has(Code::DegenerateScale));

    g.thresholds_mut()[0].set_log2_t(-100.0); // frac ~ 107 >> 62
    assert!(tqt_verify::lint::lint(&g, Stage::Calibrated).has(Code::DegenerateScale));
}

/// `TQT-V008`: a batch norm that survives past the transform pipeline.
#[test]
fn v008_unfolded_batch_norm() {
    let mut rng = init::rng(9);
    let mut g = Graph::new();
    let x = g.add_input("x");
    let c = g.add(
        "c1",
        Op::Conv(Conv2d::new("c1", 2, 4, Conv2dGeom::same(3), &mut rng)),
        &[x],
    );
    let b = g.add("bn", Op::BatchNorm(BatchNorm::new("bn", 4, 0.9, 1e-5)), &[c]);
    g.set_output(b);
    assert!(!tqt_verify::lint::lint(&g, Stage::Built).has(Code::UnfoldedBatchNorm));
    assert!(tqt_verify::lint::lint(&g, Stage::Optimized).has(Code::UnfoldedBatchNorm));
}

/// `TQT-V009`: an average pool that survives past the transform pipeline.
#[test]
fn v009_unconverted_avg_pool() {
    let mut g = Graph::new();
    let x = g.add_input("x");
    let p = g.add(
        "ap",
        Op::AvgPool(AvgPool2d::new(Conv2dGeom::new(2, 2, 0))),
        &[x],
    );
    g.set_output(p);
    assert!(!tqt_verify::lint::lint(&g, Stage::Built).has(Code::UnconvertedAvgPool));
    assert!(tqt_verify::lint::lint(&g, Stage::Optimized).has(Code::UnconvertedAvgPool));
}

/// `TQT-V010`: an eltwise add whose operands sit on different grids.
#[test]
fn v010_merge_mismatch() {
    let mut g = Graph::new();
    let x = g.add_input("x");
    let t0 = int8_threshold(&mut g, "a.t", 0.0);
    let t1 = int8_threshold(&mut g, "b.t", 3.0);
    let qa = g.add("qa", Op::Quant { tid: t0 }, &[x]);
    let qb = g.add("qb", Op::Quant { tid: t1 }, &[x]);
    let add = g.add("add", Op::Add(EltwiseAdd::new()), &[qa, qb]);
    g.set_output(add);
    let r = tqt_verify::lint::lint(&g, Stage::Quantized);
    assert!(r.has(Code::MergeMismatch), "{r}");
}

/// `TQT-V011`: 2^45-scale weights against a 32-bit input provably wrap an
/// i64 accumulator; the refutation names the producer path.
#[test]
fn v011_accumulator_overflow() {
    let in_dim = 8;
    let nodes = vec![
        IntNode {
            name: "input".into(),
            op: IntOp::Input,
            inputs: vec![],
        },
        IntNode {
            name: "qin".into(),
            op: IntOp::QuantF32 {
                format: QFormat::new(0, 32, true),
            },
            inputs: vec![0],
        },
        IntNode {
            name: "fc".into(),
            op: IntOp::Dense {
                w: vec![1i64 << 45; in_dim],
                in_dim,
                out_dim: 1,
                bias: None,
                w_frac: 0,
            },
            inputs: vec![1],
        },
    ];
    let ig = IntGraph::from_parts(nodes, 2);
    let ir = analyze(&ig, &[1, in_dim]);
    assert!(ir.report.has(Code::Overflow), "{}", ir.report);
    let d = ir
        .report
        .diags
        .iter()
        .find(|d| d.code == Code::Overflow)
        .unwrap();
    assert!(d.detail.contains("input -> qin -> fc"), "{}", d.detail);
}

/// `TQT-V012`: a requantization between fractional lengths 70 and 0 needs
/// an i64 shift by 70 bits, which is not a legal shift.
#[test]
fn v012_illegal_requant_shift() {
    let nodes = vec![
        IntNode {
            name: "input".into(),
            op: IntOp::Input,
            inputs: vec![],
        },
        IntNode {
            name: "qin".into(),
            op: IntOp::QuantF32 {
                format: QFormat::new(70, 8, true),
            },
            inputs: vec![0],
        },
        IntNode {
            name: "rq".into(),
            op: IntOp::Requant {
                format: QFormat::new(0, 8, true),
            },
            inputs: vec![1],
        },
    ];
    let ig = IntGraph::from_parts(nodes, 2);
    let ir = analyze(&ig, &[1, 4]);
    assert!(ir.report.has(Code::IllegalShift), "{}", ir.report);
}

/// `TQT-V013`: a global average pool over a 3x3 spatial extent cannot be
/// divided exactly in fixed point.
#[test]
fn v013_non_pow2_global_avg_pool() {
    let nodes = vec![
        IntNode {
            name: "input".into(),
            op: IntOp::Input,
            inputs: vec![],
        },
        IntNode {
            name: "qin".into(),
            op: IntOp::QuantF32 {
                format: QFormat::new(4, 8, true),
            },
            inputs: vec![0],
        },
        IntNode {
            name: "gap".into(),
            op: IntOp::GlobalAvgPool,
            inputs: vec![1],
        },
    ];
    let ig = IntGraph::from_parts(nodes, 2);
    let ir = analyze(&ig, &[1, 2, 3, 3]);
    assert!(ir.report.has(Code::FormatViolation), "{}", ir.report);
}

/// `TQT-V014`: a transform pass that rewires the output is caught by the
/// invariant checker and attributed to the pass by name.
#[test]
fn v014_broken_pass_is_attributed() {
    let mut rng = init::rng(14);
    let mut g = Graph::new();
    let x = g.add_input("x");
    let c = g.add(
        "c1",
        Op::Conv(Conv2d::new("c1", 2, 4, Conv2dGeom::same(3), &mut rng)),
        &[x],
    );
    let gap = g.add("gap", Op::GlobalAvgPool(GlobalAvgPool::new()), &[c]);
    let fc = g.add("fc", Op::Dense(Dense::new("fc", 4, 3, &mut rng)), &[gap]);
    g.set_output(fc);

    let passes: Vec<transforms::Pass> = vec![(
        "evil_rewire_output",
        |g: &mut Graph, _: &[usize]| {
            let inp = g.try_input_id().expect("graph has an input");
            g.set_output(inp);
            1
        },
    )];
    let r = checked_pipeline(&mut g, &[1, 2, 8, 8], &passes);
    assert!(r.has(Code::TransformInvariant), "{r}");
    assert!(
        r.diags.iter().any(|d| d.detail.contains("evil_rewire_output")),
        "finding should name the broken pass:\n{r}"
    );
}

/// Control for V014: the real pipeline over the same net is clean.
#[test]
fn v014_real_pipeline_is_clean() {
    let mut rng = init::rng(15);
    let mut g = Graph::new();
    let x = g.add_input("x");
    let c = g.add(
        "c1",
        Op::Conv(Conv2d::new("c1", 2, 4, Conv2dGeom::same(3), &mut rng)),
        &[x],
    );
    let gap = g.add("gap", Op::GlobalAvgPool(GlobalAvgPool::new()), &[c]);
    let fc = g.add("fc", Op::Dense(Dense::new("fc", 4, 3, &mut rng)), &[gap]);
    g.set_output(fc);
    let r = tqt_verify::checked_optimize(&mut g, &[1, 2, 8, 8]);
    assert!(r.is_clean(), "{r}");
}

/// `TQT-V023`: a fused epilogue whose requant step needs an 80-bit
/// shift (fractional lengths 80 -> 0) is an illegal fusion, refuted
/// with the producer path as counterexample. The same shift on a
/// standalone `Requant` node would be a `TQT-V012`; inside a fused
/// epilogue the legality condition belongs to the fusion itself.
#[test]
fn v023_illegal_epilogue_requant_shift() {
    let in_dim = 8;
    let nodes = vec![
        IntNode {
            name: "input".into(),
            op: IntOp::Input,
            inputs: vec![],
        },
        IntNode {
            name: "qin".into(),
            op: IntOp::QuantF32 {
                format: QFormat::new(40, 32, true),
            },
            inputs: vec![0],
        },
        IntNode {
            name: "fc..rq".into(),
            op: IntOp::Fused {
                core: Box::new(IntOp::Dense {
                    w: vec![1i64; in_dim],
                    in_dim,
                    out_dim: 1,
                    bias: None,
                    w_frac: 40,
                }),
                // Accumulator frac = 40 + 40; requanting to frac 0 needs
                // a shift of 80 > 63.
                epi: vec![EpiStep::Requant {
                    format: QFormat::new(0, 8, true),
                }],
            },
            inputs: vec![1],
        },
    ];
    let ig = IntGraph::from_parts(nodes, 2);
    let ir = analyze(&ig, &[1, in_dim]);
    assert!(ir.report.has(Code::IllegalFusion), "{}", ir.report);
    assert!(!ir.report.has(Code::IllegalShift), "fusion legality owns this:\n{}", ir.report);
    let d = ir
        .report
        .diags
        .iter()
        .find(|d| d.code == Code::IllegalFusion)
        .unwrap();
    assert!(
        d.detail.contains("input -> qin -> fc..rq"),
        "refutation must carry the counterexample path:\n{}",
        d.detail
    );
    assert!(d.detail.contains("shift 80"), "{}", d.detail);
}

/// `TQT-V023`: a fused node carrying an `AddResidual` step but only one
/// input contradicts its own epilogue's arity.
#[test]
fn v023_residual_arity_mismatch() {
    let in_dim = 4;
    let nodes = vec![
        IntNode {
            name: "input".into(),
            op: IntOp::Input,
            inputs: vec![],
        },
        IntNode {
            name: "qin".into(),
            op: IntOp::QuantF32 {
                format: QFormat::new(4, 8, true),
            },
            inputs: vec![0],
        },
        IntNode {
            name: "fc..add".into(),
            op: IntOp::Fused {
                core: Box::new(IntOp::Dense {
                    w: vec![1i64; in_dim * in_dim],
                    in_dim,
                    out_dim: in_dim,
                    bias: None,
                    w_frac: 4,
                }),
                epi: vec![
                    EpiStep::Requant {
                        format: QFormat::new(4, 8, true),
                    },
                    EpiStep::AddResidual,
                ],
            },
            // One AddResidual step demands two inputs; only one given.
            inputs: vec![1],
        },
    ];
    let ig = IntGraph::from_parts(nodes, 2);
    let ir = analyze(&ig, &[1, in_dim]);
    assert!(ir.report.has(Code::IllegalFusion), "{}", ir.report);
}

/// `TQT-V023`: a fused residual add against an operand whose Q-format
/// differs from the fused accumulator's — the scales were never merged,
/// so the add would sum values on different grids.
#[test]
fn v023_residual_grid_mismatch() {
    let in_dim = 4;
    let nodes = vec![
        IntNode {
            name: "input".into(),
            op: IntOp::Input,
            inputs: vec![],
        },
        IntNode {
            name: "qin".into(),
            op: IntOp::QuantF32 {
                format: QFormat::new(4, 8, true),
            },
            inputs: vec![0],
        },
        IntNode {
            name: "skip".into(),
            // The residual branch lands on frac 2 while the fused
            // epilogue requantizes its accumulator to frac 4.
            op: IntOp::Requant {
                format: QFormat::new(2, 8, true),
            },
            inputs: vec![1],
        },
        IntNode {
            name: "fc..add".into(),
            op: IntOp::Fused {
                core: Box::new(IntOp::Dense {
                    w: vec![1i64; in_dim * in_dim],
                    in_dim,
                    out_dim: in_dim,
                    bias: None,
                    w_frac: 4,
                }),
                epi: vec![
                    EpiStep::Requant {
                        format: QFormat::new(4, 8, true),
                    },
                    EpiStep::AddResidual,
                ],
            },
            inputs: vec![1, 2],
        },
    ];
    let ig = IntGraph::from_parts(nodes, 3);
    let ir = analyze(&ig, &[1, in_dim]);
    assert!(ir.report.has(Code::IllegalFusion), "{}", ir.report);
    let d = ir
        .report
        .diags
        .iter()
        .find(|d| d.code == Code::IllegalFusion)
        .unwrap();
    assert!(
        d.detail.contains("`skip`"),
        "refutation must name the unmerged residual:\n{}",
        d.detail
    );
}

/// Control for V023: the same fused dense with a legal shift and a
/// grid-matched residual proves clean.
#[test]
fn v023_legal_fusion_is_clean() {
    let in_dim = 4;
    let nodes = vec![
        IntNode {
            name: "input".into(),
            op: IntOp::Input,
            inputs: vec![],
        },
        IntNode {
            name: "qin".into(),
            op: IntOp::QuantF32 {
                format: QFormat::new(4, 8, true),
            },
            inputs: vec![0],
        },
        IntNode {
            name: "fc..relu".into(),
            op: IntOp::Fused {
                core: Box::new(IntOp::Dense {
                    w: vec![1i64; in_dim * in_dim],
                    in_dim,
                    out_dim: in_dim,
                    bias: None,
                    w_frac: 4,
                }),
                epi: vec![
                    EpiStep::Requant {
                        format: QFormat::new(4, 8, true),
                    },
                    EpiStep::AddResidual,
                    EpiStep::Relu { cap_q: None },
                ],
            },
            inputs: vec![1, 1],
        },
    ];
    let ig = IntGraph::from_parts(nodes, 2);
    let ir = analyze(&ig, &[1, in_dim]);
    assert!(!ir.report.has(Code::IllegalFusion), "{}", ir.report);
}

/// `TQT-V015`: an observation outside the proven envelope (forged here —
/// a real one would mean the static analysis is unsound).
#[test]
fn v015_observed_escapes_proven() {
    let nodes = vec![
        IntNode {
            name: "input".into(),
            op: IntOp::Input,
            inputs: vec![],
        },
        IntNode {
            name: "qin".into(),
            op: IntOp::QuantF32 {
                format: QFormat::new(0, 8, true),
            },
            inputs: vec![0],
        },
    ];
    let ig = IntGraph::from_parts(nodes, 1);
    let proven = analyze(&ig, &[1, 4]);
    assert!(proven.proven(), "{}", proven.report);
    let mut rng = init::rng(16);
    let x = init::normal([1, 4], 0.0, 1.0, &mut rng);
    let (_, mut stats) = ig.run_with_stats(&x);
    stats.nodes[1].hi = i64::from(i32::MAX);
    let r = check_containment(&ig, &proven, &stats);
    assert!(r.has(Code::SanitizerViolation), "{r}");
}

// --- Translation-validation refutations (`TQT-V025` … `TQT-V030`) --------

/// Runs the translation validator over a hand-built lowered graph,
/// computing the interval facts it consumes the same way the verify bin
/// does.
fn certify_graph(ig: &IntGraph, prov: &Provenance, dims: &[usize]) -> tqt_verify::Report {
    let facts = analyze(ig, dims);
    certify(ig, prov, &facts, dims)
}

/// A well-formed Quant provenance record for a signed `bits`-wide site on
/// the `2^-frac` grid.
fn quant_prov(bits: u32, frac: i32) -> NodeProv {
    NodeProv::Quant {
        bits,
        signed: true,
        frac,
        zero_point: 0,
        round: RoundMode::HalfEven,
    }
}

/// `input -> qin` on a signed int8 `2^-4` grid: the minimal certifiable
/// graph; tests seed one provenance lie each and assert the refutation.
fn quant_site_graph() -> IntGraph {
    let nodes = vec![
        IntNode {
            name: "input".into(),
            op: IntOp::Input,
            inputs: vec![],
        },
        IntNode {
            name: "qin".into(),
            op: IntOp::QuantF32 {
                format: QFormat::new(4, 8, true),
            },
            inputs: vec![0],
        },
    ];
    IntGraph::from_parts(nodes, 1)
}

/// `TQT-V025`: one baked weight disagrees with the exact fake-quant of
/// the recorded original float; the refutation names the offending node
/// and path. The uncorrupted twin certifies clean.
#[test]
fn v025_corrupted_baked_weight() {
    let in_dim = 4;
    let build = |w: Vec<i64>| {
        let nodes = vec![
            IntNode {
                name: "input".into(),
                op: IntOp::Input,
                inputs: vec![],
            },
            IntNode {
                name: "qin".into(),
                op: IntOp::QuantF32 {
                    format: QFormat::new(4, 8, true),
                },
                inputs: vec![0],
            },
            IntNode {
                name: "fc".into(),
                op: IntOp::Dense {
                    w,
                    in_dim,
                    out_dim: 2,
                    bias: None,
                    w_frac: 4,
                },
                inputs: vec![1],
            },
        ];
        IntGraph::from_parts(nodes, 2)
    };
    let mut prov = Provenance::new();
    prov.insert("qin", quant_prov(8, 4));
    prov.insert(
        "fc",
        NodeProv::Compute {
            // 0.25 on the 2^-4 grid is exactly 4.
            orig_w: vec![0.25; in_dim * 2],
            w_frac: 4,
            w_bits: 8,
            w_signed: true,
            orig_bias: None,
            acc_frac: 8,
        },
    );
    let clean = certify_graph(&build(vec![4i64; in_dim * 2]), &prov, &[1, in_dim]);
    assert!(clean.is_clean(), "{clean}");

    let mut w = vec![4i64; in_dim * 2];
    w[3] = 5; // bit-flip in the baked constant
    let r = certify_graph(&build(w), &prov, &[1, in_dim]);
    assert!(r.has(Code::NotBitExact), "{r}");
    let d = r.diags.iter().find(|d| d.code == Code::NotBitExact).unwrap();
    assert_eq!(d.node.as_deref(), Some("fc"), "{r}");
    assert!(
        d.detail.contains("input -> qin -> fc"),
        "refutation must name the offending node's path:\n{}",
        d.detail
    );
}

/// `TQT-V026`: the lowering declares truncation but the kernel rounds
/// half to even; the refutation carries a concrete tie witness.
#[test]
fn v026_declared_truncate_rounding() {
    let ig = quant_site_graph();
    let mut prov = Provenance::new();
    prov.insert(
        "qin",
        NodeProv::Quant {
            bits: 8,
            signed: true,
            frac: 4,
            zero_point: 0,
            round: RoundMode::Truncate,
        },
    );
    let r = certify_graph(&ig, &prov, &[1, 4]);
    assert!(r.has(Code::RoundingMismatch), "{r}");
    let d = r.diags.iter().find(|d| d.code == Code::RoundingMismatch).unwrap();
    assert_eq!(d.node.as_deref(), Some("qin"), "{r}");
    assert!(
        d.detail.contains("input -> qin"),
        "refutation must name the offending node's path:\n{}",
        d.detail
    );
}

/// `TQT-V027`: a declared non-zero zero-point that the symmetric pow2
/// realization never applies.
#[test]
fn v027_nonzero_zero_point() {
    let ig = quant_site_graph();
    let mut prov = Provenance::new();
    prov.insert(
        "qin",
        NodeProv::Quant {
            bits: 8,
            signed: true,
            frac: 4,
            zero_point: 3,
            round: RoundMode::HalfEven,
        },
    );
    let r = certify_graph(&ig, &prov, &[1, 4]);
    assert!(r.has(Code::ZeroPointDrift), "{r}");
    let d = r.diags.iter().find(|d| d.code == Code::ZeroPointDrift).unwrap();
    assert!(d.detail.contains("input -> qin"), "{}", d.detail);
}

/// `TQT-V028`: an integer add whose operands were requantized onto
/// different grids — the scales were never merged, so the raw-coordinate
/// sum is meaningless. The refutation names both offending operands.
#[test]
fn v028_unmerged_add_operands() {
    let nodes = vec![
        IntNode {
            name: "input".into(),
            op: IntOp::Input,
            inputs: vec![],
        },
        IntNode {
            name: "qin".into(),
            op: IntOp::QuantF32 {
                format: QFormat::new(4, 8, true),
            },
            inputs: vec![0],
        },
        IntNode {
            name: "ra".into(),
            op: IntOp::Requant {
                format: QFormat::new(3, 8, true),
            },
            inputs: vec![1],
        },
        IntNode {
            name: "rb".into(),
            op: IntOp::Requant {
                format: QFormat::new(2, 8, true),
            },
            inputs: vec![1],
        },
        IntNode {
            name: "add".into(),
            op: IntOp::Add,
            inputs: vec![2, 3],
        },
    ];
    let ig = IntGraph::from_parts(nodes, 4);
    let mut prov = Provenance::new();
    prov.insert("qin", quant_prov(8, 4));
    prov.insert("ra", quant_prov(8, 3));
    prov.insert("rb", quant_prov(8, 2));
    let r = certify_graph(&ig, &prov, &[1, 4]);
    assert!(r.has(Code::ScaleMergeViolation), "{r}");
    let d = r
        .diags
        .iter()
        .find(|d| d.code == Code::ScaleMergeViolation)
        .unwrap();
    assert!(
        d.detail.contains("`ra`") && d.detail.contains("`rb`"),
        "refutation must name both unmerged operands:\n{}",
        d.detail
    );
}

/// `TQT-V028` at quantize time: the float-graph lint flags the same gap
/// before lowering ever runs, and carries a fix-it hint.
#[test]
fn v028_float_add_lint_with_fixit() {
    let mut g = Graph::new();
    let x = g.add_input("x");
    let t0 = int8_threshold(&mut g, "a.t", 0.0);
    let t1 = int8_threshold(&mut g, "b.t", 3.0);
    let qa = g.add("qa", Op::Quant { tid: t0 }, &[x]);
    let qb = g.add("qb", Op::Quant { tid: t1 }, &[x]);
    let add = g.add("add", Op::Add(EltwiseAdd::new()), &[qa, qb]);
    g.set_output(add);
    let r = tqt_verify::lint::lint(&g, Stage::Quantized);
    assert!(r.has(Code::ScaleMergeViolation), "{r}");
    let d = r
        .diags
        .iter()
        .find(|d| d.code == Code::ScaleMergeViolation)
        .unwrap();
    assert_eq!(d.node.as_deref(), Some("add"), "{r}");
    assert!(d.detail.contains("Fix:"), "lint must carry a fix-it hint:\n{}", d.detail);
}

/// `TQT-V029`: a fused node whose chain record does not match its
/// epilogue — the fused kernel no longer replays the chain it replaced.
#[test]
fn v029_fused_chain_member_mismatch() {
    let in_dim = 4;
    let nodes = vec![
        IntNode {
            name: "input".into(),
            op: IntOp::Input,
            inputs: vec![],
        },
        IntNode {
            name: "qin".into(),
            op: IntOp::QuantF32 {
                format: QFormat::new(4, 8, true),
            },
            inputs: vec![0],
        },
        IntNode {
            name: "fc..rq".into(),
            op: IntOp::Fused {
                core: Box::new(IntOp::Dense {
                    w: vec![4i64; in_dim * 2],
                    in_dim,
                    out_dim: 2,
                    bias: None,
                    w_frac: 4,
                }),
                epi: vec![EpiStep::Requant {
                    format: QFormat::new(4, 8, true),
                }],
            },
            inputs: vec![1],
        },
    ];
    let ig = IntGraph::from_parts(nodes, 2);
    let mut prov = Provenance::new();
    prov.insert("qin", quant_prov(8, 4));
    // One member recorded; core + one epilogue step demand two.
    prov.insert("fc..rq", NodeProv::Fused { members: vec!["fc".into()] });
    let r = certify_graph(&ig, &prov, &[1, in_dim]);
    assert!(r.has(Code::EpilogueMismatch), "{r}");
    let d = r.diags.iter().find(|d| d.code == Code::EpilogueMismatch).unwrap();
    assert_eq!(d.node.as_deref(), Some("fc..rq"), "{r}");
    assert!(
        d.detail.contains("input -> qin -> fc..rq"),
        "refutation must name the offending node's path:\n{}",
        d.detail
    );
}

// --- Grid type system refutations (`TQT-V031` … `TQT-V034`) --------------

/// `input -> qin(2^-4) -> {ra(2^-3), rb(2^-2)} -> add`: the minimal
/// unmerged merge; each grid-type test derives one violation from it.
fn unmerged_add_graph() -> IntGraph {
    let nodes = vec![
        IntNode {
            name: "input".into(),
            op: IntOp::Input,
            inputs: vec![],
        },
        IntNode {
            name: "qin".into(),
            op: IntOp::QuantF32 {
                format: QFormat::new(4, 8, true),
            },
            inputs: vec![0],
        },
        IntNode {
            name: "ra".into(),
            op: IntOp::Requant {
                format: QFormat::new(3, 8, true),
            },
            inputs: vec![1],
        },
        IntNode {
            name: "rb".into(),
            op: IntOp::Requant {
                format: QFormat::new(2, 8, true),
            },
            inputs: vec![1],
        },
        IntNode {
            name: "add".into(),
            op: IntOp::Add,
            inputs: vec![2, 3],
        },
    ];
    IntGraph::from_parts(nodes, 4)
}

/// `TQT-V031`: add operands derive incompatible grid types; the
/// refutation carries *both* deriving paths as counterexample. The
/// rebalance pass must close exactly this finding.
#[test]
fn v031_grid_contradiction_at_add() {
    let ig = unmerged_add_graph();
    let gr = infer_int_grids(&ig, &[1, 4]);
    assert!(gr.report.has(Code::GridContradiction), "{}", gr.report);
    let d = gr
        .report
        .diags
        .iter()
        .find(|d| d.code == Code::GridContradiction)
        .unwrap();
    assert_eq!(d.node.as_deref(), Some("add"), "{}", gr.report);
    assert!(
        d.detail.contains("input -> qin -> ra") && d.detail.contains("input -> qin -> rb"),
        "refutation must carry both deriving paths:\n{}",
        d.detail
    );

    let repaired = tqt_fixedpoint::rebalance(ig);
    let gr2 = infer_int_grids(&repaired, &[1, 4]);
    assert!(
        !gr2.report.has(Code::GridContradiction),
        "rebalance must close the contradiction:\n{}",
        gr2.report
    );
}

/// `TQT-V032`: a value-interpreting op (relu) consumes an edge whose grid
/// cannot be derived from any quantization site.
#[test]
fn v032_uninferable_edge() {
    let nodes = vec![
        IntNode {
            name: "input".into(),
            op: IntOp::Input,
            inputs: vec![],
        },
        IntNode {
            name: "relu".into(),
            op: IntOp::Relu { cap_q: None },
            inputs: vec![0],
        },
    ];
    let ig = IntGraph::from_parts(nodes, 1);
    let gr = infer_int_grids(&ig, &[1, 4]);
    assert!(gr.report.has(Code::UninferableGrid), "{}", gr.report);
    let d = gr.report.diags.iter().find(|d| d.code == Code::UninferableGrid).unwrap();
    assert_eq!(d.node.as_deref(), Some("relu"), "{}", gr.report);
    assert!(
        d.detail.contains("input -> relu"),
        "refutation must name the offending edge's path:\n{}",
        d.detail
    );
}

/// `TQT-V033`: a requant onto the exact grid its input already has is a
/// no-op the plan should never carry.
#[test]
fn v033_redundant_requant() {
    let nodes = vec![
        IntNode {
            name: "input".into(),
            op: IntOp::Input,
            inputs: vec![],
        },
        IntNode {
            name: "qin".into(),
            op: IntOp::QuantF32 {
                format: QFormat::new(4, 8, true),
            },
            inputs: vec![0],
        },
        IntNode {
            name: "rq".into(),
            op: IntOp::Requant {
                format: QFormat::new(4, 8, true),
            },
            inputs: vec![1],
        },
    ];
    let ig = IntGraph::from_parts(nodes, 2);
    let gr = infer_int_grids(&ig, &[1, 4]);
    assert!(gr.report.has(Code::RedundantRequant), "{}", gr.report);
    let d = gr.report.diags.iter().find(|d| d.code == Code::RedundantRequant).unwrap();
    assert_eq!(d.node.as_deref(), Some("rq"), "{}", gr.report);
    assert!(
        d.detail.contains("input -> qin -> rq"),
        "lint must name the redundant edge's path:\n{}",
        d.detail
    );
}

/// `TQT-V034`: a coercion between fractional lengths 70 and 0 needs a
/// 70-bit shift, outside the engine's `|shift| <= 63`. (The interval pass
/// reports the same graph as `TQT-V012`; the grid type system must refute
/// it standalone, without interval facts.)
#[test]
fn v034_illegal_coercion_shift() {
    let nodes = vec![
        IntNode {
            name: "input".into(),
            op: IntOp::Input,
            inputs: vec![],
        },
        IntNode {
            name: "qin".into(),
            op: IntOp::QuantF32 {
                format: QFormat::new(70, 8, true),
            },
            inputs: vec![0],
        },
        IntNode {
            name: "rq".into(),
            op: IntOp::Requant {
                format: QFormat::new(0, 8, true),
            },
            inputs: vec![1],
        },
    ];
    let ig = IntGraph::from_parts(nodes, 2);
    let gr = infer_int_grids(&ig, &[1, 4]);
    assert!(gr.report.has(Code::IllegalCoercion), "{}", gr.report);
    let d = gr.report.diags.iter().find(|d| d.code == Code::IllegalCoercion).unwrap();
    assert_eq!(d.node.as_deref(), Some("rq"), "{}", gr.report);
    assert!(
        d.detail.contains("input -> qin -> rq"),
        "refutation must name the offending edge's path:\n{}",
        d.detail
    );
}

/// Control for V031–V034: the merged twin of [`unmerged_add_graph`] is
/// well-typed with no findings at all.
#[test]
fn grid_types_clean_on_merged_add() {
    let mut ig = unmerged_add_graph();
    {
        let (mut nodes, out) = ig.into_parts();
        if let IntOp::Requant { format } = &mut nodes[2].op {
            *format = QFormat::new(2, 8, true);
        }
        ig = IntGraph::from_parts(nodes, out);
    }
    let gr = infer_int_grids(&ig, &[1, 4]);
    assert!(gr.typed(), "{}", gr.report);
}

/// `TQT-V030`: the declared bit-width implies clip limits [-64, 63] (eq.
/// 3) but the emitted format saturates to the int8 range.
#[test]
fn v030_clamp_range_mismatch() {
    let ig = quant_site_graph();
    let mut prov = Provenance::new();
    prov.insert("qin", quant_prov(7, 4));
    let r = certify_graph(&ig, &prov, &[1, 4]);
    assert!(r.has(Code::ClampRangeMismatch), "{r}");
    let d = r
        .diags
        .iter()
        .find(|d| d.code == Code::ClampRangeMismatch)
        .unwrap();
    assert!(d.detail.contains("input -> qin"), "{}", d.detail);
}
