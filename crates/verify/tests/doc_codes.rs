//! Doc-consistency gate: the stable diagnostic codes used in this
//! crate's source and the catalog in `DESIGN.md` §7 must agree in both
//! directions — a code emitted but undocumented is invisible to users, a
//! code documented but unused is a stale promise.

use std::collections::BTreeSet;
use std::path::Path;

/// Every `TQT-V<ddd>` occurrence in `text`.
fn codes_in(text: &str) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    let bytes = text.as_bytes();
    let needle = b"TQT-V";
    let mut i = 0;
    while i + needle.len() + 3 <= bytes.len() {
        if &bytes[i..i + needle.len()] == needle {
            let digits = &bytes[i + needle.len()..i + needle.len() + 3];
            if digits.iter().all(u8::is_ascii_digit) {
                out.insert(String::from_utf8_lossy(&bytes[i..i + needle.len() + 3]).into_owned());
                i += needle.len() + 3;
                continue;
            }
        }
        i += 1;
    }
    out
}

fn read(path: &Path) -> String {
    std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()))
}

#[test]
fn source_codes_and_design_catalog_agree() {
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
    let src_dir = manifest.join("src");
    let design = manifest.join("../../DESIGN.md");

    let mut src_codes = BTreeSet::new();
    for entry in std::fs::read_dir(&src_dir).expect("src dir") {
        let path = entry.expect("dir entry").path();
        if path.extension().is_some_and(|e| e == "rs") {
            src_codes.extend(codes_in(&read(&path)));
        }
    }
    assert!(
        src_codes.contains("TQT-V001") && src_codes.contains("TQT-V022"),
        "scan looks broken: {src_codes:?}"
    );

    let design_text = read(&design);
    // The catalog proper: §7's `| \`TQT-V...\` |` table rows. Other
    // DESIGN.md sections may mention codes in prose; the table is the
    // contract.
    let catalog: BTreeSet<String> = design_text
        .lines()
        .filter(|l| l.trim_start().starts_with("| `TQT-V"))
        .flat_map(|l| codes_in(l).into_iter().take(1))
        .collect();
    let design_codes = codes_in(&design_text);

    for code in &src_codes {
        assert!(
            catalog.contains(code),
            "{code} is used in crates/verify/src but missing from the DESIGN.md §7 catalog \
             table (catalog: {catalog:?})"
        );
    }
    for code in &catalog {
        assert!(
            src_codes.contains(code),
            "{code} is documented in the DESIGN.md §7 catalog but never used in \
             crates/verify/src"
        );
    }
    // Every code mentioned anywhere in DESIGN.md must at least be a real
    // code (no typo'd references in prose).
    for code in &design_codes {
        assert!(
            src_codes.contains(code),
            "{code} appears in DESIGN.md but is not a code crates/verify/src knows"
        );
    }
}
