//! Mutation tests for the plan verifier: inject known slot-assignment
//! bugs through `IntPlan`'s test-only hooks and assert `check_plan`
//! refutes each with the correct stable code *and* the correct
//! counterexample node. A prover that cannot refute seeded bugs proves
//! nothing — this is the teeth behind the zoo-wide "plan proven" gate.
//!
//! The mutated plans are never executed.

use tqt_fixedpoint::lower::{IntGraph, IntNode, IntOp};
use tqt_fixedpoint::QFormat;
use tqt_verify::{check_plan, Code};

fn q8(frac: i32) -> QFormat {
    QFormat::new(frac, 8, true)
}

/// in -> q -> {relu, rq} -> add, with a skip edge (add also reads q's
/// requantized sibling): enough structure for both mutations.
fn skip_graph() -> IntGraph {
    let nodes = vec![
        IntNode {
            name: "in".into(),
            op: IntOp::Input,
            inputs: vec![],
        },
        IntNode {
            name: "q".into(),
            op: IntOp::QuantF32 { format: q8(4) },
            inputs: vec![0],
        },
        IntNode {
            name: "relu".into(),
            op: IntOp::Relu { cap_q: None },
            inputs: vec![1],
        },
        IntNode {
            name: "rq".into(),
            op: IntOp::Requant { format: q8(4) },
            inputs: vec![2],
        },
        IntNode {
            name: "add".into(),
            op: IntOp::Add,
            inputs: vec![3, 1],
        },
    ];
    IntGraph::from_parts(nodes, 4)
}

#[test]
fn unmutated_plan_is_proven() {
    let g = skip_graph();
    for batch in [1usize, 4] {
        let plan = g.plan(&[batch, 32]);
        let r = check_plan(&g, &plan);
        assert!(r.is_clean(), "batch {batch}: {r}");
    }
}

#[test]
fn liveness_off_by_one_is_refuted_as_v016() {
    let g = skip_graph();
    let mut plan = g.plan(&[2, 32]);
    let (clobberer, input) = plan
        .inject_liveness_off_by_one(&g)
        .expect("graph must offer an eligible (node, live input) pair");
    let r = check_plan(&g, &plan);
    assert!(r.has(Code::PlanAlias), "V016 expected, got:\n{r}");
    let diag = r
        .diags
        .iter()
        .find(|d| d.code == Code::PlanAlias)
        .expect("checked above");
    let clobberer_name = &g.nodes()[clobberer].name;
    let input_name = &g.nodes()[input].name;
    assert_eq!(
        diag.node.as_deref(),
        Some(clobberer_name.as_str()),
        "counterexample must name the clobbering node:\n{r}"
    );
    assert!(
        diag.detail.contains(&format!("`{input_name}`")),
        "counterexample must name the clobbered live value:\n{r}"
    );
}

#[test]
fn premature_release_is_refuted_as_v017() {
    let g = skip_graph();
    let mut plan = g.plan(&[2, 32]);
    let (producer, _intermediate, stranded) = plan
        .inject_premature_release(&g)
        .expect("graph must offer an eligible early-release triple");
    let r = check_plan(&g, &plan);
    assert!(r.has(Code::PlanStaleRead), "V017 expected, got:\n{r}");
    let diag = r
        .diags
        .iter()
        .find(|d| d.code == Code::PlanStaleRead)
        .expect("checked above");
    let stranded_name = &g.nodes()[stranded].name;
    let producer_name = &g.nodes()[producer].name;
    assert_eq!(
        diag.node.as_deref(),
        Some(stranded_name.as_str()),
        "counterexample must name the stranded consumer:\n{r}"
    );
    assert!(
        diag.detail.contains(&format!("`{producer_name}`")),
        "counterexample must name the overwritten producer:\n{r}"
    );
}

#[test]
fn storage_shrink_is_refuted_as_v018() {
    let g = skip_graph();
    let mut plan = g.plan(&[2, 32]);
    let short = plan
        .inject_slot_shrink()
        .expect("graph must offer a shrinkable slot");
    let r = check_plan(&g, &plan);
    assert!(r.has(Code::PlanStorage), "V018 expected, got:\n{r}");
    let short_name = &g.nodes()[short].name;
    assert!(
        r.diags
            .iter()
            .any(|d| d.code == Code::PlanStorage && d.node.as_deref() == Some(short_name)),
        "refutation must name the under-stored node `{short_name}`:\n{r}"
    );
}
