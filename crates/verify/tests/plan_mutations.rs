//! Mutation tests for the plan verifier: inject known slot-assignment
//! bugs through `IntPlan`'s test-only hooks and assert `check_plan`
//! refutes each with the correct stable code *and* the correct
//! counterexample node. A prover that cannot refute seeded bugs proves
//! nothing — this is the teeth behind the zoo-wide "plan proven" gate.
//!
//! The mutated plans are never executed.

use tqt_fixedpoint::lower::{IntGraph, IntNode, IntOp};
use tqt_fixedpoint::{EpiStep, QFormat};
use tqt_graph::fplan::FloatPlan;
use tqt_graph::{Graph, Op};
use tqt_nn::{BatchNorm, Conv2d, Dense, EltwiseAdd, Flatten, GlobalAvgPool, MaxPool2d, Relu};
use tqt_tensor::conv::Conv2dGeom;
use tqt_tensor::init;
use tqt_verify::{check_float_plan, check_plan, Code};

fn q8(frac: i32) -> QFormat {
    QFormat::new(frac, 8, true)
}

/// in -> q -> {relu, rq} -> add, with a skip edge (add also reads q's
/// requantized sibling): enough structure for both mutations.
fn skip_graph() -> IntGraph {
    let nodes = vec![
        IntNode {
            name: "in".into(),
            op: IntOp::Input,
            inputs: vec![],
        },
        IntNode {
            name: "q".into(),
            op: IntOp::QuantF32 { format: q8(4) },
            inputs: vec![0],
        },
        IntNode {
            name: "relu".into(),
            op: IntOp::Relu { cap_q: None },
            inputs: vec![1],
        },
        IntNode {
            name: "rq".into(),
            op: IntOp::Requant { format: q8(4) },
            inputs: vec![2],
        },
        IntNode {
            name: "add".into(),
            op: IntOp::Add,
            inputs: vec![3, 1],
        },
    ];
    IntGraph::from_parts(nodes, 4)
}

#[test]
fn unmutated_plan_is_proven() {
    let g = skip_graph();
    for batch in [1usize, 4] {
        let plan = g.plan(&[batch, 32]);
        let r = check_plan(&g, &plan);
        assert!(r.is_clean(), "batch {batch}: {r}");
    }
}

#[test]
fn liveness_off_by_one_is_refuted_as_v016() {
    let g = skip_graph();
    let mut plan = g.plan(&[2, 32]);
    let (clobberer, input) = plan
        .inject_liveness_off_by_one(&g)
        .expect("graph must offer an eligible (node, live input) pair");
    let r = check_plan(&g, &plan);
    assert!(r.has(Code::PlanAlias), "V016 expected, got:\n{r}");
    let diag = r
        .diags
        .iter()
        .find(|d| d.code == Code::PlanAlias)
        .expect("checked above");
    let clobberer_name = &g.nodes()[clobberer].name;
    let input_name = &g.nodes()[input].name;
    assert_eq!(
        diag.node.as_deref(),
        Some(clobberer_name.as_str()),
        "counterexample must name the clobbering node:\n{r}"
    );
    assert!(
        diag.detail.contains(&format!("`{input_name}`")),
        "counterexample must name the clobbered live value:\n{r}"
    );
}

#[test]
fn premature_release_is_refuted_as_v017() {
    let g = skip_graph();
    let mut plan = g.plan(&[2, 32]);
    let (producer, _intermediate, stranded) = plan
        .inject_premature_release(&g)
        .expect("graph must offer an eligible early-release triple");
    let r = check_plan(&g, &plan);
    assert!(r.has(Code::PlanStaleRead), "V017 expected, got:\n{r}");
    let diag = r
        .diags
        .iter()
        .find(|d| d.code == Code::PlanStaleRead)
        .expect("checked above");
    let stranded_name = &g.nodes()[stranded].name;
    let producer_name = &g.nodes()[producer].name;
    assert_eq!(
        diag.node.as_deref(),
        Some(stranded_name.as_str()),
        "counterexample must name the stranded consumer:\n{r}"
    );
    assert!(
        diag.detail.contains(&format!("`{producer_name}`")),
        "counterexample must name the overwritten producer:\n{r}"
    );
}

/// in -> q -> fused(dense + requant epilogue) joined with a relu branch
/// of q at a final add: fusion released the chain's intermediate slots,
/// and the fused output stays live across the relu.
fn fused_skip_graph() -> IntGraph {
    let in_dim = 8;
    let nodes = vec![
        IntNode {
            name: "in".into(),
            op: IntOp::Input,
            inputs: vec![],
        },
        IntNode {
            name: "q".into(),
            op: IntOp::QuantF32 { format: q8(4) },
            inputs: vec![0],
        },
        IntNode {
            name: "fc..rq".into(),
            op: IntOp::Fused {
                core: Box::new(IntOp::Dense {
                    w: vec![1i64; in_dim * in_dim],
                    in_dim,
                    out_dim: in_dim,
                    bias: None,
                    w_frac: 4,
                }),
                epi: vec![EpiStep::Requant { format: q8(4) }],
            },
            inputs: vec![1],
        },
        IntNode {
            name: "relu".into(),
            op: IntOp::Relu { cap_q: None },
            inputs: vec![1],
        },
        IntNode {
            name: "add".into(),
            op: IntOp::Add,
            inputs: vec![2, 3],
        },
    ];
    IntGraph::from_parts(nodes, 4)
}

#[test]
fn unmutated_fused_plan_is_proven() {
    let g = fused_skip_graph();
    for batch in [1usize, 4] {
        let plan = g.plan(&[batch, 8]);
        let r = check_plan(&g, &plan);
        assert!(r.is_clean(), "batch {batch}: {r}");
    }
}

/// Fusion's whole point is that the chain's intermediate slots die with
/// the chain — this mutation "resurrects" one by parking a later node's
/// output in the fused producer's slot while that output is still live.
/// The plan checker must refute it like any other alias: the resurrector
/// clobbers a live value (V016) and the fused node's consumer reads a
/// stale slot (V017), each naming the right node.
#[test]
fn fused_slot_resurrection_is_refuted() {
    let g = fused_skip_graph();
    let mut plan = g.plan(&[2, 8]);
    let (fused_producer, resurrector, stranded) = plan
        .inject_fused_slot_resurrection(&g)
        .expect("graph must offer a fused producer with a later non-consumer");
    let r = check_plan(&g, &plan);
    let fused_name = &g.nodes()[fused_producer].name;
    let resurrector_name = &g.nodes()[resurrector].name;
    let stranded_name = &g.nodes()[stranded].name;

    assert!(r.has(Code::PlanAlias), "V016 expected, got:\n{r}");
    assert!(
        r.diags.iter().any(|d| d.code == Code::PlanAlias
            && d.node.as_deref() == Some(resurrector_name.as_str())
            && d.detail.contains(&format!("`{fused_name}`"))),
        "V016 must name resurrector `{resurrector_name}` clobbering `{fused_name}`:\n{r}"
    );
    assert!(r.has(Code::PlanStaleRead), "V017 expected, got:\n{r}");
    assert!(
        r.diags.iter().any(|d| d.code == Code::PlanStaleRead
            && d.node.as_deref() == Some(stranded_name.as_str())
            && d.detail.contains(&format!("`{fused_name}`"))),
        "V017 must name stranded consumer `{stranded_name}` reading stale `{fused_name}`:\n{r}"
    );
}

/// A float training graph with a skip connection and batch-norm: the
/// planner must carry activations, xhat, gradients and staged fan-in
/// temporaries across the forward+backward tape.
fn float_skip_graph() -> Graph {
    let mut rng = init::rng(31);
    let mut g = Graph::new();
    let x = g.add_input("input");
    let c1 = g.add(
        "c1",
        Op::Conv(Conv2d::new("c1", 3, 8, Conv2dGeom::same(3), &mut rng)),
        &[x],
    );
    let b1 = g.add("b1", Op::BatchNorm(BatchNorm::new("b1", 8, 0.9, 1e-5)), &[c1]);
    let r1 = g.add("r1", Op::Relu(Relu::new()), &[b1]);
    let c2 = g.add(
        "c2",
        Op::Conv(Conv2d::new("c2", 8, 8, Conv2dGeom::same(3), &mut rng)),
        &[r1],
    );
    let a1 = g.add("a1", Op::Add(EltwiseAdd::new()), &[c2, r1]);
    let p1 = g.add("p1", Op::MaxPool(MaxPool2d::k2s2()), &[a1]);
    let gap = g.add("gap", Op::GlobalAvgPool(GlobalAvgPool::new()), &[p1]);
    let fl = g.add("fl", Op::Flatten(Flatten::new()), &[gap]);
    let fc = g.add("fc", Op::Dense(Dense::new("fc", 8, 4, &mut rng)), &[fl]);
    g.set_output(fc);
    g
}

const FDIMS: [usize; 4] = [2, 3, 8, 8];

#[test]
fn unmutated_float_plan_is_proven() {
    let mut g = float_skip_graph();
    let plan = FloatPlan::new(&mut g, &FDIMS);
    let r = check_float_plan(&mut g, &plan);
    assert!(r.is_clean(), "{r}");
}

/// Re-alias a later value into a slot whose occupant is still awaited by
/// a downstream step: the checker must refute it twice, as the alias at
/// the clobbering write (V016, naming the clobberer with the victim in
/// the counterexample) and as the stale read at the stranded step (V017,
/// naming the victim).
#[test]
fn float_premature_release_is_refuted() {
    let mut g = float_skip_graph();
    let mut plan = FloatPlan::new(&mut g, &FDIMS);
    let (victim, clobberer, _stranded) = plan
        .inject_premature_release()
        .expect("graph must offer an eligible early-release triple");
    let victim_name = plan.value_name(&g, victim);
    let clobberer_name = plan.value_name(&g, clobberer);
    let r = check_float_plan(&mut g, &plan);

    assert!(r.has(Code::PlanAlias), "V016 expected, got:\n{r}");
    assert!(
        r.diags.iter().any(|d| d.code == Code::PlanAlias
            && d.node.as_deref() == Some(clobberer_name.as_str())
            && d.detail.contains(&format!("`{victim_name}`"))),
        "V016 must name clobberer `{clobberer_name}` over live `{victim_name}`:\n{r}"
    );
    assert!(r.has(Code::PlanStaleRead), "V017 expected, got:\n{r}");
    assert!(
        r.diags
            .iter()
            .any(|d| d.code == Code::PlanStaleRead
                && d.node.as_deref() == Some(victim_name.as_str())),
        "V017 must name the stranded value `{victim_name}`:\n{r}"
    );
}

#[test]
fn storage_shrink_is_refuted_as_v018() {
    let g = skip_graph();
    let mut plan = g.plan(&[2, 32]);
    let short = plan
        .inject_slot_shrink()
        .expect("graph must offer a shrinkable slot");
    let r = check_plan(&g, &plan);
    assert!(r.has(Code::PlanStorage), "V018 expected, got:\n{r}");
    let short_name = &g.nodes()[short].name;
    assert!(
        r.diags
            .iter()
            .any(|d| d.code == Code::PlanStorage && d.node.as_deref() == Some(short_name)),
        "refutation must name the under-stored node `{short_name}`:\n{r}"
    );
}
