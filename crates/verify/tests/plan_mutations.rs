//! Mutation tests for the plan verifier: inject known slot-assignment
//! bugs through `IntPlan`'s test-only hooks and assert `check_plan`
//! refutes each with the correct stable code *and* the correct
//! counterexample node. A prover that cannot refute seeded bugs proves
//! nothing — this is the teeth behind the zoo-wide "plan proven" gate.
//!
//! The mutated plans are never executed.

use tqt_fixedpoint::lower::{IntGraph, IntNode, IntOp};
use tqt_fixedpoint::{EpiStep, QFormat};
use tqt_verify::{check_plan, Code};

fn q8(frac: i32) -> QFormat {
    QFormat::new(frac, 8, true)
}

/// in -> q -> {relu, rq} -> add, with a skip edge (add also reads q's
/// requantized sibling): enough structure for both mutations.
fn skip_graph() -> IntGraph {
    let nodes = vec![
        IntNode {
            name: "in".into(),
            op: IntOp::Input,
            inputs: vec![],
        },
        IntNode {
            name: "q".into(),
            op: IntOp::QuantF32 { format: q8(4) },
            inputs: vec![0],
        },
        IntNode {
            name: "relu".into(),
            op: IntOp::Relu { cap_q: None },
            inputs: vec![1],
        },
        IntNode {
            name: "rq".into(),
            op: IntOp::Requant { format: q8(4) },
            inputs: vec![2],
        },
        IntNode {
            name: "add".into(),
            op: IntOp::Add,
            inputs: vec![3, 1],
        },
    ];
    IntGraph::from_parts(nodes, 4)
}

#[test]
fn unmutated_plan_is_proven() {
    let g = skip_graph();
    for batch in [1usize, 4] {
        let plan = g.plan(&[batch, 32]);
        let r = check_plan(&g, &plan);
        assert!(r.is_clean(), "batch {batch}: {r}");
    }
}

#[test]
fn liveness_off_by_one_is_refuted_as_v016() {
    let g = skip_graph();
    let mut plan = g.plan(&[2, 32]);
    let (clobberer, input) = plan
        .inject_liveness_off_by_one(&g)
        .expect("graph must offer an eligible (node, live input) pair");
    let r = check_plan(&g, &plan);
    assert!(r.has(Code::PlanAlias), "V016 expected, got:\n{r}");
    let diag = r
        .diags
        .iter()
        .find(|d| d.code == Code::PlanAlias)
        .expect("checked above");
    let clobberer_name = &g.nodes()[clobberer].name;
    let input_name = &g.nodes()[input].name;
    assert_eq!(
        diag.node.as_deref(),
        Some(clobberer_name.as_str()),
        "counterexample must name the clobbering node:\n{r}"
    );
    assert!(
        diag.detail.contains(&format!("`{input_name}`")),
        "counterexample must name the clobbered live value:\n{r}"
    );
}

#[test]
fn premature_release_is_refuted_as_v017() {
    let g = skip_graph();
    let mut plan = g.plan(&[2, 32]);
    let (producer, _intermediate, stranded) = plan
        .inject_premature_release(&g)
        .expect("graph must offer an eligible early-release triple");
    let r = check_plan(&g, &plan);
    assert!(r.has(Code::PlanStaleRead), "V017 expected, got:\n{r}");
    let diag = r
        .diags
        .iter()
        .find(|d| d.code == Code::PlanStaleRead)
        .expect("checked above");
    let stranded_name = &g.nodes()[stranded].name;
    let producer_name = &g.nodes()[producer].name;
    assert_eq!(
        diag.node.as_deref(),
        Some(stranded_name.as_str()),
        "counterexample must name the stranded consumer:\n{r}"
    );
    assert!(
        diag.detail.contains(&format!("`{producer_name}`")),
        "counterexample must name the overwritten producer:\n{r}"
    );
}

/// in -> q -> fused(dense + requant epilogue) joined with a relu branch
/// of q at a final add: fusion released the chain's intermediate slots,
/// and the fused output stays live across the relu.
fn fused_skip_graph() -> IntGraph {
    let in_dim = 8;
    let nodes = vec![
        IntNode {
            name: "in".into(),
            op: IntOp::Input,
            inputs: vec![],
        },
        IntNode {
            name: "q".into(),
            op: IntOp::QuantF32 { format: q8(4) },
            inputs: vec![0],
        },
        IntNode {
            name: "fc..rq".into(),
            op: IntOp::Fused {
                core: Box::new(IntOp::Dense {
                    w: vec![1i64; in_dim * in_dim],
                    in_dim,
                    out_dim: in_dim,
                    bias: None,
                    w_frac: 4,
                }),
                epi: vec![EpiStep::Requant { format: q8(4) }],
            },
            inputs: vec![1],
        },
        IntNode {
            name: "relu".into(),
            op: IntOp::Relu { cap_q: None },
            inputs: vec![1],
        },
        IntNode {
            name: "add".into(),
            op: IntOp::Add,
            inputs: vec![2, 3],
        },
    ];
    IntGraph::from_parts(nodes, 4)
}

#[test]
fn unmutated_fused_plan_is_proven() {
    let g = fused_skip_graph();
    for batch in [1usize, 4] {
        let plan = g.plan(&[batch, 8]);
        let r = check_plan(&g, &plan);
        assert!(r.is_clean(), "batch {batch}: {r}");
    }
}

/// Fusion's whole point is that the chain's intermediate slots die with
/// the chain — this mutation "resurrects" one by parking a later node's
/// output in the fused producer's slot while that output is still live.
/// The plan checker must refute it like any other alias: the resurrector
/// clobbers a live value (V016) and the fused node's consumer reads a
/// stale slot (V017), each naming the right node.
#[test]
fn fused_slot_resurrection_is_refuted() {
    let g = fused_skip_graph();
    let mut plan = g.plan(&[2, 8]);
    let (fused_producer, resurrector, stranded) = plan
        .inject_fused_slot_resurrection(&g)
        .expect("graph must offer a fused producer with a later non-consumer");
    let r = check_plan(&g, &plan);
    let fused_name = &g.nodes()[fused_producer].name;
    let resurrector_name = &g.nodes()[resurrector].name;
    let stranded_name = &g.nodes()[stranded].name;

    assert!(r.has(Code::PlanAlias), "V016 expected, got:\n{r}");
    assert!(
        r.diags.iter().any(|d| d.code == Code::PlanAlias
            && d.node.as_deref() == Some(resurrector_name.as_str())
            && d.detail.contains(&format!("`{fused_name}`"))),
        "V016 must name resurrector `{resurrector_name}` clobbering `{fused_name}`:\n{r}"
    );
    assert!(r.has(Code::PlanStaleRead), "V017 expected, got:\n{r}");
    assert!(
        r.diags.iter().any(|d| d.code == Code::PlanStaleRead
            && d.node.as_deref() == Some(stranded_name.as_str())
            && d.detail.contains(&format!("`{fused_name}`"))),
        "V017 must name stranded consumer `{stranded_name}` reading stale `{fused_name}`:\n{r}"
    );
}

#[test]
fn storage_shrink_is_refuted_as_v018() {
    let g = skip_graph();
    let mut plan = g.plan(&[2, 32]);
    let short = plan
        .inject_slot_shrink()
        .expect("graph must offer a shrinkable slot");
    let r = check_plan(&g, &plan);
    assert!(r.has(Code::PlanStorage), "V018 expected, got:\n{r}");
    let short_name = &g.nodes()[short].name;
    assert!(
        r.diags
            .iter()
            .any(|d| d.code == Code::PlanStorage && d.node.as_deref() == Some(short_name)),
        "refutation must name the under-stored node `{short_name}`:\n{r}"
    );
}
