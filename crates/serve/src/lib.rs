//! `tqt-serve` — the dynamic-batching serving core over the integer
//! inference engine.
//!
//! Serving turns the repo's throughput story end-to-end: clients submit
//! single images, and the engine coalesces them into the largest batch
//! the backlog supports, because the blocked integer GEMM amortizes its
//! packed-weight panels far better at batch 4–8 than at batch 1. The
//! pieces:
//!
//! * **Batch ladder** ([`Engine::build`]) — one [`IntPlan`] per rung of
//!   [`LADDER`], each *proven at build time*: the interval analyzer
//!   (`tqt_verify::analyze`) shows no i64 accumulator can wrap at that
//!   batch size, and the plan checker (`tqt_verify::check_plan`) shows
//!   the slot assignment is alias-free. A request can only ever run on
//!   a plan that carries both proofs.
//! * **Shared-weight sessions** ([`Engine::serve`]) — every worker
//!   builds one [`IntExecutor::with_plan`] session per rung, all
//!   borrowing the engine's plans: one packed-weight arena per (model,
//!   rung) regardless of worker count. Sessions reuse their slot and
//!   output buffers across requests; the steady state performs no
//!   executor-side allocation ([`IntExecutor::slot_allocs`]).
//! * **Admission queue** (`tqt_rt::queue`) — coalescing decisions are
//!   the pure functions in `tqt_rt::sched`, exhaustively model-checked
//!   (`TQT-V024` on refutation): no request is lost or dispatched
//!   twice, deadline-expired requests always flush, shutdown drains
//!   cleanly.
//!
//! Batching is bit-exact, not approximate: a batch-k dispatch produces
//! exactly the logits (and saturation/overflow counters) of k
//! independent batch-1 runs, which `tests/serve_parity.rs` proves
//! zoo-wide — so the throughput win in `BENCH_serve.json` comes at
//! equal accuracy by construction.

use std::time::Duration;

use tqt_fixedpoint::{IntExecutor, IntGraph, IntPlan, QFormat};
use tqt_rt::queue::{scoped_threads, BatchQueue, QueueStats};
use tqt_tensor::Tensor;
use tqt_verify::{analyze, check_plan};

/// The default batch ladder: power-of-two rungs so any backlog splits
/// into at most `log2(top)` dispatches, topping out where the blocked
/// GEMM's batch amortization flattens.
pub const LADDER: [usize; 4] = [1, 2, 4, 8];

/// One served inference result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reply {
    /// The request's output values (one image's logits).
    pub logits: Vec<i64>,
    /// Their fixed-point format.
    pub format: QFormat,
}

/// Aggregate observations from one [`Engine::serve`] scope.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Admission-queue counters (dispatch rungs, deadline flushes, …).
    pub queue: QueueStats,
    /// Total saturated elements across every dispatched batch.
    pub saturated: u64,
    /// Total wrapped i64 accumulators (always 0 on proven plans).
    pub overflowed: u64,
    /// Executor slot allocations beyond session construction — the
    /// serving hot path's allocation count, asserted zero in tests.
    pub steady_state_allocs: u64,
}

/// A serving engine: one integer graph plus its proven batch-ladder
/// plans. Build once, then [`serve`](Engine::serve) any number of
/// scopes over it.
pub struct Engine {
    graph: IntGraph,
    base_dims: Vec<usize>,
    ladder: Vec<usize>,
    plans: Vec<IntPlan>,
    image_elems: usize,
}

/// Per-rung executor session a worker owns: the executor borrows the
/// engine's plan (shared packed weights); the input tensor and output
/// buffer are reused across every dispatch of that rung.
struct Session<'e> {
    ex: IntExecutor<'e>,
    input: Tensor,
    out: Vec<i64>,
    baseline_allocs: u64,
}

/// Shuts the queue down when the serve body finishes — or panics — so
/// workers always drain and exit.
struct Drain<'q, T, R>(&'q BatchQueue<T, R>);

impl<T, R> Drop for Drain<'_, T, R> {
    fn drop(&mut self) {
        self.0.shutdown();
    }
}

impl Engine {
    /// Builds an engine over the default [`LADDER`].
    ///
    /// # Errors
    ///
    /// Returns the rendered diagnostics if any rung's overflow proof or
    /// plan-aliasing proof fails — an unproven plan never serves.
    pub fn build(graph: IntGraph, base_dims: &[usize]) -> Result<Engine, String> {
        Self::with_ladder(graph, base_dims, &LADDER)
    }

    /// Builds an engine over a custom ladder (sorted ascending, rung 1
    /// first), proving every rung's plan.
    ///
    /// # Errors
    ///
    /// See [`build`](Self::build).
    ///
    /// # Panics
    ///
    /// Panics on a malformed ladder or `base_dims` whose batch is not 1.
    pub fn with_ladder(
        graph: IntGraph,
        base_dims: &[usize],
        ladder: &[usize],
    ) -> Result<Engine, String> {
        assert_eq!(base_dims.first(), Some(&1), "base dims must be single-image");
        assert!(
            ladder.first() == Some(&1) && ladder.windows(2).all(|w| w[0] < w[1]),
            "ladder must be sorted ascending starting at rung 1"
        );
        let mut plans = Vec::with_capacity(ladder.len());
        for &rung in ladder {
            let mut dims = base_dims.to_vec();
            dims[0] = rung;
            let iv = analyze(&graph, &dims);
            if !iv.proven() {
                return Err(format!(
                    "batch-{rung} plan refused: overflow proof failed\n{}",
                    iv.report.render()
                ));
            }
            let plan = graph.plan(&dims);
            let pr = check_plan(&graph, &plan);
            if !pr.is_clean() {
                return Err(format!(
                    "batch-{rung} plan refused: plan proof failed\n{}",
                    pr.render()
                ));
            }
            plans.push(plan);
        }
        let image_elems = base_dims[1..].iter().product();
        Ok(Engine {
            graph,
            base_dims: base_dims.to_vec(),
            ladder: ladder.to_vec(),
            plans,
            image_elems,
        })
    }

    /// The batch ladder this engine serves on.
    pub fn ladder(&self) -> &[usize] {
        &self.ladder
    }

    /// The integer graph being served.
    pub fn graph(&self) -> &IntGraph {
        &self.graph
    }

    /// The proven plan for batch size `rung`, if it is a ladder rung —
    /// the handle sessions outside [`serve`](Self::serve) (tests, the
    /// bench baseline) share weights through.
    pub fn plan_for(&self, rung: usize) -> Option<&IntPlan> {
        let i = self.ladder.iter().position(|&r| r == rung)?;
        Some(&self.plans[i])
    }

    /// Elements of one image (`C*H*W` of the base dims).
    pub fn image_elems(&self) -> usize {
        self.image_elems
    }

    /// Runs a serving scope: spawns `workers` serving threads, calls
    /// `body` with a [`Client`] handle on the current thread, then
    /// drains the queue (even if `body` panics) and joins the workers.
    /// Requests coalesce into ladder batches; a partial batch waits at
    /// most `max_wait` before it flushes.
    pub fn serve<O>(
        &self,
        workers: usize,
        max_wait: Duration,
        body: impl FnOnce(&Client<'_>) -> O,
    ) -> (O, ServeReport) {
        assert!(workers >= 1, "serving needs at least one worker");
        let queue: BatchQueue<Vec<f32>, Reply> = BatchQueue::new(&self.ladder, max_wait);
        let (worker_stats, out) = scoped_threads(
            workers,
            |_| self.worker_loop(&queue),
            || {
                let drain = Drain(&queue);
                let out = body(&Client {
                    queue: &queue,
                    engine: self,
                });
                drop(drain);
                out
            },
        );
        let mut report = ServeReport {
            queue: queue.stats(),
            saturated: 0,
            overflowed: 0,
            steady_state_allocs: 0,
        };
        for (sat, ovf, allocs) in worker_stats {
            report.saturated += sat;
            report.overflowed += ovf;
            report.steady_state_allocs += allocs;
        }
        (out, report)
    }

    /// One worker: per-rung sessions over the shared plans, then the
    /// claim/complete loop until the queue drains.
    fn worker_loop(&self, queue: &BatchQueue<Vec<f32>, Reply>) -> (u64, u64, u64) {
        let mut sessions: Vec<Session<'_>> = self
            .ladder
            .iter()
            .zip(&self.plans)
            .map(|(&rung, plan)| {
                let mut dims = self.base_dims.clone();
                dims[0] = rung;
                let ex = IntExecutor::with_plan(&self.graph, plan);
                let baseline_allocs = ex.slot_allocs();
                Session {
                    ex,
                    input: Tensor::zeros(dims),
                    out: Vec::new(),
                    baseline_allocs,
                }
            })
            .collect();
        let mut batch: Vec<(u64, Vec<f32>)> = Vec::new();
        let (mut sat, mut ovf) = (0u64, 0u64);
        while queue.claim_into(&mut batch) {
            let k = batch.len();
            let si = match self.ladder.iter().position(|&r| r == k) {
                Some(i) => i,
                None => panic!("queue dispatched {k} requests, not a ladder rung"),
            };
            let s = &mut sessions[si];
            let data = s.input.data_mut();
            for (row, (_, img)) in batch.iter().enumerate() {
                data[row * self.image_elems..(row + 1) * self.image_elems].copy_from_slice(img);
            }
            let (format, stats) = s.ex.run_into(&s.input, &mut s.out);
            sat += stats.total_saturated();
            ovf += stats.total_overflowed();
            let per = s.out.len() / k;
            let out = &s.out;
            queue.complete(batch.drain(..).enumerate().map(|(row, (seq, _))| {
                (
                    seq,
                    Reply {
                        logits: out[row * per..(row + 1) * per].to_vec(),
                        format,
                    },
                )
            }));
        }
        let steady_allocs: u64 = sessions
            .iter()
            .map(|s| s.ex.slot_allocs() - s.baseline_allocs)
            .sum();
        (sat, ovf, steady_allocs)
    }
}

/// The request handle [`Engine::serve`] passes to its body; share it by
/// reference across client threads (`tqt_rt::queue::scoped_threads`).
pub struct Client<'a> {
    queue: &'a BatchQueue<Vec<f32>, Reply>,
    engine: &'a Engine,
}

impl Client<'_> {
    /// Submits one image (row-major `C*H*W` floats) and blocks until its
    /// logits come back.
    ///
    /// # Panics
    ///
    /// Panics if `image` is not exactly one image's elements.
    pub fn infer(&self, image: &[f32]) -> Reply {
        assert_eq!(
            image.len(),
            self.engine.image_elems,
            "image element count mismatch"
        );
        self.queue.call(image.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tqt_graph::{quantize_graph, transforms, QuantizeOptions, WeightBits};
    use tqt_models::{ModelKind, INPUT_DIMS};
    use tqt_tensor::init;

    fn engine() -> Engine {
        let mut g = ModelKind::VggA.build(42);
        transforms::optimize(&mut g, &INPUT_DIMS);
        quantize_graph(&mut g, QuantizeOptions::retrain_wt_th(WeightBits::Int8));
        let mut rng = init::rng(242);
        g.calibrate(&init::normal([8, 3, 32, 32], 0.0, 1.0, &mut rng));
        let ig = tqt_fixedpoint::lower(&mut g);
        Engine::build(ig, &INPUT_DIMS).expect("zoo plans must prove")
    }

    #[test]
    fn served_replies_match_direct_batch_1_runs() {
        let eng = engine();
        let mut rng = init::rng(77);
        let images: Vec<Tensor> = (0..6)
            .map(|_| init::normal(INPUT_DIMS, 0.0, 1.0, &mut rng))
            .collect();
        // Direct single-image runs on the engine's own proven rung-1 plan.
        let expected: Vec<Vec<i64>> = {
            let plan = eng.plan_for(1).expect("rung 1 is on the ladder");
            let mut ex = IntExecutor::with_plan(eng.graph(), plan);
            images.iter().map(|x| ex.run(x).data().to_vec()).collect()
        };
        let ((), report) = eng.serve(2, Duration::from_millis(2), |client| {
            let imgs = &images;
            let exp = &expected;
            let (_, ()) = scoped_threads(
                3,
                |c| {
                    for (i, x) in imgs.iter().enumerate().filter(|(i, _)| i % 3 == c) {
                        let reply = client.infer(x.data());
                        assert_eq!(reply.logits, exp[i], "image {i} served wrong logits");
                    }
                },
                || {},
            );
        });
        assert_eq!(report.queue.submitted, 6);
        assert_eq!(report.queue.dispatched_requests, 6, "clean drain");
        assert_eq!(report.overflowed, 0, "proven plans cannot wrap");
        assert_eq!(
            report.steady_state_allocs, 0,
            "serving hot path must not allocate executor slots"
        );
    }

    #[test]
    fn engine_exposes_only_ladder_plans() {
        let eng = engine();
        assert_eq!(eng.ladder(), &LADDER);
        for &r in &LADDER {
            assert!(eng.plan_for(r).is_some(), "rung {r} must be planned");
        }
        assert!(eng.plan_for(3).is_none());
        assert_eq!(eng.image_elems(), 3 * 32 * 32);
    }
}
