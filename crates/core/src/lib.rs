//! # tqt
//!
//! End-to-end Trained Quantization Thresholds (TQT, Jain et al., MLSys
//! 2020): the experiment harness tying together the tensor / NN / quantizer
//! / graph / fixed-point substrates into the paper's workflow:
//!
//! 1. pre-train (or load) an FP32 model ([`experiment::ExpEnv::pretrained`]);
//! 2. optimize the graph (batch-norm folding etc.,
//!    [`tqt_graph::transforms::optimize`]);
//! 3. quantize it in static or retrain mode
//!    ([`tqt_graph::quantize_graph`]);
//! 4. calibrate thresholds topologically ([`tqt_graph::Graph::calibrate`]);
//! 5. retrain weights and thresholds jointly ([`trainer::train`]);
//! 6. lower to a bit-accurate integer graph ([`tqt_fixedpoint::lower()`](tqt_fixedpoint::lower::lower)).
//!
//! # Examples
//!
//! ```no_run
//! use tqt::config::TrialKind;
//! use tqt::experiment::{run_trial, ExpEnv};
//! use tqt_models::ModelKind;
//!
//! let env = ExpEnv::standard("target/zoo", 1.0);
//! let (result, _graph) = run_trial(ModelKind::MobileNetV1, TrialKind::RetrainWtThInt8, &env);
//! println!("top-1 = {:.1}%", result.top1 * 100.0);
//! ```

pub mod config;
pub mod experiment;
pub mod report;
pub mod trainer;

pub use config::{TrainHyper, TrialKind};
pub use experiment::{run_trial, ExpEnv, TrialResult};
pub use trainer::{evaluate, train, TrainResult, ValPoint};
