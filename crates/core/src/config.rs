//! Experiment configuration: training hyperparameters and trial kinds.

use tqt_graph::WeightBits;

/// Hyperparameters of a training run (FP32 pre-training or quantized
/// retraining). Defaults follow the paper's Section 5.2 scheme, scaled to
/// the synthetic benchmark.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainHyper {
    /// Mini-batch size.
    pub batch: usize,
    /// Maximum epochs (the paper retrains for at most 5).
    pub epochs: usize,
    /// Initial weight learning rate.
    pub weight_lr: f32,
    /// Weight LR staircase decay factor.
    pub weight_decay: f32,
    /// Weight LR staircase interval in steps.
    pub weight_decay_interval: u64,
    /// Initial threshold learning rate (paper: 1e-2).
    pub threshold_lr: f32,
    /// Threshold LR staircase decay factor (paper: 0.5).
    pub threshold_decay: f32,
    /// Threshold LR staircase interval in steps.
    pub threshold_decay_interval: u64,
    /// Steps between validation passes (best checkpoint is kept).
    pub val_every: u64,
    /// Step at which incremental threshold freezing begins
    /// (paper: `1000 * 24/N`).
    pub freeze_start: u64,
    /// Steps between threshold freezes (paper: 50).
    pub freeze_interval: u64,
    /// Freeze batch-norm moving statistics after this many steps
    /// (paper: after 1 epoch). `u64::MAX` disables.
    pub bn_freeze_after: u64,
    /// RNG seed for shuffling.
    pub seed: u64,
    /// Run training steps on the planned slot-reuse executor
    /// (liveness-planned buffers, pooled Adam over a contiguous parameter
    /// arena). Bit-identical to the allocating path — `false` keeps the
    /// legacy per-tensor execution for A/B comparison.
    pub planned: bool,
}

impl TrainHyper {
    /// FP32 pre-training defaults for the synthetic benchmark.
    pub fn pretrain(steps_per_epoch: u64) -> Self {
        TrainHyper {
            batch: 32,
            epochs: 12,
            weight_lr: 2e-3,
            weight_decay: 0.85,
            weight_decay_interval: steps_per_epoch.max(1),
            threshold_lr: 1e-2,
            threshold_decay: 0.5,
            threshold_decay_interval: steps_per_epoch.max(1),
            val_every: steps_per_epoch.max(1),
            freeze_start: u64::MAX,
            freeze_interval: 50,
            bn_freeze_after: u64::MAX,
            seed: 1,
            planned: true,
        }
    }

    /// Quantized / fine-tune retraining defaults: small weight LR (the
    /// paper fine-tunes pre-trained weights at 1e-6 on ImageNet; the
    /// synthetic benchmark's loss surface needs a proportionally larger
    /// rate), threshold LR 1e-2 with 0.5 staircase decay, max 5 epochs,
    /// threshold freezing enabled.
    pub fn retrain(steps_per_epoch: u64) -> Self {
        TrainHyper {
            batch: 32,
            epochs: 5,
            weight_lr: 2e-4,
            weight_decay: 0.94,
            weight_decay_interval: (3 * steps_per_epoch).max(1),
            threshold_lr: 1e-2,
            threshold_decay: 0.5,
            threshold_decay_interval: steps_per_epoch.max(1),
            val_every: (steps_per_epoch / 2).max(1),
            freeze_start: steps_per_epoch.max(1),
            freeze_interval: 50,
            bn_freeze_after: steps_per_epoch.max(1),
            seed: 1,
            planned: true,
        }
    }
}

/// One row group of Table 3: the six trials run per network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrialKind {
    /// FP32 baseline (pre-trained weights, no retraining).
    Fp32,
    /// Static INT8 quantization (calibrate only).
    StaticInt8,
    /// FP32 weight-only retraining (the paper's fairness baseline).
    RetrainWtFp32,
    /// INT8 weight-only retraining (thresholds fixed at calibration).
    RetrainWtInt8,
    /// INT8 TQT retraining (weights + thresholds).
    RetrainWtThInt8,
    /// INT4 (4/8 W/A) TQT retraining.
    RetrainWtThInt4,
}

impl TrialKind {
    /// All trials in Table 3 row order.
    pub fn all() -> &'static [TrialKind] {
        &[
            TrialKind::Fp32,
            TrialKind::StaticInt8,
            TrialKind::RetrainWtFp32,
            TrialKind::RetrainWtInt8,
            TrialKind::RetrainWtThInt8,
            TrialKind::RetrainWtThInt4,
        ]
    }

    /// The paper's "Mode" column label.
    pub fn mode_label(&self) -> &'static str {
        match self {
            TrialKind::Fp32 => "FP32",
            TrialKind::StaticInt8 => "Static",
            TrialKind::RetrainWtFp32 | TrialKind::RetrainWtInt8 => "Retrain wt",
            TrialKind::RetrainWtThInt8 | TrialKind::RetrainWtThInt4 => "Retrain wt,th",
        }
    }

    /// The paper's "Bit-width (W/A)" column label.
    pub fn bits_label(&self) -> &'static str {
        match self {
            TrialKind::Fp32 | TrialKind::RetrainWtFp32 => "32/32",
            TrialKind::StaticInt8 | TrialKind::RetrainWtInt8 | TrialKind::RetrainWtThInt8 => "8/8",
            TrialKind::RetrainWtThInt4 => "4/8",
        }
    }

    /// Weight precision for the quantized trials.
    pub fn weight_bits(&self) -> Option<WeightBits> {
        match self {
            TrialKind::StaticInt8 | TrialKind::RetrainWtInt8 | TrialKind::RetrainWtThInt8 => {
                Some(WeightBits::Int8)
            }
            TrialKind::RetrainWtThInt4 => Some(WeightBits::Int4),
            _ => None,
        }
    }

    /// Whether this trial trains thresholds.
    pub fn trains_thresholds(&self) -> bool {
        matches!(
            self,
            TrialKind::RetrainWtThInt8 | TrialKind::RetrainWtThInt4
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper() {
        assert_eq!(TrialKind::Fp32.bits_label(), "32/32");
        assert_eq!(TrialKind::RetrainWtThInt4.bits_label(), "4/8");
        assert_eq!(TrialKind::StaticInt8.mode_label(), "Static");
        assert_eq!(TrialKind::RetrainWtThInt8.mode_label(), "Retrain wt,th");
    }

    #[test]
    fn weight_bits_routing() {
        assert_eq!(TrialKind::Fp32.weight_bits(), None);
        assert_eq!(TrialKind::RetrainWtThInt4.weight_bits(), Some(WeightBits::Int4));
        assert!(TrialKind::RetrainWtThInt8.trains_thresholds());
        assert!(!TrialKind::RetrainWtInt8.trains_thresholds());
    }

    #[test]
    fn retrain_defaults_scale_with_epoch() {
        let h = TrainHyper::retrain(100);
        assert_eq!(h.threshold_decay_interval, 100);
        assert_eq!(h.bn_freeze_after, 100);
        assert_eq!(h.epochs, 5);
    }
}
