//! Experiment orchestration: the FP32 model zoo (pre-train once, cache to
//! disk — the stand-in for TF-Slim checkpoints) and the six Table 3 trials
//! per network.

use crate::config::{TrainHyper, TrialKind};
use crate::trainer::{evaluate, train, TrainResult};
use std::path::{Path, PathBuf};
use tqt_data::{calibration_batch, train_val, Dataset, SynthConfig};
use tqt_graph::state::StateDict;
use tqt_graph::{quantize_graph, transforms, Graph, QuantizeOptions, ThresholdMode};
use tqt_models::{ModelKind, INPUT_DIMS};
use tqt_quant::calib::ThresholdInit;

/// Shared experiment environment: datasets, calibration batch, checkpoint
/// cache and hyperparameter scales.
#[derive(Debug)]
pub struct ExpEnv {
    /// Training split.
    pub train: Dataset,
    /// Validation split.
    pub val: Dataset,
    /// Calibration inputs (paper: 50 images from the validation set).
    pub calib: tqt_tensor::Tensor,
    /// Directory for cached FP32 checkpoints.
    pub zoo_dir: PathBuf,
    /// Steps per epoch at the configured batch size.
    pub steps_per_epoch: u64,
    /// Weight-initialization seed for model builds.
    pub model_seed: u64,
    /// Epoch budget for FP32 pre-training.
    pub pretrain_epochs: usize,
    /// Epoch budget for retraining trials (paper: 5).
    pub retrain_epochs: usize,
}

impl ExpEnv {
    /// Builds the standard benchmark environment. `scale` multiplies the
    /// dataset size (1.0 = 2560 train / 640 val images).
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not positive.
    pub fn standard(zoo_dir: impl Into<PathBuf>, scale: f32) -> Self {
        assert!(scale > 0.0, "scale must be positive");
        let n_train = ((2560.0 * scale) as usize).max(64);
        let n_val = ((640.0 * scale) as usize).max(64);
        let cfg = SynthConfig::default();
        let (train, val) = train_val(&cfg, n_train, n_val);
        let calib = calibration_batch(&val, 50.min(n_val), 11);
        let batch = 32;
        ExpEnv {
            calib,
            zoo_dir: zoo_dir.into(),
            steps_per_epoch: (train.len() / batch) as u64,
            train,
            val,
            model_seed: 1,
            pretrain_epochs: 10,
            retrain_epochs: 5,
        }
    }

    fn checkpoint_path(&self, model: ModelKind) -> PathBuf {
        self.zoo_dir.join(format!("{}.json", model.name()))
    }

    /// Returns the FP32 pre-trained graph for `model`, training and
    /// caching it on first use.
    ///
    /// # Panics
    ///
    /// Panics on checkpoint I/O errors other than "not found".
    pub fn pretrained(&self, model: ModelKind) -> Graph {
        let mut g = model.build(self.model_seed);
        let path = self.checkpoint_path(model);
        if path.exists() {
            let sd = StateDict::load(&path).expect("corrupt checkpoint");
            g.load_state_dict(&sd);
            return g;
        }
        let mut hyper = TrainHyper::pretrain(self.steps_per_epoch);
        hyper.epochs = self.pretrain_epochs;
        train(&mut g, &self.train, &self.val, &hyper);
        std::fs::create_dir_all(&self.zoo_dir).expect("cannot create zoo dir");
        g.state_dict().save(&path).expect("cannot save checkpoint");
        g
    }
}

/// Result of one Table 3 trial.
#[derive(Debug, Clone)]
pub struct TrialResult {
    /// Which trial.
    pub kind: TrialKind,
    /// Best top-1 accuracy (fraction).
    pub top1: f32,
    /// Best top-5 accuracy (fraction).
    pub top5: f32,
    /// Fractional epoch of the best checkpoint (0 for non-retrained
    /// trials).
    pub epochs: f32,
    /// Full training details when the trial retrained.
    pub train_result: Option<TrainResult>,
}

/// Runs one trial of the Table 3 grid for `model`, returning the result
/// and the final graph (quantized trials return the quantized graph, ready
/// for lowering or distribution reports).
pub fn run_trial(model: ModelKind, kind: TrialKind, env: &ExpEnv) -> (TrialResult, Graph) {
    let mut g = env.pretrained(model);
    match kind {
        TrialKind::Fp32 => {
            let (top1, top5, _) = evaluate(&mut g, &env.val, 32);
            (
                TrialResult {
                    kind,
                    top1,
                    top5,
                    epochs: 0.0,
                    train_result: None,
                },
                g,
            )
        }
        TrialKind::RetrainWtFp32 => {
            let mut hyper = TrainHyper::retrain(env.steps_per_epoch);
            hyper.epochs = env.retrain_epochs;
            let r = train(&mut g, &env.train, &env.val, &hyper);
            (
                TrialResult {
                    kind,
                    top1: r.best.top1,
                    top5: r.best.top5,
                    epochs: r.best.epoch,
                    train_result: Some(r),
                },
                g,
            )
        }
        TrialKind::StaticInt8 => {
            transforms::optimize(&mut g, &INPUT_DIMS);
            quantize_graph(&mut g, QuantizeOptions::static_int8());
            g.calibrate(&env.calib);
            let (top1, top5, _) = evaluate(&mut g, &env.val, 32);
            (
                TrialResult {
                    kind,
                    top1,
                    top5,
                    epochs: 0.0,
                    train_result: None,
                },
                g,
            )
        }
        TrialKind::RetrainWtInt8 | TrialKind::RetrainWtThInt8 | TrialKind::RetrainWtThInt4 => {
            transforms::optimize(&mut g, &INPUT_DIMS);
            let bits = kind.weight_bits().expect("quantized trial");
            let opts = if kind.trains_thresholds() {
                QuantizeOptions::retrain_wt_th(bits)
            } else {
                QuantizeOptions {
                    weight_bits: bits,
                    mode: ThresholdMode::Fixed,
                    weight_init: ThresholdInit::Max,
                    act_init: ThresholdInit::KlJ,
                    merge_scales: true,
                }
            };
            quantize_graph(&mut g, opts);
            g.calibrate(&env.calib);
            let mut hyper = TrainHyper::retrain(env.steps_per_epoch);
            hyper.epochs = env.retrain_epochs;
            let r = train(&mut g, &env.train, &env.val, &hyper);
            (
                TrialResult {
                    kind,
                    top1: r.best.top1,
                    top5: r.best.top5,
                    epochs: r.best.epoch,
                    train_result: Some(r),
                },
                g,
            )
        }
    }
}

/// Formats accuracies as the paper does (percent, one decimal).
pub fn pct(x: f32) -> String {
    format!("{:.1}", x * 100.0)
}

/// Removes a cached checkpoint (test support).
pub fn clear_zoo_entry(dir: &Path, model: ModelKind) {
    let _ = std::fs::remove_file(dir.join(format!("{}.json", model.name())));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_env(dir: &str) -> ExpEnv {
        let mut env = ExpEnv::standard(std::env::temp_dir().join(dir), 0.125);
        env.pretrain_epochs = 2;
        env.retrain_epochs = 1;
        env
    }

    #[test]
    fn zoo_caches_checkpoints() {
        let env = small_env("tqt_zoo_test_a");
        clear_zoo_entry(&env.zoo_dir, ModelKind::DarkNet);
        let mut g1 = env.pretrained(ModelKind::DarkNet);
        assert!(env.zoo_dir.join("darknet.json").exists());
        let mut g2 = env.pretrained(ModelKind::DarkNet);
        let x = env.calib.clone();
        let y1 = g1.forward(&x, tqt_nn::Mode::Eval);
        let y2 = g2.forward(&x, tqt_nn::Mode::Eval);
        y1.assert_close(&y2, 0.0);
        clear_zoo_entry(&env.zoo_dir, ModelKind::DarkNet);
    }

    #[test]
    fn static_trial_runs_end_to_end() {
        let env = small_env("tqt_zoo_test_b");
        clear_zoo_entry(&env.zoo_dir, ModelKind::ResNet8);
        let (fp32, _) = run_trial(ModelKind::ResNet8, TrialKind::Fp32, &env);
        let (stat, _) = run_trial(ModelKind::ResNet8, TrialKind::StaticInt8, &env);
        assert!(fp32.top1 > 0.2, "fp32 top1 {}", fp32.top1);
        // Static INT8 should not be dramatically better than FP32.
        assert!(stat.top1 <= fp32.top1 + 0.1);
        clear_zoo_entry(&env.zoo_dir, ModelKind::ResNet8);
    }

    #[test]
    fn tqt_trial_produces_threshold_data() {
        let env = small_env("tqt_zoo_test_c");
        clear_zoo_entry(&env.zoo_dir, ModelKind::DarkNet);
        let (r, g) = run_trial(ModelKind::DarkNet, TrialKind::RetrainWtThInt8, &env);
        let tr = r.train_result.expect("retrained trial has details");
        assert!(!tr.threshold_names.is_empty());
        assert!(g.thresholds().iter().any(|t| t.calibrated));
        clear_zoo_entry(&env.zoo_dir, ModelKind::DarkNet);
    }
}
