//! The training loop: joint weight + threshold optimization with the
//! paper's scheme (Adam for both groups, staircase LR decay, batch-norm
//! statistic freezing, incremental threshold freezing, periodic validation
//! with best-checkpoint selection).

use crate::config::TrainHyper;
use tqt_data::{eval_batches, BatchIter, Dataset};
use tqt_graph::{
    build_arena, flush_arena, sync_thresholds_from_arena, sync_thresholds_to_arena, FloatExecutor,
    FloatPlan, Graph, Op,
};
use tqt_nn::loss::{softmax_cross_entropy, topk_accuracy};
use tqt_nn::optim::{Adam, Optimizer};
use tqt_nn::schedule::StaircaseDecay;
use tqt_nn::{Mode, ParamArena, ParamKind, PooledAdam};
use tqt_quant::freeze::FreezeController;

/// Execution + optimizer backend for one training run.
///
/// `Planned` compiles the forward+backward tape once onto the
/// liveness-planned slot-reuse executor and keeps every parameter in a
/// contiguous arena updated by the pooled Adam; `Legacy` is the original
/// allocating per-tensor path. The two produce bit-identical training
/// trajectories (`crates/core/tests/train_parity.rs`), so `planned` is
/// purely a performance switch.
enum Engine {
    Legacy {
        weight_opt: Adam,
        thresh_opt: Adam,
    },
    Planned {
        arena: ParamArena,
        ex: Box<FloatExecutor>,
        weight_opt: PooledAdam,
        thresh_opt: PooledAdam,
    },
}

impl Engine {
    /// Builds the engine chosen by `hyper.planned` for a fixed batch
    /// shape (`BatchIter` yields full batches only, so `dims` holds for
    /// every training step of the run).
    fn build(g: &mut Graph, hyper: &TrainHyper, dims: &[usize]) -> Engine {
        if hyper.planned {
            let arena = build_arena(g);
            let plan = FloatPlan::new(g, dims);
            let ex = Box::new(FloatExecutor::new(plan, g));
            let weight_opt = PooledAdam::paper(hyper.weight_lr, &arena);
            let thresh_opt = PooledAdam::paper(hyper.threshold_lr, &arena);
            Engine::Planned {
                arena,
                ex,
                weight_opt,
                thresh_opt,
            }
        } else {
            Engine::Legacy {
                weight_opt: Adam::paper(hyper.weight_lr),
                thresh_opt: Adam::paper(hyper.threshold_lr),
            }
        }
    }

    /// Makes the graph's own parameter tensors current (the arena is
    /// authoritative for layer parameters on the planned path). Call
    /// before anything that reads the graph directly: `evaluate`,
    /// `state_dict`.
    fn flush(&self, g: &mut Graph) {
        if let Engine::Planned { arena, .. } = self {
            flush_arena(g, arena);
        }
    }
}

/// A validation measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ValPoint {
    /// Global training step.
    pub step: u64,
    /// Fractional epoch.
    pub epoch: f32,
    /// Validation loss.
    pub loss: f32,
    /// Top-1 accuracy in `[0, 1]`.
    pub top1: f32,
    /// Top-5 accuracy in `[0, 1]`.
    pub top5: f32,
}

/// Outcome of a training run.
#[derive(Debug, Clone)]
pub struct TrainResult {
    /// The best validation point (the checkpoint the graph was restored
    /// to).
    pub best: ValPoint,
    /// Every validation point in order.
    pub history: Vec<ValPoint>,
    /// Names of the trainable thresholds, aligned with the trace vectors.
    pub threshold_names: Vec<String>,
    /// `log2 t` at the start of training.
    pub threshold_init: Vec<f32>,
    /// `log2 t` at the end of training (best checkpoint).
    pub threshold_final: Vec<f32>,
    /// Per-step threshold values for the first
    /// [`TRACE_STEPS`](Self::TRACE_STEPS) steps (Figure 6's left panels).
    pub threshold_trace: Vec<Vec<f32>>,
    /// Total optimization steps run.
    pub steps_run: u64,
}

impl TrainResult {
    /// Number of leading steps for which threshold values are traced.
    pub const TRACE_STEPS: usize = 100;

    /// Threshold deviations `d = ceil(log2 t_final) - ceil(log2 t_init)`
    /// (the paper's Figures 5/6 metric).
    pub fn threshold_deviations(&self) -> Vec<i32> {
        self.threshold_init
            .iter()
            .zip(&self.threshold_final)
            .map(|(&a, &b)| b.ceil() as i32 - a.ceil() as i32)
            .collect()
    }
}

/// Evaluates a graph on a dataset: `(top1, top5, mean loss)`.
pub fn evaluate(g: &mut Graph, data: &Dataset, batch: usize) -> (f32, f32, f32) {
    let mut top1 = 0.0f64;
    let mut top5 = 0.0f64;
    let mut loss = 0.0f64;
    let mut n = 0usize;
    for (x, labels) in eval_batches(data, batch) {
        let logits = g.forward(&x, Mode::Eval);
        let (l, _) = softmax_cross_entropy(&logits, &labels);
        let (t1, t5) = topk_accuracy(&logits, &labels);
        let b = labels.len() as f64;
        top1 += t1 as f64 * b;
        top5 += t5 as f64 * b;
        loss += l as f64 * b;
        n += labels.len();
    }
    (
        (top1 / n as f64) as f32,
        (top5 / n as f64) as f32,
        (loss / n as f64) as f32,
    )
}

/// Freezes the moving statistics of every batch norm in the graph.
pub fn freeze_all_batchnorms(g: &mut Graph) {
    for id in 0..g.len() {
        if let Op::BatchNorm(bn) = &mut g.node_mut(id).op {
            bn.freeze_stats();
        }
    }
}

/// Trains a graph (FP32 or quantized) with the paper's two-group scheme
/// and returns the best-checkpoint result. The graph is left loaded with
/// the best checkpoint.
///
/// # Panics
///
/// Panics if the dataset is smaller than one batch or `hyper.epochs == 0`.
pub fn train(
    g: &mut Graph,
    train_data: &Dataset,
    val_data: &Dataset,
    hyper: &TrainHyper,
) -> TrainResult {
    assert!(hyper.epochs > 0, "training requires at least one epoch");
    let steps_per_epoch = (train_data.len() / hyper.batch) as u64;
    assert!(steps_per_epoch > 0, "dataset smaller than one batch");

    let mut engine: Option<Engine> = None;
    let weight_sched = StaircaseDecay::new(
        hyper.weight_lr,
        hyper.weight_decay,
        hyper.weight_decay_interval,
    );
    let thresh_sched = StaircaseDecay::new(
        hyper.threshold_lr,
        hyper.threshold_decay,
        hyper.threshold_decay_interval,
    );

    // Trainable-threshold bookkeeping for the freeze controller.
    let trainable_tids: Vec<usize> = g
        .thresholds()
        .iter()
        .enumerate()
        .filter(|(_, t)| t.param.trainable)
        .map(|(i, _)| i)
        .collect();
    let mut freezer = FreezeController::new(
        trainable_tids.len(),
        hyper.freeze_start,
        hyper.freeze_interval,
        0.9,
    );
    let threshold_names: Vec<String> = trainable_tids
        .iter()
        .map(|&i| g.thresholds()[i].param.name.clone())
        .collect();
    let threshold_init: Vec<f32> = trainable_tids
        .iter()
        .map(|&i| g.thresholds()[i].log2_t())
        .collect();
    let mut threshold_trace: Vec<Vec<f32>> = Vec::new();

    let mut best: Option<(ValPoint, tqt_graph::state::StateDict)> = None;
    let mut history = Vec::new();
    let mut step: u64 = 0;
    let mut bn_frozen = false;

    for epoch in 0..hyper.epochs {
        for (x, labels) in BatchIter::new(train_data, hyper.batch, hyper.seed, epoch as u64) {
            if !bn_frozen && step >= hyper.bn_freeze_after {
                freeze_all_batchnorms(g);
                bn_frozen = true;
            }
            // The engine is built on the first batch: the plan needs the
            // input dims, which only the data knows.
            if engine.is_none() {
                engine = Some(Engine::build(g, hyper, x.dims()));
            }
            let eng = engine.as_mut().expect("engine built above");

            let logits = match eng {
                Engine::Legacy { .. } => g.forward(&x, Mode::Train),
                Engine::Planned { arena, ex, .. } => ex.forward(g, arena, &x),
            };
            // Float-exec runtime sanitizer (debug builds): a NaN/Inf in any
            // activation means diverged thresholds or a broken transform,
            // and would poison every later step silently. The planned
            // executor asserts per node as it runs; the legacy path keeps
            // its retained activations, counted here.
            #[cfg(debug_assertions)]
            if matches!(eng, Engine::Legacy { .. }) {
                let (nan, inf) = g.nonfinite_counts();
                assert!(
                    nan == 0 && inf == 0,
                    "non-finite activations at step {step}: {nan} NaN, {inf} Inf"
                );
            }
            let (_, dlogits) = softmax_cross_entropy(&logits, &labels);
            g.zero_grads();
            match eng {
                Engine::Legacy { .. } => g.backward(&dlogits),
                Engine::Planned { arena, ex, .. } => {
                    arena.zero_grads();
                    ex.backward(g, arena, &dlogits);
                }
            }

            // Threshold freezing: observe values/gradients, then allow at
            // most one freeze per interval.
            if !trainable_tids.is_empty() {
                let values: Vec<f32> = trainable_tids
                    .iter()
                    .map(|&i| g.thresholds()[i].log2_t())
                    .collect();
                for (ci, &tid) in trainable_tids.iter().enumerate() {
                    let t = &g.thresholds()[tid];
                    freezer.observe(ci, t.log2_t(), t.param.grad.item());
                }
                if let Some(ci) = freezer.step(step, &values) {
                    let tid = trainable_tids[ci];
                    g.thresholds_mut()[tid].param.trainable = false;
                }
                if threshold_trace.len() < TrainResult::TRACE_STEPS {
                    threshold_trace.push(values);
                }
            }

            match eng {
                Engine::Legacy {
                    weight_opt,
                    thresh_opt,
                } => {
                    weight_opt.set_lr(weight_sched.at(step));
                    thresh_opt.set_lr(thresh_sched.at(step));
                    let mut params = g.params_mut();
                    let mut weights: Vec<&mut tqt_nn::Param> = Vec::new();
                    let mut thresholds: Vec<&mut tqt_nn::Param> = Vec::new();
                    for p in params.drain(..) {
                        if p.kind == ParamKind::Threshold {
                            thresholds.push(p);
                        } else {
                            weights.push(p);
                        }
                    }
                    weight_opt.step(&mut weights);
                    thresh_opt.step(&mut thresholds);
                }
                Engine::Planned {
                    arena,
                    weight_opt,
                    thresh_opt,
                    ..
                } => {
                    weight_opt.set_lr(weight_sched.at(step));
                    thresh_opt.set_lr(thresh_sched.at(step));
                    weight_opt.step(
                        arena,
                        &[ParamKind::Weight, ParamKind::Bias, ParamKind::BatchNorm],
                    );
                    // Thresholds are authoritative on the graph (the
                    // freezer and calibration mutate it): push the
                    // values/gradients/flags in, step, pull the updated
                    // values back out.
                    sync_thresholds_to_arena(g, arena);
                    thresh_opt.step(arena, &[ParamKind::Threshold]);
                    sync_thresholds_from_arena(g, arena);
                }
            }
            step += 1;

            if step.is_multiple_of(hyper.val_every) {
                eng.flush(g);
                let (top1, top5, loss) = evaluate(g, val_data, hyper.batch);
                let point = ValPoint {
                    step,
                    epoch: step as f32 / steps_per_epoch as f32,
                    loss,
                    top1,
                    top5,
                };
                history.push(point);
                if best.as_ref().map(|(b, _)| top1 > b.top1).unwrap_or(true) {
                    best = Some((point, g.state_dict()));
                }
            }
        }
    }
    // Final validation in case val_every did not divide the step count.
    if history.last().map(|p| p.step != step).unwrap_or(true) {
        if let Some(eng) = &engine {
            eng.flush(g);
        }
        let (top1, top5, loss) = evaluate(g, val_data, hyper.batch);
        let point = ValPoint {
            step,
            epoch: step as f32 / steps_per_epoch as f32,
            loss,
            top1,
            top5,
        };
        history.push(point);
        if best.as_ref().map(|(b, _)| top1 > b.top1).unwrap_or(true) {
            best = Some((point, g.state_dict()));
        }
    }

    let (best_point, best_state) = best.expect("at least one validation ran");
    g.load_state_dict(&best_state);
    let threshold_final: Vec<f32> = trainable_tids
        .iter()
        .map(|&i| g.thresholds()[i].log2_t())
        .collect();
    TrainResult {
        best: best_point,
        history,
        threshold_names,
        threshold_init,
        threshold_final,
        threshold_trace,
        steps_run: step,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tqt_data::{train_val, SynthConfig};
    use tqt_graph::{quantize_graph, transforms, QuantizeOptions, WeightBits};
    use tqt_models::{ModelKind, INPUT_DIMS};

    fn tiny_data() -> (Dataset, Dataset) {
        let cfg = SynthConfig {
            classes: 10,
            image_size: 16,
            noise: 0.1,
            seed: 5,
        };
        train_val(&cfg, 320, 100)
    }

    #[test]
    fn fp32_training_learns() {
        let (train_d, val_d) = tiny_data();
        let mut g = ModelKind::DarkNet.build(1);
        let mut hyper = TrainHyper::pretrain(10);
        hyper.epochs = 4;
        hyper.batch = 32;
        let result = train(&mut g, &train_d, &val_d, &hyper);
        assert!(
            result.best.top1 > 0.4,
            "FP32 training should beat 10% chance easily, got {}",
            result.best.top1
        );
        assert!(!result.history.is_empty());
    }

    #[test]
    fn quantized_training_with_thresholds_runs() {
        let (train_d, val_d) = tiny_data();
        let mut g = ModelKind::DarkNet.build(2);
        // Quick FP32 warmup so quantization has realistic weights.
        let mut h = TrainHyper::pretrain(10);
        h.epochs = 2;
        train(&mut g, &train_d, &val_d, &h);
        let mut dims = INPUT_DIMS;
        dims[2] = 16;
        dims[3] = 16;
        transforms::optimize(&mut g, &dims);
        quantize_graph(&mut g, QuantizeOptions::retrain_wt_th(WeightBits::Int8));
        let calib = tqt_data::calibration_batch(&val_d, 50, 3);
        g.calibrate(&calib);
        let mut h = TrainHyper::retrain(10);
        h.epochs = 2;
        h.freeze_start = 5;
        let result = train(&mut g, &train_d, &val_d, &h);
        assert!(result.best.top1 > 0.3, "quantized retraining collapsed: {}", result.best.top1);
        assert!(!result.threshold_names.is_empty());
        assert_eq!(result.threshold_init.len(), result.threshold_final.len());
        assert!(!result.threshold_trace.is_empty());
        // Freezing should have frozen at least one threshold over 2 epochs.
        let frozen = g
            .thresholds()
            .iter()
            .filter(|t| t.mode == tqt_graph::ThresholdMode::Trained && !t.param.trainable)
            .count();
        assert!(frozen > 0, "expected some thresholds frozen");
    }

    #[test]
    fn evaluate_is_deterministic() {
        let (_, val_d) = tiny_data();
        let mut g = ModelKind::VggA.build(3);
        // VggA expects 32x32 input; rebuild data at 32.
        let cfg = SynthConfig::default();
        let (_, val32) = train_val(&cfg, 32, 64);
        let a = evaluate(&mut g, &val32, 16);
        let b = evaluate(&mut g, &val32, 16);
        assert_eq!(a, b);
        let _ = val_d;
    }

    #[test]
    fn deviations_computed_from_ceil() {
        let r = TrainResult {
            best: ValPoint {
                step: 0,
                epoch: 0.0,
                loss: 0.0,
                top1: 0.0,
                top5: 0.0,
            },
            history: vec![],
            threshold_names: vec!["a".into(), "b".into()],
            threshold_init: vec![0.2, -1.6],
            threshold_final: vec![-0.9, -1.2],
            threshold_trace: vec![],
            steps_run: 0,
        };
        // ceil(0.2)=1 -> ceil(-0.9)=0 => -1 ; ceil(-1.6)=-1 -> ceil(-1.2)=-1 => 0
        assert_eq!(r.threshold_deviations(), vec![-1, 0]);
    }
}
