//! Distribution and threshold reporting for Figures 5, 6 and 10: per-layer
//! weight/activation histograms before and after TQT retraining, with the
//! initialized and trained raw thresholds.

use tqt_graph::{Graph, Op, ThresholdMode};
use tqt_nn::{Mode, ParamKind};
use tqt_tensor::Tensor;

/// A simple symmetric histogram of a tensor for plotting.
#[derive(Debug, Clone, PartialEq)]
pub struct DistHist {
    /// Bin edges lower bound (symmetric range `[-max, max]`).
    pub max_abs: f32,
    /// Counts over `bins` equal-width bins spanning `[-max_abs, max_abs]`.
    pub counts: Vec<u32>,
}

impl DistHist {
    /// Builds a histogram with `bins` bins.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or the tensor is empty.
    pub fn of(t: &Tensor, bins: usize) -> Self {
        assert!(bins > 0, "need at least one bin");
        assert!(!t.is_empty(), "histogram of empty tensor");
        let max_abs = t.abs_max().max(f32::MIN_POSITIVE);
        let mut counts = vec![0u32; bins];
        let scale = bins as f32 / (2.0 * max_abs);
        for &v in t.data() {
            let idx = (((v + max_abs) * scale) as usize).min(bins - 1);
            counts[idx] += 1;
        }
        DistHist { max_abs, counts }
    }

    /// Serializes as `bin_center:count` pairs for CSV output.
    pub fn to_csv_cells(&self) -> String {
        let bins = self.counts.len();
        let width = 2.0 * self.max_abs / bins as f32;
        self.counts
            .iter()
            .enumerate()
            .map(|(i, c)| {
                let center = -self.max_abs + (i as f32 + 0.5) * width;
                format!("{center:.5}:{c}")
            })
            .collect::<Vec<_>>()
            .join(";")
    }
}

/// Per-quantized-layer report entry (one panel of Figure 5 / 10).
#[derive(Debug, Clone)]
pub struct LayerDist {
    /// Threshold parameter name.
    pub name: String,
    /// Quantizer bit-width.
    pub bits: u32,
    /// Raw threshold `t = 2^(log2 t)` at the given capture point.
    pub raw_threshold: f32,
    /// Histogram of the tensor the quantizer sees.
    pub hist: DistHist,
}

/// Captures the distribution seen by every quantizer in a quantized graph:
/// weight quantizers report the (full-precision) weight tensor, activation
/// quantizers the activation produced by their input node for `sample`.
///
/// # Panics
///
/// Panics if the graph is not quantized/calibrated.
pub fn capture_distributions(g: &mut Graph, sample: &Tensor, bins: usize) -> Vec<LayerDist> {
    // A training-mode forward retains per-node activations.
    let _ = g.forward(sample, Mode::Train);
    let acts: Vec<Tensor> = g.activations().to_vec();
    let mut out = Vec::new();
    for id in 0..g.len() {
        // Activation quantizers: histogram of the input activation.
        if let Op::Quant { tid } = g.node(id).op {
            let input = g.node(id).inputs[0];
            let ts = &g.thresholds()[tid];
            if ts.mode == ThresholdMode::Trained {
                out.push(LayerDist {
                    name: ts.param.name.clone(),
                    bits: ts.spec.bits(),
                    raw_threshold: 2f32.powf(ts.log2_t()),
                    hist: DistHist::of(&acts[input], bins),
                });
            }
        }
        // Weight quantizers: histogram of the weights.
        if let Some(wq) = &g.node(id).wq {
            let tid = wq.tid;
            let ts = &g.thresholds()[tid];
            if ts.mode != ThresholdMode::Trained {
                continue;
            }
            let name = ts.param.name.clone();
            let bits_ = ts.spec.bits();
            let raw_t = 2f32.powf(ts.log2_t());
            let node = g.node_mut(id);
            let w = tqt_graph::ir::op_params_mut(&mut node.op)
                .into_iter()
                .find(|p| p.kind == ParamKind::Weight)
                .expect("weight quantizer without weights");
            out.push(LayerDist {
                name,
                bits: bits_,
                raw_threshold: raw_t,
                hist: DistHist::of(&w.value, bins),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tqt_graph::{quantize_graph, transforms, QuantizeOptions, WeightBits};
    use tqt_models::{ModelKind, INPUT_DIMS};
    use tqt_tensor::init;

    #[test]
    fn histogram_counts_all_values() {
        let t = Tensor::from_slice(&[-1.0, -0.5, 0.0, 0.5, 1.0]);
        let h = DistHist::of(&t, 4);
        assert_eq!(h.counts.iter().sum::<u32>(), 5);
        assert_eq!(h.max_abs, 1.0);
    }

    #[test]
    fn csv_cells_parse_back() {
        let t = Tensor::from_slice(&[-1.0, 1.0]);
        let h = DistHist::of(&t, 2);
        let cells = h.to_csv_cells();
        assert_eq!(cells.split(';').count(), 2);
        assert!(cells.contains(':'));
    }

    #[test]
    fn capture_covers_all_trained_quantizers() {
        let mut g = ModelKind::MobileNetV1.build(1);
        transforms::optimize(&mut g, &INPUT_DIMS);
        quantize_graph(&mut g, QuantizeOptions::retrain_wt_th(WeightBits::Int8));
        let mut rng = init::rng(9);
        let x = init::normal([2, 3, 32, 32], 0.0, 1.0, &mut rng);
        g.calibrate(&x);
        let dists = capture_distributions(&mut g, &x, 32);
        let trained = g
            .thresholds()
            .iter()
            .filter(|t| t.mode == ThresholdMode::Trained)
            .count();
        assert_eq!(dists.len(), trained);
        for d in &dists {
            assert!(d.raw_threshold > 0.0);
            assert!(d.hist.counts.iter().sum::<u32>() > 0);
        }
    }
}
