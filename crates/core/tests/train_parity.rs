//! Planned-vs-legacy trainer bit-identity: `TrainHyper::planned` must be
//! a pure performance switch. Full `train()` runs — Adam for both
//! parameter groups, staircase LR decay, batch-norm statistic freezing,
//! incremental threshold freezing, validation with best-checkpoint
//! restore — on the planned slot-reuse executor and on the allocating
//! legacy path must produce bit-equal validation histories, threshold
//! traces, and final parameters, at 1 and 4 threads.

use tqt::trainer::train;
use tqt::{TrainHyper, TrainResult};
use tqt_data::{train_val, Dataset, SynthConfig};
use tqt_graph::{quantize_graph, transforms, Graph, QuantizeOptions, WeightBits};
use tqt_models::{ModelKind, INPUT_DIMS};
use tqt_rt::pool;

fn tiny_data() -> (Dataset, Dataset) {
    let cfg = SynthConfig {
        classes: 10,
        image_size: 16,
        noise: 0.1,
        seed: 5,
    };
    train_val(&cfg, 320, 100)
}

/// Builds the run's graph: FP32 DarkNet (keeps batch norms), optionally
/// taken through the optimize/quantize/calibrate pipeline the real
/// retraining flow uses.
fn build_graph(quantized: bool, val_d: &Dataset) -> Graph {
    let mut g = ModelKind::DarkNet.build(2);
    if quantized {
        let mut dims = INPUT_DIMS;
        dims[2] = 16;
        dims[3] = 16;
        transforms::optimize(&mut g, &dims);
        quantize_graph(&mut g, QuantizeOptions::retrain_wt_th(WeightBits::Int8));
        let calib = tqt_data::calibration_batch(val_d, 50, 3);
        g.calibrate(&calib);
    }
    g
}

fn run(planned: bool, quantized: bool, threads: usize) -> (TrainResult, Graph) {
    pool::set_threads(threads);
    let (train_d, val_d) = tiny_data();
    let mut g = build_graph(quantized, &val_d);
    let mut h = if quantized {
        let mut h = TrainHyper::retrain(10);
        h.freeze_start = 5;
        h
    } else {
        TrainHyper::pretrain(10)
    };
    h.epochs = 2;
    h.batch = 32;
    // Exercise the mid-run batch-norm statistic freeze on the FP32 run.
    if !quantized {
        h.bn_freeze_after = 10;
    }
    h.planned = planned;
    let r = train(&mut g, &train_d, &val_d, &h);
    pool::set_threads(0);
    (r, g)
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

fn assert_identical(quantized: bool, threads: usize) {
    let (rl, mut gl) = run(false, quantized, threads);
    let (rp, mut gp) = run(true, quantized, threads);
    let tag = if quantized { "quantized" } else { "fp32" };

    assert_eq!(rl.steps_run, rp.steps_run, "{tag}/{threads}t: step counts");
    assert_eq!(
        rl.history.len(),
        rp.history.len(),
        "{tag}/{threads}t: history lengths"
    );
    for (a, b) in rl.history.iter().zip(&rp.history) {
        assert_eq!(a.step, b.step, "{tag}/{threads}t: validation step");
        assert_eq!(
            a.loss.to_bits(),
            b.loss.to_bits(),
            "{tag}/{threads}t: validation loss at step {}",
            a.step
        );
        assert_eq!(
            (a.top1.to_bits(), a.top5.to_bits()),
            (b.top1.to_bits(), b.top5.to_bits()),
            "{tag}/{threads}t: accuracy at step {}",
            a.step
        );
    }
    assert_eq!(
        bits(&rl.threshold_final),
        bits(&rp.threshold_final),
        "{tag}/{threads}t: final thresholds"
    );
    for (i, (a, b)) in rl.threshold_trace.iter().zip(&rp.threshold_trace).enumerate() {
        assert_eq!(bits(a), bits(b), "{tag}/{threads}t: threshold trace row {i}");
    }
    // Best-checkpoint parameters, restored onto the graphs by train().
    let lp = gl.params_mut();
    let pp = gp.params_mut();
    assert_eq!(lp.len(), pp.len(), "{tag}/{threads}t: parameter counts");
    for (a, b) in lp.iter().zip(&pp) {
        assert_eq!(a.name, b.name, "{tag}/{threads}t: parameter order");
        assert_eq!(
            bits(a.value.data()),
            bits(b.value.data()),
            "{tag}/{threads}t: checkpoint value of {}",
            a.name
        );
    }
}

#[test]
fn planned_training_is_bit_identical_fp32_serial() {
    assert_identical(false, 1);
}

#[test]
fn planned_training_is_bit_identical_fp32_four_threads() {
    assert_identical(false, 4);
}

#[test]
fn planned_training_is_bit_identical_quantized_serial() {
    assert_identical(true, 1);
}

#[test]
fn planned_training_is_bit_identical_quantized_four_threads() {
    assert_identical(true, 4);
}
