//! Fork-join parallelism on a **persistent pool of parked workers**.
//!
//! This replaces `rayon` in the matmul/conv hot paths. Earlier revisions
//! spawned fresh OS threads per parallel region via [`std::thread::scope`];
//! at training-loop frequencies (thousands of regions per second) the
//! spawn/join cost dominated small kernels. The pool here is created
//! lazily on the first parallel region and lives for the rest of the
//! process: workers park on a `Condvar` and wake only when a region is
//! submitted.
//!
//! Execution model: a *region* is a fixed number of independent *blocks*.
//! The submitting thread pushes the region onto a shared queue, wakes the
//! workers, and then participates itself; every participant claims block
//! indices from an atomic counter until the region is exhausted, then the
//! submitter waits for the last in-flight block to finish. Because blocks
//! are claimed dynamically the pool load-balances across regions of any
//! shape, and because the submitter always participates, nested regions
//! (a parallel kernel called from inside a worker) cannot deadlock: the
//! inner submitter drains its own region even when every other worker is
//! busy.
//!
//! **Bit-identity guarantee:** every `par_*` entry point assigns each
//! output chunk to exactly one closure invocation and performs no
//! cross-chunk reduction, so *which* thread runs a chunk cannot affect the
//! result: parallel and serial execution are bit-identical. The `serial`
//! cargo feature (or [`force_serial`] at runtime) collapses everything
//! onto the calling thread for deterministic debugging;
//! `crates/tensor/tests/parallel_parity.rs` verifies the guarantee.
//!
//! A panic inside a region closure is caught on the worker, forwarded to
//! the submitting thread, and re-thrown there after every other block of
//! the region has completed (the closure may borrow the submitter's
//! stack). Workers survive panics — the pool never wedges
//! (`crates/rt/tests/pool_stress.rs`).
//!
//! Thread count: `TQT_RT_THREADS` in the environment, or [`set_threads`]
//! at runtime (useful for exercising the parallel paths on single-core
//! CI machines), or [`std::thread::available_parallelism`].

use crate::hb;
use crate::sched;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

static FORCE_SERIAL: AtomicBool = AtomicBool::new(false);

/// Runtime thread-count override; 0 means "auto" (env, then hardware).
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Forces (or un-forces) serial execution at runtime. Used by tests to
/// compare parallel and serial results inside one process; the `serial`
/// cargo feature is the static equivalent.
pub fn force_serial(on: bool) {
    FORCE_SERIAL.store(on, Ordering::SeqCst);
}

/// Whether `par_*` calls currently run on the calling thread.
pub fn is_serial() -> bool {
    cfg!(feature = "serial") || FORCE_SERIAL.load(Ordering::SeqCst)
}

/// Overrides the number of threads parallel regions may use (`0` restores
/// the automatic choice). Takes effect on the next region; the pool grows
/// lazily but never shrinks, so raising and lowering the count is cheap.
/// Tests use this to exercise real multi-thread schedules on single-core
/// machines.
pub fn set_threads(n: usize) {
    THREAD_OVERRIDE.store(n, Ordering::SeqCst);
}

/// Number of threads a parallel region may use (including the caller).
pub fn threads() -> usize {
    if is_serial() {
        return 1;
    }
    let o = THREAD_OVERRIDE.load(Ordering::SeqCst);
    if o > 0 {
        return o;
    }
    static ENV: OnceLock<usize> = OnceLock::new();
    let env = *ENV.get_or_init(|| {
        std::env::var("TQT_RT_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(0)
    });
    if env > 0 {
        return env;
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// How many blocks a region is split into per participating thread.
/// Oversplitting (>1) lets dynamic claiming smooth out per-block cost
/// variance without shrinking blocks below a useful grain.
const BLOCKS_PER_THREAD: usize = 4;

/// A type-erased block closure. The raw pointer outlives every
/// dereference because [`run_region`] does not return until all claimed
/// blocks have completed.
#[derive(Clone, Copy)]
struct JobPtr(*const (dyn Fn(usize) + Sync));
// SAFETY: the pointee is `Sync` (shared &-calls from any thread are fine)
// and `run_region` joins the region before the borrow ends.
unsafe impl Send for JobPtr {}
unsafe impl Sync for JobPtr {}

type PanicPayload = Box<dyn std::any::Any + Send + 'static>;

/// Completion state of a region, guarded by its mutex.
struct RegionDone {
    done: usize,
    panic: Option<PanicPayload>,
}

/// One parallel region: `nblocks` independent block indices to hand to
/// `job`, plus claim/completion bookkeeping.
struct Region {
    job: JobPtr,
    nblocks: usize,
    next: AtomicUsize,
    state: Mutex<RegionDone>,
    finished: Condvar,
}

impl Region {
    /// Runs one claimed block, recording a panic instead of unwinding
    /// through the pool, and signals the submitter on the last block.
    fn run_block(&self, idx: usize) {
        // SAFETY: `run_region` keeps the closure alive until `done ==
        // nblocks`, and this block counts toward `done` only after the
        // call returns or panics.
        let job = unsafe { &*self.job.0 };
        let result = catch_unwind(AssertUnwindSafe(|| job(idx)));
        let mut st = self.state.lock().unwrap(); // tqt:allow(unwrap): a poisoned lock means a worker already panicked
        if let Err(p) = result {
            st.panic.get_or_insert(p);
        }
        st.done += 1;
        if sched::is_last_completion(st.done, self.nblocks) {
            self.finished.notify_all();
        }
    }

    /// Claims and runs blocks until the region is exhausted. The claim
    /// decision is [`sched::try_claim`] — the function the bounded model
    /// checker proves exactly-once/deadlock-free.
    fn participate(&self) {
        while let Some(idx) = sched::try_claim(&self.next, self.nblocks) {
            self.run_block(idx);
        }
    }
}

/// Shared pool state: a FIFO of open regions and the condvar parked
/// workers wait on.
struct Shared {
    queue: Mutex<VecDeque<Arc<Region>>>,
    work: Condvar,
    /// Number of worker threads spawned so far (grow-only).
    spawned: Mutex<usize>,
}

fn pool() -> &'static Arc<Shared> {
    static POOL: OnceLock<Arc<Shared>> = OnceLock::new();
    POOL.get_or_init(|| {
        Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            work: Condvar::new(),
            spawned: Mutex::new(0),
        })
    })
}

/// Ensures at least `target` parked workers exist (in addition to
/// whatever thread submits regions).
fn ensure_workers(shared: &Arc<Shared>, target: usize) {
    let mut spawned = shared.spawned.lock().unwrap(); // tqt:allow(unwrap): a poisoned lock means a worker already panicked
    while *spawned < target {
        let shared = Arc::clone(shared);
        std::thread::Builder::new()
            .name(format!("tqt-rt-worker-{spawned}"))
            .spawn(move || worker_loop(&shared))
            .expect("failed to spawn pool worker"); // tqt:allow(expect): thread spawn failure is unrecoverable at startup
        *spawned += 1;
    }
}

/// Worker main loop: park until a region is queued, then help drain it.
/// Exhausted regions (all blocks claimed) are popped; completion is
/// tracked by the region itself, so popping does not wait for in-flight
/// blocks.
fn worker_loop(shared: &Shared) {
    loop {
        let region = {
            let mut q = shared.queue.lock().unwrap(); // tqt:allow(unwrap): a poisoned lock means a worker already panicked
            loop {
                if let Some(front) = q.front() {
                    if !sched::region_exhausted(&front.next, front.nblocks) {
                        break Arc::clone(front);
                    }
                    q.pop_front();
                    continue;
                }
                q = shared.work.wait(q).unwrap(); // tqt:allow(unwrap): condvar wait only fails on poisoning
            }
        };
        region.participate();
    }
}

/// Number of worker threads the pool has spawned so far in this process
/// (excluding submitting threads). Grow-only; used by the
/// `serial_no_spawn` regression test to prove that serial-mode `par_*`
/// calls never touch the pool.
pub fn spawned_workers() -> usize {
    *pool().spawned.lock().unwrap() // tqt:allow(unwrap): a poisoned lock means a worker already panicked
}

/// Executes `job(0..nblocks)` across the pool, submitting thread
/// included, and returns when every block has completed. Re-throws the
/// first panic raised by a block.
///
/// With one effective thread (`serial` feature, [`force_serial`],
/// `set_threads(1)`, `TQT_RT_THREADS=1`, or a single-core machine) this
/// is a plain loop on the calling thread: no worker is spawned, no lock
/// taken, no condvar signalled.
fn run_region(nblocks: usize, job: &(dyn Fn(usize) + Sync)) {
    if nblocks == 0 {
        return;
    }
    let helpers = threads().saturating_sub(1);
    if helpers == 0 || nblocks == 1 {
        for i in 0..nblocks {
            let _scope = hb::block_scope();
            job(i);
        }
        return;
    }
    let shared = pool();
    ensure_workers(shared, helpers);
    /// Erases the borrow lifetime of a region closure so it can cross
    /// into the pool's `'static` worker threads.
    fn erase<'a>(
        job: &'a (dyn Fn(usize) + Sync + 'a),
    ) -> *const (dyn Fn(usize) + Sync + 'static) {
        // SAFETY: fat-pointer layout is lifetime-independent. The pointer
        // is only dereferenced by blocks counted in `done`, and
        // `run_region` does not return until `done == nblocks`, so the
        // borrow outlives every dereference.
        unsafe { std::mem::transmute(job) }
    }
    // Every block body runs inside a happens-before block scope so the
    // sanitizer can pin scratch checkouts to the block that made them.
    let wrapped = |i: usize| {
        let _scope = hb::block_scope();
        job(i);
    };
    let region = Arc::new(Region {
        job: JobPtr(erase(&wrapped)),
        nblocks,
        next: AtomicUsize::new(0),
        state: Mutex::new(RegionDone {
            done: 0,
            panic: None,
        }),
        finished: Condvar::new(),
    });
    shared.queue.lock().unwrap().push_back(Arc::clone(&region)); // tqt:allow(unwrap): a poisoned lock means a worker already panicked
    shared.work.notify_all();
    region.participate();
    let mut st = region.state.lock().unwrap(); // tqt:allow(unwrap): a poisoned lock means a worker already panicked
    while st.done < nblocks {
        st = region.finished.wait(st).unwrap(); // tqt:allow(unwrap): condvar wait only fails on poisoning
    }
    if let Some(p) = st.panic.take() {
        drop(st);
        resume_unwind(p);
    }
}

/// A `Send`/`Sync` raw-pointer wrapper for handing a buffer base address
/// to region closures that carve disjoint sub-slices out of it.
struct SendPtr<T>(*mut T);
// Manual Copy/Clone: the derived impls would demand `T: Copy`, but the
// wrapper copies only the pointer.
impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}
impl<T> SendPtr<T> {
    /// Accessor used inside region closures: going through a method makes
    /// the closure capture the `Sync` wrapper rather than (via precise
    /// field capture) the raw pointer itself.
    fn get(self) -> *mut T {
        self.0
    }
}
// SAFETY: every user derives disjoint slices per block index, and the
// region joins before the underlying borrow ends.
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

/// Calls `f(chunk_index, chunk)` for every `chunk_size`-sized chunk of
/// `data` (last chunk may be shorter), fanning the chunks out across the
/// worker pool. Equivalent to
/// `data.par_chunks_mut(chunk_size).enumerate().for_each(...)`.
///
/// # Panics
///
/// Panics if `chunk_size == 0`, or re-throws the first panic raised by
/// `f` (after all other chunks have completed).
pub fn par_chunks_mut<T, F>(data: &mut [T], chunk_size: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(chunk_size > 0, "chunk_size must be positive");
    let len = data.len();
    let nchunks = len.div_ceil(chunk_size);
    let workers = threads();
    if workers <= 1 || nchunks < 2 {
        for (i, chunk) in data.chunks_mut(chunk_size).enumerate() {
            f(i, chunk);
        }
        return;
    }
    // Contiguous runs of chunks per block, oversplit for load balance.
    let per = nchunks.div_ceil(workers * BLOCKS_PER_THREAD).max(1);
    let nblocks = nchunks.div_ceil(per);
    let base = SendPtr(data.as_mut_ptr());
    let ranges = hb::RangeLog::new();
    run_region(nblocks, &|b| {
        let first = b * per;
        let last = (first + per).min(nchunks);
        for ci in first..last {
            let start = ci * chunk_size;
            let end = (start + chunk_size).min(len);
            ranges.record(start, end);
            // SAFETY: chunk `ci` covers `[start, end)`; chunk indices are
            // partitioned over blocks, each run by exactly one closure
            // invocation, so the sub-slices are disjoint. The region
            // joins before `data`'s borrow ends.
            let chunk =
                unsafe { std::slice::from_raw_parts_mut(base.get().add(start), end - start) };
            f(ci, chunk);
        }
    });
    // The region has joined: the carved ranges must tile [0, len).
    ranges.check("par_chunks_mut", len);
}

/// Lockstep dual-buffer variant of [`par_chunks_mut`]: carves chunk `i`
/// of `a` (size `ca`) and chunk `i` of `b` (size `cb`) and hands both to
/// `f(i, a_chunk, b_chunk)`. The two buffers must tile into the same
/// number of chunks. Used by kernels that pair each output chunk with a
/// private scratch chunk (e.g. per-image conv output + im2col workspace)
/// so the scratch is plan-owned rather than checked out per call.
///
/// # Panics
///
/// Panics if either chunk size is zero or the chunk counts differ, or
/// re-throws the first panic raised by `f`.
pub fn par_chunks_mut2<A, B, F>(a: &mut [A], ca: usize, b: &mut [B], cb: usize, f: F)
where
    A: Send,
    B: Send,
    F: Fn(usize, &mut [A], &mut [B]) + Sync,
{
    assert!(ca > 0 && cb > 0, "chunk sizes must be positive");
    let (la, lb) = (a.len(), b.len());
    let nchunks = la.div_ceil(ca);
    assert_eq!(
        nchunks,
        lb.div_ceil(cb),
        "par_chunks_mut2: buffers disagree on chunk count"
    );
    let workers = threads();
    if workers <= 1 || nchunks < 2 {
        for (i, (cha, chb)) in a.chunks_mut(ca).zip(b.chunks_mut(cb)).enumerate() {
            f(i, cha, chb);
        }
        return;
    }
    let per = nchunks.div_ceil(workers * BLOCKS_PER_THREAD).max(1);
    let nblocks = nchunks.div_ceil(per);
    let base_a = SendPtr(a.as_mut_ptr());
    let base_b = SendPtr(b.as_mut_ptr());
    let ranges_a = hb::RangeLog::new();
    let ranges_b = hb::RangeLog::new();
    run_region(nblocks, &|blk| {
        let first = blk * per;
        let last = (first + per).min(nchunks);
        for ci in first..last {
            let (sa, ea) = (ci * ca, ((ci + 1) * ca).min(la));
            let (sb, eb) = (ci * cb, ((ci + 1) * cb).min(lb));
            ranges_a.record(sa, ea);
            ranges_b.record(sb, eb);
            // SAFETY: chunk indices are partitioned over blocks, each run
            // by exactly one closure invocation, so the sub-slices of each
            // buffer are disjoint. The region joins before either borrow
            // ends.
            let cha = unsafe { std::slice::from_raw_parts_mut(base_a.get().add(sa), ea - sa) };
            let chb = unsafe { std::slice::from_raw_parts_mut(base_b.get().add(sb), eb - sb) };
            f(ci, cha, chb);
        }
    });
    ranges_a.check("par_chunks_mut2/a", la);
    ranges_b.check("par_chunks_mut2/b", lb);
}

/// Lockstep four-buffer variant of [`par_chunks_mut`]: all four buffers
/// share one length and one chunk size; `f(i, a_i, b_i, c_i, d_i)` gets
/// the `i`-th chunk of each. Built for the pooled optimizer update, where
/// parameter values, gradients and both moment vectors advance together
/// over a contiguous arena in fixed thread-count-independent blocks.
///
/// # Panics
///
/// Panics if `chunk_size == 0` or the lengths differ, or re-throws the
/// first panic raised by `f`.
pub fn par_chunks_mut4<T, F>(
    a: &mut [T],
    b: &mut [T],
    c: &mut [T],
    d: &mut [T],
    chunk_size: usize,
    f: F,
) where
    T: Send,
    F: Fn(usize, &mut [T], &mut [T], &mut [T], &mut [T]) + Sync,
{
    assert!(chunk_size > 0, "chunk_size must be positive");
    let len = a.len();
    assert!(
        b.len() == len && c.len() == len && d.len() == len,
        "par_chunks_mut4: buffers disagree on length"
    );
    let nchunks = len.div_ceil(chunk_size);
    let workers = threads();
    if workers <= 1 || nchunks < 2 {
        for i in 0..nchunks {
            let (s, e) = (i * chunk_size, ((i + 1) * chunk_size).min(len));
            f(i, &mut a[s..e], &mut b[s..e], &mut c[s..e], &mut d[s..e]);
        }
        return;
    }
    let per = nchunks.div_ceil(workers * BLOCKS_PER_THREAD).max(1);
    let nblocks = nchunks.div_ceil(per);
    let bases = [
        SendPtr(a.as_mut_ptr()),
        SendPtr(b.as_mut_ptr()),
        SendPtr(c.as_mut_ptr()),
        SendPtr(d.as_mut_ptr()),
    ];
    let ranges = hb::RangeLog::new();
    run_region(nblocks, &|blk| {
        let first = blk * per;
        let last = (first + per).min(nchunks);
        for ci in first..last {
            let (s, e) = (ci * chunk_size, ((ci + 1) * chunk_size).min(len));
            ranges.record(s, e);
            // SAFETY: chunk indices are partitioned over blocks, each run
            // by exactly one closure invocation, so the per-buffer
            // sub-slices are disjoint; the four buffers are distinct
            // borrows. The region joins before any borrow ends.
            let [cha, chb, chc, chd] = bases.map(|p| unsafe {
                std::slice::from_raw_parts_mut(p.get().add(s), e - s)
            });
            f(ci, cha, chb, chc, chd);
        }
    });
    ranges.check("par_chunks_mut4", len);
}

/// Row-wise parallel iteration over a `[rows, row_len]` row-major buffer:
/// calls `f(row_index, row)` for every row. Thin wrapper over
/// [`par_chunks_mut`] named for the common tensor-kernel case.
pub fn par_iter_rows<T, F>(data: &mut [T], row_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    par_chunks_mut(data, row_len, f);
}

/// Computes `(0..n).map(f).collect()` with the index range fanned out
/// across the worker pool. Equivalent to
/// `(0..n).into_par_iter().map(f).collect()`.
pub fn par_map<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let workers = threads();
    if workers <= 1 || n < 2 {
        return (0..n).map(f).collect();
    }
    let per = n.div_ceil(workers * BLOCKS_PER_THREAD).max(1);
    let nblocks = n.div_ceil(per);
    // Each block collects its contiguous index range into its own Vec;
    // the parts are stitched in order afterwards. (No per-item
    // `Option<R>` round-trip: the only post-processing is `append`.)
    let mut parts: Vec<Vec<R>> = (0..nblocks).map(|_| Vec::new()).collect();
    {
        let base = SendPtr(parts.as_mut_ptr());
        let f = &f;
        let ranges = hb::RangeLog::new();
        run_region(nblocks, &|b| {
            let lo = b * per;
            let hi = (lo + per).min(n);
            ranges.record(lo, hi);
            let out: Vec<R> = (lo..hi).map(f).collect();
            // SAFETY: slot `b` is written by exactly one block; the old
            // value is a valid (empty) Vec, so plain assignment drops it
            // correctly. The region joins before `parts` is read.
            unsafe { *base.get().add(b) = out };
        });
        // The region has joined: index ranges must tile [0, n).
        ranges.check("par_map", n);
    }
    let mut out = Vec::with_capacity(n);
    for part in &mut parts {
        out.append(part);
    }
    out
}

/// Deterministic block-structured reduction: splits `0..len` into
/// consecutive `block`-sized index ranges (the last may be shorter),
/// computes `f(block_index, range)` for each — fanned out across the
/// worker pool — and returns the partials **in block order**.
///
/// The caller picks a *fixed* block size (never derived from the thread
/// count), so the partition — and therefore any order-sensitive
/// reduction built on the partials, e.g. a floating-point sum folded
/// serially over the returned Vec — is identical no matter how many
/// threads participate. This is the "deterministic tree reduction"
/// primitive behind the parallel quantizer gradients.
///
/// # Panics
///
/// Panics if `block == 0`.
pub fn par_fold_blocks<R, F>(len: usize, block: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize, std::ops::Range<usize>) -> R + Sync,
{
    assert!(block > 0, "block size must be positive");
    let nblocks = len.div_ceil(block);
    par_map(nblocks, |b| {
        let lo = b * block;
        let hi = (lo + block).min(len);
        f(b, lo..hi)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_cover_everything_once() {
        let mut data = vec![0u32; 1003];
        par_chunks_mut(&mut data, 17, |i, chunk| {
            for (j, v) in chunk.iter_mut().enumerate() {
                *v = (i * 17 + j) as u32 + 1;
            }
        });
        for (k, &v) in data.iter().enumerate() {
            assert_eq!(v, k as u32 + 1);
        }
    }

    #[test]
    fn par_map_matches_serial_map() {
        let par: Vec<usize> = par_map(997, |i| i * i);
        let ser: Vec<usize> = (0..997).map(|i| i * i).collect();
        assert_eq!(par, ser);
    }

    #[test]
    fn serial_override_gives_identical_results() {
        let run = || {
            let mut data = vec![0.0f32; 4096];
            par_chunks_mut(&mut data, 64, |i, chunk| {
                for (j, v) in chunk.iter_mut().enumerate() {
                    *v = ((i * 64 + j) as f32).sin();
                }
            });
            data
        };
        let parallel = run();
        force_serial(true);
        let serial = run();
        force_serial(false);
        assert_eq!(parallel, serial);
    }

    #[test]
    fn empty_input_is_fine() {
        let mut data: Vec<u8> = vec![];
        par_chunks_mut(&mut data, 4, |_, _| panic!("no chunks expected"));
        let out: Vec<u8> = par_map(0, |_| 0);
        assert!(out.is_empty());
    }

    #[test]
    fn single_oversized_chunk() {
        let mut data = vec![1u8; 5];
        par_chunks_mut(&mut data, 100, |i, chunk| {
            assert_eq!(i, 0);
            assert_eq!(chunk.len(), 5);
            chunk.fill(2);
        });
        assert!(data.iter().all(|&v| v == 2));
    }

    #[test]
    #[should_panic(expected = "chunk_size must be positive")]
    fn zero_chunk_panics() {
        par_chunks_mut(&mut [0u8; 4], 0, |_, _| {});
    }

    #[test]
    fn fold_blocks_partition_is_thread_count_independent() {
        let data: Vec<f64> = (0..10_000).map(|i| (i as f64).sin()).collect();
        let sum = |parts: Vec<f64>| parts.iter().fold(0.0, |a, &b| a + b);
        let run = || {
            sum(par_fold_blocks(data.len(), 1024, |_, r| {
                data[r].iter().fold(0.0, |a, &b| a + b)
            }))
        };
        let parallel = run();
        force_serial(true);
        let serial = run();
        force_serial(false);
        // Bit-identical, not merely close: same partition, same order.
        assert_eq!(parallel.to_bits(), serial.to_bits());
    }

    #[test]
    fn fold_blocks_covers_ragged_tail() {
        let parts = par_fold_blocks(10, 4, |b, r| (b, r.len()));
        assert_eq!(parts, vec![(0, 4), (1, 4), (2, 2)]);
        assert!(par_fold_blocks(0, 4, |_, _| 0u8).is_empty());
    }

    #[test]
    fn chunks2_lockstep_pairs_match() {
        // a chunks of 8 pair with b chunks of 3; every element records
        // which chunk wrote it.
        let mut a = vec![0u32; 64];
        let mut b = vec![0u32; 24];
        par_chunks_mut2(&mut a, 8, &mut b, 3, |i, ca, cb| {
            ca.fill(i as u32 + 1);
            cb.fill(i as u32 + 1);
        });
        for (k, &v) in a.iter().enumerate() {
            assert_eq!(v, (k / 8) as u32 + 1);
        }
        for (k, &v) in b.iter().enumerate() {
            assert_eq!(v, (k / 3) as u32 + 1);
        }
    }

    #[test]
    #[should_panic(expected = "disagree on chunk count")]
    fn chunks2_rejects_mismatched_chunk_counts() {
        let (mut a, mut b) = (vec![0u8; 10], vec![0u8; 10]);
        par_chunks_mut2(&mut a, 2, &mut b, 5, |_, _, _| {});
    }

    #[test]
    fn chunks4_covers_all_four_buffers() {
        let mut bufs: Vec<Vec<u32>> = (0..4).map(|_| vec![0u32; 1003]).collect();
        let [a, b, c, d] = &mut bufs[..] else {
            unreachable!()
        };
        par_chunks_mut4(a, b, c, d, 17, |i, ca, cb, cc, cd| {
            for (j, (((va, vb), vc), vd)) in ca
                .iter_mut()
                .zip(cb.iter_mut())
                .zip(cc.iter_mut())
                .zip(cd.iter_mut())
                .enumerate()
            {
                let base = (i * 17 + j) as u32;
                *va = base + 1;
                *vb = base + 2;
                *vc = base + 3;
                *vd = base + 4;
            }
        });
        for (bi, buf) in bufs.iter().enumerate() {
            for (k, &v) in buf.iter().enumerate() {
                assert_eq!(v, k as u32 + bi as u32 + 1);
            }
        }
    }

    #[test]
    fn par_map_with_non_default_type() {
        // R without Default/Clone: ensure no construction tricks needed.
        struct Opaque(#[allow(dead_code)] String);
        let out = par_map(37, |i| Opaque(format!("v{i}")));
        assert_eq!(out.len(), 37);
    }
}
