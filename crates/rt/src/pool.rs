//! Scoped fork-join parallelism on [`std::thread::scope`].
//!
//! This replaces `rayon` in the matmul/conv hot paths. The design is
//! deliberately simple: work is split into contiguous blocks, one scoped
//! thread per block, joined before return. There is no work stealing —
//! the tensor kernels that use this have uniform per-item cost, so a
//! static partition is within noise of a stealing scheduler and keeps the
//! execution order (and therefore the floating-point results) trivially
//! deterministic.
//!
//! **Bit-identity guarantee:** every `par_*` entry point assigns each
//! output chunk to exactly one closure invocation and performs no
//! cross-chunk reduction, so parallel and serial execution produce
//! bit-identical results. The `serial` cargo feature (or
//! [`force_serial`] at runtime) collapses everything onto the calling
//! thread for deterministic debugging; `crates/tensor/tests/parallel_parity.rs`
//! verifies the guarantee.

use std::sync::atomic::{AtomicBool, Ordering};

static FORCE_SERIAL: AtomicBool = AtomicBool::new(false);

/// Forces (or un-forces) serial execution at runtime. Used by tests to
/// compare parallel and serial results inside one process; the `serial`
/// cargo feature is the static equivalent.
pub fn force_serial(on: bool) {
    FORCE_SERIAL.store(on, Ordering::SeqCst);
}

/// Whether `par_*` calls currently run on the calling thread.
pub fn is_serial() -> bool {
    cfg!(feature = "serial") || FORCE_SERIAL.load(Ordering::SeqCst)
}

/// Number of worker threads a parallel region may use.
pub fn threads() -> usize {
    if is_serial() {
        1
    } else {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    }
}

/// Minimum number of work items before spawning threads is worthwhile.
const MIN_ITEMS_PER_THREAD: usize = 2;

/// Calls `f(chunk_index, chunk)` for every `chunk_size`-sized chunk of
/// `data` (last chunk may be shorter), fanning the chunks out across
/// scoped threads. Equivalent to
/// `data.par_chunks_mut(chunk_size).enumerate().for_each(...)`.
///
/// # Panics
///
/// Panics if `chunk_size == 0`.
pub fn par_chunks_mut<T, F>(data: &mut [T], chunk_size: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(chunk_size > 0, "chunk_size must be positive");
    let nchunks = data.len().div_ceil(chunk_size.max(1));
    let workers = threads().min(nchunks / MIN_ITEMS_PER_THREAD.max(1)).max(1);
    if workers <= 1 {
        for (i, chunk) in data.chunks_mut(chunk_size).enumerate() {
            f(i, chunk);
        }
        return;
    }
    // Contiguous block of chunks per worker: worker w handles chunk
    // indices [w*per, min((w+1)*per, nchunks)).
    let per = nchunks.div_ceil(workers);
    let f = &f;
    std::thread::scope(|s| {
        for (w, block) in data.chunks_mut(per * chunk_size).enumerate() {
            s.spawn(move || {
                for (j, chunk) in block.chunks_mut(chunk_size).enumerate() {
                    f(w * per + j, chunk);
                }
            });
        }
    });
}

/// Row-wise parallel iteration over a `[rows, row_len]` row-major buffer:
/// calls `f(row_index, row)` for every row. Thin wrapper over
/// [`par_chunks_mut`] named for the common tensor-kernel case.
pub fn par_iter_rows<T, F>(data: &mut [T], row_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    par_chunks_mut(data, row_len, f);
}

/// Computes `(0..n).map(f).collect()` with the index range fanned out
/// across scoped threads. Equivalent to
/// `(0..n).into_par_iter().map(f).collect()`.
pub fn par_map<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let workers = threads().min(n / MIN_ITEMS_PER_THREAD.max(1)).max(1);
    if workers <= 1 {
        return (0..n).map(f).collect();
    }
    let per = n.div_ceil(workers);
    let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let f = &f;
    std::thread::scope(|s| {
        for (w, block) in out.chunks_mut(per).enumerate() {
            s.spawn(move || {
                for (j, slot) in block.iter_mut().enumerate() {
                    *slot = Some(f(w * per + j));
                }
            });
        }
    });
    out.into_iter()
        .map(|o| o.expect("par_map worker left a gap"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_cover_everything_once() {
        let mut data = vec![0u32; 1003];
        par_chunks_mut(&mut data, 17, |i, chunk| {
            for (j, v) in chunk.iter_mut().enumerate() {
                *v = (i * 17 + j) as u32 + 1;
            }
        });
        for (k, &v) in data.iter().enumerate() {
            assert_eq!(v, k as u32 + 1);
        }
    }

    #[test]
    fn par_map_matches_serial_map() {
        let par: Vec<usize> = par_map(997, |i| i * i);
        let ser: Vec<usize> = (0..997).map(|i| i * i).collect();
        assert_eq!(par, ser);
    }

    #[test]
    fn serial_override_gives_identical_results() {
        let run = || {
            let mut data = vec![0.0f32; 4096];
            par_chunks_mut(&mut data, 64, |i, chunk| {
                for (j, v) in chunk.iter_mut().enumerate() {
                    *v = ((i * 64 + j) as f32).sin();
                }
            });
            data
        };
        let parallel = run();
        force_serial(true);
        let serial = run();
        force_serial(false);
        assert_eq!(parallel, serial);
    }

    #[test]
    fn empty_input_is_fine() {
        let mut data: Vec<u8> = vec![];
        par_chunks_mut(&mut data, 4, |_, _| panic!("no chunks expected"));
        let out: Vec<u8> = par_map(0, |_| 0);
        assert!(out.is_empty());
    }

    #[test]
    fn single_oversized_chunk() {
        let mut data = vec![1u8; 5];
        par_chunks_mut(&mut data, 100, |i, chunk| {
            assert_eq!(i, 0);
            assert_eq!(chunk.len(), 5);
            chunk.fill(2);
        });
        assert!(data.iter().all(|&v| v == 2));
    }

    #[test]
    #[should_panic(expected = "chunk_size must be positive")]
    fn zero_chunk_panics() {
        par_chunks_mut(&mut [0u8; 4], 0, |_, _| {});
    }
}
