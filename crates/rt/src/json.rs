//! A minimal JSON value type with serialization and parsing.
//!
//! Replaces `serde_json` for the workspace's checkpoint and report files.
//! The subset implemented is exactly RFC 8259 JSON with two pragmatic
//! choices shared with `serde_json`'s default behavior:
//!
//! * numbers are stored as `f64` (every tensor value here is `f32`, which
//!   round-trips exactly through `f64` text);
//! * non-finite numbers serialize as `null` (JSON has no NaN/Inf), and
//!   `null` parses back as NaN when read as a number.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. `BTreeMap` keeps serialization diff-stable.
    Obj(BTreeMap<String, Json>),
}

/// Error produced by [`Json::parse`], with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub msg: String,
    /// Byte offset of the error.
    pub at: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

impl Json {
    /// Parses a complete JSON document (rejects trailing garbage).
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] describing the first malformed byte.
    pub fn parse(text: &str) -> Result<Json, ParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after value"));
        }
        Ok(v)
    }

    /// The value as a number, if it is one (`null` reads as NaN, the
    /// inverse of the non-finite serialization rule).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            Json::Null => Some(f64::NAN),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// The value as an object map, if it is an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(o) => Some(o),
            _ => None,
        }
    }

    /// Member lookup on objects: `j.get("key")`.
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_obj().and_then(|o| o.get(key))
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => f.write_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() {
                    // `{}` on f64 prints the shortest string that parses
                    // back to the same value, so round-trips are exact.
                    write!(f, "{n}")
                } else {
                    f.write_str("null")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    v.fmt(f)?;
                }
                f.write_str("]")
            }
            Json::Obj(map) => {
                f.write_str("{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    v.fmt(f)?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => f.write_fmt(format_args!("{c}"))?,
        }
    }
    f.write_str("\"")
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            msg: msg.to_string(),
            at: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("dangling escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pairs for astral characters.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let combined = 0x10000
                                        + ((cp - 0xD800) << 10)
                                        + (lo.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                        }
                        _ => return Err(self.err("invalid escape character")),
                    }
                }
                Some(b) if b < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar (input is a &str, so the bytes
                    // are valid UTF-8 and char boundaries are safe).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().unwrap(); // tqt:allow(unwrap): guarded by is_empty above
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap(); // tqt:allow(unwrap): lexer only accepts ASCII here
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| ParseError {
                msg: format!("invalid number '{text}'"),
                at: start,
            })
    }
}

/// Convenience constructors used by hand-written serializers.
impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::Num(v)
    }
}
impl From<f32> for Json {
    fn from(v: f32) -> Self {
        Json::Num(v as f64)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::Num(v as f64)
    }
}
impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Self {
        Json::Str(v)
    }
}
impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Self {
        Json::Arr(v.into_iter().map(Into::into).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for text in ["null", "true", "false", "0", "-1.5", "\"hi\"", "[]", "{}"] {
            let v = Json::parse(text).unwrap();
            assert_eq!(Json::parse(&v.to_string()).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn f32_values_round_trip_exactly() {
        let mut rng = crate::Rng::new(1);
        let values: Vec<f32> = (0..1000)
            .map(|_| (rng.gen_range(-1.0f32..1.0)) * 1e10f32.powf(rng.gen_range(-3.0f32..1.0)))
            .collect();
        let j = Json::Arr(values.iter().map(|&v| Json::from(v)).collect());
        let back = Json::parse(&j.to_string()).unwrap();
        let parsed: Vec<f32> = back
            .as_arr()
            .unwrap()
            .iter()
            .map(|v| v.as_f64().unwrap() as f32)
            .collect();
        assert_eq!(parsed, values);
    }

    #[test]
    fn nested_structure() {
        let text = r#"{"a": [1, 2, {"b": "x\ny", "c": null}], "d": -3e2}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.get("d").unwrap().as_f64().unwrap(), -300.0);
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[2].get("b").unwrap().as_str().unwrap(), "x\ny");
        assert_eq!(arr[2].get("c"), Some(&Json::Null));
        // Round-trip.
        assert_eq!(Json::parse(&v.to_string()).unwrap(), v);
    }

    #[test]
    fn string_escapes_round_trip() {
        let nasty = "quote\" back\\slash \n\t\r ctrl\u{1} unicode \u{1F600}é";
        let j = Json::from(nasty);
        let back = Json::parse(&j.to_string()).unwrap();
        assert_eq!(back.as_str().unwrap(), nasty);
    }

    #[test]
    fn unicode_escape_parses() {
        // \u00e9 = é; the surrogate pair \ud83d\ude00 is U+1F600.
        assert_eq!(
            Json::parse(r#""\u00e9\ud83d\ude00""#).unwrap().as_str().unwrap(),
            "é\u{1F600}"
        );
    }

    #[test]
    fn non_finite_serializes_as_null() {
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
        assert!(Json::parse("null").unwrap().as_f64().unwrap().is_nan());
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "", "{", "[1,", "{\"a\"}", "tru", "01x", "\"unterminated",
            "[1] garbage", "{'single': 1}", "nul",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn whitespace_tolerated() {
        let v = Json::parse(" \n\t{ \"k\" : [ 1 , 2 ] } \r\n").unwrap();
        assert_eq!(v.get("k").unwrap().as_arr().unwrap().len(), 2);
    }

    #[test]
    fn parse_error_reports_offset() {
        let e = Json::parse("[1, @]").unwrap_err();
        assert_eq!(e.at, 4);
    }
}
