//! Deterministic pseudo-random number generation.
//!
//! [`Rng`] is a Xoshiro256++ generator seeded through SplitMix64, the
//! standard pairing recommended by the xoshiro authors: SplitMix64 turns
//! one 64-bit seed into four well-mixed state words, and Xoshiro256++ has
//! a 2^256−1 period with excellent equidistribution — far more state than
//! any experiment here consumes. All randomness in the workspace flows
//! through seeded instances of this type so every experiment is exactly
//! reproducible, on any platform, with no external dependency.

/// SplitMix64 step: advances `state` and returns the next output.
/// Also used directly to derive independent sub-seeds (e.g. per-case
/// seeds in the property-test harness).
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic Xoshiro256++ PRNG.
///
/// # Examples
///
/// ```
/// use tqt_rt::Rng;
/// let mut a = Rng::new(7);
/// let mut b = Rng::new(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// let x = a.gen_range(0.0f32..1.0);
/// assert!((0.0..1.0).contains(&x));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        Rng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// `rand`-compatible constructor name, kept so call sites read the
    /// same as the `SeedableRng` API they replaced.
    pub fn seed_from_u64(seed: u64) -> Self {
        Rng::new(seed)
    }

    /// Next raw 64-bit output (xoshiro256++ scrambler).
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0]
            .wrapping_add(s[3])
            .rotate_left(23)
            .wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Next raw 32-bit output (upper half of the 64-bit output, which has
    /// the better-scrambled bits).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `f64` in `[0, 1)` with 53 random mantissa bits.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f32` in `[0, 1)` with 24 random mantissa bits.
    pub fn next_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }

    /// Uniform sample from a half-open range. Supports `f32`, `f64`,
    /// `u32`, `u64`, `i32`, `i64` and `usize` ranges, mirroring
    /// `rand::Rng::gen_range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range<T: UniformRange>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample(self, range.start, range.end)
    }

    /// Fair coin flip.
    pub fn gen_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_range(0..i + 1);
            slice.swap(i, j);
        }
    }

    /// Fills a slice with i.i.d. uniform samples from `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn fill_uniform(&mut self, out: &mut [f32], lo: f32, hi: f32) {
        for v in out.iter_mut() {
            *v = self.gen_range(lo..hi);
        }
    }

    /// Standard normal variate via the Box–Muller transform.
    pub fn normal_f32(&mut self) -> f32 {
        let u1 = self.gen_range(f64::MIN_POSITIVE..1.0);
        let u2 = self.gen_range(0.0f64..1.0);
        ((-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()) as f32
    }
}

/// Types that [`Rng::gen_range`] can sample uniformly from a half-open
/// range.
pub trait UniformRange: Copy + PartialOrd {
    /// Uniform sample in `[lo, hi)`.
    fn sample(rng: &mut Rng, lo: Self, hi: Self) -> Self;
}

impl UniformRange for f32 {
    fn sample(rng: &mut Rng, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        // Sample in f64 then narrow; narrowing can round up onto `hi`,
        // which the half-open contract excludes, so remap that edge case.
        let v = (lo as f64 + (hi as f64 - lo as f64) * rng.next_f64()) as f32;
        if v >= hi {
            lo
        } else {
            v
        }
    }
}

impl UniformRange for f64 {
    fn sample(rng: &mut Rng, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        let v = lo + (hi - lo) * rng.next_f64();
        if v >= hi {
            lo
        } else {
            v
        }
    }
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformRange for $t {
            fn sample(rng: &mut Rng, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty range [{lo}, {hi})");
                let span = hi.wrapping_sub(lo) as u64;
                // Debiased multiply-shift (Lemire): rejection keeps the
                // distribution exactly uniform.
                let threshold = span.wrapping_neg() % span;
                loop {
                    let r = rng.next_u64();
                    let hi128 = ((r as u128 * span as u128) >> 64) as u64;
                    let lo64 = (r as u128 * span as u128) as u64;
                    if lo64 >= threshold {
                        return lo.wrapping_add(hi128 as $t);
                    }
                }
            }
        }
    )*};
}

impl_uniform_int!(u32, u64, usize);

macro_rules! impl_uniform_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl UniformRange for $t {
            fn sample(rng: &mut Rng, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty range [{lo}, {hi})");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                let threshold = span.wrapping_neg() % span;
                loop {
                    let r = rng.next_u64();
                    let hi128 = ((r as u128 * span as u128) >> 64) as u64;
                    let lo64 = (r as u128 * span as u128) as u64;
                    if lo64 >= threshold {
                        return ((lo as i64).wrapping_add(hi128 as i64)) as $t;
                    }
                }
            }
        }
    )*};
}

impl_uniform_signed!(i32 => u32, i64 => u64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_by_seed() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(1);
        let mut c = Rng::new(2);
        let av: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let bv: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let cv: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(av, bv);
        assert_ne!(av, cv);
    }

    #[test]
    fn xoshiro_reference_vector() {
        // Reference: xoshiro256++ with state {1, 2, 3, 4} produces
        // 41943041 as its first output: rotl(1+4, 23) + 1 = 5<<23 + 1.
        let mut r = Rng { s: [1, 2, 3, 4] };
        assert_eq!(r.next_u64(), (5u64 << 23) + 1);
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = Rng::new(3);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
            let y = r.next_f32();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = Rng::new(4);
        for _ in 0..10_000 {
            let x = r.gen_range(-2.5f32..7.5);
            assert!((-2.5..7.5).contains(&x));
            let n = r.gen_range(3usize..9);
            assert!((3..9).contains(&n));
            let i = r.gen_range(-5i32..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn int_range_covers_all_values() {
        let mut r = Rng::new(5);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "not all bins hit: {seen:?}");
    }

    #[test]
    fn uniform_mean_is_centered() {
        let mut r = Rng::new(6);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn normal_moments() {
        let mut r = Rng::new(7);
        let n = 100_000;
        let xs: Vec<f32> = (0..n).map(|_| r.normal_f32()).collect();
        let mean = xs.iter().sum::<f32>() / n as f32;
        let var = xs.iter().map(|&x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Rng::new(8);
        let mut v: Vec<usize> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn shuffle_deterministic() {
        let mut a: Vec<u32> = (0..32).collect();
        let mut b = a.clone();
        Rng::new(9).shuffle(&mut a);
        Rng::new(9).shuffle(&mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn fill_uniform_bounds() {
        let mut buf = [0.0f32; 256];
        Rng::new(10).fill_uniform(&mut buf, -0.5, 0.5);
        assert!(buf.iter().all(|&v| (-0.5..0.5).contains(&v)));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        Rng::new(11).gen_range(1.0f32..1.0);
    }
}
