//! A shrinking property-test mini-harness.
//!
//! Replaces `proptest` for the workspace. A property is a closure from a
//! generated value to `Result<(), String>`; the harness runs it over
//! `cases` values drawn from a [`Gen`] with per-case seeds derived
//! deterministically from a base seed, and on failure greedily shrinks
//! the counterexample before panicking with the minimal case and the
//! seed that produced it.
//!
//! Regression pinning: when a run fails, the panic message reports the
//! failing *case seed*. Add that seed to [`Config::regressions`] (or, for
//! a fully shrunk value, write an explicit named unit test) and the case
//! is re-run before any novel cases on every future run — the same
//! workflow as proptest's `.proptest-regressions` files, but checked into
//! the test source where reviewers can see it.
//!
//! ```
//! use tqt_rt::check::{self, gen};
//! check::run(
//!     "abs_is_nonnegative",
//!     check::Config::default(),
//!     gen::f32_in(-100.0, 100.0),
//!     |&x| {
//!         tqt_rt::prop_assert!(x.abs() >= 0.0, "abs({x}) was negative");
//!         Ok(())
//!     },
//! );
//! ```

use crate::rng::{splitmix64, Rng};
use std::fmt::Debug;

/// Harness configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of novel cases to run.
    pub cases: u32,
    /// Base seed; per-case seeds derive from it. Change to explore a
    /// different part of the input space, keep fixed for reproducibility.
    pub seed: u64,
    /// Maximum shrink iterations after a failure.
    pub max_shrinks: u32,
    /// Case seeds of past failures, re-run before any novel cases.
    pub regressions: Vec<u64>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            cases: 256,
            seed: 0x7171_7463_6865_636B, // "qqtcheck"
            max_shrinks: 2000,
            regressions: Vec::new(),
        }
    }
}

impl Config {
    /// Config with a given case count.
    pub fn cases(n: u32) -> Self {
        Config {
            cases: n,
            ..Config::default()
        }
    }

    /// Adds pinned regression seeds.
    pub fn with_regressions(mut self, seeds: &[u64]) -> Self {
        self.regressions.extend_from_slice(seeds);
        self
    }
}

/// A value generator paired with a shrinker.
///
/// `generate` draws a random value; `shrink` proposes strictly "smaller"
/// candidate values (the harness keeps any candidate that still fails the
/// property). Shrink candidates must stay inside the generator's
/// invariants — e.g. [`gen::f32_in`] never proposes a value outside its
/// range.
pub struct Gen<T> {
    generate: Box<dyn Fn(&mut Rng) -> T>,
    shrink: Box<Shrinker<T>>,
}

/// Shrink function: proposes strictly smaller candidates for a value.
type Shrinker<T> = dyn Fn(&T) -> Vec<T>;

impl<T> Gen<T> {
    /// Draws a value.
    pub fn generate(&self, rng: &mut Rng) -> T {
        (self.generate)(rng)
    }

    /// Proposes smaller candidates.
    pub fn shrink(&self, v: &T) -> Vec<T> {
        (self.shrink)(v)
    }
}

impl<T: 'static> Gen<T> {
    /// Builds a generator from explicit generate and shrink functions.
    pub fn new(
        generate: impl Fn(&mut Rng) -> T + 'static,
        shrink: impl Fn(&T) -> Vec<T> + 'static,
    ) -> Self {
        Gen {
            generate: Box::new(generate),
            shrink: Box::new(shrink),
        }
    }

    /// Maps the generated value through `f`. The mapped generator does
    /// not shrink (there is no inverse to shrink through); compose with
    /// [`Gen::new`] for a custom shrinker when shrinking matters.
    pub fn map<U: 'static>(self, f: impl Fn(T) -> U + 'static) -> Gen<U> {
        Gen::new(move |rng| f(self.generate(rng)), |_| Vec::new())
    }
}

/// Runs a property over generated cases; panics on failure with the
/// minimal shrunk counterexample and its case seed.
///
/// # Panics
///
/// Panics if the property fails for any regression or novel case.
pub fn check<T, P>(name: &str, cfg: Config, g: Gen<T>, prop: P)
where
    T: Debug + 'static,
    P: Fn(&T) -> Result<(), String>,
{
    // Regression seeds first — exactly the proptest replay order.
    for &seed in &cfg.regressions {
        run_case(name, seed, &g, &prop, cfg.max_shrinks, true);
    }
    let mut base = cfg.seed ^ fnv1a(name.as_bytes());
    for _ in 0..cfg.cases {
        let case_seed = splitmix64(&mut base);
        run_case(name, case_seed, &g, &prop, cfg.max_shrinks, false);
    }
}

/// Alias of [`check`] under the name the `rt::check!` macro expands to.
pub fn run<T, P>(name: &str, cfg: Config, g: Gen<T>, prop: P)
where
    T: Debug + 'static,
    P: Fn(&T) -> Result<(), String>,
{
    check(name, cfg, g, prop)
}

fn run_case<T, P>(name: &str, case_seed: u64, g: &Gen<T>, prop: &P, max_shrinks: u32, pinned: bool)
where
    T: Debug,
    P: Fn(&T) -> Result<(), String>,
{
    let mut rng = Rng::new(case_seed);
    let value = g.generate(&mut rng);
    let Err(first_msg) = prop(&value) else {
        return;
    };
    // Greedy shrink: repeatedly adopt the first failing candidate.
    let mut current = value;
    let mut msg = first_msg;
    let mut budget = max_shrinks;
    'outer: while budget > 0 {
        for cand in g.shrink(&current) {
            budget -= 1;
            if let Err(m) = prop(&cand) {
                current = cand;
                msg = m;
                continue 'outer;
            }
            if budget == 0 {
                break;
            }
        }
        break;
    }
    panic!(
        "property '{name}' failed{}\n  minimal case: {current:?}\n  error: {msg}\n  case seed: {case_seed:#018x}\n  \
         (pin it: Config::default().with_regressions(&[{case_seed:#018x}]))",
        if pinned { " (pinned regression seed)" } else { "" }
    );
}

/// FNV-1a, used to give every property a distinct default seed stream.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Ready-made generators for the workspace's common case shapes.
pub mod gen {
    use super::Gen;
    use crate::rng::Rng;

    /// Uniform `f32` in `[lo, hi)`. Shrinks toward the in-range value
    /// closest to zero, then toward simpler (truncated / halved) values.
    pub fn f32_in(lo: f32, hi: f32) -> Gen<f32> {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        let zero = anchor(lo, hi);
        Gen::new(
            move |rng| rng.gen_range(lo..hi),
            move |&v| {
                let mut cands = Vec::new();
                // Ordered from most to least aggressive; the trailing ±1
                // steps let the greedy loop creep up to a pass/fail
                // boundary instead of stalling at the first plateau.
                let step = if v > zero { v - 1.0 } else { v + 1.0 };
                for c in [zero, (v + zero) / 2.0, v.trunc(), step] {
                    if c != v && c >= lo && c < hi && !cands.contains(&c) {
                        cands.push(c);
                    }
                }
                cands
            },
        )
    }

    /// The in-range value closest to zero — the natural shrink target.
    fn anchor(lo: f32, hi: f32) -> f32 {
        if lo <= 0.0 && 0.0 < hi {
            0.0
        } else if lo > 0.0 {
            lo
        } else {
            // Entirely negative range: largest representable value < hi.
            f32::from_bits(hi.to_bits() + 1)
        }
    }

    /// Uniform `usize` in `[lo, hi)`, shrinking toward `lo`.
    pub fn usize_in(lo: usize, hi: usize) -> Gen<usize> {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        Gen::new(
            move |rng| rng.gen_range(lo..hi),
            move |&v| {
                let mut cands = Vec::new();
                for c in [lo, lo + (v - lo) / 2, v.saturating_sub(1)] {
                    if c != v && c >= lo && c < hi && !cands.contains(&c) {
                        cands.push(c);
                    }
                }
                cands
            },
        )
    }

    /// Uniform `u64` in `[lo, hi)`, shrinking toward `lo`.
    pub fn u64_in(lo: u64, hi: u64) -> Gen<u64> {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        Gen::new(
            move |rng| rng.gen_range(lo..hi),
            move |&v| {
                let mut cands = Vec::new();
                for c in [lo, lo + (v - lo) / 2, v.saturating_sub(1).max(lo)] {
                    if c != v && c >= lo && c < hi && !cands.contains(&c) {
                        cands.push(c);
                    }
                }
                cands
            },
        )
    }

    /// Fair boolean, shrinking `true → false`.
    pub fn bool_any() -> Gen<bool> {
        Gen::new(
            |rng| rng.gen_bool(),
            |&v| if v { vec![false] } else { Vec::new() },
        )
    }

    /// One of the given values, uniformly; shrinks toward earlier items
    /// (order choices simplest-first).
    pub fn choice<T: Clone + PartialEq + 'static>(items: Vec<T>) -> Gen<T> {
        assert!(!items.is_empty(), "choice over no items");
        let shrink_items = items.clone();
        Gen::new(
            move |rng| items[rng.gen_range(0..items.len())].clone(),
            move |v| {
                let idx = shrink_items.iter().position(|i| i == v).unwrap_or(0);
                shrink_items[..idx].to_vec()
            },
        )
    }

    /// `Vec<f32>` with uniform elements in `[lo, hi)` and length uniform
    /// in `[min_len, max_len)`. Shrinks by halving the length (keeping
    /// the prefix), dropping single elements, and shrinking elements
    /// toward zero.
    pub fn vec_f32(lo: f32, hi: f32, min_len: usize, max_len: usize) -> Gen<Vec<f32>> {
        assert!(min_len < max_len, "empty length range");
        let elem = f32_in(lo, hi);
        Gen::new(
            move |rng| {
                let n = rng.gen_range(min_len..max_len);
                (0..n).map(|_| rng.gen_range(lo..hi)).collect()
            },
            move |v: &Vec<f32>| {
                let mut cands: Vec<Vec<f32>> = Vec::new();
                // Halve the length.
                if v.len() / 2 >= min_len && v.len() / 2 < v.len() {
                    cands.push(v[..v.len() / 2].to_vec());
                }
                // Drop one element (first and last positions).
                if v.len() > min_len && !v.is_empty() {
                    cands.push(v[1..].to_vec());
                    cands.push(v[..v.len() - 1].to_vec());
                }
                // Shrink individual elements (bounded fan-out).
                for i in 0..v.len().min(4) {
                    for c in elem.shrink(&v[i]) {
                        let mut w = v.clone();
                        w[i] = c;
                        cands.push(w);
                    }
                }
                cands
            },
        )
    }

    /// Pairs two generators; shrinks one component at a time.
    pub fn zip2<A: Clone + 'static, B: Clone + 'static>(a: Gen<A>, b: Gen<B>) -> Gen<(A, B)> {
        // The two closures share the component generators through an Rc.
        let pair = std::rc::Rc::new((a, b));
        let gen_pair = pair.clone();
        Gen {
            generate: Box::new(move |rng: &mut Rng| {
                (gen_pair.0.generate(rng), gen_pair.1.generate(rng))
            }),
            shrink: Box::new(move |(va, vb): &(A, B)| {
                let mut cands = Vec::new();
                for ca in pair.0.shrink(va) {
                    cands.push((ca, vb.clone()));
                }
                for cb in pair.1.shrink(vb) {
                    cands.push((va.clone(), cb));
                }
                cands
            }),
        }
    }

    /// Triples three generators; shrinks one component at a time.
    pub fn zip3<A: Clone + 'static, B: Clone + 'static, C: Clone + 'static>(
        a: Gen<A>,
        b: Gen<B>,
        c: Gen<C>,
    ) -> Gen<(A, B, C)> {
        let flat = std::rc::Rc::new(zip2(zip2(a, b), c));
        let gen_flat = flat.clone();
        Gen {
            generate: Box::new(move |rng: &mut Rng| {
                let ((va, vb), vc) = gen_flat.generate(rng);
                (va, vb, vc)
            }),
            shrink: Box::new(move |(va, vb, vc): &(A, B, C)| {
                flat.shrink(&((va.clone(), vb.clone()), vc.clone()))
                    .into_iter()
                    .map(|((a, b), c)| (a, b, c))
                    .collect()
            }),
        }
    }
}

/// Asserts a condition inside a property closure, returning `Err` with
/// location info instead of panicking (so the harness can shrink).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        // Bind first: negating `$cond` directly trips clippy's
        // neg_cmp_op_on_partial_ord on float comparisons at call sites.
        let ok: bool = $cond;
        if !ok {
            return Err(format!(
                "assertion failed: {} ({}:{})",
                stringify!($cond),
                file!(),
                line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        let ok: bool = $cond;
        if !ok {
            return Err(format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a property closure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (va, vb) = (&$a, &$b);
        if va != vb {
            return Err(format!(
                "{} != {} ({:?} vs {:?}) at {}:{}",
                stringify!($a),
                stringify!($b),
                va,
                vb,
                file!(),
                line!()
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (va, vb) = (&$a, &$b);
        if va != vb {
            return Err(format!($($fmt)+));
        }
    }};
}

/// Runs a property: `check!(gen, |v| { ... })` with the default config or
/// `check!(config, gen, |v| { ... })` with an explicit one. The property
/// name (used for seed derivation and failure messages) is the source
/// location of the macro invocation.
#[macro_export]
macro_rules! check {
    ($gen:expr, $prop:expr) => {
        $crate::check::run(
            concat!(file!(), ":", line!()),
            $crate::check::Config::default(),
            $gen,
            $prop,
        )
    };
    ($cfg:expr, $gen:expr, $prop:expr) => {
        $crate::check::run(concat!(file!(), ":", line!()), $cfg, $gen, $prop)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let counter = std::cell::Cell::new(0u32);
        check(
            "count",
            Config::cases(64),
            gen::f32_in(-1.0, 1.0),
            |&x| {
                counter.set(counter.get() + 1);
                crate::prop_assert!((-1.0..1.0).contains(&x));
                Ok(())
            },
        );
        assert_eq!(counter.get(), 64);
    }

    #[test]
    fn failing_property_shrinks_to_minimal_case() {
        // Property: all values < 50. Counterexamples are v >= 50; the
        // minimal one reachable by the shrinker should be close to 50.
        let result = std::panic::catch_unwind(|| {
            check(
                "shrinks",
                Config::cases(256),
                gen::f32_in(0.0, 100.0),
                |&x| {
                    crate::prop_assert!(x < 50.0, "got {x}");
                    Ok(())
                },
            );
        });
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("minimal case"), "{msg}");
        // Extract the shrunk value and confirm it is near the boundary.
        let v: f32 = msg
            .split("minimal case: ")
            .nth(1)
            .unwrap()
            .split_whitespace()
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!((50.0..56.0).contains(&v), "poorly shrunk: {v} ({msg})");
    }

    #[test]
    fn vec_shrinker_reaches_short_vectors() {
        let result = std::panic::catch_unwind(|| {
            check(
                "vec-shrink",
                Config::cases(64),
                gen::vec_f32(-10.0, 10.0, 1, 64),
                |v| {
                    crate::prop_assert!(v.iter().all(|&x| x < 5.0), "len {}", v.len());
                    Ok(())
                },
            );
        });
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        // A single offending element should survive shrinking.
        let case = msg.split("minimal case: ").nth(1).unwrap();
        let n_elems = case.split(']').next().unwrap().matches(',').count() + 1;
        assert!(n_elems <= 2, "vector not shrunk: {msg}");
    }

    #[test]
    fn regression_seeds_replay_first() {
        // Find a failing seed, then confirm with_regressions replays it.
        let cfg = Config {
            cases: 0,
            ..Config::default()
        };
        let seed = 0xDEAD_BEEFu64;
        let replayed = std::cell::Cell::new(false);
        check(
            "replay",
            cfg.with_regressions(&[seed]),
            gen::f32_in(0.0, 1.0),
            |_| {
                replayed.set(true);
                Ok(())
            },
        );
        assert!(replayed.get());
    }

    #[test]
    fn deterministic_across_runs() {
        let collect = || {
            let mut vals = Vec::new();
            // Safe: property records values, never fails.
            let vals_ref = std::cell::RefCell::new(&mut vals);
            check(
                "det",
                Config::cases(16),
                gen::f32_in(-3.0, 3.0),
                |&x| {
                    vals_ref.borrow_mut().push(x);
                    Ok(())
                },
            );
            vals
        };
        assert_eq!(collect(), collect());
    }

    #[test]
    fn zip_shrinks_componentwise() {
        let g = gen::zip2(gen::f32_in(0.0, 10.0), gen::usize_in(0, 10));
        let cands = g.shrink(&(8.0, 7));
        assert!(cands.iter().any(|&(a, b)| a != 8.0 && b == 7));
        assert!(cands.iter().any(|&(a, b)| a == 8.0 && b != 7));
    }

    #[test]
    fn choice_shrinks_toward_front() {
        let g = gen::choice(vec![1u32, 2, 3]);
        assert_eq!(g.shrink(&3), vec![1, 2]);
        assert!(g.shrink(&1).is_empty());
    }
}
