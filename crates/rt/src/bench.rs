//! A small wall-clock benchmark harness: warmup, auto-calibrated batch
//! size, and median/IQR over independent samples.
//!
//! Replaces `criterion` for the workspace's two bench targets. The
//! median is robust to scheduler noise and the inter-quartile range
//! makes run-to-run variance visible; both are printed per benchmark in
//! a stable, grep-friendly format:
//!
//! ```text
//! bench requant/pow2_shift_eq16          median 12.41µs  iqr 0.32µs  (20 samples)  330.1 Melem/s
//! ```

use crate::json::Json;
use std::collections::BTreeMap;
use std::hint::black_box as std_black_box;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Opaque value barrier — re-exported so benches do not reach into
/// `std::hint` themselves.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Result of one benchmark: robust location and spread of the per-call
/// wall time.
#[derive(Debug, Clone)]
pub struct Stats {
    /// Benchmark name.
    pub name: String,
    /// Median per-call time.
    pub median: Duration,
    /// Inter-quartile range (q3 − q1) of per-call time.
    pub iqr: Duration,
    /// Number of timed samples.
    pub samples: usize,
    /// Calls per sample (auto-calibrated).
    pub iters_per_sample: u64,
    /// Elements (or flops) per call, when the benchmark declared one via
    /// [`Bench::run_with_throughput`]; drives the serialized throughput.
    pub elems_per_call: Option<u64>,
}

impl Stats {
    /// Elements-per-second throughput for a per-call element count.
    pub fn throughput(&self, elems_per_call: u64) -> f64 {
        elems_per_call as f64 / self.median.as_secs_f64()
    }

    /// Machine-readable form of this result (durations in nanoseconds,
    /// throughput in elements/second when declared).
    pub fn to_json(&self) -> Json {
        let mut obj = BTreeMap::new();
        obj.insert("name".to_string(), Json::from(self.name.as_str()));
        obj.insert(
            "median_ns".to_string(),
            Json::from(self.median.as_nanos() as f64),
        );
        obj.insert("iqr_ns".to_string(), Json::from(self.iqr.as_nanos() as f64));
        obj.insert("samples".to_string(), Json::from(self.samples));
        obj.insert(
            "iters_per_sample".to_string(),
            Json::from(self.iters_per_sample as f64),
        );
        if let Some(elems) = self.elems_per_call {
            obj.insert("elems_per_call".to_string(), Json::from(elems as f64));
            obj.insert(
                "throughput_per_s".to_string(),
                Json::from(self.throughput(elems)),
            );
        }
        Json::Obj(obj)
    }
}

/// Accumulates [`Stats`] across one bench binary and (optionally) writes
/// them as a JSON report — the persisted `BENCH_*.json` trajectory files.
///
/// [`Report::from_args`] reads the process arguments, so every bench
/// binary uniformly understands:
///
/// * `--json <path>` — write the report to `path` on [`finish`](Self::finish);
/// * `--smoke` — flag for the binary to shrink shapes/sample counts so CI
///   can exercise the bench + emission path in milliseconds.
pub struct Report {
    name: String,
    out: Option<PathBuf>,
    smoke: bool,
    results: Vec<Stats>,
    metrics: Vec<(String, f64)>,
}

impl Report {
    /// Builds a report named `name` from the process's own CLI arguments.
    pub fn from_args(name: &str) -> Report {
        let mut out = None;
        let mut smoke = false;
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--json" => out = args.next().map(PathBuf::from),
                "--smoke" => smoke = true,
                // Unknown flags (e.g. libtest's --bench) are ignored so the
                // binaries still run under plain `cargo bench`.
                _ => {}
            }
        }
        Report {
            name: name.to_string(),
            out,
            smoke,
            results: Vec::new(),
            metrics: Vec::new(),
        }
    }

    /// True when `--smoke` was passed: the binary should use tiny shapes
    /// and a single sample.
    pub fn smoke(&self) -> bool {
        self.smoke
    }

    /// Records one benchmark result.
    pub fn push(&mut self, stats: Stats) {
        self.results.push(stats);
    }

    /// Records a scalar side-metric (e.g. a steady-state allocation
    /// count) to be serialized alongside the timing results.
    pub fn push_metric(&mut self, name: &str, value: f64) {
        self.metrics.push((name.to_string(), value));
    }

    /// Serializes the recorded results.
    pub fn to_json(&self) -> Json {
        let mut obj = BTreeMap::new();
        obj.insert("bench".to_string(), Json::from(self.name.as_str()));
        obj.insert("smoke".to_string(), Json::from(self.smoke));
        obj.insert(
            "results".to_string(),
            Json::Arr(self.results.iter().map(Stats::to_json).collect()),
        );
        if !self.metrics.is_empty() {
            let m: BTreeMap<String, Json> = self
                .metrics
                .iter()
                .map(|(k, v)| (k.clone(), Json::from(*v)))
                .collect();
            obj.insert("metrics".to_string(), Json::Obj(m));
        }
        Json::Obj(obj)
    }

    /// Writes the report to the `--json` path, if one was given.
    ///
    /// # Panics
    ///
    /// Panics if the file cannot be written — a bench run that silently
    /// drops its results would poison the persisted trajectory.
    pub fn finish(self) {
        if let Some(path) = &self.out {
            let body = self.to_json().to_string();
            std::fs::write(path, body + "\n")
                .unwrap_or_else(|e| panic!("failed to write {}: {e}", path.display()));
            println!("report {} -> {}", self.name, path.display());
        }
    }
}

/// Benchmark runner with configurable sampling.
#[derive(Debug, Clone)]
pub struct Bench {
    /// Timed samples per benchmark (criterion's `sample_size` analogue).
    pub samples: usize,
    /// Wall-clock budget per sample; the batch size is calibrated so one
    /// sample takes roughly this long.
    pub sample_time: Duration,
    /// Warmup time before calibration.
    pub warmup: Duration,
}

impl Default for Bench {
    fn default() -> Self {
        Bench {
            samples: 20,
            sample_time: Duration::from_millis(25),
            warmup: Duration::from_millis(100),
        }
    }
}

impl Bench {
    /// A runner taking `samples` timed samples per benchmark.
    pub fn with_samples(samples: usize) -> Self {
        Bench {
            samples,
            ..Bench::default()
        }
    }

    /// A minimal runner for CI smoke runs: one sample, microsecond
    /// budgets — just enough to prove the bench and its JSON emission
    /// still work.
    pub fn smoke() -> Self {
        Bench {
            samples: 1,
            sample_time: Duration::from_micros(100),
            warmup: Duration::ZERO,
        }
    }

    /// Times `f`, prints one result line, and returns the stats.
    pub fn run<F: FnMut()>(&self, name: &str, mut f: F) -> Stats {
        let stats = self.measure(name, &mut f);
        println!(
            "bench {:<42} median {:>9}  iqr {:>9}  ({} samples)",
            stats.name,
            fmt_duration(stats.median),
            fmt_duration(stats.iqr),
            stats.samples
        );
        stats
    }

    /// Like [`run`](Self::run) but also reports elements/second computed
    /// from `elems` processed per call.
    pub fn run_with_throughput<F: FnMut()>(&self, name: &str, elems: u64, mut f: F) -> Stats {
        let mut stats = self.measure(name, &mut f);
        stats.elems_per_call = Some(elems);
        println!(
            "bench {:<42} median {:>9}  iqr {:>9}  ({} samples)  {}",
            stats.name,
            fmt_duration(stats.median),
            fmt_duration(stats.iqr),
            stats.samples,
            fmt_throughput(stats.throughput(elems))
        );
        stats
    }

    fn measure<F: FnMut()>(&self, name: &str, f: &mut F) -> Stats {
        // Warmup: run until the warmup budget is spent (at least once).
        let warm_start = Instant::now();
        let mut warm_calls = 0u64;
        while warm_start.elapsed() < self.warmup || warm_calls == 0 {
            f();
            warm_calls += 1;
        }
        let per_call = warm_start.elapsed().as_secs_f64() / warm_calls as f64;
        // Batch size so one sample hits ~sample_time.
        let iters = ((self.sample_time.as_secs_f64() / per_call.max(1e-9)) as u64).max(1);
        let mut times: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples.max(1) {
            let t0 = Instant::now();
            for _ in 0..iters {
                f();
            }
            times.push(t0.elapsed().as_secs_f64() / iters as f64);
        }
        times.sort_by(|a, b| a.partial_cmp(b).unwrap()); // tqt:allow(unwrap): durations are finite
        let q = |p: f64| -> f64 {
            let idx = p * (times.len() - 1) as f64;
            let (lo, hi) = (idx.floor() as usize, idx.ceil() as usize);
            let frac = idx - lo as f64;
            times[lo] * (1.0 - frac) + times[hi] * frac
        };
        Stats {
            name: name.to_string(),
            median: Duration::from_secs_f64(q(0.5)),
            iqr: Duration::from_secs_f64((q(0.75) - q(0.25)).max(0.0)),
            samples: times.len(),
            iters_per_sample: iters,
            elems_per_call: None,
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos() as f64;
    if ns < 1_000.0 {
        format!("{ns:.1}ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2}µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2}ms", ns / 1_000_000.0)
    } else {
        format!("{:.3}s", ns / 1_000_000_000.0)
    }
}

fn fmt_throughput(elems_per_sec: f64) -> String {
    if elems_per_sec >= 1e9 {
        format!("{:.1} Gelem/s", elems_per_sec / 1e9)
    } else if elems_per_sec >= 1e6 {
        format!("{:.1} Melem/s", elems_per_sec / 1e6)
    } else if elems_per_sec >= 1e3 {
        format!("{:.1} Kelem/s", elems_per_sec / 1e3)
    } else {
        format!("{elems_per_sec:.1} elem/s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_bench() -> Bench {
        Bench {
            samples: 5,
            sample_time: Duration::from_micros(200),
            warmup: Duration::from_micros(200),
        }
    }

    #[test]
    fn measures_something_positive() {
        let mut acc = 0u64;
        let stats = fast_bench().run("spin", || {
            for i in 0..100u64 {
                acc = black_box(acc.wrapping_add(i));
            }
        });
        assert!(stats.median > Duration::ZERO);
        assert_eq!(stats.samples, 5);
        assert!(stats.iters_per_sample >= 1);
    }

    #[test]
    fn throughput_scales_with_elems() {
        let stats = fast_bench().run_with_throughput("tp", 1000, || {
            black_box((0..100u32).sum::<u32>());
        });
        let t1 = stats.throughput(1000);
        let t2 = stats.throughput(2000);
        assert!((t2 / t1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn ordering_of_quartiles() {
        let stats = fast_bench().run("q", || {
            black_box((0..500u32).map(|i| i ^ 0xA5).sum::<u32>());
        });
        assert!(stats.iqr <= stats.median * 100); // sanity: IQR finite, not wild
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500.0ns");
        assert_eq!(fmt_duration(Duration::from_micros(12)), "12.00µs");
        assert_eq!(fmt_duration(Duration::from_millis(3)), "3.00ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.000s");
    }
}
