//! Minimal shared-state primitives for code *outside* `crates/rt`.
//!
//! The workspace's concurrency policy (enforced by
//! `scripts/check_forbidden.sh`) is that raw `std::sync::atomic` types and
//! `std::thread::spawn` live only in this crate, where the protocols that
//! use them are model-checked (`sched`) or sanitized (`hb`). Everything
//! the rest of the workspace legitimately needs from atomics is one of two
//! shapes, and both are order-independent by construction — no ordering
//! decision is delegated to the caller:
//!
//! * [`Counter`] — a monotone sum of non-negative contributions
//!   (saturation / overflow tallies merged across pool blocks). Addition
//!   of `u64`s is commutative and associative, so the final value cannot
//!   depend on the schedule.
//! * [`Flag`] — a sticky one-way boolean (e.g. "this process is a
//!   reduced-fidelity run"). Raising it twice is idempotent, so races
//!   between raisers are benign.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// An order-independent event counter: concurrent [`add`](Counter::add)s
/// from pool blocks merge into a sum whose value is independent of the
/// schedule. This is the only cross-thread accumulation primitive the
/// numeric crates are allowed — anything order-sensitive must go through
/// `pool::par_fold_blocks`' deterministic block reduction instead.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter starting at zero.
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        if n > 0 {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// The current sum. Exact once every contributing region has joined
    /// (the pool joins every region before `par_*` returns).
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A sticky one-way boolean: starts lowered, can only be raised.
#[derive(Debug, Default)]
pub struct Flag(AtomicBool);

impl Flag {
    /// A lowered flag.
    pub const fn new() -> Self {
        Flag(AtomicBool::new(false))
    }

    /// Raises the flag; returns whether it was already raised (so the
    /// first raiser can act exactly once).
    pub fn raise(&self) -> bool {
        self.0.swap(true, Ordering::SeqCst)
    }

    /// Whether the flag has been raised.
    pub fn get(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_sums_across_threads() {
        let c = Counter::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        c.add(3);
                    }
                });
            }
        });
        assert_eq!(c.get(), 4 * 1000 * 3);
    }

    #[test]
    fn counter_zero_add_is_free() {
        let c = Counter::new();
        c.add(0);
        assert_eq!(c.get(), 0);
        c.add(7);
        assert_eq!(c.get(), 7);
    }

    #[test]
    fn flag_is_sticky_and_reports_first_raise() {
        let f = Flag::new();
        assert!(!f.get());
        assert!(!f.raise(), "first raise sees a lowered flag");
        assert!(f.raise(), "second raise sees a raised flag");
        assert!(f.get());
    }
}
