//! The worker pool's claim/complete protocol — and a bounded model
//! checker that *proves* it.
//!
//! [`pool`](crate::pool) parallelism rests on three tiny decisions: which
//! block a participant claims next, when a queued region is exhausted,
//! and when the final completion must wake the submitter. Those decisions
//! are factored out here as pure functions over a [`ClaimCounter`] trait,
//! and `pool.rs` calls them at the corresponding sites — so the logic the
//! model checker enumerates *is* the logic the real pool runs, not a
//! transcript of it that can drift.
//!
//! The checker ([`check`]) is a zero-dependency `loom`-style explicit-state
//! explorer: every thread of the model is a small stack machine whose
//! steps correspond to the pool's atomic transitions (queue push, block
//! claim, block body, completion update, completion wait, worker queue
//! scan), and a depth-first search over all interleavings — with visited-
//! state memoization — visits every reachable schedule of a bounded
//! configuration (≤3 threads × ≤4 root blocks × ≤2 nested regions, the
//! bounds `protocol_configs` pins). Properties checked on every schedule:
//!
//! * **no deadlock** — from every reachable state some thread can step,
//!   until the root submitter has returned, every worker is parked, and
//!   the queue is drained;
//! * **no lost block / exactly-once** — every block of every submitted
//!   region executes exactly once;
//! * **panic delivery** — a panic raised in any block (including a block
//!   of a nested region) is re-thrown on the root submitter, after all
//!   blocks of its region completed.
//!
//! A refuted property comes back as a [`Violation`] carrying the full
//! interleaving trace as a counterexample. Seeded-bug configurations
//! ([`Bug::TornClaim`], [`Bug::DropPanic`]) verify the checker actually
//! refutes broken protocols — the model-checking analogue of the
//! mutation tests on the plan verifier.
//!
//! Faithfulness notes. Model steps are the pool's lock-protected critical
//! sections and single atomic RMWs, which are serializable points in the
//! real execution; `Condvar` waits are modeled as predicate-enabledness,
//! sound because every real wait re-checks its predicate under the mutex
//! (std condvars have spurious wakeups but, paired with their mutex, no
//! lost notifications). The block *body* is one step — bodies are
//! data-race-free by the disjoint-chunk construction, which the
//! happens-before sanitizer ([`crate::hb`]) checks at runtime rather than
//! here.
//!
//! The same treatment covers the serving admission queue
//! ([`crate::queue`]): its coalescing decisions are the pure functions
//! [`pick_rung`] / [`batch_decision`], called by `queue.rs` at the real
//! claim sites, and [`batch_check`] exhaustively explores the batching
//! protocol over bounded client/worker/ladder configurations
//! ([`batch_protocol_configs`]), proving that every submitted request is
//! dispatched exactly once in a ladder-sized batch, that a due (deadline-
//! expired) request is never stranded behind a partial batch, that the
//! work-conserving rule (all workers idle → dispatch now) never loses or
//! duplicates work, and that a drain dispatches every remaining request
//! before the workers exit.
//! Seeded bugs ([`BatchBug`]) prove the checker refutes broken variants;
//! refutations surface as `TQT-V024` through `tqt-verify`.

use std::cell::Cell;
use std::collections::HashSet;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

// ---------------------------------------------------------------------
// Shared protocol core (used by pool.rs and by the model)
// ---------------------------------------------------------------------

/// The atomic block-claim counter, abstracted so the model checker can
/// substitute a simulated counter for [`AtomicUsize`].
pub trait ClaimCounter {
    /// Atomically returns the current value and increments it.
    fn fetch_inc(&self) -> usize;
    /// Reads the current value without claiming.
    fn peek(&self) -> usize;
}

impl ClaimCounter for AtomicUsize {
    fn fetch_inc(&self) -> usize {
        // Relaxed is enough: the claim index is the only payload, and the
        // region's completion handshake goes through a mutex.
        self.fetch_add(1, Ordering::Relaxed)
    }
    fn peek(&self) -> usize {
        self.load(Ordering::Relaxed)
    }
}

/// One iteration of the participant claim loop: claims the next block
/// index, or reports the region exhausted.
pub fn try_claim<C: ClaimCounter>(next: &C, nblocks: usize) -> Option<usize> {
    let idx = next.fetch_inc();
    (idx < nblocks).then_some(idx)
}

/// Whether a queued region has no block left to hand out (the worker's
/// pop-or-participate test; claiming past `nblocks` stays harmless, this
/// is only the cheap probe).
pub fn region_exhausted<C: ClaimCounter>(next: &C, nblocks: usize) -> bool {
    next.peek() >= nblocks
}

/// Whether a completion that raised the done-count to `done` is the
/// region's last — the one that must notify the waiting submitter. Also
/// the submitter's wait predicate.
pub fn is_last_completion(done: usize, nblocks: usize) -> bool {
    done >= nblocks
}

/// The block partition [`crate::pool::par_fold_blocks`] must produce for
/// `(len, block)`: consecutive `block`-sized ranges, last one ragged.
/// This is the *specification* the deterministic tree reduction is
/// checked against — a pure function of `(len, block)`, never of the
/// thread count. `tqt-verify` compares the pool's actual partition with
/// this at several forced thread counts (`TQT-V021`).
///
/// # Panics
///
/// Panics if `block == 0`.
pub fn fold_partition(len: usize, block: usize) -> Vec<(usize, Range<usize>)> {
    assert!(block > 0, "block size must be positive");
    (0..len.div_ceil(block))
        .map(|b| (b, b * block..(b * block + block).min(len)))
        .collect()
}

// ---------------------------------------------------------------------
// Bounded model checker
// ---------------------------------------------------------------------

/// Maximum blocks per region the model supports (fixed-size state).
pub const MAX_BLOCKS: usize = 4;
/// Maximum threads (1 submitter + workers) the model supports.
pub const MAX_THREADS: usize = 3;

/// A deliberately broken protocol variant, used to prove the checker can
/// refute: these must produce a [`Violation`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bug {
    /// The block claim is torn into a separate read and write (not an
    /// atomic fetch-add): two participants can claim the same block.
    TornClaim,
    /// Completions drop the panic payload instead of recording it.
    DropPanic,
}

/// One bounded model configuration.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Total threads: 1 root submitter + `threads - 1` pool workers.
    pub threads: usize,
    /// Blocks of the root region.
    pub blocks: usize,
    /// `Some((outer_block, inner_blocks))`: executing `outer_block` of
    /// the root region submits a nested region with `inner_blocks` blocks
    /// from whichever thread claimed it (submitter participates).
    pub nested: Option<(usize, usize)>,
    /// `Some((region, block))`: that block's body panics (region 0 =
    /// root, 1 = nested).
    pub panic_at: Option<(usize, usize)>,
    /// Seeded protocol bug (refutation tests only).
    pub bug: Option<Bug>,
}

/// Which property a counterexample schedule violates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Property {
    /// A reachable state has no enabled thread before the run finished.
    Deadlock,
    /// A block never executed although its region completed.
    LostBlock,
    /// A block executed more than once.
    DuplicateExecution,
    /// A configured panic was not delivered to the root submitter.
    PanicLost,
    /// A panic was delivered although none was configured.
    PanicInvented,
    /// Bookkeeping corruption (done-count exceeded the block count).
    Corruption,
    /// Batching: a submitted request was never dispatched, or its
    /// response never produced.
    LostRequest,
    /// Batching: a request was handed to more than one batch.
    DuplicateDispatch,
    /// Batching: a deadline-expired request is stranded behind a partial
    /// batch no worker will ever flush.
    DeadlineStall,
}

/// A refutation: the violated property plus the full interleaving that
/// reaches it, one `"t<i>: <step>"` line per step.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The violated property.
    pub property: Property,
    /// Human-readable specifics of the terminal/violating state.
    pub detail: String,
    /// The counterexample schedule, in execution order.
    pub trace: Vec<String>,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "{:?}: {}", self.property, self.detail)?;
        for line in &self.trace {
            writeln!(f, "  {line}")?;
        }
        Ok(())
    }
}

/// Result of exploring one configuration.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// Distinct states visited.
    pub states: usize,
    /// Completed schedules (terminal states) reached.
    pub terminals: usize,
    /// Whether the exploration was exhaustive (false = the state budget
    /// was hit first; smoke mode).
    pub complete: bool,
    /// The first violation found, if any.
    pub violation: Option<Violation>,
}

/// Per-region model state.
#[derive(Clone, PartialEq, Eq, Hash)]
struct MRegion {
    nblocks: u8,
    /// The claim counter (monotone under the atomic protocol; the torn
    /// variant can move it backwards, which is the bug).
    next: u8,
    done: u8,
    panicked: bool,
    /// Per-block execution count.
    exec: [u8; MAX_BLOCKS],
}

/// What a thread is currently doing (top of its frame stack).
#[derive(Clone, PartialEq, Eq, Hash)]
enum Act {
    /// `run_region`: push the region onto the shared queue (+ notify).
    Push { r: u8 },
    /// The participant claim loop. `torn_read` holds the first half of a
    /// torn (buggy) claim.
    Claim {
        r: u8,
        submitter: bool,
        torn_read: Option<u8>,
    },
    /// Between claim and completion: the block body runs here.
    Exec { r: u8, b: u8 },
    /// The completion critical section: `done += 1`, record panic,
    /// notify on last.
    Complete { r: u8, b: u8, panicked: bool },
    /// Submitter waiting for `done == nblocks`.
    WaitDone { r: u8 },
    /// Parked worker / worker scanning the queue.
    Idle,
}

#[derive(Clone, PartialEq, Eq, Hash)]
struct State {
    regions: [MRegion; 2],
    queue: Vec<u8>,
    /// Frame stack per thread; thread 0 is the root submitter (empty
    /// stack = returned), threads 1.. are workers (bottom frame `Idle`).
    threads: Vec<Vec<Act>>,
    /// Whether the root submitter re-threw a recorded panic.
    root_panic_delivered: bool,
}

/// The model's claim counter: routes the *shared* `try_claim` /
/// `region_exhausted` logic over a simulated cell.
struct ModelCounter(Cell<u8>);

impl ClaimCounter for ModelCounter {
    fn fetch_inc(&self) -> usize {
        let v = self.0.get();
        self.0.set(v.saturating_add(1));
        v as usize
    }
    fn peek(&self) -> usize {
        self.0.get() as usize
    }
}

impl State {
    fn initial(cfg: &Config) -> State {
        let mk = |nblocks: usize| MRegion {
            nblocks: nblocks as u8,
            next: 0,
            done: 0,
            panicked: false,
            exec: [0; MAX_BLOCKS],
        };
        let inner_blocks = cfg.nested.map_or(0, |(_, ib)| ib);
        let mut threads = vec![vec![Act::Push { r: 0 }]];
        for _ in 1..cfg.threads {
            threads.push(vec![Act::Idle]);
        }
        State {
            regions: [mk(cfg.blocks), mk(inner_blocks)],
            queue: Vec::new(),
            threads,
            root_panic_delivered: false,
        }
    }

    fn enabled(&self, t: usize) -> bool {
        match self.threads[t].last() {
            None => false,
            Some(Act::WaitDone { r }) => {
                let rg = &self.regions[*r as usize];
                is_last_completion(rg.done as usize, rg.nblocks as usize)
            }
            Some(Act::Idle) => !self.queue.is_empty(),
            Some(_) => true,
        }
    }
}

/// Applies one step of thread `t`. Returns the successor state, a trace
/// line, and an immediate violation if the step itself exposed one.
fn apply(st: &State, t: usize, cfg: &Config) -> (State, String, Option<(Property, String)>) {
    let mut s = st.clone();
    // `enabled` guarantees a non-empty stack; `ti` stays valid across the
    // pushes below because frames are only ever pushed above it.
    let ti = s.threads[t].len() - 1; // tqt:allow(expect): enabledness precondition
    let top = s.threads[t][ti].clone();
    let mut violation = None;
    let desc;
    match top {
        Act::Push { r } => {
            s.queue.push(r);
            s.threads[t][ti] = Act::Claim {
                r,
                submitter: true,
                torn_read: None,
            };
            desc = format!("push region r{r}, wake workers");
        }
        Act::Claim {
            r,
            submitter,
            torn_read,
        } => {
            let ri = r as usize;
            let nblocks = s.regions[ri].nblocks as usize;
            let claimed: Option<Option<usize>> = if cfg.bug == Some(Bug::TornClaim) {
                match torn_read {
                    None => {
                        // First half of the torn claim: read only.
                        s.threads[t][ti] = Act::Claim {
                            r,
                            submitter,
                            torn_read: Some(s.regions[ri].next),
                        };
                        None
                    }
                    Some(read) => {
                        // Second half: write read+1, losing any interleaved
                        // increment — the seeded bug.
                        s.regions[ri].next = read.saturating_add(1);
                        Some(((read as usize) < nblocks).then_some(read as usize))
                    }
                }
            } else {
                // The real protocol: one atomic fetch-inc, routed through
                // the shared decision function.
                let c = ModelCounter(Cell::new(s.regions[ri].next));
                let got = try_claim(&c, nblocks);
                s.regions[ri].next = c.0.get();
                Some(got)
            };
            match claimed {
                None => desc = format!("torn-claim read r{r} next={}", s.regions[ri].next),
                Some(Some(b)) => {
                    s.threads[t].push(Act::Exec { r, b: b as u8 });
                    desc = format!("claim r{r} block {b}");
                }
                Some(None) => {
                    if submitter {
                        s.threads[t][ti] = Act::WaitDone { r };
                        desc = format!("r{r} exhausted; submitter waits for completion");
                    } else {
                        s.threads[t].pop();
                        desc = format!("r{r} exhausted; worker returns to queue scan");
                    }
                }
            }
        }
        Act::Exec { r, b } => {
            let ri = r as usize;
            let bi = b as usize;
            s.regions[ri].exec[bi] += 1;
            if s.regions[ri].exec[bi] > 1 {
                violation = Some((
                    Property::DuplicateExecution,
                    format!("block {b} of region r{r} executed twice"),
                ));
            }
            let panics = cfg.panic_at == Some((ri, bi));
            if let Some((ob, _)) = cfg.nested {
                if ri == 0 && bi == ob {
                    // The block body submits the nested region and (as its
                    // submitter) participates until it completes; its own
                    // completion is pending beneath.
                    s.threads[t][ti] = Act::Complete {
                        r,
                        b,
                        panicked: panics,
                    };
                    s.threads[t].push(Act::Push { r: 1 });
                    desc = format!("exec r{r} block {b}: submits nested region r1");
                    return (s, format!("t{t}: {desc}"), violation);
                }
            }
            s.threads[t][ti] = Act::Complete {
                r,
                b,
                panicked: panics,
            };
            desc = if panics {
                format!("exec r{r} block {b}: body panics (caught)")
            } else {
                format!("exec r{r} block {b}")
            };
        }
        Act::Complete { r, b, panicked } => {
            let ri = r as usize;
            let rg = &mut s.regions[ri];
            rg.done += 1;
            if rg.done > rg.nblocks {
                violation = Some((
                    Property::Corruption,
                    format!("region r{r} done-count {} exceeds {} blocks", rg.done, rg.nblocks),
                ));
            }
            if panicked && cfg.bug != Some(Bug::DropPanic) {
                rg.panicked = true;
            }
            let last = is_last_completion(rg.done as usize, rg.nblocks as usize);
            s.threads[t].pop();
            desc = format!(
                "complete r{r} block {b}{}{}",
                if panicked { " (panicked)" } else { "" },
                if last { "; notify submitter" } else { "" }
            );
        }
        Act::WaitDone { r } => {
            let ri = r as usize;
            let panicked = s.regions[ri].panicked;
            s.threads[t].pop();
            if panicked {
                // resume_unwind on the submitter: inside a nested block
                // body it unwinds into the enclosing block's catch, at the
                // root it reaches the caller.
                if let Some(Act::Complete { panicked: p, .. }) = s.threads[t].last_mut() {
                    *p = true;
                    desc = format!("r{r} done; rethrow panic into enclosing block");
                } else if t == 0 && s.threads[t].is_empty() {
                    s.root_panic_delivered = true;
                    desc = format!("r{r} done; panic re-thrown to root caller");
                } else {
                    desc = format!("r{r} done; panic re-thrown");
                }
            } else {
                desc = format!("r{r} done; submitter returns");
            }
        }
        Act::Idle => {
            let front = s.queue[0];
            let ri = front as usize;
            let c = ModelCounter(Cell::new(s.regions[ri].next));
            if region_exhausted(&c, s.regions[ri].nblocks as usize) {
                s.queue.remove(0);
                desc = format!("pop exhausted r{front} from queue");
            } else {
                s.threads[t].push(Act::Claim {
                    r: front,
                    submitter: false,
                    torn_read: None,
                });
                desc = format!("worker joins r{front}");
            }
        }
    }
    (s, format!("t{t}: {desc}"), violation)
}

/// Checks the terminal-state properties; `None` means the schedule is
/// clean.
fn terminal_violation(st: &State, cfg: &Config) -> Option<(Property, String)> {
    // Good-terminal shape: root returned, workers parked, queue drained.
    if !st.threads[0].is_empty() {
        return Some((
            Property::Deadlock,
            "root submitter can no longer step but has not returned".into(),
        ));
    }
    for (t, stack) in st.threads.iter().enumerate().skip(1) {
        if stack.len() != 1 {
            return Some((
                Property::Deadlock,
                format!("worker t{t} is stuck mid-region with no enabled step"),
            ));
        }
    }
    if !st.queue.is_empty() {
        return Some((
            Property::Deadlock,
            format!("queue still holds regions {:?} with every thread parked", st.queue),
        ));
    }
    let submitted: &[usize] = if cfg.nested.is_some() { &[0, 1] } else { &[0] };
    for &ri in submitted {
        let rg = &st.regions[ri];
        for b in 0..rg.nblocks as usize {
            match rg.exec[b] {
                0 => {
                    return Some((
                        Property::LostBlock,
                        format!("block {b} of region r{ri} never executed"),
                    ))
                }
                1 => {}
                n => {
                    return Some((
                        Property::DuplicateExecution,
                        format!("block {b} of region r{ri} executed {n} times"),
                    ))
                }
            }
        }
        if rg.done != rg.nblocks {
            return Some((
                Property::Corruption,
                format!("region r{ri} finished with done={} of {}", rg.done, rg.nblocks),
            ));
        }
    }
    match (cfg.panic_at, st.root_panic_delivered) {
        (Some((r, b)), false) => Some((
            Property::PanicLost,
            format!("panic from block {b} of region r{r} never reached the root submitter"),
        )),
        (None, true) => Some((
            Property::PanicInvented,
            "a panic was delivered although no block panics".into(),
        )),
        _ => None,
    }
}

/// Exhaustively explores every interleaving of `cfg` (up to `max_states`
/// distinct states; smoke mode passes a small budget and accepts
/// `complete == false`). Returns the first violation with its schedule.
///
/// # Panics
///
/// Panics if `cfg` exceeds the model bounds ([`MAX_THREADS`],
/// [`MAX_BLOCKS`]).
pub fn check(cfg: &Config, max_states: usize) -> Outcome {
    assert!(
        (2..=MAX_THREADS).contains(&cfg.threads),
        "model supports 2..={MAX_THREADS} threads"
    );
    assert!(
        (1..=MAX_BLOCKS).contains(&cfg.blocks),
        "model supports 1..={MAX_BLOCKS} root blocks"
    );
    if let Some((ob, ib)) = cfg.nested {
        assert!(ob < cfg.blocks, "nesting block out of range");
        assert!((1..=MAX_BLOCKS).contains(&ib), "inner blocks out of range");
        assert!(
            cfg.panic_at != Some((0, ob)),
            "the nesting block delivers inner panics; configure the panic inside the \
             nested region instead"
        );
    }
    if let Some((r, b)) = cfg.panic_at {
        let nb = if r == 0 {
            cfg.blocks
        } else {
            cfg.nested.map_or(0, |(_, ib)| ib)
        };
        assert!(b < nb, "panic block out of range");
    }

    let mut out = Outcome {
        states: 0,
        terminals: 0,
        complete: true,
        violation: None,
    };
    let mut visited: HashSet<State> = HashSet::new();
    let mut trace: Vec<String> = Vec::new();
    let init = State::initial(cfg);
    dfs(&init, cfg, max_states, &mut visited, &mut trace, &mut out);
    out
}

fn dfs(
    st: &State,
    cfg: &Config,
    max_states: usize,
    visited: &mut HashSet<State>,
    trace: &mut Vec<String>,
    out: &mut Outcome,
) {
    if out.violation.is_some() {
        return;
    }
    if !visited.insert(st.clone()) {
        return;
    }
    if visited.len() > max_states {
        out.complete = false;
        return;
    }
    out.states = visited.len();
    let enabled: Vec<usize> = (0..st.threads.len()).filter(|&t| st.enabled(t)).collect();
    if enabled.is_empty() {
        match terminal_violation(st, cfg) {
            Some((property, detail)) => {
                out.violation = Some(Violation {
                    property,
                    detail,
                    trace: trace.clone(),
                });
            }
            None => out.terminals += 1,
        }
        return;
    }
    for t in enabled {
        let (succ, line, step_violation) = apply(st, t, cfg);
        trace.push(line);
        if let Some((property, detail)) = step_violation {
            out.violation = Some(Violation {
                property,
                detail,
                trace: trace.clone(),
            });
            trace.pop();
            return;
        }
        dfs(&succ, cfg, max_states, visited, trace, out);
        trace.pop();
        if out.violation.is_some() {
            return;
        }
    }
}

/// The pinned bounded configuration suite: every combination of 2–3
/// threads, 1–4 root blocks, no/one nested region (≤2 regions deep), and
/// no/root/nested panic, all on the unbugged protocol. CI proves the
/// whole suite; smoke mode truncates each config at a schedule budget.
pub fn protocol_configs() -> Vec<Config> {
    let mut v = Vec::new();
    for threads in 2..=MAX_THREADS {
        for blocks in 1..=MAX_BLOCKS {
            type Shape = (Option<(usize, usize)>, Vec<Option<(usize, usize)>>);
            let mut shapes: Vec<Shape> =
                vec![(None, vec![None, Some((0, 0)), Some((0, blocks - 1))])];
            if blocks >= 2 {
                // Nested region submitted from the first and from the last
                // root block; panics in the root and in the nested region.
                shapes.push((Some((blocks - 1, 2)), vec![None, Some((0, 0)), Some((1, 1))]));
                shapes.push((Some((0, 1)), vec![None, Some((1, 0))]));
            }
            for (nested, panics) in shapes {
                for panic_at in panics {
                    if panic_at == nested.map(|(ob, _)| (0, ob)) {
                        continue; // the nesting block itself may not panic
                    }
                    v.push(Config {
                        threads,
                        blocks,
                        nested,
                        panic_at,
                        bug: None,
                    });
                }
            }
        }
    }
    // Deduplicate panic targets that coincide (blocks == 1).
    v.dedup_by(|a, b| {
        a.threads == b.threads
            && a.blocks == b.blocks
            && a.nested == b.nested
            && a.panic_at == b.panic_at
    });
    v
}

// ---------------------------------------------------------------------
// Batching-queue protocol core (used by queue.rs and by the model)
// ---------------------------------------------------------------------

/// The largest ladder rung that fits `pending` requests, or `None` when
/// fewer than the smallest rung are waiting. `ladder` must be sorted
/// ascending; serving ladders start at rung 1 so any backlog can drain.
pub fn pick_rung(ladder: &[usize], pending: usize) -> Option<usize> {
    ladder.iter().rev().find(|&&r| r <= pending).copied()
}

/// What a serving worker should do with the admission queue in its
/// current state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchDecision {
    /// Claim the first `rung` pending requests as one batch.
    Dispatch(usize),
    /// Block until a submit, a deadline expiry, or shutdown changes the
    /// state (condvar wait in the real queue).
    Wait,
    /// The queue is draining and empty: the worker exits.
    Exit,
}

/// The admission queue's coalescing decision: dispatch the largest
/// ladder rung that fits once the backlog fills the top rung, once the
/// oldest request's max-wait deadline expires (`oldest_due`), whenever
/// no other worker is busy (`!any_busy` — the work-conserving rule:
/// holding out for a fuller batch only pays while somebody is computing,
/// otherwise waiting adds latency and no batching), or unconditionally
/// while `draining` — otherwise hold out for a bigger batch.
/// [`crate::queue::BatchQueue`] calls this under its mutex; the model
/// checker ([`batch_check`]) enumerates it over every reachable queue
/// state — same function, no transcript to drift.
pub fn batch_decision(
    ladder: &[usize],
    pending: usize,
    oldest_due: bool,
    any_busy: bool,
    draining: bool,
) -> BatchDecision {
    if pending == 0 {
        return if draining {
            BatchDecision::Exit
        } else {
            BatchDecision::Wait
        };
    }
    let top_full = ladder.last().is_some_and(|&top| pending >= top);
    if top_full || oldest_due || !any_busy || draining {
        match pick_rung(ladder, pending) {
            Some(rung) => BatchDecision::Dispatch(rung),
            None => BatchDecision::Wait,
        }
    } else {
        BatchDecision::Wait
    }
}

// ---------------------------------------------------------------------
// Bounded model checker for the batching protocol
// ---------------------------------------------------------------------

/// Maximum total requests a batch model configuration may submit.
pub const MAX_REQS: usize = 4;
/// Maximum serving workers the batch model supports.
pub const MAX_WORKERS: usize = 2;

/// A deliberately broken batching variant — each must be refuted by
/// [`batch_check`] (the analogue of [`Bug`] for the admission queue).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchBug {
    /// The worker ignores both wake signals — the deadline expiry and
    /// the work-conserving idle-worker rule: partial batches only ever
    /// dispatch when the top rung fills or the queue drains. With no
    /// shutdown coming, a due request is stranded forever.
    SleepOnDue,
    /// Draining exits as soon as the backlog no longer fills the top
    /// rung, leaking the remainder.
    LeakOnDrain,
    /// The dispatch leaves the batch head in the queue (a torn claim):
    /// the head request is handed to two batches.
    DoubleDispatch,
}

/// One bounded batching configuration.
#[derive(Debug, Clone, Copy)]
pub struct BatchConfig {
    /// Concurrent submitting clients.
    pub clients: usize,
    /// Requests each client submits, one at a time.
    pub requests_per_client: usize,
    /// Serving workers running the claim/complete loop.
    pub workers: usize,
    /// The batch ladder (sorted ascending, rung 1 first).
    pub ladder: &'static [usize],
    /// Whether the owner shuts the queue down after every client has
    /// submitted (the drain path). Without shutdown the run must finish
    /// on full-rung and deadline dispatches alone — which is what makes
    /// [`BatchBug::SleepOnDue`] observable.
    pub shutdown: bool,
    /// Seeded protocol bug (refutation tests only).
    pub bug: Option<BatchBug>,
}

/// What one model worker is doing.
#[derive(Clone, PartialEq, Eq, Hash)]
enum BWorker {
    /// Parked on (or re-checking) the admission condvar.
    Idle,
    /// Holding a claimed batch; the next step completes it.
    Busy { batch: Vec<u8> },
    /// Exited after observing the drained queue.
    Done,
}

#[derive(Clone, PartialEq, Eq, Hash)]
struct BState {
    /// Pending request ids in FIFO admission order.
    queue: Vec<u8>,
    /// Bitmask of requests whose max-wait deadline has expired. The
    /// timer actor marks requests due in admission order, matching the
    /// monotone deadlines of a FIFO queue.
    due: u8,
    /// Submissions left per client.
    remaining: Vec<u8>,
    /// Per-request dispatch count.
    dispatched: [u8; MAX_REQS],
    /// Per-request completion count.
    completed: [u8; MAX_REQS],
    workers: Vec<BWorker>,
    draining: bool,
}

impl BState {
    fn initial(cfg: &BatchConfig) -> BState {
        BState {
            queue: Vec::new(),
            due: 0,
            remaining: vec![cfg.requests_per_client as u8; cfg.clients],
            dispatched: [0; MAX_REQS],
            completed: [0; MAX_REQS],
            workers: vec![BWorker::Idle; cfg.workers],
            draining: false,
        }
    }

    /// The worker-visible decision, with bug injection at the exact
    /// points the bugs corrupt.
    fn decision(&self, cfg: &BatchConfig) -> BatchDecision {
        let pending = self.queue.len();
        let mut oldest_due = self
            .queue
            .first()
            .is_some_and(|&h| self.due & (1 << h) != 0);
        let mut any_busy = self
            .workers
            .iter()
            .any(|w| matches!(w, BWorker::Busy { .. }));
        if cfg.bug == Some(BatchBug::SleepOnDue) {
            oldest_due = false;
            any_busy = true; // suppresses the idle-worker dispatch too
        }
        if cfg.bug == Some(BatchBug::LeakOnDrain)
            && self.draining
            && cfg.ladder.last().is_some_and(|&top| pending < top)
        {
            return BatchDecision::Exit;
        }
        batch_decision(cfg.ladder, pending, oldest_due, any_busy, self.draining)
    }
}

/// Actor indices: `0..clients` are clients, then `workers`, then the
/// deadline timer, then the owner (shutdown).
fn batch_actors(cfg: &BatchConfig) -> usize {
    cfg.clients + cfg.workers + 2
}

fn batch_enabled(st: &BState, a: usize, cfg: &BatchConfig) -> bool {
    if a < cfg.clients {
        return st.remaining[a] > 0;
    }
    let a = a - cfg.clients;
    if a < cfg.workers {
        return match &st.workers[a] {
            BWorker::Busy { .. } => true,
            BWorker::Done => false,
            BWorker::Idle => st.decision(cfg) != BatchDecision::Wait,
        };
    }
    if a == cfg.workers {
        // Timer: the oldest not-yet-due pending request can expire.
        return st.queue.iter().any(|&r| st.due & (1 << r) == 0);
    }
    // Owner: shuts down once, after every client finished submitting.
    cfg.shutdown && !st.draining && st.remaining.iter().all(|&r| r == 0)
}

/// Applies one step of actor `a`; mirrors [`apply`] for the batching
/// model.
fn batch_apply(
    st: &BState,
    a: usize,
    cfg: &BatchConfig,
) -> (BState, String, Option<(Property, String)>) {
    let mut s = st.clone();
    let mut violation = None;
    let desc;
    if a < cfg.clients {
        let k = cfg.requests_per_client - s.remaining[a] as usize;
        let id = (a * cfg.requests_per_client + k) as u8;
        s.remaining[a] -= 1;
        s.queue.push(id);
        desc = format!("client c{a} submits request {id}, wake workers");
        return (s, format!("a{a}: {desc}"), violation);
    }
    let w = a - cfg.clients;
    if w < cfg.workers {
        match s.workers[w].clone() {
            BWorker::Idle => match s.decision(cfg) {
                BatchDecision::Exit => {
                    s.workers[w] = BWorker::Done;
                    desc = format!("worker w{w}: queue drained, exit");
                }
                BatchDecision::Dispatch(rung) => {
                    if !cfg.ladder.contains(&rung) || rung > s.queue.len() {
                        violation = Some((
                            Property::Corruption,
                            format!(
                                "dispatch of {rung} is not a ladder rung within the {} pending",
                                s.queue.len()
                            ),
                        ));
                    }
                    let take = rung.min(s.queue.len());
                    let batch: Vec<u8> = s.queue.drain(..take).collect();
                    if cfg.bug == Some(BatchBug::DoubleDispatch) {
                        if let Some(&head) = batch.first() {
                            // The torn claim: the head stays queued.
                            s.queue.insert(0, head);
                        }
                    }
                    for &r in &batch {
                        s.dispatched[r as usize] += 1;
                        if s.dispatched[r as usize] > 1 {
                            violation = Some((
                                Property::DuplicateDispatch,
                                format!("request {r} dispatched twice"),
                            ));
                        }
                    }
                    desc = format!("worker w{w}: dispatch batch {batch:?} (rung {rung})");
                    s.workers[w] = BWorker::Busy { batch };
                }
                BatchDecision::Wait => unreachable!("Wait workers are not enabled"),
            },
            BWorker::Busy { batch } => {
                for &r in &batch {
                    s.completed[r as usize] += 1;
                }
                desc = format!("worker w{w}: complete batch {batch:?}, wake clients");
                s.workers[w] = BWorker::Idle;
            }
            BWorker::Done => unreachable!("Done workers are not enabled"),
        }
        return (s, format!("a{a}: {desc}"), violation);
    }
    if w == cfg.workers {
        let r = st
            .queue
            .iter()
            .copied()
            .find(|&r| st.due & (1 << r) == 0)
            .unwrap_or(0); // tqt:allow(expect): enabledness precondition
        s.due |= 1 << r;
        desc = format!("timer: request {r} max-wait deadline expires, wake workers");
    } else {
        s.draining = true;
        desc = "owner: shutdown — queue drains, wake workers".to_string();
    }
    (s, format!("a{a}: {desc}"), violation)
}

/// Terminal-state properties of the batching model; `None` = clean.
fn batch_terminal_violation(st: &BState, cfg: &BatchConfig) -> Option<(Property, String)> {
    if !st.queue.is_empty() {
        let p = if st.draining {
            Property::LostRequest
        } else {
            Property::DeadlineStall
        };
        return Some((
            p,
            format!(
                "requests {:?} still pending with no worker able to dispatch",
                st.queue
            ),
        ));
    }
    for (w, wk) in st.workers.iter().enumerate() {
        let stuck = match wk {
            BWorker::Busy { .. } => true,
            BWorker::Done => false,
            BWorker::Idle => st.draining,
        };
        if stuck {
            return Some((
                Property::Deadlock,
                format!("worker w{w} stuck mid-protocol at the terminal state"),
            ));
        }
    }
    let total = cfg.clients * cfg.requests_per_client;
    for r in 0..total {
        match (st.dispatched[r], st.completed[r]) {
            (1, 1) => {}
            (0, _) => {
                return Some((
                    Property::LostRequest,
                    format!("request {r} was never dispatched"),
                ))
            }
            (n, _) if n > 1 => {
                return Some((
                    Property::DuplicateDispatch,
                    format!("request {r} dispatched {n} times"),
                ))
            }
            (_, c) => {
                return Some((
                    Property::LostRequest,
                    format!("request {r} completed {c} times"),
                ))
            }
        }
    }
    None
}

/// Exhaustively explores every interleaving of the batching protocol
/// under `cfg` — the admission-queue analogue of [`check`], reusing the
/// same [`Outcome`]/[`Violation`] reporting.
///
/// # Panics
///
/// Panics if `cfg` exceeds the model bounds ([`MAX_REQS`],
/// [`MAX_WORKERS`]) or carries a malformed ladder.
pub fn batch_check(cfg: &BatchConfig, max_states: usize) -> Outcome {
    assert!(cfg.clients >= 1 && cfg.requests_per_client >= 1);
    assert!(
        cfg.clients * cfg.requests_per_client <= MAX_REQS,
        "model supports at most {MAX_REQS} total requests"
    );
    assert!(
        (1..=MAX_WORKERS).contains(&cfg.workers),
        "model supports 1..={MAX_WORKERS} workers"
    );
    assert!(
        cfg.ladder.first() == Some(&1) && cfg.ladder.windows(2).all(|w| w[0] < w[1]),
        "ladder must be sorted ascending starting at rung 1"
    );
    let mut out = Outcome {
        states: 0,
        terminals: 0,
        complete: true,
        violation: None,
    };
    let mut visited: HashSet<BState> = HashSet::new();
    let mut trace: Vec<String> = Vec::new();
    let init = BState::initial(cfg);
    batch_dfs(&init, cfg, max_states, &mut visited, &mut trace, &mut out);
    out
}

fn batch_dfs(
    st: &BState,
    cfg: &BatchConfig,
    max_states: usize,
    visited: &mut HashSet<BState>,
    trace: &mut Vec<String>,
    out: &mut Outcome,
) {
    if out.violation.is_some() {
        return;
    }
    if !visited.insert(st.clone()) {
        return;
    }
    if visited.len() > max_states {
        out.complete = false;
        return;
    }
    out.states = visited.len();
    let enabled: Vec<usize> = (0..batch_actors(cfg))
        .filter(|&a| batch_enabled(st, a, cfg))
        .collect();
    if enabled.is_empty() {
        match batch_terminal_violation(st, cfg) {
            Some((property, detail)) => {
                out.violation = Some(Violation {
                    property,
                    detail,
                    trace: trace.clone(),
                });
            }
            None => out.terminals += 1,
        }
        return;
    }
    for a in enabled {
        let (succ, line, step_violation) = batch_apply(st, a, cfg);
        trace.push(line);
        if let Some((property, detail)) = step_violation {
            out.violation = Some(Violation {
                property,
                detail,
                trace: trace.clone(),
            });
            trace.pop();
            return;
        }
        batch_dfs(&succ, cfg, max_states, visited, trace, out);
        trace.pop();
        if out.violation.is_some() {
            return;
        }
    }
}

/// The pinned batching suite: 1–2 clients × 1–2 requests each × 1–2
/// workers × two ladders, with and without the shutdown/drain path, all
/// on the unbugged protocol. The no-shutdown half forces every partial
/// batch through the deadline path; the shutdown half proves the drain.
pub fn batch_protocol_configs() -> Vec<BatchConfig> {
    let mut v = Vec::new();
    for clients in 1..=2 {
        for requests_per_client in 1..=2 {
            for workers in 1..=MAX_WORKERS {
                for ladder in [&[1usize, 2][..], &[1, 2, 4][..]] {
                    for shutdown in [false, true] {
                        v.push(BatchConfig {
                            clients,
                            requests_per_client,
                            workers,
                            ladder,
                            shutdown,
                            bug: None,
                        });
                    }
                }
            }
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn try_claim_hands_out_each_block_once_then_stops() {
        let next = AtomicUsize::new(0);
        let mut got = Vec::new();
        while let Some(b) = try_claim(&next, 3) {
            got.push(b);
        }
        assert_eq!(got, vec![0, 1, 2]);
        assert!(region_exhausted(&next, 3));
        assert!(try_claim(&next, 3).is_none(), "stays exhausted");
    }

    #[test]
    fn last_completion_predicate() {
        assert!(!is_last_completion(2, 3));
        assert!(is_last_completion(3, 3));
    }

    #[test]
    fn fold_partition_is_closed_form() {
        assert_eq!(
            fold_partition(10, 4),
            vec![(0, 0..4), (1, 4..8), (2, 8..10)]
        );
        assert!(fold_partition(0, 4).is_empty());
    }

    #[test]
    fn small_clean_config_is_proven() {
        let cfg = Config {
            threads: 2,
            blocks: 2,
            nested: None,
            panic_at: None,
            bug: None,
        };
        let out = check(&cfg, 1_000_000);
        assert!(out.complete, "exploration must be exhaustive");
        assert!(out.violation.is_none(), "{:?}", out.violation);
        assert!(out.terminals > 0, "at least one complete schedule");
    }

    #[test]
    fn nested_panic_reaches_root() {
        let cfg = Config {
            threads: 2,
            blocks: 2,
            nested: Some((1, 2)),
            panic_at: Some((1, 0)),
            bug: None,
        };
        let out = check(&cfg, 2_000_000);
        assert!(out.complete);
        assert!(out.violation.is_none(), "{}", out.violation.unwrap());
    }

    #[test]
    fn torn_claim_is_refuted_with_counterexample() {
        let cfg = Config {
            threads: 3,
            blocks: 2,
            nested: None,
            panic_at: None,
            bug: Some(Bug::TornClaim),
        };
        let out = check(&cfg, 2_000_000);
        let v = out.violation.expect("torn claim must violate a property");
        assert!(
            matches!(
                v.property,
                Property::DuplicateExecution | Property::Deadlock | Property::LostBlock
            ),
            "{v}"
        );
        assert!(!v.trace.is_empty(), "counterexample trace must be present");
    }

    #[test]
    fn dropped_panic_is_refuted() {
        let cfg = Config {
            threads: 2,
            blocks: 1,
            nested: None,
            panic_at: Some((0, 0)),
            bug: Some(Bug::DropPanic),
        };
        let out = check(&cfg, 1_000_000);
        let v = out.violation.expect("dropped panic must be caught");
        assert_eq!(v.property, Property::PanicLost, "{v}");
    }

    #[test]
    fn config_suite_stays_in_bounds() {
        let cfgs = protocol_configs();
        assert!(!cfgs.is_empty());
        for c in &cfgs {
            assert!(c.threads <= MAX_THREADS && c.blocks <= MAX_BLOCKS);
            assert!(c.bug.is_none(), "the pinned suite checks the real protocol");
        }
    }

    #[test]
    fn pick_rung_takes_the_largest_fit() {
        let ladder = [1, 2, 4, 8];
        assert_eq!(pick_rung(&ladder, 0), None);
        assert_eq!(pick_rung(&ladder, 1), Some(1));
        assert_eq!(pick_rung(&ladder, 3), Some(2));
        assert_eq!(pick_rung(&ladder, 7), Some(4));
        assert_eq!(pick_rung(&ladder, 23), Some(8));
    }

    #[test]
    fn batch_decision_coalesces_and_drains() {
        let ladder = [1usize, 2, 4];
        // Hold out for a fuller batch while another worker is busy and
        // nothing is due.
        assert_eq!(batch_decision(&ladder, 3, false, true, false), BatchDecision::Wait);
        // Work-conserving: with every worker idle, dispatch immediately.
        assert_eq!(
            batch_decision(&ladder, 3, false, false, false),
            BatchDecision::Dispatch(2)
        );
        // Top rung full: dispatch the largest fit.
        assert_eq!(
            batch_decision(&ladder, 5, false, true, false),
            BatchDecision::Dispatch(4)
        );
        // Deadline expired: flush the partial batch.
        assert_eq!(
            batch_decision(&ladder, 3, true, true, false),
            BatchDecision::Dispatch(2)
        );
        // Draining: flush everything, then exit on empty.
        assert_eq!(
            batch_decision(&ladder, 1, false, true, true),
            BatchDecision::Dispatch(1)
        );
        assert_eq!(batch_decision(&ladder, 0, false, false, true), BatchDecision::Exit);
        assert_eq!(batch_decision(&ladder, 0, false, false, false), BatchDecision::Wait);
    }

    #[test]
    fn small_clean_batch_config_is_proven() {
        let cfg = BatchConfig {
            clients: 2,
            requests_per_client: 2,
            workers: 2,
            ladder: &[1, 2],
            shutdown: true,
            bug: None,
        };
        let out = batch_check(&cfg, 2_000_000);
        assert!(out.complete, "exploration must be exhaustive");
        assert!(out.violation.is_none(), "{}", out.violation.unwrap());
        assert!(out.terminals > 0);
    }

    #[test]
    fn sleeping_on_the_deadline_strands_a_request() {
        // One lone request, ladder top 2, no shutdown: only the deadline
        // path can flush it — the sleeping worker never does.
        let cfg = BatchConfig {
            clients: 1,
            requests_per_client: 1,
            workers: 1,
            ladder: &[1, 2],
            shutdown: false,
            bug: Some(BatchBug::SleepOnDue),
        };
        let out = batch_check(&cfg, 1_000_000);
        let v = out.violation.expect("stranded request must be refuted");
        assert_eq!(v.property, Property::DeadlineStall, "{v}");
        assert!(!v.trace.is_empty());
    }

    #[test]
    fn leaky_drain_loses_the_remainder() {
        let cfg = BatchConfig {
            clients: 1,
            requests_per_client: 1,
            workers: 1,
            ladder: &[1, 2],
            shutdown: true,
            bug: Some(BatchBug::LeakOnDrain),
        };
        let out = batch_check(&cfg, 1_000_000);
        let v = out.violation.expect("leaked remainder must be refuted");
        assert!(
            matches!(v.property, Property::LostRequest | Property::DeadlineStall),
            "{v}"
        );
    }

    #[test]
    fn double_dispatch_is_refuted() {
        let cfg = BatchConfig {
            clients: 2,
            requests_per_client: 1,
            workers: 2,
            ladder: &[1, 2],
            shutdown: true,
            bug: Some(BatchBug::DoubleDispatch),
        };
        let out = batch_check(&cfg, 2_000_000);
        let v = out.violation.expect("torn batch claim must be refuted");
        assert_eq!(v.property, Property::DuplicateDispatch, "{v}");
    }

    #[test]
    fn batch_suite_stays_in_bounds() {
        let cfgs = batch_protocol_configs();
        assert!(cfgs.len() >= 16);
        for c in &cfgs {
            assert!(c.clients * c.requests_per_client <= MAX_REQS);
            assert!(c.workers <= MAX_WORKERS);
            assert!(c.bug.is_none(), "the pinned suite checks the real protocol");
        }
    }
}
