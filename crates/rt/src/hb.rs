//! Happens-before sanitizer (`TQT-V022`): runtime checking of the two
//! disciplines the pool's `unsafe` blocks rely on but cannot express in
//! the type system.
//!
//! The pool hands mutable sub-slices of one buffer to concurrently
//! running blocks ([`crate::pool::par_chunks_mut`]) and the scratch
//! arenas hand out thread-local buffers under an RAII checkout. Both are
//! sound only under invariants the borrow checker never sees:
//!
//! 1. **Block-range disjointness + coverage** — the chunk ranges carved
//!    for a region must partition `[0, len)` exactly: pairwise disjoint
//!    (two blocks writing one element is a data race) and jointly
//!    covering (a gap means a chunk was silently skipped).
//! 2. **No cross-region scratch escapes** — a scratch checkout made
//!    inside a parallel block must be returned inside that same block.
//!    A guard that outlives its block (stashed and dropped elsewhere)
//!    would push the buffer onto the free stack while another region can
//!    still reach it, aliasing later checkouts.
//!
//! The module is always compiled; every entry point is a no-op unless the
//! `sanitize` cargo feature is on ([`enabled`]), so instrumentation calls
//! need no `cfg` at the call sites (`pool.rs`, `tensor/src/scratch.rs`).
//! Violations are reported to stderr immediately and recorded in a global
//! findings registry that `tqt-verify` drains into `TQT-V022` diagnostics
//! after a sanitized sweep ([`take_findings`]).
//!
//! Block identity is tracked with a per-thread *(depth, serial)* context:
//! [`crate::pool`] opens a fresh context around every block body (nesting
//! increments the depth and allocates a fresh serial from a global
//! epoch), and scratch guards stamp the context at checkout and compare
//! at check-in. A mismatch in either direction — guard dropped deeper
//! (escaped *into* a nested region) or shallower (outlived its block) —
//! is an escape.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Whether the sanitizer is compiled in (the `sanitize` cargo feature).
pub const fn enabled() -> bool {
    cfg!(feature = "sanitize")
}

// ---------------------------------------------------------------------
// Findings registry
// ---------------------------------------------------------------------

fn findings() -> &'static Mutex<Vec<String>> {
    static FINDINGS: OnceLock<Mutex<Vec<String>>> = OnceLock::new();
    FINDINGS.get_or_init(|| Mutex::new(Vec::new()))
}

/// Records one sanitizer finding (and echoes it to stderr). Callers
/// outside this module normally never report directly — the
/// instrumentation hooks do.
pub fn report(site: &str, detail: &str) {
    let line = format!("{site}: {detail}");
    eprintln!("[tqt-rt hb] {line}");
    findings().lock().unwrap().push(line); // tqt:allow(unwrap): sanitizer registry lock cannot poison (push only)
}

/// Drains and returns every finding recorded so far (used by the
/// `tqt-verify` sweep to turn them into `TQT-V022` diagnostics).
pub fn take_findings() -> Vec<String> {
    std::mem::take(&mut *findings().lock().unwrap()) // tqt:allow(unwrap): sanitizer registry lock cannot poison (push only)
}

/// Number of findings currently recorded.
pub fn findings_count() -> usize {
    findings().lock().unwrap().len() // tqt:allow(unwrap): sanitizer registry lock cannot poison (push only)
}

// ---------------------------------------------------------------------
// Block context (depth, serial) + scratch checkout stamps
// ---------------------------------------------------------------------

/// Global epoch for block serials; never reused, so two distinct blocks
/// can never present the same (depth, serial) pair.
static EPOCH: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// The executing block's identity on this thread; (0, 0) = outside
    /// any parallel block.
    static CONTEXT: Cell<(u32, u64)> = const { Cell::new((0, 0)) };
}

/// RAII guard for one block body's context; restores the enclosing
/// context (one level up) on drop.
#[derive(Debug)]
pub struct BlockScope {
    prev: Option<(u32, u64)>,
}

/// Opens a block context: the pool wraps every block body (serial path
/// included) in one of these. No-op unless [`enabled`].
pub fn block_scope() -> BlockScope {
    if !enabled() {
        return BlockScope { prev: None };
    }
    let serial = EPOCH.fetch_add(1, Ordering::Relaxed);
    let prev = CONTEXT.with(|c| {
        let prev = c.get();
        c.set((prev.0 + 1, serial));
        prev
    });
    BlockScope { prev: Some(prev) }
}

impl Drop for BlockScope {
    fn drop(&mut self) {
        if let Some(prev) = self.prev {
            CONTEXT.with(|c| c.set(prev));
        }
    }
}

/// The block identity a scratch checkout happened under. Compared at
/// check-in; see [`check_checkin`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckoutStamp {
    ctx: (u32, u64),
}

/// Stamps the current block context at scratch-checkout time. Returns a
/// fixed dummy unless [`enabled`].
pub fn stamp() -> CheckoutStamp {
    if !enabled() {
        return CheckoutStamp { ctx: (0, 0) };
    }
    CheckoutStamp {
        ctx: CONTEXT.with(Cell::get),
    }
}

/// Verifies at scratch check-in (guard drop) that the checkout is being
/// returned inside the block it was taken in; reports a `TQT-V022`
/// finding otherwise. No-op unless [`enabled`].
pub fn check_checkin(stamp: CheckoutStamp, what: &str) {
    if !enabled() {
        return;
    }
    let now = CONTEXT.with(Cell::get);
    if now != stamp.ctx {
        report(
            what,
            &format!(
                "scratch checkout escaped its block: taken in block context \
                 (depth {}, serial {}), returned in (depth {}, serial {})",
                stamp.ctx.0, stamp.ctx.1, now.0, now.1
            ),
        );
    }
}

// ---------------------------------------------------------------------
// Mutable block-range checking
// ---------------------------------------------------------------------

/// Pure partition check: `ranges` (in any order) must tile `[0, len)`
/// exactly — pairwise disjoint and jointly covering. Returns a
/// description of the first defect.
///
/// # Errors
///
/// Returns `Err` with the offending range pair (overlap) or gap.
pub fn check_block_ranges(len: usize, ranges: &[(usize, usize)]) -> Result<(), String> {
    let mut sorted: Vec<(usize, usize)> = ranges
        .iter()
        .copied()
        .filter(|(s, e)| s != e)
        .collect();
    sorted.sort_unstable();
    let mut cursor = 0usize;
    for &(start, end) in &sorted {
        if start > end {
            return Err(format!("inverted range {start}..{end}"));
        }
        match start.cmp(&cursor) {
            std::cmp::Ordering::Less => {
                return Err(format!(
                    "overlapping mutable ranges: {start}..{end} begins before {cursor}"
                ));
            }
            std::cmp::Ordering::Greater => {
                return Err(format!("coverage gap: {cursor}..{start} written by no block"));
            }
            std::cmp::Ordering::Equal => cursor = end,
        }
    }
    if cursor != len {
        return Err(format!("coverage gap: {cursor}..{len} written by no block"));
    }
    Ok(())
}

/// Collects the mutable ranges a parallel region actually carves and
/// checks them against [`check_block_ranges`] once the region has
/// joined. Allocation-free (and record-free) unless [`enabled`].
#[derive(Debug)]
pub struct RangeLog {
    inner: Option<Mutex<Vec<(usize, usize)>>>,
}

impl RangeLog {
    /// A new log; inert unless the sanitizer is compiled in.
    pub fn new() -> Self {
        RangeLog {
            inner: enabled().then(|| Mutex::new(Vec::new())),
        }
    }

    /// Records one carved mutable range (called from inside block
    /// bodies).
    pub fn record(&self, start: usize, end: usize) {
        if let Some(m) = &self.inner {
            m.lock().unwrap().push((start, end)); // tqt:allow(unwrap): range log lock cannot poison (push only)
        }
    }

    /// After the region joined: verifies the recorded ranges tile
    /// `[0, len)` and reports a `TQT-V022` finding otherwise.
    pub fn check(&self, site: &str, len: usize) {
        if let Some(m) = &self.inner {
            let ranges = m.lock().unwrap(); // tqt:allow(unwrap): range log lock cannot poison (push only)
            if let Err(e) = check_block_ranges(len, &ranges) {
                report(site, &e);
            }
        }
    }
}

impl Default for RangeLog {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_tiling_passes() {
        assert!(check_block_ranges(10, &[(0, 4), (4, 8), (8, 10)]).is_ok());
        // Order-independent, empty ranges ignored.
        assert!(check_block_ranges(10, &[(8, 10), (4, 4), (0, 4), (4, 8)]).is_ok());
        assert!(check_block_ranges(0, &[]).is_ok());
    }

    #[test]
    fn overlap_gap_and_shortfall_are_caught() {
        let overlap = check_block_ranges(10, &[(0, 5), (4, 10)]).unwrap_err();
        assert!(overlap.contains("overlap"), "{overlap}");
        let gap = check_block_ranges(10, &[(0, 4), (6, 10)]).unwrap_err();
        assert!(gap.contains("gap"), "{gap}");
        let short = check_block_ranges(10, &[(0, 4), (4, 8)]).unwrap_err();
        assert!(short.contains("8..10"), "{short}");
    }

    #[cfg(feature = "sanitize")]
    #[test]
    fn context_and_findings_lifecycle() {
        // One sequential test owns all global-registry assertions (the
        // registry is process-wide).
        let _ = take_findings();

        // Checkout returned within its block: clean.
        {
            let _scope = block_scope();
            let st = stamp();
            check_checkin(st, "clean");
        }
        assert_eq!(findings_count(), 0);

        // Checkout dropped after its block exited: escape.
        let escaped = {
            let _scope = block_scope();
            stamp()
        };
        check_checkin(escaped, "outlived");
        // Checkout dropped inside a *nested* block: escape.
        {
            let _outer = block_scope();
            let st = stamp();
            let _inner = block_scope();
            check_checkin(st, "crossed-inward");
        }
        let found = take_findings();
        assert_eq!(found.len(), 2, "{found:?}");
        assert!(found[0].starts_with("outlived:"), "{found:?}");
        assert!(found[1].starts_with("crossed-inward:"), "{found:?}");
        assert_eq!(findings_count(), 0, "take_findings drains");

        // RangeLog feeds the registry through the same path.
        let log = RangeLog::new();
        log.record(0, 4);
        log.record(3, 8);
        log.check("range-site", 8);
        let found = take_findings();
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].contains("overlap"), "{found:?}");
    }

    #[cfg(not(feature = "sanitize"))]
    #[test]
    fn disabled_sanitizer_is_inert() {
        let _scope = block_scope();
        let st = stamp();
        drop(_scope);
        check_checkin(st, "never-reported");
        let log = RangeLog::new();
        log.record(0, 100);
        log.check("never-reported", 3);
        assert_eq!(findings_count(), 0);
    }
}
