//! The serving admission queue: coalesces single-request submissions
//! into dynamic batches sized to a pre-planned batch ladder.
//!
//! [`BatchQueue`] is the concurrency half of the serving core
//! (`tqt-serve` owns the model half). Clients [`submit`](BatchQueue::submit)
//! one request each and block on [`wait`](BatchQueue::wait); serving
//! workers loop on [`claim_into`](BatchQueue::claim_into), which hands
//! out the first `rung` pending requests as one batch, and publish
//! results with [`complete`](BatchQueue::complete). Which rung — and
//! whether to dispatch at all or hold out for a fuller batch — is decided
//! by [`sched::batch_decision`], the same pure function the bounded model
//! checker ([`sched::batch_check`]) exhaustively enumerates: no lost
//! request, no double dispatch, deadline-expired requests always flush,
//! and a shutdown drains every remainder before the workers exit. The
//! decision is work-conserving: a partial batch dispatches immediately
//! whenever no worker is busy (waiting can only grow a batch while
//! somebody is computing), so low offered load degrades to the plain
//! serial loop instead of serializing on the max-wait deadline.
//!
//! The real queue adds the two things the model abstracts: wall-clock
//! max-wait deadlines (a `Condvar::wait_timeout` to the oldest pending
//! request's expiry stands in for the model's timer actor) and response
//! routing back to the submitting client. Lock discipline mirrors
//! [`crate::pool`]: one mutex guards all queue state, condvar waits
//! re-check their predicate, and every decision happens inside the
//! critical section — the serializable points the model steps over.
//!
//! With the `sanitize` feature the queue additionally tracks every
//! claimed request until its response is published and reports protocol
//! violations (double claim, completion of a never-claimed request) to
//! the [`crate::hb`] findings registry, so serving tests drain them the
//! same way parallel-kernel tests do.

use std::collections::{HashMap, VecDeque};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::sched::{batch_decision, BatchDecision};

/// One queued request.
struct Pending<T> {
    seq: u64,
    admitted: Instant,
    item: T,
}

struct QState<T, R> {
    pending: VecDeque<Pending<T>>,
    responses: HashMap<u64, R>,
    next_seq: u64,
    draining: bool,
    /// Workers currently executing a claimed batch (drives the
    /// work-conserving dispatch rule).
    busy: usize,
    stats: QueueStats,
    /// Requests claimed but not yet completed (protocol sanitizer).
    #[cfg(feature = "sanitize")]
    in_flight: std::collections::HashSet<u64>,
}

/// Counters describing one queue's lifetime, for the serving report.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Requests admitted.
    pub submitted: u64,
    /// Batches dispatched.
    pub dispatched_batches: u64,
    /// Requests dispatched (equals `submitted` after a clean drain).
    pub dispatched_requests: u64,
    /// Dispatches per ladder rung, aligned with the ladder.
    pub rung_dispatches: Vec<u64>,
    /// Partial batches flushed because the oldest request's max-wait
    /// deadline expired before the top rung filled.
    pub deadline_flushes: u64,
    /// Partial batches dispatched by the work-conserving rule: every
    /// worker was idle, so waiting could not have improved batching.
    pub idle_dispatches: u64,
    /// Deepest backlog observed at admission.
    pub max_depth: usize,
}

/// A dynamic-batching admission queue over a fixed batch ladder.
///
/// `T` is the request payload a worker consumes, `R` the response routed
/// back to the submitting client. The queue is shared by reference
/// across scoped threads (see [`scoped_threads`]).
pub struct BatchQueue<T, R> {
    ladder: Vec<usize>,
    max_wait: Duration,
    state: Mutex<QState<T, R>>,
    /// Workers park here; woken by submits, expiries, and shutdown.
    admit: Condvar,
    /// Clients park here; woken by completions.
    done: Condvar,
}

impl<T, R> BatchQueue<T, R> {
    /// Creates a queue over `ladder`, flushing partial batches once the
    /// oldest pending request has waited `max_wait`.
    ///
    /// # Panics
    ///
    /// Panics unless `ladder` is sorted strictly ascending and starts at
    /// rung 1 (so any backlog can drain).
    pub fn new(ladder: &[usize], max_wait: Duration) -> Self {
        assert!(
            ladder.first() == Some(&1) && ladder.windows(2).all(|w| w[0] < w[1]),
            "ladder must be sorted ascending starting at rung 1"
        );
        BatchQueue {
            ladder: ladder.to_vec(),
            max_wait,
            state: Mutex::new(QState {
                pending: VecDeque::new(),
                responses: HashMap::new(),
                next_seq: 0,
                draining: false,
                busy: 0,
                stats: QueueStats {
                    rung_dispatches: vec![0; ladder.len()],
                    ..QueueStats::default()
                },
                #[cfg(feature = "sanitize")]
                in_flight: std::collections::HashSet::new(),
            }),
            admit: Condvar::new(),
            done: Condvar::new(),
        }
    }

    /// The batch ladder this queue coalesces to.
    pub fn ladder(&self) -> &[usize] {
        &self.ladder
    }

    /// Admits one request, returning its ticket for [`wait`](Self::wait)
    /// — or `None` once the queue is draining.
    pub fn submit(&self, item: T) -> Option<u64> {
        let mut st = self.state.lock().unwrap(); // tqt:allow(unwrap): a poisoned lock means a worker already panicked
        if st.draining {
            return None;
        }
        let seq = st.next_seq;
        st.next_seq += 1;
        st.pending.push_back(Pending {
            seq,
            admitted: Instant::now(),
            item,
        });
        st.stats.submitted += 1;
        st.stats.max_depth = st.stats.max_depth.max(st.pending.len());
        self.admit.notify_all();
        Some(seq)
    }

    /// Blocks until the response for ticket `seq` is published and takes
    /// it. Each ticket redeems exactly once.
    pub fn wait(&self, seq: u64) -> R {
        let mut st = self.state.lock().unwrap(); // tqt:allow(unwrap): a poisoned lock means a worker already panicked
        loop {
            if let Some(r) = st.responses.remove(&seq) {
                return r;
            }
            st = self.done.wait(st).unwrap(); // tqt:allow(unwrap): condvar wait only fails on poisoning
        }
    }

    /// Admits one request and blocks for its response.
    ///
    /// # Panics
    ///
    /// Panics if the queue is already draining (serving call sites only
    /// submit while the engine scope is alive).
    pub fn call(&self, item: T) -> R {
        match self.submit(item) {
            Some(seq) => self.wait(seq),
            None => panic!("request submitted to a draining queue"),
        }
    }

    /// The worker claim loop: blocks until the admission state calls for
    /// a dispatch, then fills `batch` with the first rung-many pending
    /// requests (FIFO) and returns `true`. Returns `false` once the
    /// queue is draining and empty — the worker exits.
    ///
    /// Every decision is [`batch_decision`] over the live queue state,
    /// evaluated under the mutex; `Wait` parks on the admission condvar
    /// with a timeout at the oldest pending request's deadline.
    pub fn claim_into(&self, batch: &mut Vec<(u64, T)>) -> bool {
        batch.clear();
        let mut st = self.state.lock().unwrap(); // tqt:allow(unwrap): a poisoned lock means a worker already panicked
        loop {
            let now = Instant::now();
            let oldest_due = st
                .pending
                .front()
                .is_some_and(|p| now.duration_since(p.admitted) >= self.max_wait);
            let any_busy = st.busy > 0;
            match batch_decision(&self.ladder, st.pending.len(), oldest_due, any_busy, st.draining)
            {
                BatchDecision::Dispatch(rung) => {
                    let top_full = self
                        .ladder
                        .last()
                        .is_some_and(|&top| st.pending.len() >= top);
                    st.stats.dispatched_batches += 1;
                    st.stats.dispatched_requests += rung as u64;
                    if let Some(i) = self.ladder.iter().position(|&r| r == rung) {
                        st.stats.rung_dispatches[i] += 1;
                    }
                    if !top_full && !st.draining {
                        if oldest_due {
                            st.stats.deadline_flushes += 1;
                        } else {
                            st.stats.idle_dispatches += 1;
                        }
                    }
                    st.busy += 1;
                    for _ in 0..rung {
                        if let Some(p) = st.pending.pop_front() {
                            #[cfg(feature = "sanitize")]
                            if !st.in_flight.insert(p.seq) {
                                crate::hb::report(
                                    "queue::claim_into",
                                    &format!("request {} claimed twice", p.seq),
                                );
                            }
                            batch.push((p.seq, p.item));
                        }
                    }
                    return true;
                }
                BatchDecision::Exit => return false,
                BatchDecision::Wait => {
                    // Sleep until a submit/shutdown notification or the
                    // oldest pending request's deadline, whichever is
                    // first; the loop re-checks the predicate either way.
                    let deadline = st
                        .pending
                        .front()
                        .map(|p| self.max_wait.saturating_sub(now.duration_since(p.admitted)));
                    st = match deadline {
                        Some(timeout) => {
                            self.admit.wait_timeout(st, timeout).unwrap().0 // tqt:allow(unwrap): condvar wait only fails on poisoning
                        }
                        None => self.admit.wait(st).unwrap(), // tqt:allow(unwrap): condvar wait only fails on poisoning
                    };
                }
            }
        }
    }

    /// Publishes responses for a claimed batch and wakes waiting
    /// clients.
    pub fn complete(&self, results: impl IntoIterator<Item = (u64, R)>) {
        let mut st = self.state.lock().unwrap(); // tqt:allow(unwrap): a poisoned lock means a worker already panicked
        st.busy = st.busy.saturating_sub(1);
        // The freed worker may now be the dispatch the backlog is waiting
        // for (work-conserving rule) — wake the claim loop too.
        self.admit.notify_all();
        for (seq, r) in results {
            #[cfg(feature = "sanitize")]
            if !st.in_flight.remove(&seq) {
                crate::hb::report(
                    "queue::complete",
                    &format!("completion for request {seq} that was never claimed"),
                );
            }
            st.responses.insert(seq, r);
        }
        self.done.notify_all();
    }

    /// Starts the drain: admissions are rejected from here on, and the
    /// workers dispatch every remaining request before
    /// [`claim_into`](Self::claim_into) returns `false`.
    pub fn shutdown(&self) {
        let mut st = self.state.lock().unwrap(); // tqt:allow(unwrap): a poisoned lock means a worker already panicked
        st.draining = true;
        self.admit.notify_all();
    }

    /// A snapshot of the queue's lifetime counters.
    pub fn stats(&self) -> QueueStats {
        self.state.lock().unwrap().stats.clone() // tqt:allow(unwrap): a poisoned lock means a worker already panicked
    }
}

/// Runs `n` scoped threads over `worker(0..n)` while `body` runs on the
/// calling thread, then joins and returns the worker results in index
/// order alongside the body's result. The serving crate and the bench
/// load generator build on this so every thread spawn in the workspace
/// stays inside `tqt-rt`.
///
/// # Panics
///
/// Re-raises the first worker panic after all threads joined.
pub fn scoped_threads<W, R, B, O>(n: usize, worker: W, body: B) -> (Vec<R>, O)
where
    W: Fn(usize) -> R + Sync,
    R: Send,
    B: FnOnce() -> O,
{
    std::thread::scope(|s| {
        let worker = &worker;
        let handles: Vec<_> = (0..n).map(|i| s.spawn(move || worker(i))).collect();
        let out = body();
        let results = handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(r) => r,
                Err(p) => std::panic::resume_unwind(p),
            })
            .collect();
        (results, out)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Echo server: workers double each payload. Exercises the full
    /// claim/complete/drain cycle under real threads.
    fn run_echo(clients: usize, per_client: usize, workers: usize, max_wait: Duration) -> QueueStats {
        let q: BatchQueue<u64, u64> = BatchQueue::new(&[1, 2, 4], max_wait);
        let qr = &q;
        let (_, ()) = scoped_threads(
            workers,
            |_| {
                let mut batch = Vec::new();
                while qr.claim_into(&mut batch) {
                    let replies: Vec<(u64, u64)> =
                        batch.iter().map(|&(seq, x)| (seq, x * 2)).collect();
                    qr.complete(replies);
                }
            },
            || {
                let (_, ()) = scoped_threads(
                    clients,
                    |c| {
                        for k in 0..per_client {
                            let x = (c * per_client + k) as u64;
                            assert_eq!(qr.call(x), x * 2, "response routed to wrong client");
                        }
                    },
                    || {},
                );
                qr.shutdown();
            },
        );
        q.stats()
    }

    #[test]
    fn batched_echo_round_trip() {
        let stats = run_echo(4, 8, 2, Duration::from_millis(2));
        assert_eq!(stats.submitted, 32);
        assert_eq!(stats.dispatched_requests, 32, "clean drain loses nothing");
        assert!(stats.dispatched_batches <= 32);
        assert_eq!(
            stats.rung_dispatches.iter().sum::<u64>(),
            stats.dispatched_batches
        );
    }

    #[test]
    fn serial_echo_works_with_one_worker() {
        let stats = run_echo(1, 5, 1, Duration::from_millis(1));
        assert_eq!(stats.submitted, 5);
        assert_eq!(stats.dispatched_requests, 5);
    }

    #[test]
    fn idle_worker_dispatches_a_lone_request_immediately() {
        // Work-conserving rule: with every worker idle, a lone request
        // must not serialize on the max-wait deadline. The hour-long
        // max-wait makes this test hang if the idle dispatch is broken.
        let q: BatchQueue<u64, u64> = BatchQueue::new(&[1, 2, 4], Duration::from_secs(3600));
        let qr = &q;
        let (_, ()) = scoped_threads(
            1,
            |_| {
                let mut batch = Vec::new();
                while qr.claim_into(&mut batch) {
                    let replies: Vec<(u64, u64)> = batch.iter().map(|&(s, x)| (s, x)).collect();
                    qr.complete(replies);
                }
            },
            || {
                assert_eq!(qr.call(7), 7);
                qr.shutdown();
            },
        );
        let stats = q.stats();
        assert_eq!(stats.idle_dispatches, 1, "the lone request must dispatch via the idle rule");
        assert_eq!(stats.deadline_flushes, 0);
        assert_eq!(stats.rung_dispatches, vec![1, 0, 0]);
    }

    #[test]
    fn deadline_flushes_a_partial_batch_behind_a_busy_worker() {
        // The claiming side is driven from this thread so the "busy
        // worker" window is deterministic: claim a first batch and hold
        // it un-completed, submit two more requests, and the next claim
        // must hold out (a worker is busy, the top rung of 4 is not
        // full) until the max-wait expiry flushes the pair.
        let q: BatchQueue<u64, u64> = BatchQueue::new(&[1, 2, 4], Duration::from_millis(1));
        let first = q.submit(10).unwrap(); // tqt:allow(unwrap): queue is not draining
        let mut held = Vec::new();
        assert!(q.claim_into(&mut held), "idle rule dispatches the first request");
        let second = q.submit(11).unwrap(); // tqt:allow(unwrap): queue is not draining
        let third = q.submit(12).unwrap(); // tqt:allow(unwrap): queue is not draining
        let mut batch = Vec::new();
        assert!(q.claim_into(&mut batch), "deadline expiry flushes the partial pair");
        assert_eq!(batch.len(), 2, "pick_rung(2) under a ladder of [1,2,4]");
        q.complete(held.drain(..).map(|(s, x)| (s, x)));
        q.complete(batch.drain(..).map(|(s, x)| (s, x)));
        for seq in [first, second, third] {
            q.wait(seq);
        }
        let stats = q.stats();
        assert_eq!(stats.deadline_flushes, 1, "the pair must flush by deadline");
        assert_eq!(stats.idle_dispatches, 1);
        assert_eq!(stats.rung_dispatches, vec![1, 1, 0]);
    }

    #[test]
    fn draining_queue_rejects_new_admissions() {
        let q: BatchQueue<u64, u64> = BatchQueue::new(&[1], Duration::from_millis(1));
        assert!(q.submit(1).is_some());
        q.shutdown();
        assert!(q.submit(2).is_none(), "draining queue must reject admissions");
        // The drain still hands out the pre-shutdown request.
        let mut batch = Vec::new();
        assert!(q.claim_into(&mut batch));
        assert_eq!(batch.len(), 1);
        q.complete(batch.drain(..).map(|(s, x)| (s, x)));
        assert!(!q.claim_into(&mut batch), "drained queue tells workers to exit");
    }

    #[test]
    fn ladder_must_start_at_one() {
        let r = std::panic::catch_unwind(|| BatchQueue::<u64, u64>::new(&[2, 4], Duration::ZERO));
        assert!(r.is_err());
    }
}
