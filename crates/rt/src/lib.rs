//! `tqt-rt` — the zero-dependency runtime substrate of the TQT
//! reproduction.
//!
//! The workspace's north star is a from-scratch, offline-reproducible
//! system: every substrate the experiments depend on is owned by the repo,
//! the same self-contained-toolbox philosophy as TensorQuant and AIMET.
//! This crate replaces the external crates the seed pulled from crates.io:
//!
//! * [`rng`] — a deterministic SplitMix64-seeded Xoshiro256++ PRNG with
//!   `gen_range`/`shuffle`/`fill` APIs (replaces `rand`);
//! * [`pool`] — a scoped fork-join thread pool built on
//!   [`std::thread::scope`] with a `serial` feature flag for deterministic
//!   debugging (replaces `rayon`);
//! * [`json`] — a minimal JSON value type with serialize/parse (replaces
//!   `serde_json`);
//! * [`check`] — a shrinking property-test mini-harness with persisted
//!   regression seeds (replaces `proptest`);
//! * [`bench`] — a median/IQR wall-clock bench harness (replaces
//!   `criterion`);
//! * [`sched`] — the pool's claim/complete protocol as shared pure
//!   functions plus a bounded explicit-state model checker that
//!   exhaustively enumerates schedules of the pool protocol (a
//!   zero-dependency `loom` stand-in);
//! * [`hb`] — a runtime happens-before sanitizer (feature `sanitize`):
//!   mutable block-range disjointness on parallel regions and
//!   cross-region scratch-checkout escape detection;
//! * [`sync`] — the only shared-state primitives the rest of the
//!   workspace may use ([`sync::Counter`], [`sync::Flag`]): raw atomics
//!   stay in this crate, where they are model-checked;
//! * [`queue`] — the dynamic-batching admission queue of the serving
//!   core (`tqt-serve`), whose coalescing decisions are the
//!   model-checked pure functions in [`sched`], plus the scoped-thread
//!   helper serving workers and bench load generators run on.
//!
//! Everything here is plain `std`; the crate must never grow an external
//! dependency.

pub mod bench;
pub mod check;
pub mod hb;
pub mod json;
pub mod pool;
pub mod queue;
pub mod rng;
pub mod sched;
pub mod sync;

pub use check::{Config as CheckConfig, Gen};
pub use json::Json;
pub use rng::Rng;
