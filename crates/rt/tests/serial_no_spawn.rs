//! Regression test: with one effective thread (`set_threads(1)`, the
//! runtime analogue of `TQT_RT_THREADS=1`), every `par_*` entry point
//! must take the pure serial path — no worker thread spawned, no region
//! queued, no condvar signalled.
//!
//! This file holds exactly one test so nothing else in the process can
//! spawn pool workers first (integration tests are their own process).

use tqt_rt::pool;

#[test]
fn serial_override_never_spawns_workers() {
    pool::set_threads(1);

    let mut data = vec![0u32; 10_000];
    pool::par_chunks_mut(&mut data, 7, |i, chunk| {
        for (j, v) in chunk.iter_mut().enumerate() {
            *v = (i * 7 + j) as u32 + 1;
        }
    });
    for (k, &v) in data.iter().enumerate() {
        assert_eq!(v, k as u32 + 1);
    }

    let squares = pool::par_map(1_000, |i| i * i);
    assert_eq!(squares[999], 999 * 999);

    let parts = pool::par_fold_blocks(100, 9, |b, r| (b, r.len()));
    assert_eq!(parts.len(), 12);

    assert_eq!(
        pool::spawned_workers(),
        0,
        "set_threads(1) must keep par_* on the calling thread without \
         spawning or waking any pool worker"
    );
    pool::set_threads(0);
}
