//! Exhaustive bounded model check of the pool's claim/complete protocol
//! (`TQT-V019`/`TQT-V020`).
//!
//! Runs every configuration of the pinned suite — 2–3 threads, 1–4 root
//! blocks, optional nested region, optional panic in either region — to
//! completion (no state budget): every reachable interleaving is
//! visited, proving deadlock-freedom, exactly-once block execution, and
//! panic delivery for the protocol functions the real pool runs.
//! `scripts/ci.sh` runs this test explicitly as a verification gate.

use tqt_rt::sched;

#[test]
fn pinned_suite_is_exhaustively_proven() {
    let configs = sched::protocol_configs();
    assert!(configs.len() >= 20, "suite unexpectedly small: {}", configs.len());
    let mut total_states = 0usize;
    for cfg in &configs {
        let out = sched::check(cfg, usize::MAX);
        assert!(out.complete, "exploration of {cfg:?} must be exhaustive");
        assert!(
            out.violation.is_none(),
            "protocol violated under {cfg:?}:\n{}",
            out.violation.unwrap()
        );
        assert!(out.terminals > 0, "{cfg:?} reached no terminal state");
        total_states += out.states;
    }
    // Sanity: the suite explores a non-trivial state space.
    assert!(total_states > 10_000, "only {total_states} states explored");
}

#[test]
fn seeded_bugs_are_refuted_across_the_suite_shape() {
    // The checker must refute broken protocols in the same bounded
    // shapes it proves the real one — otherwise "no violation" would be
    // vacuous.
    for threads in 2..=3 {
        let torn = sched::Config {
            threads,
            blocks: 2,
            nested: None,
            panic_at: None,
            bug: Some(sched::Bug::TornClaim),
        };
        let out = sched::check(&torn, usize::MAX);
        assert!(out.violation.is_some(), "torn claim survived {threads} threads");
    }
    let dropped = sched::Config {
        threads: 2,
        blocks: 2,
        nested: Some((1, 2)),
        panic_at: Some((1, 1)),
        bug: Some(sched::Bug::DropPanic),
    };
    let out = sched::check(&dropped, usize::MAX);
    let v = out.violation.expect("dropped nested panic survived");
    assert_eq!(v.property, sched::Property::PanicLost, "{v}");
}
