//! Exhaustive bounded model check of the serving admission queue's
//! batching protocol (`TQT-V024`).
//!
//! Runs every configuration of the pinned batching suite — 1–2 clients ×
//! 1–2 requests each × 1–2 workers × two ladders, with and without the
//! shutdown/drain path — to completion (no state budget): every
//! reachable interleaving of submit, deadline expiry, dispatch,
//! complete, and drain is visited, proving that every request is
//! dispatched exactly once in a ladder-sized batch, that deadline-
//! expired requests always flush, and that a drain loses nothing.
//! `scripts/ci.sh` runs this test explicitly as a verification gate.

use tqt_rt::sched;

#[test]
fn pinned_batch_suite_is_exhaustively_proven() {
    let configs = sched::batch_protocol_configs();
    assert!(configs.len() >= 16, "suite unexpectedly small: {}", configs.len());
    let mut total_states = 0usize;
    for cfg in &configs {
        let out = sched::batch_check(cfg, usize::MAX);
        assert!(out.complete, "exploration of {cfg:?} must be exhaustive");
        assert!(
            out.violation.is_none(),
            "batching protocol violated under {cfg:?}:\n{}",
            out.violation.unwrap()
        );
        assert!(out.terminals > 0, "{cfg:?} reached no terminal state");
        total_states += out.states;
    }
    // Sanity: the suite explores a non-trivial state space.
    assert!(total_states > 5_000, "only {total_states} states explored");
}

#[test]
fn seeded_batching_bugs_are_refuted_across_the_suite_shape() {
    // The checker must refute broken batching variants in the same
    // bounded shapes it proves the real decision functions — otherwise
    // "no violation" would be vacuous.
    for workers in 1..=2 {
        let sleepy = sched::BatchConfig {
            clients: 1,
            requests_per_client: 2,
            workers,
            ladder: &[1, 2, 4],
            shutdown: false,
            bug: Some(sched::BatchBug::SleepOnDue),
        };
        let out = sched::batch_check(&sleepy, usize::MAX);
        let v = out
            .violation
            .unwrap_or_else(|| panic!("deadline sleeper survived {workers} worker(s)"));
        assert_eq!(v.property, sched::Property::DeadlineStall, "{v}");
        assert!(!v.trace.is_empty(), "counterexample must carry its schedule");
    }

    let leaky = sched::BatchConfig {
        clients: 2,
        requests_per_client: 1,
        workers: 1,
        ladder: &[1, 2, 4],
        shutdown: true,
        bug: Some(sched::BatchBug::LeakOnDrain),
    };
    let out = sched::batch_check(&leaky, usize::MAX);
    let v = out.violation.expect("drain leak survived");
    assert!(
        matches!(
            v.property,
            sched::Property::LostRequest | sched::Property::DeadlineStall
        ),
        "{v}"
    );

    let torn = sched::BatchConfig {
        clients: 2,
        requests_per_client: 2,
        workers: 2,
        ladder: &[1, 2],
        shutdown: true,
        bug: Some(sched::BatchBug::DoubleDispatch),
    };
    let out = sched::batch_check(&torn, usize::MAX);
    let v = out.violation.expect("torn batch claim survived");
    assert_eq!(v.property, sched::Property::DuplicateDispatch, "{v}");
}
