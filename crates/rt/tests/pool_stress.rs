//! Stress tests for the persistent worker pool: real multi-thread
//! schedules (forced via `pool::set_threads`, independent of the host's
//! core count), nested and repeated regions, and panic propagation that
//! must not wedge the pool.
//!
//! Everything runs from a single `#[test]` because the thread-count
//! override is process-global state shared with any sibling test.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use tqt_rt::pool;

fn check_chunks(n: usize, chunk: usize) {
    let mut data = vec![0u64; n];
    pool::par_chunks_mut(&mut data, chunk, |i, c| {
        for (j, v) in c.iter_mut().enumerate() {
            *v = (i * chunk + j) as u64 * 3 + 1;
        }
    });
    for (k, &v) in data.iter().enumerate() {
        assert_eq!(v, k as u64 * 3 + 1, "slot {k} wrong");
    }
}

#[test]
fn pool_survives_nesting_repetition_and_panics() {
    pool::set_threads(4);

    // 1. Repeated regions: many small regions in a row reuse the parked
    //    workers (this is the per-training-step pattern).
    for round in 0..200 {
        check_chunks(97 + round % 13, 5);
    }

    // 2. par_map returns values in index order regardless of which worker
    //    computed them, including non-Clone result types.
    let squares = pool::par_map(1001, |i| i * i);
    assert_eq!(squares, (0..1001).map(|i| i * i).collect::<Vec<_>>());
    let strings = pool::par_map(257, |i| format!("s{i}"));
    assert!(strings.iter().enumerate().all(|(i, s)| s == &format!("s{i}")));

    // 3. Nested regions: an outer par_map whose blocks each run an inner
    //    par_chunks_mut. The inner submitter participates in its own
    //    region, so this cannot deadlock even with every worker busy.
    let touched = AtomicUsize::new(0);
    let sums = pool::par_map(16, |outer| {
        let mut inner = vec![0u32; 64];
        pool::par_chunks_mut(&mut inner, 4, |i, c| {
            touched.fetch_add(1, Ordering::Relaxed);
            for (j, v) in c.iter_mut().enumerate() {
                *v = (outer * 64 + i * 4 + j) as u32;
            }
        });
        inner.iter().map(|&v| v as u64).sum::<u64>()
    });
    let expect: Vec<u64> = (0..16u64)
        .map(|o| (o * 64..(o + 1) * 64).sum::<u64>())
        .collect();
    assert_eq!(sums, expect);
    assert_eq!(touched.load(Ordering::Relaxed), 16 * 16);

    // 4. A panic in one chunk propagates to the submitter...
    let ran = AtomicUsize::new(0);
    let result = catch_unwind(AssertUnwindSafe(|| {
        let mut data = vec![0u8; 100];
        pool::par_chunks_mut(&mut data, 10, |i, _| {
            ran.fetch_add(1, Ordering::Relaxed);
            if i == 3 {
                panic!("boom in chunk {i}");
            }
        });
    }));
    let payload = result.expect_err("worker panic must reach the submitter");
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_default();
    assert!(msg.contains("boom in chunk 3"), "unexpected payload: {msg}");
    assert!(ran.load(Ordering::Relaxed) >= 1);

    // ...and the pool is not wedged afterwards: both fresh regions and
    // another panicking region still behave.
    check_chunks(4096, 64);
    let again = catch_unwind(AssertUnwindSafe(|| {
        pool::par_map(50, |i| {
            if i == 49 {
                panic!("second boom");
            }
            i
        })
    }));
    assert!(again.is_err(), "second panic must also propagate");
    check_chunks(333, 7);

    // 5. Thread-count changes mid-process grow the pool lazily and leave
    //    results untouched.
    pool::set_threads(7);
    check_chunks(10_000, 13);
    let wide = pool::par_map(4097, |i| i as u64 + 7);
    assert_eq!(wide[4096], 4096 + 7);

    // 6. Serial override still collapses everything onto this thread and
    //    produces identical bytes.
    let run = || {
        let mut data = vec![0.0f32; 2048];
        pool::par_chunks_mut(&mut data, 32, |i, c| {
            for (j, v) in c.iter_mut().enumerate() {
                *v = ((i * 32 + j) as f32).cos();
            }
        });
        data
    };
    let parallel = run();
    pool::force_serial(true);
    let serial = run();
    pool::force_serial(false);
    assert_eq!(parallel, serial, "serial/parallel bit-identity violated");

    pool::set_threads(0); // restore auto for any sibling test
}
