//! Property tests: the blocked, register-tiled GEMM agrees with a naive
//! triple-loop oracle within 1e-4 relative across random shapes — with
//! the shape distribution deliberately weighted toward tile-boundary
//! edge cases (m/n/k below one register tile, exact multiples, one past,
//! and k crossing the KC slab boundary where block accumulation
//! reassociates the sum).

use tqt_rt::check::gen;
use tqt_rt::{check, prop_assert, Gen};
use tqt_tensor::gemm::{gemm_nn, gemm_nn_naive, gemm_nt, gemm_tn, MR, NR};
use tqt_tensor::{matmul, matmul_nt, matmul_tn, Tensor};

/// f64 oracle for `a[m,k] @ b[k,n]` (no blocking, no SIMD).
fn oracle_nn(m: usize, n: usize, k: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
    let mut c = vec![0.0f64; m * n];
    for i in 0..m {
        for j in 0..n {
            for kk in 0..k {
                c[i * n + j] += a[i * k + kk] as f64 * b[kk * n + j] as f64;
            }
        }
    }
    c.into_iter().map(|v| v as f32).collect()
}

fn fill(len: usize, seed: u64) -> Vec<f32> {
    let mut rng = tqt_rt::Rng::new(seed);
    (0..len).map(|_| rng.gen_range(-2.0f32..2.0)).collect()
}

/// Dimension generator biased toward register-tile boundaries.
fn dim() -> Gen<usize> {
    gen::choice(vec![
        1,
        2,
        3,
        MR - 1,
        MR,
        MR + 1,
        NR - 1,
        NR,
        NR + 1,
        2 * NR + 3,
        61,
        64,
        67,
    ])
}

/// Inner-dimension generator: small values plus the KC = 256 slab edge.
fn kdim() -> Gen<usize> {
    gen::choice(vec![1, 2, 5, 31, 32, 255, 256, 257, 300])
}

fn close(got: &[f32], want: &[f32], what: &str) -> Result<(), String> {
    for (i, (&g, &w)) in got.iter().zip(want).enumerate() {
        if (g - w).abs() > 1e-4 * w.abs().max(1.0) {
            return Err(format!("{what}[{i}]: got {g}, oracle {w}"));
        }
    }
    Ok(())
}

/// Blocked NN kernel vs the f64 oracle and the retained naive kernel.
#[test]
fn blocked_nn_matches_oracle() {
    check!(
        gen::zip3(dim(), dim(), kdim()),
        |&(m, n, k): &(usize, usize, usize)| {
            let a = fill(m * k, (m * 1_000_003 + n * 101 + k) as u64);
            let b = fill(k * n, (k * 999_983 + m * 17 + n) as u64);
            let mut c = vec![0.0f32; m * n];
            gemm_nn(m, n, k, &a, &b, &mut c, false);
            close(&c, &oracle_nn(m, n, k, &a, &b), "blocked_nn")?;
            let mut cn = vec![0.0f32; m * n];
            gemm_nn_naive(m, n, k, &a, &b, &mut cn);
            close(&c, &cn, "blocked_vs_naive")?;
            prop_assert!(true);
            Ok(())
        }
    );
}

/// The transposed variants agree with an explicitly transposed NN call.
#[test]
fn blocked_tn_nt_match_transposed_oracle() {
    check!(
        gen::zip3(dim(), dim(), kdim()),
        |&(m, n, k): &(usize, usize, usize)| {
            // TN: a stored [k, m]; logical A = a^T.
            let at = fill(k * m, (m * 31 + k) as u64);
            let b = fill(k * n, (n * 37 + k) as u64);
            let mut a = vec![0.0f32; m * k];
            for kk in 0..k {
                for i in 0..m {
                    a[i * k + kk] = at[kk * m + i];
                }
            }
            let mut c = vec![0.0f32; m * n];
            gemm_tn(m, n, k, &at, &b, &mut c, false);
            close(&c, &oracle_nn(m, n, k, &a, &b), "blocked_tn")?;

            // NT: b stored [n, k]; logical B = b^T.
            let bt = fill(n * k, (n * 41 + k) as u64);
            let mut bb = vec![0.0f32; k * n];
            for j in 0..n {
                for kk in 0..k {
                    bb[kk * n + j] = bt[j * k + kk];
                }
            }
            let mut c = vec![0.0f32; m * n];
            gemm_nt(m, n, k, &a, &bt, &mut c, false);
            close(&c, &oracle_nn(m, n, k, &a, &bb), "blocked_nt")?;
            prop_assert!(true);
            Ok(())
        }
    );
}

/// The tensor-level wrappers route through the same kernel and agree
/// with the oracle too (guards the wiring, not just the kernel).
#[test]
fn matmul_wrappers_match_oracle() {
    check!(
        gen::zip3(dim(), dim(), kdim()),
        |&(m, n, k): &(usize, usize, usize)| {
            let a = fill(m * k, (m * 7 + n * 11 + k * 13) as u64);
            let b = fill(k * n, (m * 3 + n * 5 + k * 19) as u64);
            let want = oracle_nn(m, n, k, &a, &b);
            let ta = Tensor::from_vec([m, k], a.clone());
            let tb = Tensor::from_vec([k, n], b.clone());
            close(matmul(&ta, &tb).data(), &want, "matmul")?;
            close(
                matmul_tn(&ta.transpose2(), &tb).data(),
                &want,
                "matmul_tn"
            )?;
            close(
                matmul_nt(&ta, &tb.transpose2()).data(),
                &want,
                "matmul_nt"
            )?;
            prop_assert!(true);
            Ok(())
        }
    );
}
