//! Verifies the thread pool's bit-identity guarantee on the tensor
//! kernels that use it: on a fixed seed, the parallel path and the
//! serial path (`tqt_rt::pool::force_serial`, the runtime twin of the
//! `serial` cargo feature) must produce *bit-identical* outputs — not
//! merely close ones. This is what makes every experiment in the repo
//! reproducible regardless of core count.
//!
//! All kernels are exercised from a single `#[test]` because the serial
//! override is process-global state; splitting it across tests would race
//! with the parallel half of the comparison.

use tqt_rt::pool;
use tqt_tensor::conv::{
    conv2d, conv2d_backward, depthwise_conv2d, depthwise_conv2d_backward, Conv2dGeom,
};
use tqt_tensor::{init, matmul, matmul_nt, matmul_tn};

#[test]
fn parallel_kernels_bit_identical_to_serial() {
    // Force a multi-worker schedule even on single-core CI hosts: the
    // guarantee under test is thread-count *independence*, so exercise
    // it with more workers than the host may have.
    pool::set_threads(4);
    let mut rng = init::rng(0x5EED);
    // Large enough to cross every parallel dispatch threshold
    // (matmul: more rows than one GEMM row block; conv: any batch > 1).
    let a = init::normal([150, 96], 0.0, 1.0, &mut rng);
    let b = init::normal([96, 80], 0.0, 1.0, &mut rng);
    let bt = init::normal([80, 96], 0.0, 1.0, &mut rng);
    let at = init::normal([96, 150], 0.0, 1.0, &mut rng);

    let g = Conv2dGeom::same(3);
    let x = init::normal([8, 4, 12, 12], 0.0, 1.0, &mut rng);
    let w = init::normal([6, 4, 3, 3], 0.0, 0.5, &mut rng);
    let gy = init::normal([8, 6, 12, 12], 0.0, 1.0, &mut rng);
    let dw_w = init::normal([4, 1, 3, 3], 0.0, 0.5, &mut rng);
    let dw_gy = init::normal([8, 4, 12, 12], 0.0, 1.0, &mut rng);

    let run = || {
        let (cgx, cgw) = conv2d_backward(&x, &w, &gy, g);
        let (dgx, dgw) = depthwise_conv2d_backward(&x, &dw_w, &dw_gy, g);
        (
            matmul(&a, &b),
            matmul_nt(&a, &bt),
            matmul_tn(&at, &b),
            conv2d(&x, &w, g),
            depthwise_conv2d(&x, &dw_w, g),
            cgx,
            cgw,
            dgx,
            dgw,
        )
    };

    assert!(!pool::is_serial(), "test must start on the parallel path");
    let par = run();
    pool::force_serial(true);
    assert!(pool::is_serial());
    let ser = run();
    pool::force_serial(false);

    // Tensor equality is exact element-wise f32 equality — bit identity.
    assert_eq!(par.0, ser.0, "matmul differs");
    assert_eq!(par.1, ser.1, "matmul_nt differs");
    assert_eq!(par.2, ser.2, "matmul_tn differs");
    assert_eq!(par.3, ser.3, "conv2d differs");
    assert_eq!(par.4, ser.4, "depthwise_conv2d differs");
    assert_eq!(par.5, ser.5, "conv2d_backward grad_input differs");
    assert_eq!(par.6, ser.6, "conv2d_backward grad_weight differs");
    assert_eq!(par.7, ser.7, "depthwise backward grad_input differs");
    assert_eq!(par.8, ser.8, "depthwise backward grad_weight differs");

    // A different worker count must also give the same bytes.
    pool::set_threads(3);
    let three = run();
    pool::set_threads(0);
    assert_eq!(par.0, three.0, "matmul differs across thread counts");
    assert_eq!(par.5, three.5, "conv2d_backward differs across thread counts");
}

/// Determinism across repeated parallel runs (scheduling-independent):
/// running the same kernel twice on the parallel path is also exact.
#[test]
fn parallel_runs_are_self_deterministic() {
    let mut rng = init::rng(0xF00D);
    let a = init::normal([64, 96], 0.0, 1.0, &mut rng);
    let b = init::normal([96, 80], 0.0, 1.0, &mut rng);
    assert_eq!(matmul(&a, &b), matmul(&a, &b));
}
