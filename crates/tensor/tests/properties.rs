//! Property-based tests for the tensor substrate.

use proptest::prelude::*;
use tqt_tensor::conv::{conv2d, conv2d_backward, depthwise_conv2d, Conv2dGeom};
use tqt_tensor::{matmul, matmul_nt, matmul_tn, ops, reduce, stats, Tensor};

fn small_vec(len: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-10.0f32..10.0, len)
}

proptest! {
    /// Reshape never changes the underlying data.
    #[test]
    fn reshape_preserves_data(data in small_vec(12)) {
        let t = Tensor::from_vec([3, 4], data.clone());
        let r1 = t.reshape([2, 6]);
        let r2 = t.reshape([12]);
        prop_assert_eq!(r1.data(), &data[..]);
        prop_assert_eq!(r2.data(), &data[..]);
    }

    /// Double transpose is the identity.
    #[test]
    fn transpose_involution(data in small_vec(15)) {
        let t = Tensor::from_vec([3, 5], data);
        prop_assert_eq!(t.transpose2().transpose2(), t);
    }

    /// Elementwise add commutes; sub anti-commutes.
    #[test]
    fn add_commutes(a in small_vec(8), b in small_vec(8)) {
        let ta = Tensor::from_vec([2, 4], a);
        let tb = Tensor::from_vec([2, 4], b);
        prop_assert_eq!(ops::add(&ta, &tb), ops::add(&tb, &ta));
        ops::add(&ops::sub(&ta, &tb), &ops::sub(&tb, &ta))
            .assert_close(&Tensor::zeros([2, 4]), 1e-6);
    }

    /// matmul distributes over addition: (A+B)C = AC + BC.
    #[test]
    fn matmul_distributes(a in small_vec(6), b in small_vec(6), c in small_vec(8)) {
        let ta = Tensor::from_vec([3, 2], a);
        let tb = Tensor::from_vec([3, 2], b);
        let tc = Tensor::from_vec([2, 4], c);
        let lhs = matmul(&ops::add(&ta, &tb), &tc);
        let rhs = ops::add(&matmul(&ta, &tc), &matmul(&tb, &tc));
        lhs.assert_close(&rhs, 1e-3);
    }

    /// Transposed-variant matmuls agree with explicit transposes.
    #[test]
    fn matmul_variants_agree(a in small_vec(6), b in small_vec(8)) {
        let ta = Tensor::from_vec([3, 2], a);
        let tb = Tensor::from_vec([2, 4], b);
        matmul_tn(&ta.transpose2(), &tb).assert_close(&matmul(&ta, &tb), 1e-4);
        matmul_nt(&ta, &tb.transpose2()).assert_close(&matmul(&ta, &tb), 1e-4);
    }

    /// Convolution is linear in its input.
    #[test]
    fn conv_linear_in_input(x1 in small_vec(32), x2 in small_vec(32), w in small_vec(18)) {
        let g = Conv2dGeom::same(3);
        let t1 = Tensor::from_vec([1, 2, 4, 4], x1);
        let t2 = Tensor::from_vec([1, 2, 4, 4], x2);
        let tw = Tensor::from_vec([1, 2, 3, 3], w);
        let lhs = conv2d(&ops::add(&t1, &t2), &tw, g);
        let rhs = ops::add(&conv2d(&t1, &tw, g), &conv2d(&t2, &tw, g));
        lhs.assert_close(&rhs, 1e-3);
    }

    /// The conv backward input-gradient operator is the adjoint of the
    /// forward operator: <conv(x), y> == <x, conv_backward_input(y)>.
    #[test]
    fn conv_backward_is_adjoint(x in small_vec(32), y in small_vec(32), w in small_vec(18)) {
        let g = Conv2dGeom::same(3);
        let tx = Tensor::from_vec([1, 2, 4, 4], x);
        let ty = Tensor::from_vec([1, 1, 4, 4], y[..16].to_vec());
        let tw = Tensor::from_vec([1, 2, 3, 3], w);
        let fwd = conv2d(&tx, &tw, g);
        let (gx, _) = conv2d_backward(&tx, &tw, &ty, g);
        let lhs: f32 = fwd.data().iter().zip(ty.data()).map(|(&a, &b)| a * b).sum();
        let rhs: f32 = tx.data().iter().zip(gx.data()).map(|(&a, &b)| a * b).sum();
        prop_assert!((lhs - rhs).abs() < 1e-2 * (1.0 + lhs.abs()),
            "adjoint mismatch: {lhs} vs {rhs}");
    }

    /// Depthwise conv with a one-hot center kernel is the identity.
    #[test]
    fn depthwise_center_identity(x in small_vec(32)) {
        let tx = Tensor::from_vec([1, 2, 4, 4], x);
        let mut w = Tensor::zeros([2, 1, 3, 3]);
        w.set(&[0, 0, 1, 1], 1.0);
        w.set(&[1, 0, 1, 1], 1.0);
        depthwise_conv2d(&tx, &w, Conv2dGeom::same(3)).assert_close(&tx, 1e-6);
    }

    /// Per-channel sum is the adjoint of per-channel broadcast-add.
    #[test]
    fn channel_sum_adjoint(x in small_vec(24), b in small_vec(3)) {
        let tx = Tensor::from_vec([2, 3, 2, 2], x);
        let tb = Tensor::from_vec([3], b);
        // <x + broadcast(b), 1> - <x, 1> == <b, channel_counts>
        let added = ops::add_channel(&tx, &tb);
        let diff = reduce::sum(&added) - reduce::sum(&tx);
        let expected = tb.data().iter().sum::<f32>() * 8.0; // n*h*w = 2*2*2
        prop_assert!((diff - expected).abs() < 1e-3);
    }

    /// Histogram total mass always equals the element count.
    #[test]
    fn histogram_mass(x in small_vec(50)) {
        let t = Tensor::from_vec([50], x);
        let h = stats::Histogram::from_tensor(&t, 16);
        prop_assert_eq!(h.total(), 50.0);
    }

    /// abs_percentile is monotone in q and bounded by abs_max.
    #[test]
    fn percentile_monotone(x in small_vec(20), q1 in 0.0f32..100.0, q2 in 0.0f32..100.0) {
        let t = Tensor::from_vec([20], x);
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let p_lo = stats::abs_percentile(&t, lo);
        let p_hi = stats::abs_percentile(&t, hi);
        prop_assert!(p_lo <= p_hi + 1e-6);
        prop_assert!(p_hi <= t.abs_max() + 1e-6);
    }
}
