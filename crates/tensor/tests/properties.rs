//! Property-based tests for the tensor substrate, on the in-repo
//! `tqt_rt::check` harness (256 cases per property by default).

use tqt_rt::check::gen;
use tqt_rt::{check, prop_assert, prop_assert_eq, Gen};
use tqt_tensor::conv::{conv2d, conv2d_backward, depthwise_conv2d, Conv2dGeom};
use tqt_tensor::{matmul, matmul_nt, matmul_tn, ops, reduce, stats, Tensor};

/// Fixed-length vector with elements in `[-10, 10)` (the proptest
/// `small_vec` strategy these tests were originally written against).
fn small_vec(len: usize) -> Gen<Vec<f32>> {
    gen::vec_f32(-10.0, 10.0, len, len + 1)
}

/// Reshape never changes the underlying data.
#[test]
fn reshape_preserves_data() {
    check!(small_vec(12), |data: &Vec<f32>| {
        let t = Tensor::from_vec([3, 4], data.clone());
        let r1 = t.reshape([2, 6]);
        let r2 = t.reshape([12]);
        prop_assert_eq!(r1.data(), &data[..]);
        prop_assert_eq!(r2.data(), &data[..]);
        Ok(())
    });
}

/// Double transpose is the identity.
#[test]
fn transpose_involution() {
    check!(small_vec(15), |data: &Vec<f32>| {
        let t = Tensor::from_vec([3, 5], data.clone());
        prop_assert_eq!(t.transpose2().transpose2(), t);
        Ok(())
    });
}

/// Elementwise add commutes; sub anti-commutes.
#[test]
fn add_commutes() {
    check!(
        gen::zip2(small_vec(8), small_vec(8)),
        |(a, b): &(Vec<f32>, Vec<f32>)| {
            let ta = Tensor::from_vec([2, 4], a.clone());
            let tb = Tensor::from_vec([2, 4], b.clone());
            prop_assert_eq!(ops::add(&ta, &tb), ops::add(&tb, &ta));
            let anti = ops::add(&ops::sub(&ta, &tb), &ops::sub(&tb, &ta));
            prop_assert!(anti.max_abs_diff(&Tensor::zeros([2, 4])) <= 1e-6);
            Ok(())
        }
    );
}

/// matmul distributes over addition: (A+B)C = AC + BC.
#[test]
fn matmul_distributes() {
    check!(
        gen::zip3(small_vec(6), small_vec(6), small_vec(8)),
        |(a, b, c): &(Vec<f32>, Vec<f32>, Vec<f32>)| {
            let ta = Tensor::from_vec([3, 2], a.clone());
            let tb = Tensor::from_vec([3, 2], b.clone());
            let tc = Tensor::from_vec([2, 4], c.clone());
            let lhs = matmul(&ops::add(&ta, &tb), &tc);
            let rhs = ops::add(&matmul(&ta, &tc), &matmul(&tb, &tc));
            prop_assert!(lhs.max_abs_diff(&rhs) <= 1e-3);
            Ok(())
        }
    );
}

/// Transposed-variant matmuls agree with explicit transposes.
#[test]
fn matmul_variants_agree() {
    check!(
        gen::zip2(small_vec(6), small_vec(8)),
        |(a, b): &(Vec<f32>, Vec<f32>)| {
            let ta = Tensor::from_vec([3, 2], a.clone());
            let tb = Tensor::from_vec([2, 4], b.clone());
            let plain = matmul(&ta, &tb);
            prop_assert!(matmul_tn(&ta.transpose2(), &tb).max_abs_diff(&plain) <= 1e-4);
            prop_assert!(matmul_nt(&ta, &tb.transpose2()).max_abs_diff(&plain) <= 1e-4);
            Ok(())
        }
    );
}

/// Convolution is linear in its input.
#[test]
fn conv_linear_in_input() {
    check!(
        gen::zip3(small_vec(32), small_vec(32), small_vec(18)),
        |(x1, x2, w): &(Vec<f32>, Vec<f32>, Vec<f32>)| {
            let g = Conv2dGeom::same(3);
            let t1 = Tensor::from_vec([1, 2, 4, 4], x1.clone());
            let t2 = Tensor::from_vec([1, 2, 4, 4], x2.clone());
            let tw = Tensor::from_vec([1, 2, 3, 3], w.clone());
            let lhs = conv2d(&ops::add(&t1, &t2), &tw, g);
            let rhs = ops::add(&conv2d(&t1, &tw, g), &conv2d(&t2, &tw, g));
            prop_assert!(lhs.max_abs_diff(&rhs) <= 1e-3);
            Ok(())
        }
    );
}

/// The conv backward input-gradient operator is the adjoint of the
/// forward operator: <conv(x), y> == <x, conv_backward_input(y)>.
#[test]
fn conv_backward_is_adjoint() {
    check!(
        gen::zip3(small_vec(32), small_vec(32), small_vec(18)),
        |(x, y, w): &(Vec<f32>, Vec<f32>, Vec<f32>)| {
            let g = Conv2dGeom::same(3);
            let tx = Tensor::from_vec([1, 2, 4, 4], x.clone());
            let ty = Tensor::from_vec([1, 1, 4, 4], y[..16].to_vec());
            let tw = Tensor::from_vec([1, 2, 3, 3], w.clone());
            let fwd = conv2d(&tx, &tw, g);
            let (gx, _) = conv2d_backward(&tx, &tw, &ty, g);
            let lhs: f32 = fwd.data().iter().zip(ty.data()).map(|(&a, &b)| a * b).sum();
            let rhs: f32 = tx.data().iter().zip(gx.data()).map(|(&a, &b)| a * b).sum();
            prop_assert!(
                (lhs - rhs).abs() < 1e-2 * (1.0 + lhs.abs()),
                "adjoint mismatch: {lhs} vs {rhs}"
            );
            Ok(())
        }
    );
}

/// Depthwise conv with a one-hot center kernel is the identity.
#[test]
fn depthwise_center_identity() {
    check!(small_vec(32), |x: &Vec<f32>| {
        let tx = Tensor::from_vec([1, 2, 4, 4], x.clone());
        let mut w = Tensor::zeros([2, 1, 3, 3]);
        w.set(&[0, 0, 1, 1], 1.0);
        w.set(&[1, 0, 1, 1], 1.0);
        let y = depthwise_conv2d(&tx, &w, Conv2dGeom::same(3));
        prop_assert!(y.max_abs_diff(&tx) <= 1e-6);
        Ok(())
    });
}

/// Per-channel sum is the adjoint of per-channel broadcast-add.
#[test]
fn channel_sum_adjoint() {
    check!(
        gen::zip2(small_vec(24), small_vec(3)),
        |(x, b): &(Vec<f32>, Vec<f32>)| {
            let tx = Tensor::from_vec([2, 3, 2, 2], x.clone());
            let tb = Tensor::from_vec([3], b.clone());
            // <x + broadcast(b), 1> - <x, 1> == <b, channel_counts>
            let added = ops::add_channel(&tx, &tb);
            let diff = reduce::sum(&added) - reduce::sum(&tx);
            let expected = tb.data().iter().sum::<f32>() * 8.0; // n*h*w = 2*2*2
            prop_assert!((diff - expected).abs() < 1e-3);
            Ok(())
        }
    );
}

/// Histogram total mass always equals the element count.
#[test]
fn histogram_mass() {
    check!(small_vec(50), |x: &Vec<f32>| {
        let t = Tensor::from_vec([50], x.clone());
        let h = stats::Histogram::from_tensor(&t, 16);
        prop_assert_eq!(h.total(), 50.0);
        Ok(())
    });
}

/// abs_percentile is monotone in q and bounded by abs_max.
#[test]
fn percentile_monotone() {
    check!(
        gen::zip3(small_vec(20), gen::f32_in(0.0, 100.0), gen::f32_in(0.0, 100.0)),
        |(x, q1, q2): &(Vec<f32>, f32, f32)| {
            let t = Tensor::from_vec([20], x.clone());
            let (lo, hi) = if q1 <= q2 { (*q1, *q2) } else { (*q2, *q1) };
            let p_lo = stats::abs_percentile(&t, lo);
            let p_hi = stats::abs_percentile(&t, hi);
            prop_assert!(p_lo <= p_hi + 1e-6);
            prop_assert!(p_hi <= t.abs_max() + 1e-6);
            Ok(())
        }
    );
}
