//! Cache-blocked single-precision GEMM: the one micro-kernel behind
//! `matmul`/`matmul_tn`/`matmul_nt` and the im2col convolution products.
//!
//! Structure is the classic three-level blocking (GotoBLAS/BLIS):
//!
//! * the **k** dimension is split into [`KC`]-deep slabs;
//! * per slab, B columns are packed into [`NR`]-wide panels (`bpack`,
//!   streamed from L1/L2 by every row block);
//! * per row block of [`MC`] rows, A is packed into [`MR`]-tall panels
//!   (`apack`) and an `MR×NR` register-tiled micro-kernel accumulates
//!   `C += A·B` with all `MR*NR` partial sums held in registers.
//!
//! Packing gives the micro-kernel unit-stride, zero-padded operands, so
//! the same code path (and the same floating-point result) serves every
//! shape, including edge tiles smaller than one register tile and inputs
//! accessed through transposed strides (`tn`/`nt` — no transpose is ever
//! materialized).
//!
//! **Determinism.** Each output element `c[i,j]` is accumulated in a
//! fixed order: KC-slabs in ascending `k`, and within a slab a single
//! ascending-`k` chain in the micro-kernel. Parallelism only ever splits
//! the `MC` row-block loop, and every element belongs to exactly one row
//! block, so the summation order — and therefore the f32 result — is
//! independent of the thread count. The block constants are compile-time
//! fixed and are part of that contract: changing [`KC`] changes rounding
//! (within the documented `~1e-6` relative band of any other order).
//!
//! Workspace comes from the thread-local [`Scratch`] arena — packing
//! buffers are reused across calls, layers, and training steps.

use crate::scratch::Scratch;
use tqt_rt::pool;

/// Register-tile rows (A micro-panel height).
pub const MR: usize = 6;
/// Register-tile columns (B micro-panel width): two 8-lane AVX2 vectors
/// per accumulator row. The 6×16 tile holds `6×2 = 12` ymm accumulators
/// plus two B vectors and one A broadcast — 15 of the 16 ymm registers.
pub const NR: usize = 16;
/// Rows of A per cache block: 10 MR-panels; one `apack` is 60 KiB (L2).
const MC: usize = 60;
/// Depth of one k-slab. Fixed: part of the summation-order contract.
const KC: usize = 256;
/// Columns of B per cache block (`bpack` is at most `KC*NC` = 512 KiB).
const NC: usize = 512;

/// `c += a @ b` for row-major `a: [m, k]`, `b: [k, n]`, `c: [m, n]`.
///
/// # Panics
///
/// Panics (via debug assertions / slice indexing) if the buffers are
/// shorter than the shapes imply.
pub fn gemm_nn(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32], parallel: bool) {
    gemm_strided(m, n, k, a, k, 1, b, n, 1, c, parallel);
}

/// `c += a^T @ b` for `a: [k, m]`, `b: [k, n]`, `c: [m, n]`, reading `a`
/// through transposed strides (no materialized transpose).
pub fn gemm_tn(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32], parallel: bool) {
    gemm_strided(m, n, k, a, 1, m, b, n, 1, c, parallel);
}

/// `c += a @ b^T` for `a: [m, k]`, `b: [n, k]`, `c: [m, n]`, reading `b`
/// through transposed strides (no materialized transpose).
pub fn gemm_nt(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32], parallel: bool) {
    gemm_strided(m, n, k, a, k, 1, b, 1, k, c, parallel);
}

/// A full row-major `[m, k]` LHS packed **once** into the exact
/// slab/panel layout the blocked kernel consumes: for each [`KC`]-deep
/// k-slab in ascending `k`, every [`MR`]-tall k-major row panel of the
/// whole matrix (zero-padded like [`pack_a`]). Slab `pc` starts at
/// `m.div_ceil(MR) * MR * pc`, so any [`MC`]-aligned row block's panels
/// form a contiguous sub-slice and [`gemm_nn_prepacked`] can skip
/// per-call packing entirely. Packing is element-wise order-preserving
/// and the micro-kernel consumes identical panel bytes, so the prepacked
/// path is bit-identical to [`gemm_nn`]. Read-only after construction —
/// a plain owned `Vec`, safe to share across pool blocks (no
/// thread-local scratch guard involved).
#[derive(Debug, Clone)]
pub struct PackedA {
    data: Vec<f32>,
    m: usize,
    k: usize,
}

impl PackedA {
    /// Packs a row-major `a: [m, k]`.
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != m * k`.
    pub fn pack(a: &[f32], m: usize, k: usize) -> Self {
        let mut data = vec![0.0f32; packed_a_len(m, k)];
        pack_a_full_into(a, m, k, &mut data);
        PackedA { data, m, k }
    }

    /// The packed operand's `m` (row) dimension.
    pub fn m(&self) -> usize {
        self.m
    }

    /// The packed operand's `k` (reduction) dimension.
    pub fn k(&self) -> usize {
        self.k
    }
}

/// [`gemm_nn`] (`c += a @ b`) over a pre-packed LHS: identical blocking,
/// summation order, and therefore bit-identical f32 results — the A
/// packing just happened at [`PackedA::pack`] time instead of per call.
/// The hot use is convolution, where one weight matrix multiplies one
/// im2col matrix per image per inference call.
///
/// # Panics
///
/// Panics if `a` was packed for different `(m, k)` dims.
pub fn gemm_nn_prepacked(
    m: usize,
    n: usize,
    k: usize,
    a: &PackedA,
    b: &[f32],
    c: &mut [f32],
    parallel: bool,
) {
    assert_eq!((a.m, a.k), (m, k), "packed lhs dims mismatch");
    gemm_nn_prepacked_slice(m, n, k, &a.data, b, c, parallel);
}

/// Packed-LHS buffer length for a row-major `[m, k]` operand:
/// `m.div_ceil(MR) * MR * k` elements (rows rounded up to whole MR
/// panels, every k column present).
pub fn packed_a_len(m: usize, k: usize) -> usize {
    m.div_ceil(MR) * MR * k
}

/// Packs a row-major `a: [m, k]` into `dst` in the exact slab/panel
/// layout [`gemm_nn_prepacked_slice`] consumes — the slice-destination
/// form of [`PackedA::pack`], for executors that keep packed weights in a
/// plan-owned arena and re-pack in place each training step.
///
/// # Panics
///
/// Panics if `a.len() != m * k` or `dst.len() != packed_a_len(m, k)`.
pub fn pack_a_full_into(a: &[f32], m: usize, k: usize, dst: &mut [f32]) {
    assert_eq!(a.len(), m * k, "lhs length mismatch");
    assert_eq!(dst.len(), packed_a_len(m, k), "packed dst length mismatch");
    let mpanels = m.div_ceil(MR);
    for pc in (0..k).step_by(KC) {
        let kc = KC.min(k - pc);
        let base = mpanels * MR * pc;
        pack_a(a, k, 1, 0, pc, m, kc, &mut dst[base..base + mpanels * MR * kc]);
    }
}

/// [`gemm_nn_prepacked`] over a raw packed-LHS slice (as produced by
/// [`pack_a_full_into`]): same blocking, same summation order, same
/// bit-identical-to-[`gemm_nn`] guarantee. This is the entry point for
/// arena-resident packed weights; [`PackedA`] remains the owned
/// convenience wrapper.
///
/// # Panics
///
/// Panics if `apack.len() != packed_a_len(m, k)`.
pub fn gemm_nn_prepacked_slice(
    m: usize,
    n: usize,
    k: usize,
    apack_full: &[f32],
    b: &[f32],
    c: &mut [f32],
    parallel: bool,
) {
    assert_eq!(
        apack_full.len(),
        packed_a_len(m, k),
        "packed lhs length mismatch"
    );
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    debug_assert!(c.len() >= m * n, "C buffer too small");
    let mpanels = m.div_ceil(MR);
    for jc in (0..n).step_by(NC) {
        let nc = NC.min(n - jc);
        let npanels = nc.div_ceil(NR);
        for pc in (0..k).step_by(KC) {
            let kc = KC.min(k - pc);
            let mut bpack = Scratch::uninit(npanels * NR * kc);
            pack_b(b, n, 1, pc, jc, kc, nc, &mut bpack);
            let slab = mpanels * MR * pc;
            let block = |ic0: usize, cblock: &mut [f32]| {
                let mc = MC.min(m - ic0);
                // MC is a multiple of MR, so a row block's panels start on
                // a panel boundary and are contiguous within the slab.
                let apack =
                    &apack_full[slab + (ic0 / MR) * MR * kc..][..mc.div_ceil(MR) * MR * kc];
                mul_block(apack, &bpack, mc, kc, n, jc, nc, cblock);
            };
            if parallel && m > MC && pool::threads() > 1 {
                pool::par_chunks_mut(c, MC * n, |bi, cblock| block(bi * MC, cblock));
            } else {
                for (bi, cblock) in c.chunks_mut(MC * n).enumerate() {
                    block(bi * MC, cblock);
                }
            }
        }
    }
}

/// Reference kernel: the naive row-axpy loop the blocked kernel replaced.
/// Kept on purpose as (a) the oracle for the GEMM property tests and
/// (b) the baseline the `gemm_kernels` bench measures speedups against.
pub fn gemm_nn_naive(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let crow = &mut c[i * n..(i + 1) * n];
        for (kk, &av) in arow.iter().enumerate() {
            if av == 0.0 { // tqt:allow(float-eq): exact-zero skip is an optimization, not a tolerance
                continue;
            }
            let brow = &b[kk * n..(kk + 1) * n];
            for (cv, &bv) in crow.iter_mut().zip(brow) {
                *cv += av * bv;
            }
        }
    }
}

/// Blocked `c += A·B` over arbitrary strides: `A[i, kk] = a[i*a_rs +
/// kk*a_cs]`, `B[kk, j] = b[kk*b_rs + j*b_cs]`, `c` row-major `[m, n]`
/// contiguous. `parallel` fans the `MC` row-block loop out over the
/// worker pool (set it `false` when the caller is already inside a
/// parallel region with one GEMM per worker, as the conv kernels are).
#[allow(clippy::too_many_arguments)]
fn gemm_strided(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    a_rs: usize,
    a_cs: usize,
    b: &[f32],
    b_rs: usize,
    b_cs: usize,
    c: &mut [f32],
    parallel: bool,
) {
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    debug_assert!(c.len() >= m * n, "C buffer too small");
    for jc in (0..n).step_by(NC) {
        let nc = NC.min(n - jc);
        let npanels = nc.div_ceil(NR);
        for pc in (0..k).step_by(KC) {
            let kc = KC.min(k - pc);
            let mut bpack = Scratch::uninit(npanels * NR * kc);
            pack_b(b, b_rs, b_cs, pc, jc, kc, nc, &mut bpack);
            let block = |ic0: usize, cblock: &mut [f32]| {
                let mc = MC.min(m - ic0);
                let mut apack = Scratch::uninit(mc.div_ceil(MR) * MR * kc);
                pack_a(a, a_rs, a_cs, ic0, pc, mc, kc, &mut apack);
                mul_block(&apack, &bpack, mc, kc, n, jc, nc, cblock);
            };
            // One chunk per MC rows of C; identical block boundaries on
            // both paths, so this is purely a scheduling choice.
            if parallel && m > MC && pool::threads() > 1 {
                pool::par_chunks_mut(c, MC * n, |bi, cblock| block(bi * MC, cblock));
            } else {
                for (bi, cblock) in c.chunks_mut(MC * n).enumerate() {
                    block(bi * MC, cblock);
                }
            }
        }
    }
}

/// Multiplies one packed `mc×kc` A block by the packed `kc×nc` B panel
/// set, accumulating into `cblock` (the `mc` full-width rows of C that
/// the block owns; only columns `[jc, jc+nc)` are touched).
#[allow(clippy::too_many_arguments)]
fn mul_block(
    apack: &[f32],
    bpack: &[f32],
    mc: usize,
    kc: usize,
    n: usize,
    jc: usize,
    nc: usize,
    cblock: &mut [f32],
) {
    let mpanels = mc.div_ceil(MR);
    let npanels = nc.div_ceil(NR);
    let avx = has_avx2_fma();
    for q in 0..npanels {
        let bpanel = &bpack[q * NR * kc..(q + 1) * NR * kc];
        let nr = NR.min(nc - q * NR);
        for p in 0..mpanels {
            let apanel = &apack[p * MR * kc..(p + 1) * MR * kc];
            let mut acc = [[0.0f32; NR]; MR];
            microkernel(kc, apanel, bpanel, &mut acc, avx);
            let mr = MR.min(mc - p * MR);
            for (r, acc_row) in acc.iter().enumerate().take(mr) {
                let row0 = (p * MR + r) * n + jc + q * NR;
                for (cv, &av) in cblock[row0..row0 + nr].iter_mut().zip(acc_row) {
                    *cv += av;
                }
            }
        }
    }
}

/// True when the AVX2+FMA micro-kernel can run on this CPU. The
/// detection macro caches its answer, so this is a relaxed atomic load
/// per call — negligible next to a `kc`-deep micro-tile.
#[inline]
fn has_avx2_fma() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// The register-tiled inner kernel: `acc[r][s] = sum_kk ap[kk,r] *
/// bp[kk,s]` over one packed A panel (`kc×MR`, k-major) and one packed B
/// panel (`kc×NR`, k-major). Dispatches to the AVX2+FMA kernel when the
/// CPU has it, else to a portable scalar loop. Both accumulate in the
/// same fixed ascending-`k` order; results are deterministic per machine
/// (the FMA path rounds once per multiply-add, so cross-ISA results
/// differ within the usual f32 tolerance).
#[inline(always)]
fn microkernel(kc: usize, apanel: &[f32], bpanel: &[f32], acc: &mut [[f32; NR]; MR], avx: bool) {
    debug_assert!(apanel.len() >= kc * MR && bpanel.len() >= kc * NR);
    #[cfg(target_arch = "x86_64")]
    if avx {
        // SAFETY: `avx` is only true when has_avx2_fma() confirmed the
        // features; panel lengths are checked above.
        unsafe { microkernel_avx2(kc, apanel.as_ptr(), bpanel.as_ptr(), acc) }; // tqt:allow(unsafe): AVX2+FMA dispatch guarded by runtime feature detection; panel bounds debug-asserted above
        return;
    }
    let _ = avx;
    for kk in 0..kc {
        let av: &[f32; MR] = apanel[kk * MR..].first_chunk().unwrap(); // tqt:allow(unwrap): panel length is a multiple of MR
        let bv: &[f32; NR] = bpanel[kk * NR..].first_chunk().unwrap(); // tqt:allow(unwrap): panel length is a multiple of NR
        for (r, acc_row) in acc.iter_mut().enumerate() {
            let a = av[r];
            for (s, sum) in acc_row.iter_mut().enumerate() {
                *sum += a * bv[s];
            }
        }
    }
}

/// AVX2+FMA 6×16 micro-kernel: 12 ymm accumulators live across the whole
/// `kc` loop, two B loads and six broadcast-FMAs per `kk` step.
///
/// # Safety
///
/// Caller must guarantee the CPU supports `avx2` and `fma`, and that
/// `apanel`/`bpanel` point at `kc*MR` / `kc*NR` readable f32s.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn microkernel_avx2(
    kc: usize,
    apanel: *const f32,
    bpanel: *const f32,
    acc: &mut [[f32; NR]; MR],
) {
    use std::arch::x86_64::*;
    let mut c: [[__m256; 2]; MR] = [[_mm256_setzero_ps(); 2]; MR];
    for kk in 0..kc {
        let b0 = _mm256_loadu_ps(bpanel.add(kk * NR));
        let b1 = _mm256_loadu_ps(bpanel.add(kk * NR + 8));
        for (r, cr) in c.iter_mut().enumerate() {
            let a = _mm256_broadcast_ss(&*apanel.add(kk * MR + r));
            cr[0] = _mm256_fmadd_ps(a, b0, cr[0]);
            cr[1] = _mm256_fmadd_ps(a, b1, cr[1]);
        }
    }
    for (r, cr) in c.iter().enumerate() {
        _mm256_storeu_ps(acc[r].as_mut_ptr(), cr[0]);
        _mm256_storeu_ps(acc[r].as_mut_ptr().add(8), cr[1]);
    }
}

/// Packs `mc×kc` of A (strided) into MR-tall, k-major panels, zero-
/// padding the ragged last panel so the micro-kernel is branch-free.
#[allow(clippy::too_many_arguments)]
fn pack_a(
    a: &[f32],
    a_rs: usize,
    a_cs: usize,
    i0: usize,
    k0: usize,
    mc: usize,
    kc: usize,
    dst: &mut [f32],
) {
    for p in 0..mc.div_ceil(MR) {
        let panel = &mut dst[p * MR * kc..(p + 1) * MR * kc];
        let rows = MR.min(mc - p * MR);
        for kk in 0..kc {
            let col = &mut panel[kk * MR..(kk + 1) * MR];
            for (r, slot) in col.iter_mut().take(rows).enumerate() {
                *slot = a[(i0 + p * MR + r) * a_rs + (k0 + kk) * a_cs];
            }
            col[rows..].fill(0.0);
        }
    }
}

/// Packs `kc×nc` of B (strided) into NR-wide, k-major panels, zero-
/// padding the ragged last panel.
#[allow(clippy::too_many_arguments)]
fn pack_b(
    b: &[f32],
    b_rs: usize,
    b_cs: usize,
    k0: usize,
    j0: usize,
    kc: usize,
    nc: usize,
    dst: &mut [f32],
) {
    for q in 0..nc.div_ceil(NR) {
        let panel = &mut dst[q * NR * kc..(q + 1) * NR * kc];
        let cols = NR.min(nc - q * NR);
        for kk in 0..kc {
            let row = &mut panel[kk * NR..(kk + 1) * NR];
            let src0 = (k0 + kk) * b_rs + (j0 + q * NR) * b_cs;
            if b_cs == 1 {
                row[..cols].copy_from_slice(&b[src0..src0 + cols]);
            } else {
                for (s, slot) in row.iter_mut().take(cols).enumerate() {
                    *slot = b[src0 + s * b_cs];
                }
            }
            row[cols..].fill(0.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Strided oracle covering all three layout variants.
    #[allow(clippy::too_many_arguments)]
    fn oracle(
        m: usize,
        n: usize,
        k: usize,
        a: &[f32],
        a_rs: usize,
        a_cs: usize,
        b: &[f32],
        b_rs: usize,
        b_cs: usize,
    ) -> Vec<f32> {
        let mut c = vec![0.0f64; m * n];
        for i in 0..m {
            for j in 0..n {
                for kk in 0..k {
                    c[i * n + j] +=
                        a[i * a_rs + kk * a_cs] as f64 * b[kk * b_rs + j * b_cs] as f64;
                }
            }
        }
        c.into_iter().map(|v| v as f32).collect()
    }

    fn fill(len: usize, seed: u64) -> Vec<f32> {
        let mut rng = tqt_rt::Rng::new(seed);
        (0..len).map(|_| rng.gen_range(-1.0f32..1.0)).collect()
    }

    #[test]
    fn edge_tile_grid_matches_oracle() {
        // Shapes straddling every tile boundary: below MR/NR, exact
        // multiples, one past, and (for k) across the KC slab boundary.
        let dims = [1usize, 2, 3, MR, MR + 1, NR - 1, NR, NR + 1, 17];
        let ks = [1usize, 2, 7, KC - 1, KC, KC + 1];
        for &m in &dims {
            for &n in &dims {
                for &k in &ks {
                    let a = fill(m * k, 1 + (m * 31 + n * 7 + k) as u64);
                    let b = fill(k * n, 2 + (m + n * 13 + k * 3) as u64);
                    let mut c = vec![0.0f32; m * n];
                    gemm_nn(m, n, k, &a, &b, &mut c, false);
                    let want = oracle(m, n, k, &a, k, 1, &b, n, 1);
                    for (idx, (&got, &exp)) in c.iter().zip(&want).enumerate() {
                        assert!(
                            (got - exp).abs() <= 1e-4 * exp.abs().max(1.0),
                            "[{m}x{n}x{k}] c[{idx}] = {got}, oracle {exp}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn tn_and_nt_match_strided_oracle() {
        let (m, n, k) = (13, 21, 37);
        let at = fill(k * m, 11); // stored [k, m]
        let bt = fill(n * k, 12); // stored [n, k]
        let b = fill(k * n, 13);
        let a = fill(m * k, 14);

        let mut c = vec![0.0f32; m * n];
        gemm_tn(m, n, k, &at, &b, &mut c, false);
        let want = oracle(m, n, k, &at, 1, m, &b, n, 1);
        for (got, exp) in c.iter().zip(&want) {
            assert!((got - exp).abs() <= 1e-4 * exp.abs().max(1.0));
        }

        let mut c = vec![0.0f32; m * n];
        gemm_nt(m, n, k, &a, &bt, &mut c, false);
        let want = oracle(m, n, k, &a, k, 1, &bt, 1, k);
        for (got, exp) in c.iter().zip(&want) {
            assert!((got - exp).abs() <= 1e-4 * exp.abs().max(1.0));
        }
    }

    #[test]
    fn prepacked_is_bit_identical_to_pack_per_call() {
        // Shapes straddling MR/MC/KC boundaries, serial and parallel.
        let shapes = [
            (1usize, 1usize, 1usize),
            (MR + 1, NR + 1, 7),
            (MC, 33, KC),
            (2 * MC + 5, 97, KC + 3),
        ];
        tqt_rt::pool::set_threads(4);
        for &(m, n, k) in &shapes {
            let a = fill(m * k, 101 + m as u64);
            let b = fill(k * n, 202 + n as u64);
            let packed = PackedA::pack(&a, m, k);
            assert_eq!((packed.m(), packed.k()), (m, k));
            for parallel in [false, true] {
                let mut c_ref = vec![0.5f32; m * n];
                gemm_nn(m, n, k, &a, &b, &mut c_ref, parallel);
                let mut c_pp = vec![0.5f32; m * n];
                gemm_nn_prepacked(m, n, k, &packed, &b, &mut c_pp, parallel);
                assert_eq!(c_ref, c_pp, "[{m}x{n}x{k}] parallel={parallel}");
            }
        }
        tqt_rt::pool::set_threads(0);
    }

    #[test]
    fn slice_prepack_matches_owned_prepack() {
        let (m, n, k) = (MC + 7, 65, KC + 9);
        let a = fill(m * k, 303);
        let b = fill(k * n, 304);
        let packed = PackedA::pack(&a, m, k);
        let mut arena = vec![0.0f32; packed_a_len(m, k)];
        pack_a_full_into(&a, m, k, &mut arena);
        let mut c_owned = vec![0.25f32; m * n];
        gemm_nn_prepacked(m, n, k, &packed, &b, &mut c_owned, false);
        let mut c_slice = vec![0.25f32; m * n];
        gemm_nn_prepacked_slice(m, n, k, &arena, &b, &mut c_slice, false);
        assert_eq!(c_owned, c_slice);
    }

    #[test]
    fn accumulates_into_c() {
        // gemm semantics are C += A·B: a pre-loaded C survives.
        let a = vec![1.0f32; 4];
        let b = vec![1.0f32; 4];
        let mut c = vec![10.0f32; 4];
        gemm_nn(2, 2, 2, &a, &b, &mut c, false);
        assert_eq!(c, vec![12.0; 4]);
    }

    #[test]
    fn parallel_split_is_bit_identical() {
        tqt_rt::pool::set_threads(4);
        let (m, n, k) = (3 * MC + 5, 97, KC + 3);
        let a = fill(m * k, 77);
        let b = fill(k * n, 78);
        let mut cp = vec![0.0f32; m * n];
        gemm_nn(m, n, k, &a, &b, &mut cp, true);
        let mut cs = vec![0.0f32; m * n];
        gemm_nn(m, n, k, &a, &b, &mut cs, false);
        tqt_rt::pool::set_threads(0);
        assert_eq!(cp, cs, "thread split changed the f32 result");
    }
}
