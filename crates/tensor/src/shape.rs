//! Shape and index arithmetic for dense row-major tensors.

use std::fmt;

/// The dimensions of a dense, row-major (C-order) tensor.
///
/// A `Shape` is an ordered list of dimension sizes. A zero-dimensional shape
/// (`Shape::scalar()`) describes a single element.
///
/// # Examples
///
/// ```
/// use tqt_tensor::Shape;
/// let s = Shape::new(vec![2, 3, 4]);
/// assert_eq!(s.numel(), 24);
/// assert_eq!(s.strides(), vec![12, 4, 1]);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Creates a shape from dimension sizes.
    pub fn new(dims: Vec<usize>) -> Self {
        Shape(dims)
    }

    /// The zero-dimensional (scalar) shape.
    pub fn scalar() -> Self {
        Shape(Vec::new())
    }

    /// Dimension sizes as a slice.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Number of dimensions (rank).
    pub fn ndim(&self) -> usize {
        self.0.len()
    }

    /// Size of dimension `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.ndim()`.
    pub fn dim(&self, i: usize) -> usize {
        self.0[i]
    }

    /// Total number of elements (product of all dimensions; 1 for a scalar).
    pub fn numel(&self) -> usize {
        self.0.iter().product()
    }

    /// Row-major strides, in elements.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1; self.0.len()];
        for i in (0..self.0.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.0[i + 1];
        }
        strides
    }

    /// Linear offset of a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if `idx.len() != self.ndim()` or any coordinate is out of
    /// bounds.
    pub fn offset(&self, idx: &[usize]) -> usize {
        assert_eq!(
            idx.len(),
            self.0.len(),
            "index rank {} does not match shape rank {}",
            idx.len(),
            self.0.len()
        );
        let mut off = 0;
        let mut stride = 1;
        for i in (0..self.0.len()).rev() {
            assert!(
                idx[i] < self.0[i],
                "index {} out of bounds for dimension {} of size {}",
                idx[i],
                i,
                self.0[i]
            );
            off += idx[i] * stride;
            stride *= self.0[i];
        }
        off
    }

    /// Whether two shapes are identical.
    pub fn same_as(&self, other: &Shape) -> bool {
        self.0 == other.0
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Shape{:?}", self.0)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, "x")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape(dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape(dims.to_vec())
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape(dims.to_vec())
    }
}

impl From<usize> for Shape {
    fn from(d: usize) -> Self {
        Shape(vec![d])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numel_and_strides() {
        let s = Shape::from([2, 3, 4]);
        assert_eq!(s.numel(), 24);
        assert_eq!(s.strides(), vec![12, 4, 1]);
        assert_eq!(s.ndim(), 3);
    }

    #[test]
    fn scalar_shape() {
        let s = Shape::scalar();
        assert_eq!(s.numel(), 1);
        assert_eq!(s.ndim(), 0);
        assert_eq!(s.offset(&[]), 0);
    }

    #[test]
    fn offsets_are_row_major() {
        let s = Shape::from([2, 3]);
        assert_eq!(s.offset(&[0, 0]), 0);
        assert_eq!(s.offset(&[0, 2]), 2);
        assert_eq!(s.offset(&[1, 0]), 3);
        assert_eq!(s.offset(&[1, 2]), 5);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn offset_bounds_checked() {
        Shape::from([2, 3]).offset(&[2, 0]);
    }

    #[test]
    #[should_panic(expected = "rank")]
    fn offset_rank_checked() {
        Shape::from([2, 3]).offset(&[1]);
    }

    #[test]
    fn display() {
        assert_eq!(Shape::from([2, 3]).to_string(), "[2x3]");
    }

    #[test]
    fn empty_dim_numel_zero() {
        assert_eq!(Shape::from([2, 0, 4]).numel(), 0);
    }
}
