//! # tqt-tensor
//!
//! Dense `f32` tensor substrate for the TQT (Trained Quantization
//! Thresholds) reproduction. Provides the N-d [`Tensor`] container plus the
//! numerical kernels the neural-network stack is built on: elementwise and
//! per-channel broadcasting ops, matrix multiplication, 2-D (and depthwise)
//! convolution with hand-derived backward passes, reductions, seeded random
//! initialization, and the distribution statistics (histograms, moments,
//! percentiles) used by quantization-threshold calibration.
//!
//! Everything is deterministic: all randomness is drawn from caller-provided
//! seeded RNGs and no kernel depends on thread scheduling for its result.
//!
//! # Examples
//!
//! ```
//! use tqt_tensor::{Tensor, conv::{conv2d, Conv2dGeom}};
//!
//! let image = Tensor::ones([1, 3, 8, 8]);            // NCHW
//! let weight = Tensor::ones([4, 3, 3, 3]);           // [out, in, kh, kw]
//! let out = conv2d(&image, &weight, Conv2dGeom::same(3));
//! assert_eq!(out.dims(), &[1, 4, 8, 8]);
//! ```

pub mod conv;
pub mod gemm;
pub mod init;
pub mod matmul;
pub mod scratch;
pub mod ops;
pub mod reduce;
pub mod shape;
pub mod stats;
mod tensor;

pub use matmul::{matmul, matmul_nt, matmul_tn};
pub use shape::Shape;
pub use tensor::Tensor;
