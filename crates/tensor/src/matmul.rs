//! Dense matrix multiplication. All three layout variants are thin
//! shape-checking wrappers over the blocked, register-tiled kernel in
//! [`crate::gemm`], which parallelizes across output row blocks on the
//! persistent `tqt_rt::pool` with a thread-count-independent summation
//! order (see the `gemm` module docs for the determinism argument).

use crate::gemm;
use crate::tensor::Tensor;

/// Matrix product `a @ b` of a `[m, k]` tensor with a `[k, n]` tensor.
///
/// # Panics
///
/// Panics if either input is not 2-D or the inner dimensions disagree.
///
/// # Examples
///
/// ```
/// use tqt_tensor::{Tensor, matmul};
/// let a = Tensor::from_vec([2, 2], vec![1., 2., 3., 4.]);
/// let b = Tensor::from_vec([2, 1], vec![5., 6.]);
/// assert_eq!(matmul(&a, &b).data(), &[17., 39.]);
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.ndim(), 2, "matmul lhs must be 2-D, got {}", a.shape());
    assert_eq!(b.ndim(), 2, "matmul rhs must be 2-D, got {}", b.shape());
    let (m, k) = (a.dim(0), a.dim(1));
    let (k2, n) = (b.dim(0), b.dim(1));
    assert_eq!(
        k,
        k2,
        "matmul inner dimension mismatch: {} vs {}",
        a.shape(),
        b.shape()
    );
    let mut out = vec![0.0f32; m * n];
    gemm::gemm_nn(m, n, k, a.data(), b.data(), &mut out, true);
    Tensor::from_vec([m, n], out)
}

/// `a^T @ b` for `a: [k, m]`, `b: [k, n]`, without materializing the
/// transpose. Used in dense-layer weight gradients.
///
/// # Panics
///
/// Panics if either input is not 2-D or the leading dimensions disagree.
pub fn matmul_tn(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.ndim(), 2, "matmul_tn lhs must be 2-D");
    assert_eq!(b.ndim(), 2, "matmul_tn rhs must be 2-D");
    let (k, m) = (a.dim(0), a.dim(1));
    let (k2, n) = (b.dim(0), b.dim(1));
    assert_eq!(
        k,
        k2,
        "matmul_tn leading dimension mismatch: {} vs {}",
        a.shape(),
        b.shape()
    );
    let mut out = vec![0.0f32; m * n];
    gemm::gemm_tn(m, n, k, a.data(), b.data(), &mut out, true);
    Tensor::from_vec([m, n], out)
}

/// `a @ b^T` for `a: [m, k]`, `b: [n, k]`, without materializing the
/// transpose. Used in dense-layer input gradients.
///
/// # Panics
///
/// Panics if either input is not 2-D or the trailing dimensions disagree.
pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.ndim(), 2, "matmul_nt lhs must be 2-D");
    assert_eq!(b.ndim(), 2, "matmul_nt rhs must be 2-D");
    let (m, k) = (a.dim(0), a.dim(1));
    let (n, k2) = (b.dim(0), b.dim(1));
    assert_eq!(
        k,
        k2,
        "matmul_nt trailing dimension mismatch: {} vs {}",
        a.shape(),
        b.shape()
    );
    let mut out = vec![0.0f32; m * n];
    gemm::gemm_nt(m, n, k, a.data(), b.data(), &mut out, true);
    Tensor::from_vec([m, n], out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_matmul() {
        let a = Tensor::from_vec([2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec([3, 2], vec![7., 8., 9., 10., 11., 12.]);
        let c = matmul(&a, &b);
        assert_eq!(c.dims(), &[2, 2]);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn identity() {
        let a = Tensor::from_vec([2, 2], vec![1., 2., 3., 4.]);
        let i = Tensor::from_vec([2, 2], vec![1., 0., 0., 1.]);
        assert_eq!(matmul(&a, &i), a);
        assert_eq!(matmul(&i, &a), a);
    }

    #[test]
    fn tn_matches_explicit_transpose() {
        let a = Tensor::from_vec([3, 2], vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec([3, 4], (0..12).map(|x| x as f32).collect());
        matmul_tn(&a, &b).assert_close(&matmul(&a.transpose2(), &b), 1e-6);
    }

    #[test]
    fn nt_matches_explicit_transpose() {
        let a = Tensor::from_vec([2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec([4, 3], (0..12).map(|x| x as f32).collect());
        matmul_nt(&a, &b).assert_close(&matmul(&a, &b.transpose2()), 1e-6);
    }

    #[test]
    fn large_parallel_path_matches_serial() {
        // Cross the parallel threshold and check against a small-block oracle.
        let m = 33;
        let k = 17;
        let n = 29;
        let a = Tensor::from_vec([m, k], (0..m * k).map(|x| (x % 7) as f32 - 3.0).collect());
        let b = Tensor::from_vec([k, n], (0..k * n).map(|x| (x % 5) as f32 - 2.0).collect());
        let c = matmul(&a, &b);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for kk in 0..k {
                    acc += a.at(&[i, kk]) * b.at(&[kk, j]);
                }
                assert!((c.at(&[i, j]) - acc).abs() < 1e-4);
            }
        }
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn shape_checked() {
        matmul(&Tensor::zeros([2, 3]), &Tensor::zeros([4, 2]));
    }
}
