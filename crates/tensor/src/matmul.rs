//! Dense matrix multiplication, parallelized across output rows with the
//! in-repo scoped thread pool (`tqt_rt::pool`).

use crate::tensor::Tensor;
use tqt_rt::pool;

/// Minimum number of output rows before parallelism is worth dispatching.
const PAR_THRESHOLD_ROWS: usize = 8;

/// Matrix product `a @ b` of a `[m, k]` tensor with a `[k, n]` tensor.
///
/// # Panics
///
/// Panics if either input is not 2-D or the inner dimensions disagree.
///
/// # Examples
///
/// ```
/// use tqt_tensor::{Tensor, matmul};
/// let a = Tensor::from_vec([2, 2], vec![1., 2., 3., 4.]);
/// let b = Tensor::from_vec([2, 1], vec![5., 6.]);
/// assert_eq!(matmul(&a, &b).data(), &[17., 39.]);
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.ndim(), 2, "matmul lhs must be 2-D, got {}", a.shape());
    assert_eq!(b.ndim(), 2, "matmul rhs must be 2-D, got {}", b.shape());
    let (m, k) = (a.dim(0), a.dim(1));
    let (k2, n) = (b.dim(0), b.dim(1));
    assert_eq!(
        k,
        k2,
        "matmul inner dimension mismatch: {} vs {}",
        a.shape(),
        b.shape()
    );
    let mut out = vec![0.0f32; m * n];
    let ad = a.data();
    let bd = b.data();
    let row = |i: usize, orow: &mut [f32]| {
        let arow = &ad[i * k..(i + 1) * k];
        for (kk, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let brow = &bd[kk * n..(kk + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    };
    if m >= PAR_THRESHOLD_ROWS && m * n * k > 1 << 14 {
        pool::par_chunks_mut(&mut out, n, |i, orow| row(i, orow));
    } else {
        for (i, orow) in out.chunks_mut(n).enumerate() {
            row(i, orow);
        }
    }
    Tensor::from_vec([m, n], out)
}

/// `a^T @ b` for `a: [k, m]`, `b: [k, n]`, without materializing the
/// transpose. Used in dense-layer weight gradients.
///
/// # Panics
///
/// Panics if either input is not 2-D or the leading dimensions disagree.
pub fn matmul_tn(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.ndim(), 2, "matmul_tn lhs must be 2-D");
    assert_eq!(b.ndim(), 2, "matmul_tn rhs must be 2-D");
    let (k, m) = (a.dim(0), a.dim(1));
    let (k2, n) = (b.dim(0), b.dim(1));
    assert_eq!(
        k,
        k2,
        "matmul_tn leading dimension mismatch: {} vs {}",
        a.shape(),
        b.shape()
    );
    let mut out = vec![0.0f32; m * n];
    let ad = a.data();
    let bd = b.data();
    // out[i, j] = sum_k a[k, i] * b[k, j]
    for kk in 0..k {
        let arow = &ad[kk * m..(kk + 1) * m];
        let brow = &bd[kk * n..(kk + 1) * n];
        for (i, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let orow = &mut out[i * n..(i + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
    Tensor::from_vec([m, n], out)
}

/// `a @ b^T` for `a: [m, k]`, `b: [n, k]`, without materializing the
/// transpose. Used in dense-layer input gradients.
///
/// # Panics
///
/// Panics if either input is not 2-D or the trailing dimensions disagree.
pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.ndim(), 2, "matmul_nt lhs must be 2-D");
    assert_eq!(b.ndim(), 2, "matmul_nt rhs must be 2-D");
    let (m, k) = (a.dim(0), a.dim(1));
    let (n, k2) = (b.dim(0), b.dim(1));
    assert_eq!(
        k,
        k2,
        "matmul_nt trailing dimension mismatch: {} vs {}",
        a.shape(),
        b.shape()
    );
    let mut out = vec![0.0f32; m * n];
    let ad = a.data();
    let bd = b.data();
    let row = |i: usize, orow: &mut [f32]| {
        let arow = &ad[i * k..(i + 1) * k];
        for (j, o) in orow.iter_mut().enumerate() {
            let brow = &bd[j * k..(j + 1) * k];
            *o = arow.iter().zip(brow).map(|(&x, &y)| x * y).sum();
        }
    };
    if m >= PAR_THRESHOLD_ROWS && m * n * k > 1 << 14 {
        pool::par_chunks_mut(&mut out, n, |i, orow| row(i, orow));
    } else {
        for (i, orow) in out.chunks_mut(n).enumerate() {
            row(i, orow);
        }
    }
    Tensor::from_vec([m, n], out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_matmul() {
        let a = Tensor::from_vec([2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec([3, 2], vec![7., 8., 9., 10., 11., 12.]);
        let c = matmul(&a, &b);
        assert_eq!(c.dims(), &[2, 2]);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn identity() {
        let a = Tensor::from_vec([2, 2], vec![1., 2., 3., 4.]);
        let i = Tensor::from_vec([2, 2], vec![1., 0., 0., 1.]);
        assert_eq!(matmul(&a, &i), a);
        assert_eq!(matmul(&i, &a), a);
    }

    #[test]
    fn tn_matches_explicit_transpose() {
        let a = Tensor::from_vec([3, 2], vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec([3, 4], (0..12).map(|x| x as f32).collect());
        matmul_tn(&a, &b).assert_close(&matmul(&a.transpose2(), &b), 1e-6);
    }

    #[test]
    fn nt_matches_explicit_transpose() {
        let a = Tensor::from_vec([2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec([4, 3], (0..12).map(|x| x as f32).collect());
        matmul_nt(&a, &b).assert_close(&matmul(&a, &b.transpose2()), 1e-6);
    }

    #[test]
    fn large_parallel_path_matches_serial() {
        // Cross the parallel threshold and check against a small-block oracle.
        let m = 33;
        let k = 17;
        let n = 29;
        let a = Tensor::from_vec([m, k], (0..m * k).map(|x| (x % 7) as f32 - 3.0).collect());
        let b = Tensor::from_vec([k, n], (0..k * n).map(|x| (x % 5) as f32 - 2.0).collect());
        let c = matmul(&a, &b);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for kk in 0..k {
                    acc += a.at(&[i, kk]) * b.at(&[kk, j]);
                }
                assert!((c.at(&[i, j]) - acc).abs() < 1e-4);
            }
        }
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn shape_checked() {
        matmul(&Tensor::zeros([2, 3]), &Tensor::zeros([4, 2]));
    }
}
