//! Deterministic random tensor initialization.
//!
//! All randomness in the workspace flows through seeded [`Rng`] instances
//! (the in-repo Xoshiro256++ generator from `tqt-rt`) so every experiment
//! is exactly reproducible on every platform.

use crate::shape::Shape;
use crate::tensor::Tensor;

/// The workspace-wide PRNG, re-exported so downstream crates spell it
/// `init::Rng` and never grow their own randomness substrate.
pub use tqt_rt::Rng;

/// Samples a standard normal variate via the Box–Muller transform.
pub fn sample_standard_normal(rng: &mut Rng) -> f32 {
    rng.normal_f32()
}

/// Creates a seeded RNG. Thin wrapper so callers don't need a direct
/// `tqt-rt` dependency for the common case.
pub fn rng(seed: u64) -> Rng {
    Rng::seed_from_u64(seed)
}

/// Tensor with i.i.d. uniform entries in `[lo, hi)`.
///
/// # Panics
///
/// Panics if `lo >= hi`.
pub fn uniform(shape: impl Into<Shape>, lo: f32, hi: f32, rng: &mut Rng) -> Tensor {
    assert!(lo < hi, "uniform requires lo < hi, got [{lo}, {hi})");
    let shape = shape.into();
    let n = shape.numel();
    Tensor::from_vec(shape, (0..n).map(|_| rng.gen_range(lo..hi)).collect())
}

/// Tensor with i.i.d. normal entries with the given mean and standard
/// deviation.
///
/// # Panics
///
/// Panics if `std` is negative or not finite.
pub fn normal(shape: impl Into<Shape>, mean: f32, std: f32, rng: &mut Rng) -> Tensor {
    assert!(std >= 0.0 && std.is_finite(), "invalid std {std}");
    let shape = shape.into();
    let n = shape.numel();
    Tensor::from_vec(
        shape,
        (0..n)
            .map(|_| mean + std * sample_standard_normal(rng))
            .collect(),
    )
}

/// He (Kaiming) normal initialization for a conv/dense weight tensor:
/// `std = sqrt(2 / fan_in)`. For a 4-D `[co, ci, kh, kw]` weight the fan-in
/// is `ci*kh*kw`; for a 2-D `[in, out]` weight it is `in`.
///
/// # Panics
///
/// Panics if the shape is not 2-D or 4-D or has zero fan-in.
pub fn he_normal(shape: impl Into<Shape>, rng: &mut Rng) -> Tensor {
    let shape = shape.into();
    let fan_in = fan_in(&shape);
    let std = (2.0 / fan_in as f32).sqrt();
    normal(shape, 0.0, std, rng)
}

/// Xavier/Glorot uniform initialization:
/// `limit = sqrt(6 / (fan_in + fan_out))`.
///
/// # Panics
///
/// Panics if the shape is not 2-D or 4-D or has zero fans.
pub fn xavier_uniform(shape: impl Into<Shape>, rng: &mut Rng) -> Tensor {
    let shape = shape.into();
    let (fi, fo) = (fan_in(&shape), fan_out(&shape));
    let limit = (6.0 / (fi + fo) as f32).sqrt();
    uniform(shape, -limit, limit, rng)
}

fn fan_in(shape: &Shape) -> usize {
    let f = match shape.ndim() {
        2 => shape.dim(0),
        4 => shape.dim(1) * shape.dim(2) * shape.dim(3),
        n => panic!("fan-in defined only for 2-D/4-D weights, got rank {n}"),
    };
    assert!(f > 0, "zero fan-in for shape {shape}");
    f
}

fn fan_out(shape: &Shape) -> usize {
    let f = match shape.ndim() {
        2 => shape.dim(1),
        4 => shape.dim(0) * shape.dim(2) * shape.dim(3),
        n => panic!("fan-out defined only for 2-D/4-D weights, got rank {n}"),
    };
    assert!(f > 0, "zero fan-out for shape {shape}");
    f
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reduce;

    #[test]
    fn deterministic_by_seed() {
        let a = uniform([100], -1.0, 1.0, &mut rng(7));
        let b = uniform([100], -1.0, 1.0, &mut rng(7));
        let c = uniform([100], -1.0, 1.0, &mut rng(8));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn uniform_bounds() {
        let t = uniform([1000], -0.5, 0.5, &mut rng(1));
        assert!(reduce::max(&t) < 0.5);
        assert!(reduce::min(&t) >= -0.5);
    }

    #[test]
    fn normal_moments() {
        let t = normal([20_000], 1.0, 2.0, &mut rng(2));
        let m = reduce::mean(&t);
        let var = t.data().iter().map(|&x| (x - m) * (x - m)).sum::<f32>() / t.len() as f32;
        assert!((m - 1.0).abs() < 0.05, "mean {m}");
        assert!((var - 4.0).abs() < 0.2, "var {var}");
    }

    #[test]
    fn he_std_matches_fan_in() {
        // fan_in = 4*3*3 = 36 => std = sqrt(2/36) ~= 0.2357
        let t = he_normal([8, 4, 3, 3], &mut rng(3));
        let m = reduce::mean(&t);
        let std = (t.data().iter().map(|&x| (x - m) * (x - m)).sum::<f32>()
            / t.len() as f32)
            .sqrt();
        assert!((std - (2.0f32 / 36.0).sqrt()).abs() < 0.05, "std {std}");
    }

    #[test]
    fn xavier_limit() {
        let t = xavier_uniform([10, 30], &mut rng(4));
        let lim = (6.0f32 / 40.0).sqrt();
        assert!(t.abs_max() <= lim);
    }
}
