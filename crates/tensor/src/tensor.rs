//! The dense `f32` tensor type underlying all computation in this workspace.

use crate::shape::Shape;
use std::fmt;

/// A dense, contiguous, row-major tensor of `f32` values.
///
/// This is the single numeric container used by the whole TQT stack: layer
/// activations, weights, gradients and calibration statistics are all
/// `Tensor`s. The layout for image data is NCHW.
///
/// # Examples
///
/// ```
/// use tqt_tensor::Tensor;
/// let t = Tensor::from_vec([2, 2], vec![1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(t.at(&[1, 0]), 3.0);
/// assert_eq!(t.map(|x| x * 2.0).data(), &[2.0, 4.0, 6.0, 8.0]);
/// ```
#[derive(Clone, PartialEq)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor of zeros.
    pub fn zeros(shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        let n = shape.numel();
        Tensor {
            shape,
            data: vec![0.0; n],
        }
    }

    /// Creates a tensor of ones.
    pub fn ones(shape: impl Into<Shape>) -> Self {
        Self::full(shape, 1.0)
    }

    /// Creates a tensor filled with `value`.
    pub fn full(shape: impl Into<Shape>, value: f32) -> Self {
        let shape = shape.into();
        let n = shape.numel();
        Tensor {
            shape,
            data: vec![value; n],
        }
    }

    /// Creates a zero-dimensional tensor holding a single value.
    pub fn scalar(value: f32) -> Self {
        Tensor {
            shape: Shape::scalar(),
            data: vec![value],
        }
    }

    /// Creates a tensor from a shape and flat row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not equal the number of elements implied
    /// by `shape`.
    pub fn from_vec(shape: impl Into<Shape>, data: Vec<f32>) -> Self {
        let shape = shape.into();
        assert_eq!(
            shape.numel(),
            data.len(),
            "shape {} implies {} elements but {} were provided",
            shape,
            shape.numel(),
            data.len()
        );
        Tensor { shape, data }
    }

    /// Creates a 1-D tensor from a slice.
    pub fn from_slice(data: &[f32]) -> Self {
        Tensor {
            shape: Shape::from(data.len()),
            data: data.to_vec(),
        }
    }

    /// Evenly spaced values over `[start, stop]` inclusive, as a 1-D tensor.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn linspace(start: f32, stop: f32, n: usize) -> Self {
        assert!(n >= 2, "linspace requires at least 2 points");
        let step = (stop - start) / (n - 1) as f32;
        Tensor::from_vec(n, (0..n).map(|i| start + step * i as f32).collect())
    }

    /// The shape of this tensor.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Dimension sizes as a slice.
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Size of dimension `i`.
    pub fn dim(&self, i: usize) -> usize {
        self.shape.dim(i)
    }

    /// Number of dimensions.
    pub fn ndim(&self) -> usize {
        self.shape.ndim()
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat row-major view of the data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat row-major view of the data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its flat data.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if the index rank or any coordinate is out of bounds.
    pub fn at(&self, idx: &[usize]) -> f32 {
        self.data[self.shape.offset(idx)]
    }

    /// Sets the element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if the index rank or any coordinate is out of bounds.
    pub fn set(&mut self, idx: &[usize], value: f32) {
        let off = self.shape.offset(idx);
        self.data[off] = value;
    }

    /// The single value of a one-element tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor does not have exactly one element.
    pub fn item(&self) -> f32 {
        assert_eq!(
            self.len(),
            1,
            "item() requires a one-element tensor, got shape {}",
            self.shape
        );
        self.data[0]
    }

    /// Returns a tensor with the same data and a new shape.
    ///
    /// # Panics
    ///
    /// Panics if the new shape has a different number of elements.
    pub fn reshape(&self, shape: impl Into<Shape>) -> Tensor {
        let shape = shape.into();
        assert_eq!(
            shape.numel(),
            self.len(),
            "cannot reshape {} ({} elements) into {} ({} elements)",
            self.shape,
            self.len(),
            shape,
            shape.numel()
        );
        Tensor {
            shape,
            data: self.data.clone(),
        }
    }

    /// Applies `f` to every element, producing a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Combines two same-shaped tensors elementwise with `f`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn zip_map(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert!(
            self.shape.same_as(&other.shape),
            "zip_map shape mismatch: {} vs {}",
            self.shape,
            other.shape
        );
        Tensor {
            shape: self.shape.clone(),
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// Transposes a 2-D tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D.
    pub fn transpose2(&self) -> Tensor {
        assert_eq!(self.ndim(), 2, "transpose2 requires a 2-D tensor");
        let (r, c) = (self.dim(0), self.dim(1));
        let mut out = Tensor::zeros([c, r]);
        for i in 0..r {
            for j in 0..c {
                out.data[j * r + i] = self.data[i * c + j];
            }
        }
        out
    }

    /// Maximum absolute element (0.0 for empty tensors).
    pub fn abs_max(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &x| m.max(x.abs()))
    }

    /// Whether all elements are finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Maximum absolute difference between two same-shaped tensors.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn max_abs_diff(&self, other: &Tensor) -> f32 {
        assert!(
            self.shape.same_as(&other.shape),
            "max_abs_diff shape mismatch: {} vs {}",
            self.shape,
            other.shape
        );
        self.data
            .iter()
            .zip(&other.data)
            .fold(0.0f32, |m, (&a, &b)| m.max((a - b).abs()))
    }

    /// Asserts two tensors are elementwise equal within `tol`.
    ///
    /// # Panics
    ///
    /// Panics with a descriptive message when any element differs by more
    /// than `tol`, or when shapes differ.
    pub fn assert_close(&self, other: &Tensor, tol: f32) {
        assert!(
            self.shape.same_as(&other.shape),
            "assert_close shape mismatch: {} vs {}",
            self.shape,
            other.shape
        );
        for (i, (&a, &b)) in self.data.iter().zip(&other.data).enumerate() {
            assert!(
                (a - b).abs() <= tol,
                "tensors differ at flat index {i}: {a} vs {b} (tol {tol})"
            );
        }
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor({}", self.shape)?;
        if self.len() <= 16 {
            write!(f, ", {:?})", self.data)
        } else {
            write!(
                f,
                ", [{:?}, {:?}, ..., {:?}])",
                self.data[0],
                self.data[1],
                self.data[self.len() - 1]
            )
        }
    }
}

impl Default for Tensor {
    fn default() -> Self {
        Tensor::scalar(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let t = Tensor::from_vec([2, 3], vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(t.at(&[0, 0]), 1.0);
        assert_eq!(t.at(&[1, 2]), 6.0);
        assert_eq!(t.len(), 6);
        assert_eq!(t.ndim(), 2);
    }

    #[test]
    fn zeros_ones_full() {
        assert_eq!(Tensor::zeros([2, 2]).data(), &[0.0; 4]);
        assert_eq!(Tensor::ones([3]).data(), &[1.0; 3]);
        assert_eq!(Tensor::full([2], 7.5).data(), &[7.5, 7.5]);
    }

    #[test]
    fn scalar_item() {
        assert_eq!(Tensor::scalar(3.5).item(), 3.5);
    }

    #[test]
    #[should_panic(expected = "one-element")]
    fn item_rejects_multi_element() {
        Tensor::zeros([2]).item();
    }

    #[test]
    fn linspace_endpoints() {
        let t = Tensor::linspace(-1.0, 1.0, 5);
        assert_eq!(t.data(), &[-1.0, -0.5, 0.0, 0.5, 1.0]);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec([2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let r = t.reshape([3, 2]);
        assert_eq!(r.at(&[2, 1]), 6.0);
        assert_eq!(r.data(), t.data());
    }

    #[test]
    #[should_panic(expected = "cannot reshape")]
    fn reshape_element_count_checked() {
        Tensor::zeros([2, 3]).reshape([4, 2]);
    }

    #[test]
    fn map_and_zip_map() {
        let a = Tensor::from_slice(&[1.0, -2.0]);
        let b = Tensor::from_slice(&[3.0, 4.0]);
        assert_eq!(a.map(f32::abs).data(), &[1.0, 2.0]);
        assert_eq!(a.zip_map(&b, |x, y| x + y).data(), &[4.0, 2.0]);
    }

    #[test]
    fn transpose2_roundtrip() {
        let t = Tensor::from_vec([2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let tt = t.transpose2();
        assert_eq!(tt.dims(), &[3, 2]);
        assert_eq!(tt.at(&[2, 1]), 6.0);
        assert_eq!(tt.transpose2(), t);
    }

    #[test]
    fn abs_max_and_diff() {
        let a = Tensor::from_slice(&[1.0, -5.0, 2.0]);
        let b = Tensor::from_slice(&[1.0, -4.0, 2.5]);
        assert_eq!(a.abs_max(), 5.0);
        assert_eq!(a.max_abs_diff(&b), 1.0);
    }

    #[test]
    fn set_updates_value() {
        let mut t = Tensor::zeros([2, 2]);
        t.set(&[1, 1], 9.0);
        assert_eq!(t.at(&[1, 1]), 9.0);
    }

    #[test]
    fn all_finite_detects_nan() {
        let mut t = Tensor::ones([2]);
        assert!(t.all_finite());
        t.data_mut()[0] = f32::NAN;
        assert!(!t.all_finite());
    }
}
