//! Thread-local, grow-only scratch arenas for kernel workspace buffers.
//!
//! The im2col column matrices and GEMM packing panels used to be
//! `vec![0.0; ...]` per image per call — at training-loop frequencies
//! that is thousands of multi-hundred-KB allocations (and page faults)
//! per second. Each arena keeps a per-thread free stack of `Vec<T>`
//! buffers: `uninit`/`zeroed` pop one (LIFO, so a steady loop re-pairs
//! each call site with the buffer it used last time), grow it if
//! needed, and the guard's `Drop` pushes it back. Capacity is never
//! given back — across layers and training steps the arena converges to
//! the high-water mark of each nesting level and allocation disappears
//! from the hot path.
//!
//! Buffers are per *OS thread* (`thread_local!`). The `tqt_rt` worker
//! pool is persistent, so worker arenas are reused across parallel
//! regions exactly like the main thread's. Nested takes are fine; the
//! only rule is the usual RAII one: a guard frees its buffer when
//! dropped, not before — and, inside a parallel block, *within that
//! block*. Under the `sanitize` feature every guard stamps the pool
//! block context it was checked out in and the happens-before sanitizer
//! (`tqt_rt::hb`, `TQT-V022`) flags any guard returned in a different
//! block (escaped into a nested region or outlived its own).
//!
//! One arena exists per element type — [`Scratch`] (`f32`) for the
//! float path, [`ScratchI8`]/[`ScratchI32`]/[`ScratchI64`] for the
//! fixed-point kernels. The free stacks are independent, so integer
//! inference never evicts the float trainer's buffers (or vice versa).

use std::cell::RefCell;
use std::ops::{Deref, DerefMut};

macro_rules! scratch_arena {
    ($(#[$doc:meta])* $name:ident, $ty:ty, $zero:expr, $free:ident) => {
        thread_local! {
            /// Free stack of retired buffers, most recently dropped on
            /// top.
            static $free: RefCell<Vec<Vec<$ty>>> =
                const { RefCell::new(Vec::new()) };
        }

        $(#[$doc])*
        pub struct $name {
            buf: Vec<$ty>,
            len: usize,
            /// Pool block context at checkout (happens-before sanitizer).
            stamp: tqt_rt::hb::CheckoutStamp,
        }

        impl $name {
            /// Takes a buffer of `len` elements with **unspecified
            /// contents** (whatever a previous user left behind). Use
            /// when the kernel fully overwrites the buffer — im2col and
            /// GEMM packing do.
            pub fn uninit(len: usize) -> $name {
                let mut buf: Vec<$ty> = $free
                    .with(|f| f.borrow_mut().pop())
                    .unwrap_or_default();
                if buf.len() < len {
                    // Grow-only: reserves the high-water mark,
                    // zero-fills just the newly exposed tail (these
                    // types have no invalid bit patterns, but
                    // uninitialized memory is still off the table).
                    buf.resize(len, $zero);
                }
                $name { buf, len, stamp: tqt_rt::hb::stamp() }
            }

            /// Takes a buffer of `len` elements cleared to zero. Use
            /// for accumulation workspaces (e.g. the col2im gradient
            /// columns).
            pub fn zeroed(len: usize) -> $name {
                let mut s = $name::uninit(len);
                s.fill($zero);
                s
            }
        }

        impl Drop for $name {
            fn drop(&mut self) {
                tqt_rt::hb::check_checkin(self.stamp, stringify!($name));
                let buf = std::mem::take(&mut self.buf);
                // try_with: during thread teardown the TLS slot may
                // already be destroyed; then the buffer just
                // deallocates normally.
                let _ = $free.try_with(|f| f.borrow_mut().push(buf));
            }
        }

        impl Deref for $name {
            type Target = [$ty];
            fn deref(&self) -> &[$ty] {
                &self.buf[..self.len]
            }
        }

        impl DerefMut for $name {
            fn deref_mut(&mut self) -> &mut [$ty] {
                &mut self.buf[..self.len]
            }
        }
    };
}

scratch_arena!(
    /// RAII guard over a borrowed `f32` scratch buffer; derefs to
    /// `[f32]` of the requested length. Used by the float im2col /
    /// GEMM-packing path.
    Scratch,
    f32,
    0.0,
    FREE_F32
);

scratch_arena!(
    /// RAII guard over a borrowed `i8` scratch buffer (integer GEMM
    /// packing panels).
    ScratchI8,
    i8,
    0,
    FREE_I8
);

scratch_arena!(
    /// RAII guard over a borrowed `i32` scratch buffer (packed i16-pair
    /// LHS panels, row/column sums).
    ScratchI32,
    i32,
    0,
    FREE_I32
);

scratch_arena!(
    /// RAII guard over a borrowed `i64` scratch buffer (integer im2col
    /// columns for the bit-accurate `IntGraph` engine).
    ScratchI64,
    i64,
    0,
    FREE_I64
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_is_zero_even_after_dirty_reuse() {
        {
            let mut a = Scratch::uninit(128);
            a.fill(7.0);
        }
        let b = Scratch::zeroed(64);
        assert!(b.iter().all(|&v| v == 0.0));
        assert_eq!(b.len(), 64);
    }

    #[test]
    fn reuses_capacity_lifo() {
        let p0 = {
            let s = Scratch::uninit(1000);
            s.as_ptr() as usize
        };
        let p1 = {
            let s = Scratch::uninit(500);
            s.as_ptr() as usize
        };
        // Same allocation both times: the 1000-float buffer was reused
        // (500 <= existing length, no realloc).
        assert_eq!(p0, p1);
    }

    #[test]
    fn nested_takes_are_distinct() {
        let mut a = Scratch::uninit(16);
        let mut b = Scratch::uninit(16);
        a.fill(1.0);
        b.fill(2.0);
        assert!(a.iter().all(|&v| v == 1.0));
        assert!(b.iter().all(|&v| v == 2.0));
    }

    #[test]
    fn length_is_exact() {
        {
            let _big = Scratch::uninit(4096);
        }
        let small = Scratch::uninit(3);
        assert_eq!(small.len(), 3);
        assert_eq!(small.iter().count(), 3);
    }

    #[test]
    fn typed_arenas_are_independent() {
        {
            let mut a = ScratchI64::uninit(32);
            a.fill(-5);
        }
        // The i8 arena has never seen that buffer; a zeroed take is
        // zero regardless of what the i64 arena retired.
        let b = ScratchI8::zeroed(32);
        assert!(b.iter().all(|&v| v == 0));
        let c = ScratchI64::zeroed(16);
        assert!(c.iter().all(|&v| v == 0));
        let d = ScratchI32::uninit(8);
        assert_eq!(d.len(), 8);
    }
}
