//! Thread-local, grow-only scratch arena for kernel workspace buffers.
//!
//! The im2col column matrices and GEMM packing panels used to be
//! `vec![0.0; ...]` per image per call — at training-loop frequencies
//! that is thousands of multi-hundred-KB allocations (and page faults)
//! per second. The arena keeps a per-thread free stack of `Vec<f32>`
//! buffers: [`Scratch::uninit`]/[`Scratch::zeroed`] pop one (LIFO, so a
//! steady loop re-pairs each call site with the buffer it used last
//! time), grow it if needed, and the guard's `Drop` pushes it back.
//! Capacity is never given back — across layers and training steps the
//! arena converges to the high-water mark of each nesting level and
//! allocation disappears from the hot path.
//!
//! Buffers are per *OS thread* (`thread_local!`). The `tqt_rt` worker
//! pool is persistent, so worker arenas are reused across parallel
//! regions exactly like the main thread's. Nested takes are fine; the
//! only rule is the usual RAII one: a guard frees its buffer when
//! dropped, not before.

use std::cell::RefCell;
use std::ops::{Deref, DerefMut};

thread_local! {
    /// Free stack of retired buffers, most recently dropped on top.
    static FREE: RefCell<Vec<Vec<f32>>> = const { RefCell::new(Vec::new()) };
}

/// RAII guard over a borrowed scratch buffer; derefs to `[f32]` of the
/// requested length.
pub struct Scratch {
    buf: Vec<f32>,
    len: usize,
}

impl Scratch {
    /// Takes a buffer of `len` floats with **unspecified contents**
    /// (whatever a previous user left behind). Use when the kernel fully
    /// overwrites the buffer — im2col and GEMM packing do.
    pub fn uninit(len: usize) -> Scratch {
        let mut buf = FREE
            .with(|f| f.borrow_mut().pop())
            .unwrap_or_default();
        if buf.len() < len {
            // Grow-only: reserves the high-water mark, zero-fills just
            // the newly exposed tail (f32 has no invalid bit patterns,
            // but uninitialized memory is still off the table).
            buf.resize(len, 0.0);
        }
        Scratch { buf, len }
    }

    /// Takes a buffer of `len` floats cleared to `0.0`. Use for
    /// accumulation workspaces (e.g. the col2im gradient columns).
    pub fn zeroed(len: usize) -> Scratch {
        let mut s = Scratch::uninit(len);
        s.fill(0.0);
        s
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let buf = std::mem::take(&mut self.buf);
        // try_with: during thread teardown the TLS slot may already be
        // destroyed; then the buffer just deallocates normally.
        let _ = FREE.try_with(|f| f.borrow_mut().push(buf));
    }
}

impl Deref for Scratch {
    type Target = [f32];
    fn deref(&self) -> &[f32] {
        &self.buf[..self.len]
    }
}

impl DerefMut for Scratch {
    fn deref_mut(&mut self) -> &mut [f32] {
        &mut self.buf[..self.len]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_is_zero_even_after_dirty_reuse() {
        {
            let mut a = Scratch::uninit(128);
            a.fill(7.0);
        }
        let b = Scratch::zeroed(64);
        assert!(b.iter().all(|&v| v == 0.0));
        assert_eq!(b.len(), 64);
    }

    #[test]
    fn reuses_capacity_lifo() {
        let p0 = {
            let s = Scratch::uninit(1000);
            s.as_ptr() as usize
        };
        let p1 = {
            let s = Scratch::uninit(500);
            s.as_ptr() as usize
        };
        // Same allocation both times: the 1000-float buffer was reused
        // (500 <= existing length, no realloc).
        assert_eq!(p0, p1);
    }

    #[test]
    fn nested_takes_are_distinct() {
        let mut a = Scratch::uninit(16);
        let mut b = Scratch::uninit(16);
        a.fill(1.0);
        b.fill(2.0);
        assert!(a.iter().all(|&v| v == 1.0));
        assert!(b.iter().all(|&v| v == 2.0));
    }

    #[test]
    fn length_is_exact() {
        {
            let _big = Scratch::uninit(4096);
        }
        let small = Scratch::uninit(3);
        assert_eq!(small.len(), 3);
        assert_eq!(small.iter().count(), 3);
    }
}
