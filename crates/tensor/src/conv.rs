//! 2-D convolution (im2col-based) and depthwise convolution, forward and
//! backward, on NCHW tensors.
//!
//! Weight layout is `[out_channels, in_channels, kh, kw]` for standard
//! convolution and `[channels, 1, kh, kw]` for depthwise convolution
//! (channel multiplier 1, as used by MobileNets).
//!
//! The im2col products go through the blocked [`crate::gemm`] kernel
//! (serial, since the per-image loop is already parallel), and the column
//! matrices live in the thread-local [`Scratch`] arena so they are reused
//! across layers and training steps rather than reallocated per image.

use crate::gemm;
use crate::scratch::Scratch;
use crate::tensor::Tensor;
use tqt_rt::pool;

/// Spatial geometry of a convolution or pooling operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conv2dGeom {
    /// Kernel height.
    pub kh: usize,
    /// Kernel width.
    pub kw: usize,
    /// Stride in both spatial dimensions.
    pub stride: usize,
    /// Zero padding applied symmetrically to both spatial dimensions.
    pub pad: usize,
}

impl Conv2dGeom {
    /// A square kernel with the given size, stride and padding.
    pub fn new(k: usize, stride: usize, pad: usize) -> Self {
        Conv2dGeom {
            kh: k,
            kw: k,
            stride,
            pad,
        }
    }

    /// "Same" geometry for odd kernel size `k` at stride 1.
    pub fn same(k: usize) -> Self {
        Conv2dGeom::new(k, 1, k / 2)
    }

    /// Output spatial size for an input of size `(h, w)`.
    ///
    /// # Panics
    ///
    /// Panics if the kernel (plus padding) does not fit in the input.
    pub fn out_size(&self, h: usize, w: usize) -> (usize, usize) {
        assert!(
            h + 2 * self.pad >= self.kh && w + 2 * self.pad >= self.kw,
            "kernel {}x{} does not fit input {}x{} with pad {}",
            self.kh,
            self.kw,
            h,
            w,
            self.pad
        );
        (
            (h + 2 * self.pad - self.kh) / self.stride + 1,
            (w + 2 * self.pad - self.kw) / self.stride + 1,
        )
    }
}

/// Unfolds one image `[c, h, w]` (a slice of length `c*h*w`) into a column
/// matrix `[c*kh*kw, oh*ow]` stored row-major in `cols`. Out-of-bounds
/// (padding) positions are filled with `zero`.
///
/// Generic over the element type so the float trainer and the
/// fixed-point inference engine (`i64` ints) share one unfold
/// implementation.
///
/// # Panics
///
/// Panics (debug) if `cols` does not have exactly `c*kh*kw*oh*ow`
/// elements, and if the kernel does not fit the padded input.
pub fn im2col_into<T: Copy>(
    img: &[T],
    zero: T,
    c: usize,
    h: usize,
    w: usize,
    g: Conv2dGeom,
    cols: &mut [T],
) {
    let (oh, ow) = g.out_size(h, w);
    let ncols = oh * ow;
    debug_assert_eq!(cols.len(), c * g.kh * g.kw * ncols);
    for ci in 0..c {
        for ki in 0..g.kh {
            for kj in 0..g.kw {
                let row = ((ci * g.kh + ki) * g.kw + kj) * ncols;
                for oi in 0..oh {
                    let ii = (oi * g.stride + ki) as isize - g.pad as isize;
                    let base = row + oi * ow;
                    if ii < 0 || ii >= h as isize {
                        cols[base..base + ow].fill(zero);
                        continue;
                    }
                    let irow = (ci * h + ii as usize) * w;
                    for oj in 0..ow {
                        let jj = (oj * g.stride + kj) as isize - g.pad as isize;
                        cols[base + oj] = if jj < 0 || jj >= w as isize {
                            zero
                        } else {
                            img[irow + jj as usize]
                        };
                    }
                }
            }
        }
    }
}

/// Unfolds one `f32` image (see [`im2col_into`]).
fn im2col(img: &[f32], c: usize, h: usize, w: usize, g: Conv2dGeom, cols: &mut [f32]) {
    im2col_into(img, 0.0, c, h, w, g, cols);
}

/// Folds a column matrix back into an image, accumulating overlaps
/// (the adjoint of [`im2col`]).
fn col2im(cols: &[f32], c: usize, h: usize, w: usize, g: Conv2dGeom, img: &mut [f32]) {
    let (oh, ow) = g.out_size(h, w);
    let ncols = oh * ow;
    img.fill(0.0);
    for ci in 0..c {
        for ki in 0..g.kh {
            for kj in 0..g.kw {
                let row = ((ci * g.kh + ki) * g.kw + kj) * ncols;
                for oi in 0..oh {
                    let ii = (oi * g.stride + ki) as isize - g.pad as isize;
                    if ii < 0 || ii >= h as isize {
                        continue;
                    }
                    let irow = (ci * h + ii as usize) * w;
                    for oj in 0..ow {
                        let jj = (oj * g.stride + kj) as isize - g.pad as isize;
                        if jj >= 0 && jj < w as isize {
                            img[irow + jj as usize] += cols[row + oi * ow + oj];
                        }
                    }
                }
            }
        }
    }
}

fn check_conv_shapes(x: &Tensor, w: &Tensor, depthwise: bool) {
    assert_eq!(x.ndim(), 4, "conv input must be NCHW, got {}", x.shape());
    assert_eq!(w.ndim(), 4, "conv weight must be 4-D, got {}", w.shape());
    if depthwise {
        assert_eq!(
            w.dim(1),
            1,
            "depthwise weight must have channel-multiplier 1, got {}",
            w.shape()
        );
        assert_eq!(
            w.dim(0),
            x.dim(1),
            "depthwise weight channels {} do not match input channels {}",
            w.dim(0),
            x.dim(1)
        );
    } else {
        assert_eq!(
            w.dim(1),
            x.dim(1),
            "weight in-channels {} do not match input channels {}",
            w.dim(1),
            x.dim(1)
        );
    }
}

/// Standard 2-D convolution forward pass.
///
/// Input `x: [n, c_in, h, w]`, weight `w: [c_out, c_in, kh, kw]`; returns
/// `[n, c_out, oh, ow]`.
///
/// # Panics
///
/// Panics on rank or channel-count mismatches, or if the kernel does not
/// fit the padded input.
pub fn conv2d(x: &Tensor, w: &Tensor, g: Conv2dGeom) -> Tensor {
    check_conv_shapes(x, w, false);
    let (n, c, h, wd) = (x.dim(0), x.dim(1), x.dim(2), x.dim(3));
    let cout = w.dim(0);
    let (oh, ow) = g.out_size(h, wd);
    let ncols = oh * ow;
    let krows = c * g.kh * g.kw;
    let mut out = vec![0.0f32; n * cout * ncols];
    let xd = x.data();
    // Pack the filter matrix once, outside the parallel region (PackedA
    // owns a plain Vec, so sharing it across pool blocks is fine where a
    // thread-local scratch guard would not be); every image's GEMM then
    // reads the same panels instead of re-packing W per image.
    let wpack = gemm::PackedA::pack(w.data(), cout, krows);
    pool::par_chunks_mut(&mut out, cout * ncols, |ni, ochunk| {
        // im2col writes every element, so the scratch can stay dirty.
        let mut cols = Scratch::uninit(krows * ncols);
        im2col(&xd[ni * c * h * wd..(ni + 1) * c * h * wd], c, h, wd, g, &mut cols);
        // ochunk[co, :] = W[cout, krows] @ cols[krows, ncols]; serial GEMM —
        // this closure already runs inside the per-image parallel region.
        gemm::gemm_nn_prepacked(cout, ncols, krows, &wpack, &cols, ochunk, false);
    });
    Tensor::from_vec([n, cout, oh, ow], out)
}

/// Standard 2-D convolution backward pass.
///
/// Given the upstream gradient `gy: [n, c_out, oh, ow]`, returns
/// `(grad_input, grad_weight)` with the shapes of `x` and `w`.
///
/// # Panics
///
/// Panics on shape mismatches between `x`, `w`, `gy` and `g`.
pub fn conv2d_backward(x: &Tensor, w: &Tensor, gy: &Tensor, g: Conv2dGeom) -> (Tensor, Tensor) {
    check_conv_shapes(x, w, false);
    let (n, c, h, wd) = (x.dim(0), x.dim(1), x.dim(2), x.dim(3));
    let cout = w.dim(0);
    let (oh, ow) = g.out_size(h, wd);
    assert_eq!(
        gy.dims(),
        &[n, cout, oh, ow],
        "upstream gradient shape {} does not match conv output [{n}x{cout}x{oh}x{ow}]",
        gy.shape()
    );
    let ncols = oh * ow;
    let krows = c * g.kh * g.kw;
    let xd = x.data();
    let wdat = w.data();
    let gyd = gy.data();

    // Per-image partials computed in parallel, then reduced serially in
    // deterministic `ni` order so results are bit-identical to the serial
    // path.
    let results: Vec<(Vec<f32>, Vec<f32>)> = pool::par_map(n, |ni| {
        // im2col writes every element, so the scratch can stay dirty.
        let mut cols = Scratch::uninit(krows * ncols);
        im2col(&xd[ni * c * h * wd..(ni + 1) * c * h * wd], c, h, wd, g, &mut cols);
        let gslice = &gyd[ni * cout * ncols..(ni + 1) * cout * ncols];
        // grad_w = gy[cout, ncols] @ cols[krows, ncols]^T. The per-image
        // partials escape the closure, so they are plain Vecs, not scratch.
        let mut gw = vec![0.0f32; cout * krows];
        gemm::gemm_nt(cout, krows, ncols, gslice, &cols, &mut gw, false);
        // grad_cols = W[cout, krows]^T @ gy[cout, ncols]; GEMM accumulates
        // (`C += A·B`), so this scratch must start zeroed.
        let mut gcols = Scratch::zeroed(krows * ncols);
        gemm::gemm_tn(krows, ncols, cout, wdat, gslice, &mut gcols, false);
        let mut gx = vec![0.0f32; c * h * wd];
        col2im(&gcols, c, h, wd, g, &mut gx);
        (gx, gw)
    });

    let mut gx_all = vec![0.0f32; n * c * h * wd];
    let mut gw_all = vec![0.0f32; cout * krows];
    for (ni, (gx, gw)) in results.into_iter().enumerate() {
        gx_all[ni * c * h * wd..(ni + 1) * c * h * wd].copy_from_slice(&gx);
        for (a, b) in gw_all.iter_mut().zip(gw) {
            *a += b;
        }
    }
    (
        Tensor::from_vec([n, c, h, wd], gx_all),
        Tensor::from_vec([cout, c, g.kh, g.kw], gw_all),
    )
}

/// Depthwise 2-D convolution forward pass (channel multiplier 1).
///
/// Input `x: [n, c, h, w]`, weight `w: [c, 1, kh, kw]`; returns
/// `[n, c, oh, ow]`.
///
/// # Panics
///
/// Panics on rank or channel-count mismatches.
pub fn depthwise_conv2d(x: &Tensor, w: &Tensor, g: Conv2dGeom) -> Tensor {
    check_conv_shapes(x, w, true);
    let (n, c, h, wd) = (x.dim(0), x.dim(1), x.dim(2), x.dim(3));
    let (oh, ow) = g.out_size(h, wd);
    let xd = x.data();
    let wdat = w.data();
    let mut out = vec![0.0f32; n * c * oh * ow];
    pool::par_chunks_mut(&mut out, c * oh * ow, |ni, ochunk| {
        for ci in 0..c {
            let img = &xd[(ni * c + ci) * h * wd..(ni * c + ci + 1) * h * wd];
            let ker = &wdat[ci * g.kh * g.kw..(ci + 1) * g.kh * g.kw];
            let orow = &mut ochunk[ci * oh * ow..(ci + 1) * oh * ow];
            for oi in 0..oh {
                for oj in 0..ow {
                    let mut acc = 0.0f32;
                    for ki in 0..g.kh {
                        let ii = (oi * g.stride + ki) as isize - g.pad as isize;
                        if ii < 0 || ii >= h as isize {
                            continue;
                        }
                        for kj in 0..g.kw {
                            let jj = (oj * g.stride + kj) as isize - g.pad as isize;
                            if jj >= 0 && jj < wd as isize {
                                acc += ker[ki * g.kw + kj]
                                    * img[ii as usize * wd + jj as usize];
                            }
                        }
                    }
                    orow[oi * ow + oj] = acc;
                }
            }
        }
    });
    Tensor::from_vec([n, c, oh, ow], out)
}

/// Depthwise 2-D convolution backward pass.
///
/// Returns `(grad_input, grad_weight)` with the shapes of `x` and `w`.
///
/// # Panics
///
/// Panics on shape mismatches between `x`, `w`, `gy` and `g`.
pub fn depthwise_conv2d_backward(
    x: &Tensor,
    w: &Tensor,
    gy: &Tensor,
    g: Conv2dGeom,
) -> (Tensor, Tensor) {
    check_conv_shapes(x, w, true);
    let (n, c, h, wd) = (x.dim(0), x.dim(1), x.dim(2), x.dim(3));
    let (oh, ow) = g.out_size(h, wd);
    assert_eq!(
        gy.dims(),
        &[n, c, oh, ow],
        "upstream gradient shape {} does not match depthwise output [{n}x{c}x{oh}x{ow}]",
        gy.shape()
    );
    let xd = x.data();
    let wdat = w.data();
    let gyd = gy.data();
    let results: Vec<(Vec<f32>, Vec<f32>)> = pool::par_map(n, |ni| {
        let mut gx = vec![0.0f32; c * h * wd];
        let mut gw = vec![0.0f32; c * g.kh * g.kw];
        for ci in 0..c {
            let img = &xd[(ni * c + ci) * h * wd..(ni * c + ci + 1) * h * wd];
            let ker = &wdat[ci * g.kh * g.kw..(ci + 1) * g.kh * g.kw];
            let grow = &gyd[(ni * c + ci) * oh * ow..(ni * c + ci + 1) * oh * ow];
            let gximg = &mut gx[ci * h * wd..(ci + 1) * h * wd];
            let gwker = &mut gw[ci * g.kh * g.kw..(ci + 1) * g.kh * g.kw];
            for oi in 0..oh {
                for oj in 0..ow {
                    let gv = grow[oi * ow + oj];
                    if gv == 0.0 { // tqt:allow(float-eq): exact-zero skip is an optimization, not a tolerance
                        continue;
                    }
                    for ki in 0..g.kh {
                        let ii = (oi * g.stride + ki) as isize - g.pad as isize;
                        if ii < 0 || ii >= h as isize {
                            continue;
                        }
                        for kj in 0..g.kw {
                            let jj = (oj * g.stride + kj) as isize - g.pad as isize;
                            if jj >= 0 && jj < wd as isize {
                                let xoff = ii as usize * wd + jj as usize;
                                gximg[xoff] += ker[ki * g.kw + kj] * gv;
                                gwker[ki * g.kw + kj] += img[xoff] * gv;
                            }
                        }
                    }
                }
            }
        }
        (gx, gw)
    });
    let mut gx_all = vec![0.0f32; n * c * h * wd];
    let mut gw_all = vec![0.0f32; c * g.kh * g.kw];
    for (ni, (gx, gw)) in results.into_iter().enumerate() {
        gx_all[ni * c * h * wd..(ni + 1) * c * h * wd].copy_from_slice(&gx);
        for (a, b) in gw_all.iter_mut().zip(gw) {
            *a += b;
        }
    }
    (
        Tensor::from_vec([n, c, h, wd], gx_all),
        Tensor::from_vec([c, 1, g.kh, g.kw], gw_all),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geom_out_sizes() {
        assert_eq!(Conv2dGeom::same(3).out_size(8, 8), (8, 8));
        assert_eq!(Conv2dGeom::new(3, 2, 1).out_size(8, 8), (4, 4));
        assert_eq!(Conv2dGeom::new(2, 2, 0).out_size(8, 8), (4, 4));
        assert_eq!(Conv2dGeom::new(1, 1, 0).out_size(5, 7), (5, 7));
    }

    #[test]
    fn identity_kernel_1x1() {
        let x = Tensor::from_vec([1, 1, 2, 2], vec![1., 2., 3., 4.]);
        let w = Tensor::from_vec([1, 1, 1, 1], vec![1.0]);
        let y = conv2d(&x, &w, Conv2dGeom::new(1, 1, 0));
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn known_3x3_valid_conv() {
        // 3x3 input, 2x2 kernel of ones => 2x2 output of window sums.
        let x = Tensor::from_vec([1, 1, 3, 3], (1..=9).map(|v| v as f32).collect());
        let w = Tensor::from_vec([1, 1, 2, 2], vec![1.0; 4]);
        let y = conv2d(&x, &w, Conv2dGeom::new(2, 1, 0));
        assert_eq!(y.dims(), &[1, 1, 2, 2]);
        assert_eq!(y.data(), &[12., 16., 24., 28.]);
    }

    #[test]
    fn padding_zero_extends() {
        let x = Tensor::from_vec([1, 1, 1, 1], vec![2.0]);
        let w = Tensor::from_vec([1, 1, 3, 3], vec![1.0; 9]);
        let y = conv2d(&x, &w, Conv2dGeom::same(3));
        assert_eq!(y.data(), &[2.0]);
    }

    #[test]
    fn multi_channel_sums_inputs() {
        let x = Tensor::from_vec([1, 2, 1, 1], vec![3.0, 4.0]);
        let w = Tensor::from_vec([1, 2, 1, 1], vec![1.0, 10.0]);
        let y = conv2d(&x, &w, Conv2dGeom::new(1, 1, 0));
        assert_eq!(y.data(), &[43.0]);
    }

    #[test]
    fn depthwise_keeps_channels_separate() {
        let x = Tensor::from_vec([1, 2, 1, 1], vec![3.0, 4.0]);
        let w = Tensor::from_vec([2, 1, 1, 1], vec![2.0, 10.0]);
        let y = depthwise_conv2d(&x, &w, Conv2dGeom::new(1, 1, 0));
        assert_eq!(y.data(), &[6.0, 40.0]);
    }

    /// Finite-difference gradient check for conv2d.
    #[test]
    fn conv2d_gradcheck() {
        let g = Conv2dGeom::new(3, 2, 1);
        let x = Tensor::from_vec(
            [2, 2, 5, 5],
            (0..100).map(|i| ((i * 37 % 19) as f32 - 9.0) / 10.0).collect(),
        );
        let w = Tensor::from_vec(
            [3, 2, 3, 3],
            (0..54).map(|i| ((i * 23 % 17) as f32 - 8.0) / 10.0).collect(),
        );
        let y = conv2d(&x, &w, g);
        // Loss = 0.5 * sum(y^2) => upstream gradient is y itself.
        let (gx, gw) = conv2d_backward(&x, &w, &y, g);
        let loss = |x: &Tensor, w: &Tensor| -> f64 {
            conv2d(x, w, g).data().iter().map(|&v| 0.5 * (v as f64) * (v as f64)).sum()
        };
        let eps = 1e-2f32;
        for &i in &[0usize, 13, 57, 99] {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let fd = ((loss(&xp, &w) - loss(&xm, &w)) / (2.0 * eps as f64)) as f32;
            assert!(
                (fd - gx.data()[i]).abs() < 2e-2,
                "input grad mismatch at {i}: fd={fd} analytic={}",
                gx.data()[i]
            );
        }
        for &i in &[0usize, 11, 29, 53] {
            let mut wp = w.clone();
            wp.data_mut()[i] += eps;
            let mut wm = w.clone();
            wm.data_mut()[i] -= eps;
            let fd = ((loss(&x, &wp) - loss(&x, &wm)) / (2.0 * eps as f64)) as f32;
            assert!(
                (fd - gw.data()[i]).abs() < 2e-2,
                "weight grad mismatch at {i}: fd={fd} analytic={}",
                gw.data()[i]
            );
        }
    }

    /// Finite-difference gradient check for depthwise conv.
    #[test]
    fn depthwise_gradcheck() {
        let g = Conv2dGeom::same(3);
        let x = Tensor::from_vec(
            [2, 3, 4, 4],
            (0..96).map(|i| ((i * 31 % 23) as f32 - 11.0) / 12.0).collect(),
        );
        let w = Tensor::from_vec(
            [3, 1, 3, 3],
            (0..27).map(|i| ((i * 29 % 13) as f32 - 6.0) / 8.0).collect(),
        );
        let y = depthwise_conv2d(&x, &w, g);
        let (gx, gw) = depthwise_conv2d_backward(&x, &w, &y, g);
        let loss = |x: &Tensor, w: &Tensor| -> f64 {
            depthwise_conv2d(x, w, g)
                .data()
                .iter()
                .map(|&v| 0.5 * (v as f64) * (v as f64))
                .sum()
        };
        let eps = 1e-2f32;
        for &i in &[0usize, 17, 55, 95] {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let fd = ((loss(&xp, &w) - loss(&xm, &w)) / (2.0 * eps as f64)) as f32;
            assert!((fd - gx.data()[i]).abs() < 2e-2, "input grad mismatch at {i}");
        }
        for &i in &[0usize, 9, 20, 26] {
            let mut wp = w.clone();
            wp.data_mut()[i] += eps;
            let mut wm = w.clone();
            wm.data_mut()[i] -= eps;
            let fd = ((loss(&x, &wp) - loss(&x, &wm)) / (2.0 * eps as f64)) as f32;
            assert!((fd - gw.data()[i]).abs() < 2e-2, "weight grad mismatch at {i}");
        }
    }

    #[test]
    fn stride_two_downsamples() {
        let x = Tensor::from_vec([1, 1, 4, 4], (0..16).map(|v| v as f32).collect());
        let w = Tensor::from_vec([1, 1, 1, 1], vec![1.0]);
        let y = conv2d(&x, &w, Conv2dGeom::new(1, 2, 0));
        assert_eq!(y.dims(), &[1, 1, 2, 2]);
        assert_eq!(y.data(), &[0., 2., 8., 10.]);
    }

    #[test]
    #[should_panic(expected = "in-channels")]
    fn channel_mismatch_panics() {
        let x = Tensor::zeros([1, 3, 4, 4]);
        let w = Tensor::zeros([2, 2, 3, 3]);
        conv2d(&x, &w, Conv2dGeom::same(3));
    }
}
