//! 2-D convolution (im2col-based) and depthwise convolution, forward and
//! backward, on NCHW tensors.
//!
//! Weight layout is `[out_channels, in_channels, kh, kw]` for standard
//! convolution and `[channels, 1, kh, kw]` for depthwise convolution
//! (channel multiplier 1, as used by MobileNets).
//!
//! The im2col products go through the blocked [`crate::gemm`] kernel
//! (serial, since the per-image loop is already parallel), and the column
//! matrices live in the thread-local [`Scratch`] arena so they are reused
//! across layers and training steps rather than reallocated per image.

use crate::gemm;
use crate::scratch::Scratch;
use crate::tensor::Tensor;
use tqt_rt::pool;

/// Spatial geometry of a convolution or pooling operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conv2dGeom {
    /// Kernel height.
    pub kh: usize,
    /// Kernel width.
    pub kw: usize,
    /// Stride in both spatial dimensions.
    pub stride: usize,
    /// Zero padding applied symmetrically to both spatial dimensions.
    pub pad: usize,
}

impl Conv2dGeom {
    /// A square kernel with the given size, stride and padding.
    pub fn new(k: usize, stride: usize, pad: usize) -> Self {
        Conv2dGeom {
            kh: k,
            kw: k,
            stride,
            pad,
        }
    }

    /// "Same" geometry for odd kernel size `k` at stride 1.
    pub fn same(k: usize) -> Self {
        Conv2dGeom::new(k, 1, k / 2)
    }

    /// Output spatial size for an input of size `(h, w)`.
    ///
    /// # Panics
    ///
    /// Panics if the kernel (plus padding) does not fit in the input.
    pub fn out_size(&self, h: usize, w: usize) -> (usize, usize) {
        assert!(
            h + 2 * self.pad >= self.kh && w + 2 * self.pad >= self.kw,
            "kernel {}x{} does not fit input {}x{} with pad {}",
            self.kh,
            self.kw,
            h,
            w,
            self.pad
        );
        (
            (h + 2 * self.pad - self.kh) / self.stride + 1,
            (w + 2 * self.pad - self.kw) / self.stride + 1,
        )
    }
}

/// Unfolds one image `[c, h, w]` (a slice of length `c*h*w`) into a column
/// matrix `[c*kh*kw, oh*ow]` stored row-major in `cols`. Out-of-bounds
/// (padding) positions are filled with `zero`.
///
/// Generic over the element type so the float trainer and the
/// fixed-point inference engine (`i64` ints) share one unfold
/// implementation.
///
/// # Panics
///
/// Panics (debug) if `cols` does not have exactly `c*kh*kw*oh*ow`
/// elements, and if the kernel does not fit the padded input.
pub fn im2col_into<T: Copy>(
    img: &[T],
    zero: T,
    c: usize,
    h: usize,
    w: usize,
    g: Conv2dGeom,
    cols: &mut [T],
) {
    let (oh, ow) = g.out_size(h, w);
    let ncols = oh * ow;
    debug_assert_eq!(cols.len(), c * g.kh * g.kw * ncols);
    for ci in 0..c {
        for ki in 0..g.kh {
            for kj in 0..g.kw {
                let row = ((ci * g.kh + ki) * g.kw + kj) * ncols;
                for oi in 0..oh {
                    let ii = (oi * g.stride + ki) as isize - g.pad as isize;
                    let base = row + oi * ow;
                    if ii < 0 || ii >= h as isize {
                        cols[base..base + ow].fill(zero);
                        continue;
                    }
                    let irow = (ci * h + ii as usize) * w;
                    for oj in 0..ow {
                        let jj = (oj * g.stride + kj) as isize - g.pad as isize;
                        cols[base + oj] = if jj < 0 || jj >= w as isize {
                            zero
                        } else {
                            img[irow + jj as usize]
                        };
                    }
                }
            }
        }
    }
}

/// Unfolds one `f32` image (see [`im2col_into`]).
fn im2col(img: &[f32], c: usize, h: usize, w: usize, g: Conv2dGeom, cols: &mut [f32]) {
    im2col_into(img, 0.0, c, h, w, g, cols);
}

/// Folds a column matrix back into an image, accumulating overlaps
/// (the adjoint of [`im2col`]).
fn col2im(cols: &[f32], c: usize, h: usize, w: usize, g: Conv2dGeom, img: &mut [f32]) {
    let (oh, ow) = g.out_size(h, w);
    let ncols = oh * ow;
    img.fill(0.0);
    for ci in 0..c {
        for ki in 0..g.kh {
            for kj in 0..g.kw {
                let row = ((ci * g.kh + ki) * g.kw + kj) * ncols;
                for oi in 0..oh {
                    let ii = (oi * g.stride + ki) as isize - g.pad as isize;
                    if ii < 0 || ii >= h as isize {
                        continue;
                    }
                    let irow = (ci * h + ii as usize) * w;
                    for oj in 0..ow {
                        let jj = (oj * g.stride + kj) as isize - g.pad as isize;
                        if jj >= 0 && jj < w as isize {
                            img[irow + jj as usize] += cols[row + oi * ow + oj];
                        }
                    }
                }
            }
        }
    }
}

fn check_conv_shapes(x: &Tensor, w: &Tensor, depthwise: bool) {
    assert_eq!(x.ndim(), 4, "conv input must be NCHW, got {}", x.shape());
    assert_eq!(w.ndim(), 4, "conv weight must be 4-D, got {}", w.shape());
    if depthwise {
        assert_eq!(
            w.dim(1),
            1,
            "depthwise weight must have channel-multiplier 1, got {}",
            w.shape()
        );
        assert_eq!(
            w.dim(0),
            x.dim(1),
            "depthwise weight channels {} do not match input channels {}",
            w.dim(0),
            x.dim(1)
        );
    } else {
        assert_eq!(
            w.dim(1),
            x.dim(1),
            "weight in-channels {} do not match input channels {}",
            w.dim(1),
            x.dim(1)
        );
    }
}

/// Per-image workspace length (f32 elements) for [`conv2d_into`]: one
/// im2col column matrix `[c*kh*kw, oh*ow]`.
pub fn conv2d_fwd_ws(c: usize, h: usize, w: usize, g: Conv2dGeom) -> usize {
    let (oh, ow) = g.out_size(h, w);
    c * g.kh * g.kw * oh * ow
}

/// Per-image workspace length (f32 elements) for
/// [`conv2d_backward_into`]: the im2col matrix, the gradient column
/// matrix, and one per-image weight-gradient partial.
pub fn conv2d_bwd_ws(c: usize, h: usize, w: usize, cout: usize, g: Conv2dGeom) -> usize {
    let (oh, ow) = g.out_size(h, w);
    let krows = c * g.kh * g.kw;
    2 * krows * oh * ow + cout * krows
}

/// Standard 2-D convolution forward over raw slices with caller-owned
/// workspace: the planned-executor entry point. `xd` is `[n, c, h, w]`,
/// `wpack` the filter matrix `[cout, c*kh*kw]` packed by
/// [`gemm::pack_a_full_into`], `out` is `[n, cout, oh, ow]` (may be
/// dirty; fully overwritten), and `ws` holds `n` per-image im2col
/// workspaces of [`conv2d_fwd_ws`] elements each. Compute structure —
/// per-image parallel region, serial prepacked GEMM per image — is
/// identical to the allocating [`conv2d`], so results are bit-identical.
///
/// # Panics
///
/// Panics if any slice length disagrees with the shapes.
#[allow(clippy::too_many_arguments)]
pub fn conv2d_into(
    xd: &[f32],
    n: usize,
    c: usize,
    h: usize,
    w: usize,
    wpack: &[f32],
    cout: usize,
    g: Conv2dGeom,
    out: &mut [f32],
    ws: &mut [f32],
) {
    let (oh, ow) = g.out_size(h, w);
    let ncols = oh * ow;
    let krows = c * g.kh * g.kw;
    assert_eq!(xd.len(), n * c * h * w, "conv input length mismatch");
    assert_eq!(out.len(), n * cout * ncols, "conv output length mismatch");
    assert_eq!(ws.len(), n * krows * ncols, "conv workspace length mismatch");
    pool::par_chunks_mut2(out, cout * ncols, ws, krows * ncols, |ni, ochunk, cols| {
        // im2col writes every workspace element, so it can stay dirty.
        im2col(&xd[ni * c * h * w..(ni + 1) * c * h * w], c, h, w, g, cols);
        // ochunk[co, :] = W[cout, krows] @ cols[krows, ncols]; GEMM
        // accumulates, so clear the (possibly reused) output chunk first.
        // Serial GEMM — already inside the per-image parallel region.
        ochunk.fill(0.0);
        gemm::gemm_nn_prepacked_slice(cout, ncols, krows, wpack, cols, ochunk, false);
    });
}

/// Standard 2-D convolution backward over raw slices with caller-owned
/// workspace. `gx` (shape of `xd`) is fully overwritten; `gw`
/// `[cout, c*kh*kw]` must arrive **zeroed** — per-image partials are
/// accumulated into it in ascending image order, reproducing the
/// allocating path's serial reduction bit-for-bit. `ws` holds `n`
/// per-image workspaces of [`conv2d_bwd_ws`] elements each.
///
/// # Panics
///
/// Panics if any slice length disagrees with the shapes.
#[allow(clippy::too_many_arguments)]
pub fn conv2d_backward_into(
    xd: &[f32],
    wdat: &[f32],
    gyd: &[f32],
    n: usize,
    c: usize,
    h: usize,
    w: usize,
    cout: usize,
    g: Conv2dGeom,
    gx: &mut [f32],
    gw: &mut [f32],
    ws: &mut [f32],
) {
    let (oh, ow) = g.out_size(h, w);
    let ncols = oh * ow;
    let krows = c * g.kh * g.kw;
    let per = 2 * krows * ncols + cout * krows;
    assert_eq!(xd.len(), n * c * h * w, "conv input length mismatch");
    assert_eq!(wdat.len(), cout * krows, "conv weight length mismatch");
    assert_eq!(gyd.len(), n * cout * ncols, "conv upstream length mismatch");
    assert_eq!(gx.len(), n * c * h * w, "conv gx length mismatch");
    assert_eq!(gw.len(), cout * krows, "conv gw length mismatch");
    assert_eq!(ws.len(), n * per, "conv workspace length mismatch");
    pool::par_chunks_mut2(gx, c * h * w, ws, per, |ni, gxchunk, wsi| {
        let (cols, rest) = wsi.split_at_mut(krows * ncols);
        let (gcols, gwpart) = rest.split_at_mut(krows * ncols);
        // im2col writes every element, so the workspace can stay dirty.
        im2col(&xd[ni * c * h * w..(ni + 1) * c * h * w], c, h, w, g, cols);
        let gslice = &gyd[ni * cout * ncols..(ni + 1) * cout * ncols];
        // grad_w partial = gy[cout, ncols] @ cols[krows, ncols]^T; GEMM
        // accumulates, so both destinations start zeroed.
        gwpart.fill(0.0);
        gemm::gemm_nt(cout, krows, ncols, gslice, cols, gwpart, false);
        // grad_cols = W[cout, krows]^T @ gy[cout, ncols].
        gcols.fill(0.0);
        gemm::gemm_tn(krows, ncols, cout, wdat, gslice, gcols, false);
        // col2im zero-fills gxchunk itself before scattering.
        col2im(gcols, c, h, w, g, gxchunk);
    });
    // Serial weight-gradient reduction in deterministic image order —
    // bit-identical to the serial path regardless of thread count.
    for ni in 0..n {
        let gwpart = &ws[ni * per + 2 * krows * ncols..ni * per + per];
        for (a, &b) in gw.iter_mut().zip(gwpart) {
            *a += b;
        }
    }
}

/// Standard 2-D convolution forward pass.
///
/// Input `x: [n, c_in, h, w]`, weight `w: [c_out, c_in, kh, kw]`; returns
/// `[n, c_out, oh, ow]`.
///
/// # Panics
///
/// Panics on rank or channel-count mismatches, or if the kernel does not
/// fit the padded input.
pub fn conv2d(x: &Tensor, w: &Tensor, g: Conv2dGeom) -> Tensor {
    check_conv_shapes(x, w, false);
    let (n, c, h, wd) = (x.dim(0), x.dim(1), x.dim(2), x.dim(3));
    let cout = w.dim(0);
    let (oh, ow) = g.out_size(h, wd);
    let ncols = oh * ow;
    let krows = c * g.kh * g.kw;
    let mut out = vec![0.0f32; n * cout * ncols];
    // Pack the filter matrix once, outside the parallel region; every
    // image's GEMM then reads the same panels instead of re-packing W per
    // image. One workspace checkout for the whole batch (carved per image
    // by the kernel) replaces the former per-image checkouts.
    let mut wpack = Scratch::uninit(gemm::packed_a_len(cout, krows));
    gemm::pack_a_full_into(w.data(), cout, krows, &mut wpack);
    let mut ws = Scratch::uninit(n * krows * ncols);
    conv2d_into(x.data(), n, c, h, wd, &wpack, cout, g, &mut out, &mut ws);
    Tensor::from_vec([n, cout, oh, ow], out)
}

/// Standard 2-D convolution backward pass.
///
/// Given the upstream gradient `gy: [n, c_out, oh, ow]`, returns
/// `(grad_input, grad_weight)` with the shapes of `x` and `w`.
///
/// # Panics
///
/// Panics on shape mismatches between `x`, `w`, `gy` and `g`.
pub fn conv2d_backward(x: &Tensor, w: &Tensor, gy: &Tensor, g: Conv2dGeom) -> (Tensor, Tensor) {
    check_conv_shapes(x, w, false);
    let (n, c, h, wd) = (x.dim(0), x.dim(1), x.dim(2), x.dim(3));
    let cout = w.dim(0);
    let (oh, ow) = g.out_size(h, wd);
    assert_eq!(
        gy.dims(),
        &[n, cout, oh, ow],
        "upstream gradient shape {} does not match conv output [{n}x{cout}x{oh}x{ow}]",
        gy.shape()
    );
    let krows = c * g.kh * g.kw;

    // One workspace checkout for the whole batch (carved per image by the
    // kernel, reduced serially in deterministic `ni` order) replaces the
    // former per-image checkouts and partial Vecs.
    let mut gx_all = vec![0.0f32; n * c * h * wd];
    let mut gw_all = vec![0.0f32; cout * krows];
    let mut ws = Scratch::uninit(n * conv2d_bwd_ws(c, h, wd, cout, g));
    conv2d_backward_into(
        x.data(),
        w.data(),
        gy.data(),
        n,
        c,
        h,
        wd,
        cout,
        g,
        &mut gx_all,
        &mut gw_all,
        &mut ws,
    );
    (
        Tensor::from_vec([n, c, h, wd], gx_all),
        Tensor::from_vec([cout, c, g.kh, g.kw], gw_all),
    )
}

/// Depthwise 2-D convolution forward pass (channel multiplier 1).
///
/// Input `x: [n, c, h, w]`, weight `w: [c, 1, kh, kw]`; returns
/// `[n, c, oh, ow]`.
///
/// # Panics
///
/// Panics on rank or channel-count mismatches.
pub fn depthwise_conv2d(x: &Tensor, w: &Tensor, g: Conv2dGeom) -> Tensor {
    check_conv_shapes(x, w, true);
    let (n, c, h, wd) = (x.dim(0), x.dim(1), x.dim(2), x.dim(3));
    let (oh, ow) = g.out_size(h, wd);
    let mut out = vec![0.0f32; n * c * oh * ow];
    depthwise_conv2d_into(x.data(), n, c, h, wd, w.data(), g, &mut out);
    Tensor::from_vec([n, c, oh, ow], out)
}

/// Depthwise 2-D convolution forward over raw slices: the
/// planned-executor entry point. `out` (`[n, c, oh, ow]`) may be dirty —
/// every element is assigned.
///
/// # Panics
///
/// Panics if any slice length disagrees with the shapes.
#[allow(clippy::too_many_arguments)]
pub fn depthwise_conv2d_into(
    xd: &[f32],
    n: usize,
    c: usize,
    h: usize,
    w: usize,
    wdat: &[f32],
    g: Conv2dGeom,
    out: &mut [f32],
) {
    let (oh, ow) = g.out_size(h, w);
    assert_eq!(xd.len(), n * c * h * w, "depthwise input length mismatch");
    assert_eq!(wdat.len(), c * g.kh * g.kw, "depthwise weight length mismatch");
    assert_eq!(out.len(), n * c * oh * ow, "depthwise output length mismatch");
    pool::par_chunks_mut(out, c * oh * ow, |ni, ochunk| {
        for ci in 0..c {
            let img = &xd[(ni * c + ci) * h * w..(ni * c + ci + 1) * h * w];
            let ker = &wdat[ci * g.kh * g.kw..(ci + 1) * g.kh * g.kw];
            let orow = &mut ochunk[ci * oh * ow..(ci + 1) * oh * ow];
            for oi in 0..oh {
                for oj in 0..ow {
                    let mut acc = 0.0f32;
                    for ki in 0..g.kh {
                        let ii = (oi * g.stride + ki) as isize - g.pad as isize;
                        if ii < 0 || ii >= h as isize {
                            continue;
                        }
                        for kj in 0..g.kw {
                            let jj = (oj * g.stride + kj) as isize - g.pad as isize;
                            if jj >= 0 && jj < w as isize {
                                acc += ker[ki * g.kw + kj]
                                    * img[ii as usize * w + jj as usize];
                            }
                        }
                    }
                    orow[oi * ow + oj] = acc;
                }
            }
        }
    });
}

/// Depthwise 2-D convolution backward pass.
///
/// Returns `(grad_input, grad_weight)` with the shapes of `x` and `w`.
///
/// # Panics
///
/// Panics on shape mismatches between `x`, `w`, `gy` and `g`.
pub fn depthwise_conv2d_backward(
    x: &Tensor,
    w: &Tensor,
    gy: &Tensor,
    g: Conv2dGeom,
) -> (Tensor, Tensor) {
    check_conv_shapes(x, w, true);
    let (n, c, h, wd) = (x.dim(0), x.dim(1), x.dim(2), x.dim(3));
    let (oh, ow) = g.out_size(h, wd);
    assert_eq!(
        gy.dims(),
        &[n, c, oh, ow],
        "upstream gradient shape {} does not match depthwise output [{n}x{c}x{oh}x{ow}]",
        gy.shape()
    );
    let mut gx_all = vec![0.0f32; n * c * h * wd];
    let mut gw_all = vec![0.0f32; c * g.kh * g.kw];
    let mut ws = Scratch::uninit(n * c * g.kh * g.kw);
    depthwise_conv2d_backward_into(
        x.data(),
        w.data(),
        gy.data(),
        n,
        c,
        h,
        wd,
        g,
        &mut gx_all,
        &mut gw_all,
        &mut ws,
    );
    (
        Tensor::from_vec([n, c, h, wd], gx_all),
        Tensor::from_vec([c, 1, g.kh, g.kw], gw_all),
    )
}

/// Depthwise 2-D convolution backward over raw slices with caller-owned
/// workspace. `gx` (shape of `xd`) is fully overwritten; `gw`
/// (`[c, kh, kw]`) must arrive **zeroed** — per-image partials are
/// accumulated into it in ascending image order, bit-identical to the
/// allocating path's serial reduction. `ws` holds one `c*kh*kw`
/// weight-gradient partial per image.
///
/// # Panics
///
/// Panics if any slice length disagrees with the shapes.
#[allow(clippy::too_many_arguments)]
pub fn depthwise_conv2d_backward_into(
    xd: &[f32],
    wdat: &[f32],
    gyd: &[f32],
    n: usize,
    c: usize,
    h: usize,
    w: usize,
    g: Conv2dGeom,
    gx: &mut [f32],
    gw: &mut [f32],
    ws: &mut [f32],
) {
    let (oh, ow) = g.out_size(h, w);
    let kelems = c * g.kh * g.kw;
    assert_eq!(xd.len(), n * c * h * w, "depthwise input length mismatch");
    assert_eq!(wdat.len(), kelems, "depthwise weight length mismatch");
    assert_eq!(gyd.len(), n * c * oh * ow, "depthwise upstream length mismatch");
    assert_eq!(gx.len(), n * c * h * w, "depthwise gx length mismatch");
    assert_eq!(gw.len(), kelems, "depthwise gw length mismatch");
    assert_eq!(ws.len(), n * kelems, "depthwise workspace length mismatch");
    pool::par_chunks_mut2(gx, c * h * w, ws, kelems, |ni, gxchunk, gwpart| {
        gxchunk.fill(0.0);
        gwpart.fill(0.0);
        for ci in 0..c {
            let img = &xd[(ni * c + ci) * h * w..(ni * c + ci + 1) * h * w];
            let ker = &wdat[ci * g.kh * g.kw..(ci + 1) * g.kh * g.kw];
            let grow = &gyd[(ni * c + ci) * oh * ow..(ni * c + ci + 1) * oh * ow];
            let gximg = &mut gxchunk[ci * h * w..(ci + 1) * h * w];
            let gwker = &mut gwpart[ci * g.kh * g.kw..(ci + 1) * g.kh * g.kw];
            for oi in 0..oh {
                for oj in 0..ow {
                    let gv = grow[oi * ow + oj];
                    if gv == 0.0 { // tqt:allow(float-eq): exact-zero skip is an optimization, not a tolerance
                        continue;
                    }
                    for ki in 0..g.kh {
                        let ii = (oi * g.stride + ki) as isize - g.pad as isize;
                        if ii < 0 || ii >= h as isize {
                            continue;
                        }
                        for kj in 0..g.kw {
                            let jj = (oj * g.stride + kj) as isize - g.pad as isize;
                            if jj >= 0 && jj < w as isize {
                                let xoff = ii as usize * w + jj as usize;
                                gximg[xoff] += ker[ki * g.kw + kj] * gv;
                                gwker[ki * g.kw + kj] += img[xoff] * gv;
                            }
                        }
                    }
                }
            }
        }
    });
    // Serial weight-gradient reduction in deterministic image order.
    for ni in 0..n {
        let gwpart = &ws[ni * kelems..(ni + 1) * kelems];
        for (a, &b) in gw.iter_mut().zip(gwpart) {
            *a += b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geom_out_sizes() {
        assert_eq!(Conv2dGeom::same(3).out_size(8, 8), (8, 8));
        assert_eq!(Conv2dGeom::new(3, 2, 1).out_size(8, 8), (4, 4));
        assert_eq!(Conv2dGeom::new(2, 2, 0).out_size(8, 8), (4, 4));
        assert_eq!(Conv2dGeom::new(1, 1, 0).out_size(5, 7), (5, 7));
    }

    #[test]
    fn identity_kernel_1x1() {
        let x = Tensor::from_vec([1, 1, 2, 2], vec![1., 2., 3., 4.]);
        let w = Tensor::from_vec([1, 1, 1, 1], vec![1.0]);
        let y = conv2d(&x, &w, Conv2dGeom::new(1, 1, 0));
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn known_3x3_valid_conv() {
        // 3x3 input, 2x2 kernel of ones => 2x2 output of window sums.
        let x = Tensor::from_vec([1, 1, 3, 3], (1..=9).map(|v| v as f32).collect());
        let w = Tensor::from_vec([1, 1, 2, 2], vec![1.0; 4]);
        let y = conv2d(&x, &w, Conv2dGeom::new(2, 1, 0));
        assert_eq!(y.dims(), &[1, 1, 2, 2]);
        assert_eq!(y.data(), &[12., 16., 24., 28.]);
    }

    #[test]
    fn padding_zero_extends() {
        let x = Tensor::from_vec([1, 1, 1, 1], vec![2.0]);
        let w = Tensor::from_vec([1, 1, 3, 3], vec![1.0; 9]);
        let y = conv2d(&x, &w, Conv2dGeom::same(3));
        assert_eq!(y.data(), &[2.0]);
    }

    #[test]
    fn multi_channel_sums_inputs() {
        let x = Tensor::from_vec([1, 2, 1, 1], vec![3.0, 4.0]);
        let w = Tensor::from_vec([1, 2, 1, 1], vec![1.0, 10.0]);
        let y = conv2d(&x, &w, Conv2dGeom::new(1, 1, 0));
        assert_eq!(y.data(), &[43.0]);
    }

    #[test]
    fn depthwise_keeps_channels_separate() {
        let x = Tensor::from_vec([1, 2, 1, 1], vec![3.0, 4.0]);
        let w = Tensor::from_vec([2, 1, 1, 1], vec![2.0, 10.0]);
        let y = depthwise_conv2d(&x, &w, Conv2dGeom::new(1, 1, 0));
        assert_eq!(y.data(), &[6.0, 40.0]);
    }

    /// Finite-difference gradient check for conv2d.
    #[test]
    fn conv2d_gradcheck() {
        let g = Conv2dGeom::new(3, 2, 1);
        let x = Tensor::from_vec(
            [2, 2, 5, 5],
            (0..100).map(|i| ((i * 37 % 19) as f32 - 9.0) / 10.0).collect(),
        );
        let w = Tensor::from_vec(
            [3, 2, 3, 3],
            (0..54).map(|i| ((i * 23 % 17) as f32 - 8.0) / 10.0).collect(),
        );
        let y = conv2d(&x, &w, g);
        // Loss = 0.5 * sum(y^2) => upstream gradient is y itself.
        let (gx, gw) = conv2d_backward(&x, &w, &y, g);
        let loss = |x: &Tensor, w: &Tensor| -> f64 {
            conv2d(x, w, g).data().iter().map(|&v| 0.5 * (v as f64) * (v as f64)).sum()
        };
        let eps = 1e-2f32;
        for &i in &[0usize, 13, 57, 99] {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let fd = ((loss(&xp, &w) - loss(&xm, &w)) / (2.0 * eps as f64)) as f32;
            assert!(
                (fd - gx.data()[i]).abs() < 2e-2,
                "input grad mismatch at {i}: fd={fd} analytic={}",
                gx.data()[i]
            );
        }
        for &i in &[0usize, 11, 29, 53] {
            let mut wp = w.clone();
            wp.data_mut()[i] += eps;
            let mut wm = w.clone();
            wm.data_mut()[i] -= eps;
            let fd = ((loss(&x, &wp) - loss(&x, &wm)) / (2.0 * eps as f64)) as f32;
            assert!(
                (fd - gw.data()[i]).abs() < 2e-2,
                "weight grad mismatch at {i}: fd={fd} analytic={}",
                gw.data()[i]
            );
        }
    }

    /// Finite-difference gradient check for depthwise conv.
    #[test]
    fn depthwise_gradcheck() {
        let g = Conv2dGeom::same(3);
        let x = Tensor::from_vec(
            [2, 3, 4, 4],
            (0..96).map(|i| ((i * 31 % 23) as f32 - 11.0) / 12.0).collect(),
        );
        let w = Tensor::from_vec(
            [3, 1, 3, 3],
            (0..27).map(|i| ((i * 29 % 13) as f32 - 6.0) / 8.0).collect(),
        );
        let y = depthwise_conv2d(&x, &w, g);
        let (gx, gw) = depthwise_conv2d_backward(&x, &w, &y, g);
        let loss = |x: &Tensor, w: &Tensor| -> f64 {
            depthwise_conv2d(x, w, g)
                .data()
                .iter()
                .map(|&v| 0.5 * (v as f64) * (v as f64))
                .sum()
        };
        let eps = 1e-2f32;
        for &i in &[0usize, 17, 55, 95] {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let fd = ((loss(&xp, &w) - loss(&xm, &w)) / (2.0 * eps as f64)) as f32;
            assert!((fd - gx.data()[i]).abs() < 2e-2, "input grad mismatch at {i}");
        }
        for &i in &[0usize, 9, 20, 26] {
            let mut wp = w.clone();
            wp.data_mut()[i] += eps;
            let mut wm = w.clone();
            wm.data_mut()[i] -= eps;
            let fd = ((loss(&x, &wp) - loss(&x, &wm)) / (2.0 * eps as f64)) as f32;
            assert!((fd - gw.data()[i]).abs() < 2e-2, "weight grad mismatch at {i}");
        }
    }

    #[test]
    fn stride_two_downsamples() {
        let x = Tensor::from_vec([1, 1, 4, 4], (0..16).map(|v| v as f32).collect());
        let w = Tensor::from_vec([1, 1, 1, 1], vec![1.0]);
        let y = conv2d(&x, &w, Conv2dGeom::new(1, 2, 0));
        assert_eq!(y.dims(), &[1, 1, 2, 2]);
        assert_eq!(y.data(), &[0., 2., 8., 10.]);
    }

    #[test]
    #[should_panic(expected = "in-channels")]
    fn channel_mismatch_panics() {
        let x = Tensor::zeros([1, 3, 4, 4]);
        let w = Tensor::zeros([2, 2, 3, 3]);
        conv2d(&x, &w, Conv2dGeom::same(3));
    }
}
