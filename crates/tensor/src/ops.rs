//! Elementwise and broadcasting arithmetic on [`Tensor`]s.
//!
//! Only the broadcasting patterns the NN stack needs are supported:
//! same-shape binary ops, scalar broadcast, and per-channel broadcast over
//! NCHW activations (used by batch-norm and bias-add).

use crate::tensor::Tensor;

/// Elementwise addition of two same-shaped tensors.
///
/// # Panics
///
/// Panics if the shapes differ.
pub fn add(a: &Tensor, b: &Tensor) -> Tensor {
    a.zip_map(b, |x, y| x + y)
}

/// Elementwise subtraction `a - b` of two same-shaped tensors.
///
/// # Panics
///
/// Panics if the shapes differ.
pub fn sub(a: &Tensor, b: &Tensor) -> Tensor {
    a.zip_map(b, |x, y| x - y)
}

/// Elementwise multiplication of two same-shaped tensors.
///
/// # Panics
///
/// Panics if the shapes differ.
pub fn mul(a: &Tensor, b: &Tensor) -> Tensor {
    a.zip_map(b, |x, y| x * y)
}

/// Elementwise division `a / b` of two same-shaped tensors.
///
/// # Panics
///
/// Panics if the shapes differ.
pub fn div(a: &Tensor, b: &Tensor) -> Tensor {
    a.zip_map(b, |x, y| x / y)
}

/// Adds `s` to every element.
pub fn add_scalar(a: &Tensor, s: f32) -> Tensor {
    a.map(|x| x + s)
}

/// Multiplies every element by `s`.
pub fn scale(a: &Tensor, s: f32) -> Tensor {
    a.map(|x| x * s)
}

/// In-place `a += alpha * b` (axpy), the workhorse of gradient accumulation.
///
/// # Panics
///
/// Panics if the shapes differ.
pub fn axpy(a: &mut Tensor, alpha: f32, b: &Tensor) {
    assert!(
        a.shape().same_as(b.shape()),
        "axpy shape mismatch: {} vs {}",
        a.shape(),
        b.shape()
    );
    for (x, &y) in a.data_mut().iter_mut().zip(b.data()) {
        *x += alpha * y;
    }
}

/// Adds a per-channel vector to an NCHW tensor: `out[n,c,h,w] = a[n,c,h,w] + bias[c]`.
///
/// Also accepts 2-D `[N, C]` inputs (dense-layer bias-add).
///
/// # Panics
///
/// Panics if `a` is not 2-D or 4-D, or if `bias` is not 1-D with length
/// equal to the channel dimension of `a`.
pub fn add_channel(a: &Tensor, bias: &Tensor) -> Tensor {
    let mut out = a.clone();
    add_channel_inplace(&mut out, bias);
    out
}

/// In-place variant of [`add_channel`].
///
/// # Panics
///
/// Same conditions as [`add_channel`].
pub fn add_channel_inplace(a: &mut Tensor, bias: &Tensor) {
    let c = channel_dim(a);
    assert_eq!(
        bias.dims(),
        &[c],
        "bias shape {} does not match channel dim {}",
        bias.shape(),
        c
    );
    let spatial = a.len() / (a.dim(0) * c);
    let (n, data, b) = (a.dim(0), a.data_mut(), bias.data());
    for ni in 0..n {
        for (ci, &bv) in b.iter().enumerate() {
            let base = (ni * c + ci) * spatial;
            for v in &mut data[base..base + spatial] {
                *v += bv;
            }
        }
    }
}

/// Multiplies an NCHW (or `[N, C]`) tensor by a per-channel vector.
///
/// # Panics
///
/// Same conditions as [`add_channel`].
pub fn mul_channel(a: &Tensor, g: &Tensor) -> Tensor {
    let c = channel_dim(a);
    assert_eq!(
        g.dims(),
        &[c],
        "scale shape {} does not match channel dim {}",
        g.shape(),
        c
    );
    let spatial = a.len() / (a.dim(0) * c);
    let n = a.dim(0);
    let mut out = a.clone();
    let data = out.data_mut();
    for ni in 0..n {
        for ci in 0..c {
            let base = (ni * c + ci) * spatial;
            let gv = g.data()[ci];
            for v in &mut data[base..base + spatial] {
                *v *= gv;
            }
        }
    }
    out
}

/// Sums an NCHW (or `[N, C]`) tensor over all axes except channels,
/// producing a 1-D `[C]` tensor. This is the adjoint of [`add_channel`].
///
/// # Panics
///
/// Panics if `a` is not 2-D or 4-D.
pub fn sum_over_channel(a: &Tensor) -> Tensor {
    let c = channel_dim(a);
    let spatial = a.len() / (a.dim(0) * c);
    let n = a.dim(0);
    let mut out = vec![0.0f32; c];
    for ni in 0..n {
        for (ci, o) in out.iter_mut().enumerate() {
            let base = (ni * c + ci) * spatial;
            *o += a.data()[base..base + spatial].iter().sum::<f32>();
        }
    }
    Tensor::from_vec(c, out)
}

fn channel_dim(a: &Tensor) -> usize {
    match a.ndim() {
        2 | 4 => a.dim(1),
        n => panic!("channel ops require 2-D [N,C] or 4-D NCHW tensors, got rank {n}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binary_ops() {
        let a = Tensor::from_slice(&[1.0, 2.0]);
        let b = Tensor::from_slice(&[3.0, 5.0]);
        assert_eq!(add(&a, &b).data(), &[4.0, 7.0]);
        assert_eq!(sub(&a, &b).data(), &[-2.0, -3.0]);
        assert_eq!(mul(&a, &b).data(), &[3.0, 10.0]);
        assert_eq!(div(&b, &a).data(), &[3.0, 2.5]);
    }

    #[test]
    fn scalar_ops() {
        let a = Tensor::from_slice(&[1.0, -2.0]);
        assert_eq!(add_scalar(&a, 1.0).data(), &[2.0, -1.0]);
        assert_eq!(scale(&a, -2.0).data(), &[-2.0, 4.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Tensor::from_slice(&[1.0, 1.0]);
        axpy(&mut a, 0.5, &Tensor::from_slice(&[2.0, 4.0]));
        assert_eq!(a.data(), &[2.0, 3.0]);
    }

    #[test]
    fn channel_add_4d() {
        // N=1, C=2, H=1, W=2
        let a = Tensor::from_vec([1, 2, 1, 2], vec![0., 0., 0., 0.]);
        let b = Tensor::from_slice(&[1.0, 2.0]);
        let out = add_channel(&a, &b);
        assert_eq!(out.data(), &[1., 1., 2., 2.]);
    }

    #[test]
    fn channel_add_2d() {
        let a = Tensor::from_vec([2, 2], vec![0., 0., 10., 10.]);
        let b = Tensor::from_slice(&[1.0, 2.0]);
        assert_eq!(add_channel(&a, &b).data(), &[1., 2., 11., 12.]);
    }

    #[test]
    fn channel_mul() {
        let a = Tensor::from_vec([1, 2, 1, 2], vec![1., 2., 3., 4.]);
        let g = Tensor::from_slice(&[2.0, 10.0]);
        assert_eq!(mul_channel(&a, &g).data(), &[2., 4., 30., 40.]);
    }

    #[test]
    fn channel_sum_is_adjoint_of_add() {
        let a = Tensor::from_vec([2, 2, 1, 2], vec![1., 2., 3., 4., 5., 6., 7., 8.]);
        let s = sum_over_channel(&a);
        assert_eq!(s.data(), &[1. + 2. + 5. + 6., 3. + 4. + 7. + 8.]);
    }

    #[test]
    #[should_panic(expected = "channel ops require")]
    fn channel_ops_reject_3d() {
        sum_over_channel(&Tensor::zeros([2, 2, 2]));
    }
}
