//! Distribution statistics used for quantization-threshold calibration:
//! moments, percentiles and fixed-width histograms.

use crate::tensor::Tensor;

/// Mean and standard deviation of the elements of a tensor, accumulated in
/// `f64`.
///
/// Returns `(mean, std)`. The standard deviation is the population (biased)
/// form, matching the "n standard deviations of the weight distribution"
/// initialization of the paper's Table 2.
///
/// # Panics
///
/// Panics if the tensor is empty.
pub fn mean_std(t: &Tensor) -> (f32, f32) {
    assert!(!t.is_empty(), "mean_std of empty tensor");
    let n = t.len() as f64;
    let mean = t.data().iter().map(|&x| x as f64).sum::<f64>() / n;
    let var = t
        .data()
        .iter()
        .map(|&x| {
            let d = x as f64 - mean;
            d * d
        })
        .sum::<f64>()
        / n;
    (mean as f32, var.sqrt() as f32)
}

/// The `q`-th percentile (0..=100) of the *absolute values* of the elements,
/// by linear interpolation between order statistics.
///
/// Used for percentile threshold initialization.
///
/// # Panics
///
/// Panics if the tensor is empty or `q` is outside `[0, 100]`.
pub fn abs_percentile(t: &Tensor, q: f32) -> f32 {
    assert!(!t.is_empty(), "percentile of empty tensor");
    assert!((0.0..=100.0).contains(&q), "percentile {q} out of [0,100]");
    let mut v: Vec<f32> = t.data().iter().map(|x| x.abs()).collect();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap()); // tqt:allow(unwrap): histogram inputs are finite
    let pos = q as f64 / 100.0 * (v.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = (pos - lo as f64) as f32;
    v[lo] * (1.0 - frac) + v[hi] * frac
}

/// A fixed-width histogram over `[0, max]` of the absolute values of a data
/// stream, used by KL-J threshold calibration.
///
/// # Examples
///
/// ```
/// use tqt_tensor::{Tensor, stats::Histogram};
/// let t = Tensor::from_slice(&[0.1, -0.5, 2.0]);
/// let mut h = Histogram::new(4, 2.0);
/// h.add(&t);
/// assert_eq!(h.total(), 3.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bins: Vec<f64>,
    max: f32,
}

impl Histogram {
    /// Creates an empty histogram with `nbins` bins spanning `[0, max]`.
    ///
    /// # Panics
    ///
    /// Panics if `nbins == 0` or `max` is not positive and finite.
    pub fn new(nbins: usize, max: f32) -> Self {
        assert!(nbins > 0, "histogram needs at least one bin");
        assert!(max > 0.0 && max.is_finite(), "invalid histogram max {max}");
        Histogram {
            bins: vec![0.0; nbins],
            max,
        }
    }

    /// Builds a histogram directly from a tensor's absolute values, sizing
    /// the range to the tensor's absolute maximum.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is empty. A tensor that is identically zero gets
    /// a tiny positive range so downstream calibration still works.
    pub fn from_tensor(t: &Tensor, nbins: usize) -> Self {
        assert!(!t.is_empty(), "histogram of empty tensor");
        let max = t.abs_max().max(f32::MIN_POSITIVE);
        let mut h = Histogram::new(nbins, max);
        h.add(t);
        h
    }

    /// Like [`from_tensor`](Self::from_tensor) but ignoring exact zeros.
    /// Post-ReLU activations put a large fraction of their mass at exactly
    /// zero; zero is representable at every scale, so including it only
    /// distorts threshold calibration (the KL-J merge increasingly smears
    /// the zero spike as candidate thresholds widen, biasing the optimum
    /// toward over-tight clipping).
    ///
    /// # Panics
    ///
    /// Panics if the tensor is empty. A tensor with no non-zero values
    /// degenerates to a single count in the first bin.
    pub fn from_tensor_nonzero(t: &Tensor, nbins: usize) -> Self {
        assert!(!t.is_empty(), "histogram of empty tensor");
        let max = t.abs_max().max(f32::MIN_POSITIVE);
        let mut h = Histogram::new(nbins, max);
        let n = h.bins.len();
        let scale = n as f32 / max;
        let mut any = false;
        for &x in t.data() {
            if x != 0.0 {
                let b = ((x.abs() * scale) as usize).min(n - 1);
                h.bins[b] += 1.0;
                any = true;
            }
        }
        if !any {
            h.bins[0] += 1.0;
        }
        h
    }

    /// Accumulates the absolute values of `t`. Values above `max` land in
    /// the last bin (saturating), matching calibration-time clipping.
    pub fn add(&mut self, t: &Tensor) {
        let n = self.bins.len();
        let scale = n as f32 / self.max;
        for &x in t.data() {
            let b = ((x.abs() * scale) as usize).min(n - 1);
            self.bins[b] += 1.0;
        }
    }

    /// Number of bins.
    pub fn nbins(&self) -> usize {
        self.bins.len()
    }

    /// Upper edge of the histogram range.
    pub fn max(&self) -> f32 {
        self.max
    }

    /// Raw bin counts.
    pub fn bins(&self) -> &[f64] {
        &self.bins
    }

    /// Total mass (number of accumulated values).
    pub fn total(&self) -> f64 {
        self.bins.iter().sum()
    }

    /// The value at the upper edge of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= nbins`.
    pub fn bin_upper_edge(&self, i: usize) -> f32 {
        assert!(i < self.bins.len(), "bin {i} out of range");
        self.max * (i + 1) as f32 / self.bins.len() as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_std_known_values() {
        let t = Tensor::from_slice(&[1.0, 2.0, 3.0, 4.0]);
        let (m, s) = mean_std(&t);
        assert_eq!(m, 2.5);
        assert!((s - 1.118_034).abs() < 1e-6);
    }

    #[test]
    fn percentile_endpoints() {
        let t = Tensor::from_slice(&[-4.0, 1.0, 2.0, 3.0]);
        assert_eq!(abs_percentile(&t, 0.0), 1.0);
        assert_eq!(abs_percentile(&t, 100.0), 4.0);
        assert_eq!(abs_percentile(&t, 50.0), 2.5);
    }

    #[test]
    fn histogram_binning() {
        let t = Tensor::from_slice(&[0.1, 0.6, -0.6, 1.9, 5.0]);
        let mut h = Histogram::new(4, 2.0); // bins: [0,.5) [.5,1) [1,1.5) [1.5,2]
        h.add(&t);
        assert_eq!(h.bins(), &[1.0, 2.0, 0.0, 2.0]); // 5.0 saturates into last
        assert_eq!(h.total(), 5.0);
        assert_eq!(h.bin_upper_edge(0), 0.5);
        assert_eq!(h.bin_upper_edge(3), 2.0);
    }

    #[test]
    fn from_tensor_spans_abs_max() {
        let t = Tensor::from_slice(&[0.5, -3.0]);
        let h = Histogram::from_tensor(&t, 10);
        assert_eq!(h.max(), 3.0);
        assert_eq!(h.total(), 2.0);
    }

    #[test]
    fn zero_tensor_histogram_is_safe() {
        let h = Histogram::from_tensor(&Tensor::zeros([4]), 8);
        assert_eq!(h.total(), 4.0);
    }
}
