//! Reductions over tensors: global and per-axis sums, means, extrema, argmax.

use crate::tensor::Tensor;

/// Sum of all elements.
pub fn sum(t: &Tensor) -> f32 {
    t.data().iter().sum()
}

/// Sum of all elements accumulated in `f64` (for loss computations where
/// `f32` accumulation error matters).
pub fn sum_f64(t: &Tensor) -> f64 {
    t.data().iter().map(|&x| x as f64).sum()
}

/// Mean of all elements.
///
/// # Panics
///
/// Panics if the tensor is empty.
pub fn mean(t: &Tensor) -> f32 {
    assert!(!t.is_empty(), "mean of empty tensor");
    sum(t) / t.len() as f32
}

/// Maximum element.
///
/// # Panics
///
/// Panics if the tensor is empty.
pub fn max(t: &Tensor) -> f32 {
    assert!(!t.is_empty(), "max of empty tensor");
    t.data().iter().copied().fold(f32::NEG_INFINITY, f32::max)
}

/// Minimum element.
///
/// # Panics
///
/// Panics if the tensor is empty.
pub fn min(t: &Tensor) -> f32 {
    assert!(!t.is_empty(), "min of empty tensor");
    t.data().iter().copied().fold(f32::INFINITY, f32::min)
}

/// Per-row argmax of a 2-D `[n, k]` tensor; ties resolve to the lowest index.
///
/// # Panics
///
/// Panics if the tensor is not 2-D or has zero columns.
pub fn argmax_rows(t: &Tensor) -> Vec<usize> {
    assert_eq!(t.ndim(), 2, "argmax_rows requires a 2-D tensor");
    let (n, k) = (t.dim(0), t.dim(1));
    assert!(k > 0, "argmax_rows requires at least one column");
    (0..n)
        .map(|i| {
            let row = &t.data()[i * k..(i + 1) * k];
            let mut best = 0;
            for (j, &v) in row.iter().enumerate() {
                if v > row[best] {
                    best = j;
                }
            }
            best
        })
        .collect()
}

/// Indices of the top-`k` values per row of a 2-D tensor, best first.
///
/// # Panics
///
/// Panics if the tensor is not 2-D or `k` exceeds the number of columns.
pub fn topk_rows(t: &Tensor, k: usize) -> Vec<Vec<usize>> {
    assert_eq!(t.ndim(), 2, "topk_rows requires a 2-D tensor");
    let (n, cols) = (t.dim(0), t.dim(1));
    assert!(k <= cols, "k={k} exceeds {cols} columns");
    (0..n)
        .map(|i| {
            let row = &t.data()[i * cols..(i + 1) * cols];
            let mut idx: Vec<usize> = (0..cols).collect();
            idx.sort_by(|&a, &b| row[b].partial_cmp(&row[a]).unwrap().then(a.cmp(&b))); // tqt:allow(unwrap): logits are finite by construction
            idx.truncate(k);
            idx
        })
        .collect()
}

/// Per-channel mean of an NCHW or `[N, C]` tensor, returning a `[C]` tensor.
///
/// # Panics
///
/// Panics if the tensor is not 2-D or 4-D.
pub fn mean_over_channel(t: &Tensor) -> Tensor {
    let s = crate::ops::sum_over_channel(t);
    let count = (t.len() / s.len()) as f32;
    s.map(|x| x / count)
}

/// Per-channel (biased) variance of an NCHW or `[N, C]` tensor around the
/// provided per-channel `mean`.
///
/// # Panics
///
/// Panics if the tensor is not 2-D or 4-D, or if `mean` has the wrong length.
pub fn var_over_channel(t: &Tensor, mean: &Tensor) -> Tensor {
    let c = t.dim(1);
    assert_eq!(mean.dims(), &[c], "mean length must equal channel count");
    let spatial = t.len() / (t.dim(0) * c);
    let n = t.dim(0);
    let mut out = vec![0.0f32; c];
    for ni in 0..n {
        for (ci, o) in out.iter_mut().enumerate() {
            let base = (ni * c + ci) * spatial;
            let m = mean.data()[ci];
            *o += t.data()[base..base + spatial]
                .iter()
                .map(|&x| (x - m) * (x - m))
                .sum::<f32>();
        }
    }
    let count = (n * spatial) as f32;
    Tensor::from_vec(c, out.into_iter().map(|v| v / count).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_reductions() {
        let t = Tensor::from_slice(&[1.0, -2.0, 3.0]);
        assert_eq!(sum(&t), 2.0);
        assert_eq!(mean(&t), 2.0 / 3.0);
        assert_eq!(max(&t), 3.0);
        assert_eq!(min(&t), -2.0);
    }

    #[test]
    fn argmax_rows_picks_first_tie() {
        let t = Tensor::from_vec([2, 3], vec![1., 3., 3., 5., 2., 1.]);
        assert_eq!(argmax_rows(&t), vec![1, 0]);
    }

    #[test]
    fn topk_ordering() {
        let t = Tensor::from_vec([1, 4], vec![0.1, 0.9, 0.5, 0.3]);
        assert_eq!(topk_rows(&t, 3), vec![vec![1, 2, 3]]);
    }

    #[test]
    fn channel_mean_var() {
        // Channel 0: [1, 3]; channel 1: [2, 6]
        let t = Tensor::from_vec([2, 2, 1, 1], vec![1., 2., 3., 6.]);
        let m = mean_over_channel(&t);
        assert_eq!(m.data(), &[2.0, 4.0]);
        let v = var_over_channel(&t, &m);
        assert_eq!(v.data(), &[1.0, 4.0]);
    }

    #[test]
    fn sum_f64_accumulates_precisely() {
        let t = Tensor::full([1000], 0.1);
        assert!((sum_f64(&t) - 100.0).abs() < 1e-3);
    }
}
