//! # tqt-data
//!
//! SynthImageNet — the procedurally generated classification dataset that
//! substitutes for ImageNet in this reproduction (see DESIGN.md for the
//! substitution argument) — plus batch iteration and calibration-set
//! sampling.

pub mod loader;
pub mod synth;

pub use loader::{calibration_batch, eval_batches, BatchIter};
pub use synth::{generate, train_val, Dataset, SynthConfig};
