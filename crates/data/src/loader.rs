//! Batch iteration and calibration sampling.

use crate::synth::Dataset;
use tqt_tensor::{init, Tensor};

/// Iterates a dataset in shuffled mini-batches. Each epoch reshuffles
/// deterministically from the base seed and epoch number; the final partial
/// batch is dropped (as is conventional for batch-norm training).
#[derive(Debug)]
pub struct BatchIter<'a> {
    data: &'a Dataset,
    order: Vec<usize>,
    batch: usize,
    pos: usize,
}

impl<'a> BatchIter<'a> {
    /// Creates a shuffled batch iterator for one epoch.
    ///
    /// # Panics
    ///
    /// Panics if `batch == 0` or the dataset has fewer examples than one
    /// batch.
    pub fn new(data: &'a Dataset, batch: usize, seed: u64, epoch: u64) -> Self {
        assert!(batch > 0, "batch size must be positive");
        assert!(
            data.len() >= batch,
            "dataset of {} examples cannot fill a batch of {batch}",
            data.len()
        );
        let mut order: Vec<usize> = (0..data.len()).collect();
        let mut rng = init::rng(seed ^ epoch.wrapping_mul(0xD134_2543_DE82_EF95));
        rng.shuffle(&mut order);
        BatchIter {
            data,
            order,
            batch,
            pos: 0,
        }
    }

    /// Number of full batches in one epoch.
    pub fn batches_per_epoch(&self) -> usize {
        self.data.len() / self.batch
    }
}

impl Iterator for BatchIter<'_> {
    type Item = (Tensor, Vec<usize>);

    fn next(&mut self) -> Option<Self::Item> {
        if self.pos + self.batch > self.order.len() {
            return None;
        }
        let idx = &self.order[self.pos..self.pos + self.batch];
        self.pos += self.batch;
        Some(self.data.gather(idx))
    }
}

/// Iterates a dataset sequentially in fixed-size batches for validation
/// (includes the final partial batch).
pub fn eval_batches(data: &Dataset, batch: usize) -> Vec<(Tensor, Vec<usize>)> {
    assert!(batch > 0, "batch size must be positive");
    let mut out = Vec::new();
    let mut i = 0;
    while i < data.len() {
        let end = (i + batch).min(data.len());
        let idx: Vec<usize> = (i..end).collect();
        out.push(data.gather(&idx));
        i = end;
    }
    out
}

/// Draws a calibration batch of `n` examples sampled uniformly without
/// replacement (the paper uses 50 unlabeled images from the validation
/// set).
///
/// # Panics
///
/// Panics if `n == 0` or `n > data.len()`.
pub fn calibration_batch(data: &Dataset, n: usize, seed: u64) -> Tensor {
    assert!(n > 0 && n <= data.len(), "invalid calibration size {n}");
    let mut idx: Vec<usize> = (0..data.len()).collect();
    let mut rng = init::rng(seed);
    rng.shuffle(&mut idx);
    idx.truncate(n);
    data.gather(&idx).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{generate, SynthConfig};

    #[test]
    fn epoch_covers_all_full_batches() {
        let d = generate(&SynthConfig::default(), 50);
        let it = BatchIter::new(&d, 16, 1, 0);
        assert_eq!(it.batches_per_epoch(), 3);
        let batches: Vec<_> = it.collect();
        assert_eq!(batches.len(), 3);
        assert_eq!(batches[0].0.dims(), &[16, 3, 32, 32]);
    }

    #[test]
    fn epochs_shuffle_differently_but_deterministically() {
        let d = generate(&SynthConfig::default(), 40);
        let a: Vec<_> = BatchIter::new(&d, 8, 1, 0).map(|(_, l)| l).collect();
        let b: Vec<_> = BatchIter::new(&d, 8, 1, 0).map(|(_, l)| l).collect();
        let c: Vec<_> = BatchIter::new(&d, 8, 1, 1).map(|(_, l)| l).collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn eval_batches_cover_everything_including_tail() {
        let d = generate(&SynthConfig::default(), 21);
        let batches = eval_batches(&d, 8);
        assert_eq!(batches.len(), 3);
        let total: usize = batches.iter().map(|(_, l)| l.len()).sum();
        assert_eq!(total, 21);
        assert_eq!(batches[2].1.len(), 5);
    }

    #[test]
    fn calibration_batch_shape() {
        let d = generate(&SynthConfig::default(), 60);
        let c = calibration_batch(&d, 50, 2);
        assert_eq!(c.dims(), &[50, 3, 32, 32]);
    }
}
