//! SynthImageNet: a procedurally generated image-classification dataset
//! standing in for ImageNet (ILSVRC12), which is not available in this
//! environment.
//!
//! Each class is a prototype texture — a mixture of oriented sinusoidal
//! gratings with class-specific orientation, frequency and color balance,
//! plus a class-positioned Gaussian blob — rendered with per-sample phase,
//! amplitude, position jitter and pixel noise. The task is easy enough for
//! the mini model zoo to learn to high accuracy in a few epochs, yet the
//! activations have long-tailed, layer-dependent distributions, which is
//! the property quantization-threshold calibration actually interacts
//! with.

use tqt_tensor::{init, Tensor};

/// Configuration of the synthetic dataset generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SynthConfig {
    /// Number of classes.
    pub classes: usize,
    /// Image side length (images are square, 3 channels).
    pub image_size: usize,
    /// Standard deviation of additive pixel noise.
    pub noise: f32,
    /// Master seed: the same seed always produces the same dataset.
    pub seed: u64,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig {
            classes: 10,
            image_size: 32,
            noise: 0.15,
            seed: 7,
        }
    }
}

/// Per-class texture prototype.
#[derive(Debug, Clone)]
struct ClassProto {
    theta: f32,
    freq: f32,
    color: [f32; 3],
    blob_x: f32,
    blob_y: f32,
    blob_sign: f32,
    second_theta: f32,
    second_freq: f32,
}

/// A labeled image dataset in NCHW layout.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Images, shape `[n, 3, s, s]`, values roughly in `[-2, 2]`.
    pub images: Tensor,
    /// Class labels, length `n`.
    pub labels: Vec<usize>,
}

impl Dataset {
    /// Number of examples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// The `i`-th image as a standalone `[1, 3, s, s]` tensor.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn image(&self, i: usize) -> Tensor {
        assert!(i < self.len(), "index {i} out of range");
        let per = self.images.len() / self.len();
        let data = self.images.data()[i * per..(i + 1) * per].to_vec();
        let mut dims = self.images.dims().to_vec();
        dims[0] = 1;
        Tensor::from_vec(dims, data)
    }

    /// Copies examples `idx` into a batch `([b, 3, s, s], labels)`.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range or `idx` is empty.
    pub fn gather(&self, idx: &[usize]) -> (Tensor, Vec<usize>) {
        assert!(!idx.is_empty(), "empty batch");
        let per = self.images.len() / self.len();
        let mut data = Vec::with_capacity(idx.len() * per);
        let mut labels = Vec::with_capacity(idx.len());
        for &i in idx {
            assert!(i < self.len(), "index {i} out of range");
            data.extend_from_slice(&self.images.data()[i * per..(i + 1) * per]);
            labels.push(self.labels[i]);
        }
        let mut dims = self.images.dims().to_vec();
        dims[0] = idx.len();
        (Tensor::from_vec(dims, data), labels)
    }
}

fn make_protos(cfg: &SynthConfig) -> Vec<ClassProto> {
    (0..cfg.classes)
        .map(|k| {
            // Prototypes are a property of the *class*, not of the sampling
            // seed: each class draws its random detail from its own
            // class-indexed stream. Datasets generated with different master
            // seeds (e.g. the train/val split) therefore share identical
            // class definitions and differ only in per-sample jitter/noise.
            let mut rng = init::rng(0xC1A5_5000 + k as u64);
            // Deterministic, well-separated orientations plus random detail.
            let theta = std::f32::consts::PI * k as f32 / cfg.classes as f32;
            ClassProto {
                theta,
                freq: 2.0 + rng.gen_range(0.0..4.0),
                color: [
                    0.6 + 0.4 * ((k % 3) as f32) / 2.0 + rng.gen_range(-0.1..0.1),
                    0.6 + 0.4 * (((k + 1) % 3) as f32) / 2.0 + rng.gen_range(-0.1..0.1),
                    0.6 + 0.4 * (((k + 2) % 3) as f32) / 2.0 + rng.gen_range(-0.1..0.1),
                ],
                blob_x: rng.gen_range(0.25..0.75),
                blob_y: rng.gen_range(0.25..0.75),
                blob_sign: if k % 2 == 0 { 1.0 } else { -1.0 },
                second_theta: theta + std::f32::consts::FRAC_PI_2,
                second_freq: 1.0 + rng.gen_range(0.0..2.0),
            }
        })
        .collect()
}

/// Generates `n` labeled examples with a balanced class distribution.
///
/// # Panics
///
/// Panics if `n == 0` or the config has zero classes or size.
pub fn generate(cfg: &SynthConfig, n: usize) -> Dataset {
    assert!(n > 0, "cannot generate an empty dataset");
    assert!(cfg.classes > 0 && cfg.image_size > 0, "degenerate config");
    let mut rng = init::rng(cfg.seed);
    let protos = make_protos(cfg);
    let s = cfg.image_size;
    let mut images = Vec::with_capacity(n * 3 * s * s);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let k = i % cfg.classes;
        labels.push(k);
        let p = &protos[k];
        // Per-sample jitter.
        let phase = rng.gen_range(0.0..std::f32::consts::TAU);
        let phase2 = rng.gen_range(0.0..std::f32::consts::TAU);
        let amp = rng.gen_range(0.7..1.3);
        let bx = p.blob_x + rng.gen_range(-0.08..0.08);
        let by = p.blob_y + rng.gen_range(-0.08..0.08);
        let (st, ct) = p.theta.sin_cos();
        let (st2, ct2) = p.second_theta.sin_cos();
        for c in 0..3 {
            for yi in 0..s {
                for xi in 0..s {
                    let u = xi as f32 / s as f32;
                    let v = yi as f32 / s as f32;
                    let g1 = (std::f32::consts::TAU * p.freq * (u * ct + v * st) + phase).sin();
                    let g2 =
                        (std::f32::consts::TAU * p.second_freq * (u * ct2 + v * st2) + phase2)
                            .sin();
                    let d2 = (u - bx) * (u - bx) + (v - by) * (v - by);
                    let blob = p.blob_sign * (-d2 / 0.02).exp();
                    let noise = cfg.noise * init::sample_standard_normal(&mut rng);
                    // DC color term: a phase-independent class cue that
                    // keeps even linear models above chance.
                    let dc = 0.5 * (p.color[c] - 0.8);
                    let val = amp * p.color[c] * (0.8 * g1 + 0.4 * g2) + 1.2 * blob + dc + noise;
                    images.push(val);
                }
            }
        }
    }
    Dataset {
        images: Tensor::from_vec([n, 3, s, s], images),
        labels,
    }
}

/// Generates a standard train/validation pair with disjoint sample streams
/// (validation uses an offset derived seed).
pub fn train_val(cfg: &SynthConfig, n_train: usize, n_val: usize) -> (Dataset, Dataset) {
    let train = generate(cfg, n_train);
    let val_cfg = SynthConfig {
        seed: cfg.seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
        ..*cfg
    };
    let val = generate(&val_cfg, n_val);
    (train, val)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_by_seed() {
        let cfg = SynthConfig::default();
        let a = generate(&cfg, 20);
        let b = generate(&cfg, 20);
        assert_eq!(a.images, b.images);
        assert_eq!(a.labels, b.labels);
        let c = generate(&SynthConfig { seed: 8, ..cfg }, 20);
        assert_ne!(a.images, c.images);
    }

    #[test]
    fn balanced_labels() {
        let cfg = SynthConfig::default();
        let d = generate(&cfg, 100);
        for k in 0..10 {
            assert_eq!(d.labels.iter().filter(|&&l| l == k).count(), 10);
        }
    }

    #[test]
    fn shapes_and_ranges() {
        let cfg = SynthConfig {
            classes: 4,
            image_size: 16,
            noise: 0.1,
            seed: 3,
        };
        let d = generate(&cfg, 8);
        assert_eq!(d.images.dims(), &[8, 3, 16, 16]);
        assert!(d.images.all_finite());
        assert!(d.images.abs_max() < 10.0);
    }

    #[test]
    fn gather_and_image_consistent() {
        let d = generate(&SynthConfig::default(), 12);
        let (batch, labels) = d.gather(&[3, 7]);
        assert_eq!(batch.dims(), &[2, 3, 32, 32]);
        assert_eq!(labels, vec![d.labels[3], d.labels[7]]);
        let single = d.image(3);
        assert_eq!(&batch.data()[..single.len()], single.data());
    }

    #[test]
    fn train_val_disjoint_streams() {
        let cfg = SynthConfig::default();
        let (tr, va) = train_val(&cfg, 10, 10);
        assert_ne!(tr.images, va.images);
    }

    /// Classes must be linearly separable enough that a trivial centroid
    /// classifier beats chance by a wide margin — otherwise the mini nets
    /// cannot reach the high accuracies Table 3 compares.
    #[test]
    fn classes_are_separable_by_centroids() {
        let cfg = SynthConfig::default();
        let train = generate(&cfg, 200);
        let test = generate(&SynthConfig { seed: 99, ..cfg }, 100);
        let per = train.images.len() / train.len();
        let mut centroids = vec![vec![0.0f32; per]; cfg.classes];
        let mut counts = vec![0usize; cfg.classes];
        for i in 0..train.len() {
            let k = train.labels[i];
            counts[k] += 1;
            for (c, &v) in centroids[k]
                .iter_mut()
                .zip(&train.images.data()[i * per..(i + 1) * per])
            {
                *c += v;
            }
        }
        for (c, n) in centroids.iter_mut().zip(&counts) {
            for v in c.iter_mut() {
                *v /= *n as f32;
            }
        }
        let mut correct = 0;
        for i in 0..test.len() {
            let img = &test.images.data()[i * per..(i + 1) * per];
            let best = (0..cfg.classes)
                .min_by(|&a, &b| {
                    let da: f32 = centroids[a]
                        .iter()
                        .zip(img)
                        .map(|(&c, &v)| (c - v) * (c - v))
                        .sum();
                    let db: f32 = centroids[b]
                        .iter()
                        .zip(img)
                        .map(|(&c, &v)| (c - v) * (c - v))
                        .sum();
                    da.partial_cmp(&db).unwrap()
                })
                .unwrap();
            if best == test.labels[i] {
                correct += 1;
            }
        }
        let acc = correct as f32 / test.len() as f32;
        assert!(
            acc > 0.3,
            "centroid classifier should beat 10% chance by 3x, got {acc}"
        );
    }
}
