//! Property tests for the pre-packed weight-panel paths: packing a
//! weight operand **once** (into a [`PackedB`], a [`tqt_tensor::gemm::PackedA`],
//! or an `IntPlan`-owned arena panel) must be bit-identical to packing
//! per call, on both the serial and parallel dispatch, and a plan shared
//! between concurrently running executor sessions must never expose a
//! torn or half-initialized panel.
//!
//! The panels are written during construction and read-only afterwards,
//! so bit-identity here is a memoization proof: same bytes in, same
//! traversal order, same bytes out.

use tqt_fixedpoint::intgemm::{
    gemm_i64_narrow_fused, pack_lhs, pack_rhs, packed_lhs_len, packed_rhs_len, Lhs, Rhs, TileStep,
};
use tqt_fixedpoint::{
    gemm_i8_acc32, gemm_i8_acc32_prepacked, gemm_i8_fused, gemm_i8_fused_prepacked, IntExecutor,
    PackedB, RequantMode,
};
use tqt_fixedpoint::requant::NormalizedMultiplier;
use tqt_fixedpoint::kernels;
use tqt_rt::check::{self, Config, Gen};
use tqt_rt::sync::Counter;
use tqt_rt::{pool, prop_assert, Rng};

/// One generated GEMM case; operand data derives from `seed` so a case
/// shrinks through its shape alone.
#[derive(Debug, Clone)]
struct Case {
    m: usize,
    n: usize,
    k: usize,
    seed: u64,
    /// 0 = pow2, 1 = real, 2 = affine (i8 path); selects the epilogue
    /// shape on the i64 path.
    mode: u8,
}

fn gen_case() -> Gen<Case> {
    Gen::new(
        |rng: &mut Rng| Case {
            // Crosses the i8 MR=6/NR=16/MC=96 and i64 MRB=4/NCB=64 tile
            // edges, including degenerate single-row/column shapes.
            m: rng.gen_range(1usize..140),
            n: rng.gen_range(1usize..80),
            k: rng.gen_range(1usize..70),
            seed: rng.gen_range(0u64..1 << 32),
            mode: rng.gen_range(0u32..3) as u8,
        },
        |c: &Case| {
            let mut cands = Vec::new();
            if c.m > 1 {
                cands.push(Case { m: c.m / 2, ..c.clone() });
            }
            if c.n > 1 {
                cands.push(Case { n: c.n / 2, ..c.clone() });
            }
            if c.k > 1 {
                cands.push(Case { k: c.k / 2, ..c.clone() });
            }
            if c.seed != 0 {
                cands.push(Case { seed: 0, ..c.clone() });
            }
            cands
        },
    )
}

fn fill_i8(len: usize, rng: &mut Rng) -> Vec<i8> {
    (0..len).map(|_| rng.gen_range(-128i32..128) as i8).collect()
}

fn fill_i64(len: usize, rng: &mut Rng) -> Vec<i64> {
    (0..len).map(|_| rng.gen_range(-1000i64..1001)).collect()
}

#[test]
fn prepacked_i8_panels_match_pack_per_call() {
    check::run(
        "prepacked_i8_panels_match_pack_per_call",
        Config::cases(100),
        gen_case(),
        |c: &Case| {
            let mut rng = Rng::new(c.seed ^ 0x7061_636b);
            let a = fill_i8(c.m * c.k, &mut rng);
            let b = fill_i8(c.k * c.n, &mut rng);
            let bias: Vec<i32> = (0..c.m).map(|_| rng.gen_range(-5000i32..5000)).collect();
            let mult = NormalizedMultiplier::from_f64(0.003 + (c.seed % 97) as f64 * 1e-4);
            let asums = kernels::row_sums(&a, c.m, c.k);
            let bsums = kernels::col_sums(&b, c.k, c.n);
            let mode = match c.mode {
                0 => RequantMode::Pow2 { shift: 6 },
                1 => RequantMode::Real { m: mult },
                _ => RequantMode::Affine {
                    a_sums: &asums,
                    b_sums: &bsums,
                    z1: -12,
                    z2: 7,
                    z3: 3,
                    m: mult,
                },
            };
            let bpack = PackedB::pack(&b, c.k, c.n);
            for parallel in [false, true] {
                let mut per_call = vec![0i8; c.m * c.n];
                gemm_i8_fused(c.m, c.n, c.k, &a, &b, Some(&bias), mode, &mut per_call, parallel);
                let mut pre = vec![0i8; c.m * c.n];
                gemm_i8_fused_prepacked(
                    c.m, c.n, c.k, &a, &bpack, Some(&bias), mode, &mut pre, parallel,
                );
                prop_assert!(
                    pre == per_call,
                    "fused prepacked (parallel={parallel}) diverged on {c:?}"
                );
                let mut acc_per_call = vec![0i32; c.m * c.n];
                gemm_i8_acc32(c.m, c.n, c.k, &a, &b, &mut acc_per_call, parallel);
                let mut acc_pre = vec![0i32; c.m * c.n];
                gemm_i8_acc32_prepacked(c.m, c.n, c.k, &a, &bpack, &mut acc_pre, parallel);
                prop_assert!(
                    acc_pre == acc_per_call,
                    "acc32 prepacked (parallel={parallel}) diverged on {c:?}"
                );
            }
            Ok(())
        },
    );
}

#[test]
fn prepacked_i64_panels_match_row_major() {
    check::run(
        "prepacked_i64_panels_match_row_major",
        Config::cases(100),
        gen_case(),
        |c: &Case| {
            let mut rng = Rng::new(c.seed ^ 0x6c68_7372);
            let a = fill_i64(c.m * c.k, &mut rng);
            let b = fill_i64(c.k * c.n, &mut rng);
            let bias: Vec<i64> = fill_i64(c.m, &mut rng);
            let residual: Vec<i64> = fill_i64(c.m * c.n, &mut rng);
            // Epilogue shape varies with the mode so every TileStep is
            // exercised against packed operands.
            let epi: Vec<TileStep> = match c.mode {
                0 => vec![TileStep::Requant { shift: 4, qmin: -127, qmax: 127 }],
                1 => vec![
                    TileStep::AddResidual(&residual),
                    TileStep::ReluCap(i64::MAX),
                    TileStep::Requant { shift: 6, qmin: -127, qmax: 127 },
                ],
                _ => vec![
                    TileStep::ReluCap(900),
                    TileStep::Requant { shift: 2, qmin: -32768, qmax: 32767 },
                ],
            };
            let mut apack = vec![0i64; packed_lhs_len(c.m, c.k)];
            pack_lhs(&a, c.m, c.k, &mut apack);
            let mut bpack = vec![0i64; packed_rhs_len(c.k, c.n)];
            pack_rhs(&b, c.k, c.n, &mut bpack);

            let run = |lhs: Lhs, rhs: Rhs, parallel: bool| {
                let (ovf, sat) = (Counter::new(), Counter::new());
                let mut out = vec![0i64; c.m * c.n];
                gemm_i64_narrow_fused(
                    c.m, c.n, c.k, lhs, rhs, Some(&bias), None, &epi, &mut out, &ovf, &sat,
                    parallel,
                );
                (out, ovf.get(), sat.get())
            };
            for parallel in [false, true] {
                let reference = run(Lhs::Rows(&a), Rhs::Rows(&b), parallel);
                for (label, got) in [
                    ("packed-lhs", run(Lhs::Packed(&apack), Rhs::Rows(&b), parallel)),
                    ("packed-rhs", run(Lhs::Rows(&a), Rhs::Packed(&bpack), parallel)),
                    ("packed-both", run(Lhs::Packed(&apack), Rhs::Packed(&bpack), parallel)),
                ] {
                    prop_assert!(
                        got == reference,
                        "{label} (parallel={parallel}) diverged on {c:?}"
                    );
                }
            }
            Ok(())
        },
    );
}

#[test]
fn prepacked_float_panels_match_pack_per_call() {
    check::run(
        "prepacked_float_panels_match_pack_per_call",
        Config::cases(60),
        gen_case(),
        |c: &Case| {
            let mut rng = Rng::new(c.seed ^ 0x666c_6f61);
            let a: Vec<f32> = (0..c.m * c.k).map(|_| rng.gen_range(-1000i64..1001) as f32 / 64.0).collect();
            let b: Vec<f32> = (0..c.k * c.n).map(|_| rng.gen_range(-1000i64..1001) as f32 / 64.0).collect();
            let apack = tqt_tensor::gemm::PackedA::pack(&a, c.m, c.k);
            for parallel in [false, true] {
                let mut per_call = vec![0.0f32; c.m * c.n];
                tqt_tensor::gemm::gemm_nn(c.m, c.n, c.k, &a, &b, &mut per_call, parallel);
                let mut pre = vec![0.0f32; c.m * c.n];
                tqt_tensor::gemm::gemm_nn_prepacked(c.m, c.n, c.k, &apack, &b, &mut pre, parallel);
                // Bit-exact, not approximate: the packed path must replay
                // the identical summation order.
                prop_assert!(
                    pre.iter().zip(&per_call).all(|(x, y)| x.to_bits() == y.to_bits()),
                    "float prepacked (parallel={parallel}) diverged on {c:?}"
                );
            }
            Ok(())
        },
    );
}

/// Builds a small quantized conv+dense graph and lowers it — both panel
/// kinds (conv LHS, dense RHS) land in the plan arena.
fn lowered_toy_graph(seed: u64) -> tqt_fixedpoint::IntGraph {
    use tqt_graph::{quantize_graph, transforms, Op as GOp, QuantizeOptions};
    use tqt_nn::{Conv2d, Dense, GlobalAvgPool, Relu};
    use tqt_tensor::conv::Conv2dGeom;
    use tqt_tensor::init;
    let mut rng = init::rng(seed);
    let mut g = tqt_graph::Graph::new();
    let x = g.add_input("input");
    let c1 = g.add(
        "conv1",
        GOp::Conv(Conv2d::new("conv1", 2, 4, Conv2dGeom::same(3), &mut rng)),
        &[x],
    );
    let r1 = g.add("relu1", GOp::Relu(Relu::relu6()), &[c1]);
    let gap = g.add("gap", GOp::GlobalAvgPool(GlobalAvgPool::new()), &[r1]);
    let fc = g.add("fc", GOp::Dense(Dense::new("fc", 4, 3, &mut rng)), &[gap]);
    g.set_output(fc);
    transforms::optimize(&mut g, &[1, 2, 8, 8]);
    quantize_graph(&mut g, QuantizeOptions::static_int8());
    let calib = init::normal([4, 2, 8, 8], 0.0, 1.0, &mut rng);
    g.calibrate(&calib);
    tqt_fixedpoint::lower(&mut g)
}

#[test]
fn shared_plan_sessions_never_observe_torn_panels() {
    use tqt_tensor::init;
    let ig = lowered_toy_graph(2024);
    let dims = [2usize, 2, 8, 8];
    let plan = ig.plan(&dims);
    assert!(plan.weight_arena_elems() > 0, "toy graph must pack panels");

    let mut rng = init::rng(9000);
    let inputs: Vec<_> = (0..8).map(|_| init::normal(dims, 0.0, 1.5, &mut rng)).collect();
    let expected: Vec<_> = inputs.iter().map(|x| ig.run(x)).collect();

    // Eight concurrent sessions borrow the one plan (and its packed
    // arena) while running parallel kernels themselves; every session
    // must reproduce the solo runs bit-for-bit. Fanned out through the
    // worker pool — nested regions are part of its execution model.
    pool::set_threads(4);
    for _round in 0..4 {
        let outs = pool::par_map(inputs.len(), |i| {
            let mut session = IntExecutor::with_plan(&ig, &plan);
            session.run(&inputs[i])
        });
        for (i, (got, want)) in outs.iter().zip(&expected).enumerate() {
            assert_eq!(got, want, "shared-plan session {i} observed a torn panel");
        }
    }
    pool::set_threads(0);
}
