//! Property tests for the blocked, packed, fused i8 GEMM: against an
//! exact i64-index scalar oracle over random shapes (including the
//! ragged tile edges the blocking must handle), all three requant
//! epilogues, zero-point edge cases at ±127, and serial/parallel plus
//! scalar/AVX2 bit-identity (the parallel path runs the same packed
//! kernels, so equality with the oracle on both settings covers it).

use tqt_fixedpoint::kernels;
use tqt_fixedpoint::requant::{requant_affine, requant_pow2, requant_real, NormalizedMultiplier};
use tqt_fixedpoint::{gemm_i8_acc32, gemm_i8_fused, RequantMode};
use tqt_rt::check::{self, Config, Gen};
use tqt_rt::{prop_assert, Rng};

/// One generated GEMM case. Operand data is derived from `seed` so the
/// case shrinks through its shape alone.
#[derive(Debug, Clone)]
struct Case {
    m: usize,
    n: usize,
    k: usize,
    seed: u64,
    /// 0 = pow2, 1 = real, 2 = affine.
    mode: u8,
    with_bias: bool,
    /// Zero-points; the generator pins these to the ±127 extremes in a
    /// third of cases.
    z1: i32,
    z2: i32,
    z3: i32,
}

fn gen_case() -> Gen<Case> {
    Gen::new(
        |rng: &mut Rng| {
            let zp = |rng: &mut Rng| match rng.gen_range(0u32..4) {
                0 => -127,
                1 => 127,
                2 => 0,
                _ => rng.gen_range(-100i32..101),
            };
            Case {
                // Crosses the MR=6 / NR=16 / MC=96 tile edges and odd k.
                m: rng.gen_range(1usize..140),
                n: rng.gen_range(1usize..40),
                k: rng.gen_range(1usize..70),
                seed: rng.gen_range(0u64..1 << 32),
                mode: rng.gen_range(0u32..3) as u8,
                with_bias: rng.gen_bool(),
                z1: zp(rng),
                z2: zp(rng),
                z3: rng.gen_range(-128i32..128),
            }
        },
        |c: &Case| {
            let mut cands = Vec::new();
            if c.m > 1 {
                cands.push(Case { m: c.m / 2, ..c.clone() });
            }
            if c.n > 1 {
                cands.push(Case { n: c.n / 2, ..c.clone() });
            }
            if c.k > 1 {
                cands.push(Case { k: c.k / 2, ..c.clone() });
            }
            if c.seed != 0 {
                cands.push(Case { seed: 0, ..c.clone() });
            }
            cands
        },
    )
}

fn fill_i8(len: usize, rng: &mut Rng) -> Vec<i8> {
    (0..len).map(|_| rng.gen_range(-128i32..128) as i8).collect()
}

/// Exact scalar oracle mirroring the fused-kernel contract: i32 wrapping
/// accumulation, wrapping bias add, then the i64 requant from
/// `tqt_fixedpoint::requant` per element.
#[allow(clippy::too_many_arguments)]
fn oracle(c: &Case, a: &[i8], b: &[i8], bias: Option<&[i32]>, mult: NormalizedMultiplier) -> Vec<i8> {
    let (m, n, k) = (c.m, c.n, c.k);
    let asums = kernels::row_sums(a, m, k);
    let bsums = kernels::col_sums(b, k, n);
    let mut out = vec![0i8; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0i32;
            for kk in 0..k {
                acc = acc.wrapping_add(i32::from(a[i * k + kk]) * i32::from(b[kk * n + j]));
            }
            if let Some(bv) = bias {
                acc = acc.wrapping_add(bv[i]);
            }
            let v = i64::from(acc);
            out[i * n + j] = match c.mode {
                0 => requant_pow2(v, 7, -128, 127) as i8,
                1 => requant_real(v, mult, -128, 127) as i8,
                _ => requant_affine(
                    v,
                    i64::from(asums[i]),
                    i64::from(bsums[j]),
                    k as i64,
                    i64::from(c.z1),
                    i64::from(c.z2),
                    i64::from(c.z3),
                    mult,
                    -128,
                    127,
                ) as i8,
            };
        }
    }
    out
}

#[test]
fn fused_gemm_matches_i64_oracle_all_modes() {
    check::run(
        "fused_gemm_matches_i64_oracle",
        Config::cases(120),
        gen_case(),
        |c: &Case| {
            let mut rng = Rng::new(c.seed ^ 0x9e37_79b9);
            let a = fill_i8(c.m * c.k, &mut rng);
            let b = fill_i8(c.k * c.n, &mut rng);
            let bias: Option<Vec<i32>> = c
                .with_bias
                .then(|| (0..c.m).map(|_| rng.gen_range(-5000i32..5000)).collect());
            let mult = NormalizedMultiplier::from_f64(0.003 + (c.seed % 97) as f64 * 1e-4);
            let asums = kernels::row_sums(&a, c.m, c.k);
            let bsums = kernels::col_sums(&b, c.k, c.n);
            let mode = match c.mode {
                0 => RequantMode::Pow2 { shift: 7 },
                1 => RequantMode::Real { m: mult },
                _ => RequantMode::Affine {
                    a_sums: &asums,
                    b_sums: &bsums,
                    z1: c.z1,
                    z2: c.z2,
                    z3: c.z3,
                    m: mult,
                },
            };
            let expected = oracle(c, &a, &b, bias.as_deref(), mult);
            for parallel in [false, true] {
                let mut got = vec![0i8; c.m * c.n];
                gemm_i8_fused(
                    c.m,
                    c.n,
                    c.k,
                    &a,
                    &b,
                    bias.as_deref(),
                    mode,
                    &mut got,
                    parallel,
                );
                prop_assert!(
                    got == expected,
                    "fused (parallel={parallel}) disagrees with oracle on {c:?}"
                );
            }
            Ok(())
        },
    );
}

#[test]
fn raw_accumulator_gemm_matches_naive() {
    check::run(
        "raw_acc_gemm_matches_naive",
        Config::cases(80),
        gen_case(),
        |c: &Case| {
            let mut rng = Rng::new(c.seed ^ 0x51_7cc1);
            let a = fill_i8(c.m * c.k, &mut rng);
            let b = fill_i8(c.k * c.n, &mut rng);
            let expected = kernels::matmul_i8_acc32(&a, &b, c.m, c.k, c.n);
            for parallel in [false, true] {
                let mut got = vec![0i32; c.m * c.n];
                gemm_i8_acc32(c.m, c.n, c.k, &a, &b, &mut got, parallel);
                prop_assert!(
                    got == expected,
                    "blocked acc (parallel={parallel}) disagrees with naive on {c:?}"
                );
            }
            Ok(())
        },
    );
}

#[test]
fn saturating_extremes_round_trip() {
    // All-(-128) operands maximize |acc|; shift 0 forces saturation at
    // both clamp edges through every mode.
    let (m, n, k) = (17, 9, 33);
    let a = vec![-128i8; m * k];
    let mut b = vec![-128i8; k * n];
    for (i, v) in b.iter_mut().enumerate() {
        if i % 2 == 0 {
            *v = 127;
        }
    }
    let asums = kernels::row_sums(&a, m, k);
    let bsums = kernels::col_sums(&b, k, n);
    let mult = NormalizedMultiplier::from_f64(0.9999);
    let modes = [
        RequantMode::Pow2 { shift: 0 },
        RequantMode::Real { m: mult },
        RequantMode::Affine {
            a_sums: &asums,
            b_sums: &bsums,
            z1: -127,
            z2: 127,
            z3: 0,
            m: mult,
        },
    ];
    for mode in modes {
        let mut fused = vec![0i8; m * n];
        gemm_i8_fused(m, n, k, &a, &b, None, mode, &mut fused, false);
        let acc = kernels::matmul_i8_acc32(&a, &b, m, k, n);
        let expected = match mode {
            RequantMode::Pow2 { shift } => kernels::requant_buffer_pow2(&acc, shift),
            RequantMode::Real { m } => kernels::requant_buffer_real(&acc, m),
            RequantMode::Affine {
                z1, z2, z3, m: mm, ..
            } => kernels::requant_buffer_affine(&acc, &asums, &bsums, k, z1, z2, z3, mm),
        };
        assert_eq!(fused, expected);
    }
}
