//! Blocked, pool-parallel `i64 × i64` GEMM with **exact i128
//! accumulation** — the compute core of the reference [`crate::lower`]
//! engine's conv/dense fast path.
//!
//! The reference engine stores activations as `i64` and must count, per
//! output element, whether the exact accumulator escaped the i64 range
//! (`narrow` semantics: truncation equals two's-complement wrapping, so
//! the stored bits match a pure-i64 engine while the count feeds the
//! `sanitize` feature and the tqt-verify containment check). That rules
//! out the narrow `i8` deployment kernel here; instead this is the same
//! register-blocking idea applied to wide integers: `MRB×NCB` i128
//! accumulator tiles held on the stack, B rows streamed once per row
//! tile, and the row-block loop fanned out over the `tqt-rt` pool.
//!
//! **Packed operands.** Either operand may be supplied pre-packed in the
//! exact panel layout the kernel walks ([`Lhs::Packed`] /
//! [`Rhs::Packed`], produced by [`pack_lhs`] / [`pack_rhs`]). The
//! executor's plan packs every conv and dense weight matrix once at
//! build time ([`crate::plan`]), so per-call packing cost is zero and
//! the kernel reads weights with unit stride. Packing only permutes the
//! operand; every product is still accumulated in ascending-`k` order,
//! so packed and row-major calls are bit-identical.
//!
//! **Fused epilogue.** [`gemm_i64_narrow_fused`] additionally applies an
//! ordered list of [`TileStep`]s to each element while the narrowed
//! value is still in registers: requantization (with saturation
//! counting), a residual add (with wrap counting), and (capped) ReLU.
//! Each step replays the corresponding standalone kernel of
//! [`crate::plan`] per element, which is what makes graph-level fusion
//! bit-exact (`tests/fusion_parity.rs`).
//!
//! **Determinism.** Every output element is accumulated in ascending-`k`
//! order by exactly one closure invocation, and integer addition is
//! associative, so serial and parallel runs are bit-identical — including
//! the overflow *count*, which depends only on each element's exact i128
//! value. Per-block counts are merged into one [`Counter`] (a sum of
//! non-negative integers, order-independent).

use crate::lower::{narrow, LEAKY_ALPHA_FRAC};
use crate::requant::shift_round;
use tqt_rt::pool;
use tqt_rt::sync::Counter;

/// Accumulator-tile rows.
const MRB: usize = 4;
/// Accumulator-tile columns (the tile is `4×64` i128 = 4 KiB of stack).
const NCB: usize = 64;
/// Rows of C per parallel row block.
const ROWS_PER_BLOCK: usize = 16;

/// The left operand: row-major `[m, k]`, or pre-packed by [`pack_lhs`].
#[derive(Clone, Copy)]
pub enum Lhs<'a> {
    /// Row-major `a[i*k + kk]`.
    Rows(&'a [i64]),
    /// [`pack_lhs`] layout: `MRB`-tall k-major panels.
    Packed(&'a [i64]),
}

/// The right operand: row-major `[k, n]`, or pre-packed by [`pack_rhs`].
#[derive(Clone, Copy)]
pub enum Rhs<'a> {
    /// Row-major `b[kk*n + j]`.
    Rows(&'a [i64]),
    /// [`pack_rhs`] layout: `NCB`-wide k-major panels.
    Packed(&'a [i64]),
}

/// Element count of the [`pack_lhs`] buffer for an `[m, k]` operand.
pub const fn packed_lhs_len(m: usize, k: usize) -> usize {
    m.div_ceil(MRB) * MRB * k
}

/// Packs a row-major `[m, k]` left operand into `MRB`-tall k-major
/// panels: panel `p` covers rows `p*MRB..`, and element
/// `dst[p*MRB*k + kk*MRB + r] = a[(p*MRB + r)*k + kk]` (zero-padded
/// rows past `m`). This is exactly the order the kernel reads A, so a
/// packed call touches the operand with unit stride.
pub fn pack_lhs(a: &[i64], m: usize, k: usize, dst: &mut [i64]) {
    assert_eq!(a.len(), m * k, "lhs length mismatch");
    assert_eq!(dst.len(), packed_lhs_len(m, k), "packed lhs length mismatch");
    dst.fill(0);
    for p in 0..m.div_ceil(MRB) {
        let panel = &mut dst[p * MRB * k..(p + 1) * MRB * k];
        for r in 0..MRB.min(m - p * MRB) {
            let row = &a[(p * MRB + r) * k..(p * MRB + r + 1) * k];
            for (kk, &v) in row.iter().enumerate() {
                panel[kk * MRB + r] = v;
            }
        }
    }
}

/// Element count of the [`pack_rhs`] buffer for a `[k, n]` operand.
pub const fn packed_rhs_len(k: usize, n: usize) -> usize {
    n.div_ceil(NCB) * NCB * k
}

/// Packs a row-major `[k, n]` right operand into `NCB`-wide k-major
/// panels: panel `q` covers columns `q*NCB..`, and element
/// `dst[q*NCB*k + kk*NCB + j] = b[kk*n + q*NCB + j]` (zero-padded
/// columns past `n`).
pub fn pack_rhs(b: &[i64], k: usize, n: usize, dst: &mut [i64]) {
    assert_eq!(b.len(), k * n, "rhs length mismatch");
    assert_eq!(dst.len(), packed_rhs_len(k, n), "packed rhs length mismatch");
    dst.fill(0);
    for q in 0..n.div_ceil(NCB) {
        let jc = q * NCB;
        let nc = NCB.min(n - jc);
        let panel = &mut dst[q * NCB * k..(q + 1) * NCB * k];
        for kk in 0..k {
            panel[kk * NCB..kk * NCB + nc].copy_from_slice(&b[kk * n + jc..kk * n + jc + nc]);
        }
    }
}

/// One register-resident epilogue step, applied per element after the
/// narrowed accumulator (plus biases) is formed. Each variant replays
/// the corresponding standalone executor kernel bit-for-bit, including
/// its saturation / wrap counting — the fused-graph parity contract.
#[derive(Clone, Copy)]
pub enum TileStep<'a> {
    /// Round-half-even shift by `shift` then clamp to `[qmin, qmax]`,
    /// counting clamped elements (the `Requant` node kernel).
    Requant { shift: i32, qmin: i64, qmax: i64 },
    /// Exact i128 add of the same-index element of a residual operand,
    /// narrowed with wrap counting (the `Add` node kernel). The slice is
    /// indexed by the element's position in the full `[m, n]` output.
    AddResidual(&'a [i64]),
    /// `max(0)` then `min(cap)` (the `Relu` node kernel; pass
    /// `i64::MAX` for an uncapped ReLU).
    ReluCap(i64),
    /// `max(v << LEAKY_ALPHA_FRAC, v * alpha_q)` narrowed with wrap
    /// counting (the `LeakyRelu` node kernel; the element moves to the
    /// `frac + LEAKY_ALPHA_FRAC` grid).
    Leaky(i64),
}

/// `out[m,n] = narrow(a[m,k] · b[k,n] + bias)` with exact i128
/// accumulation per element; values escaping the i64 range are counted
/// into `overflowed` and stored wrapped (the reference-engine contract).
/// `bias_row` adds one value per output row (conv channel bias),
/// `bias_col` one per output column (dense feature bias).
///
/// # Panics
///
/// Panics if slice lengths disagree with the dimensions.
#[allow(clippy::too_many_arguments)]
pub fn gemm_i64_narrow(
    m: usize,
    n: usize,
    k: usize,
    a: &[i64],
    b: &[i64],
    bias_row: Option<&[i64]>,
    bias_col: Option<&[i64]>,
    out: &mut [i64],
    overflowed: &Counter,
    parallel: bool,
) {
    let saturated = Counter::new();
    gemm_i64_narrow_fused(
        m,
        n,
        k,
        Lhs::Rows(a),
        Rhs::Rows(b),
        bias_row,
        bias_col,
        &[],
        out,
        overflowed,
        &saturated,
        parallel,
    );
    debug_assert_eq!(saturated.get(), 0, "no epilogue steps, nothing saturates");
}

/// [`gemm_i64_narrow`] generalized over packed operands and a fused
/// per-element epilogue. Clamped elements of `Requant` steps are counted
/// into `saturated`; wrapped narrows (the accumulator itself and any
/// `AddResidual` step) into `overflowed`.
///
/// # Panics
///
/// Panics if operand lengths disagree with the dimensions (packed
/// operands must have exactly [`packed_lhs_len`] / [`packed_rhs_len`]
/// elements).
#[allow(clippy::too_many_arguments)]
pub fn gemm_i64_narrow_fused(
    m: usize,
    n: usize,
    k: usize,
    a: Lhs,
    b: Rhs,
    bias_row: Option<&[i64]>,
    bias_col: Option<&[i64]>,
    epi: &[TileStep],
    out: &mut [i64],
    overflowed: &Counter,
    saturated: &Counter,
    parallel: bool,
) {
    match a {
        Lhs::Rows(s) => assert_eq!(s.len(), m * k, "lhs length mismatch"),
        Lhs::Packed(s) => assert_eq!(s.len(), packed_lhs_len(m, k), "packed lhs length mismatch"),
    }
    match b {
        Rhs::Rows(s) => assert_eq!(s.len(), k * n, "rhs length mismatch"),
        Rhs::Packed(s) => assert_eq!(s.len(), packed_rhs_len(k, n), "packed rhs length mismatch"),
    }
    assert_eq!(out.len(), m * n, "output length mismatch");
    if let Some(br) = bias_row {
        assert_eq!(br.len(), m, "row-bias length mismatch");
    }
    if let Some(bc) = bias_col {
        assert_eq!(bc.len(), n, "column-bias length mismatch");
    }
    for step in epi {
        if let TileStep::AddResidual(res) = step {
            assert_eq!(res.len(), m * n, "residual length mismatch");
        }
    }
    if m == 0 || n == 0 {
        return;
    }
    let run_block = |row0: usize, ochunk: &mut [i64]| {
        let rows = ochunk.len() / n;
        let mut local_ovf = 0u64;
        let mut local_sat = 0u64;
        for jc in (0..n).step_by(NCB) {
            let nc = NCB.min(n - jc);
            // Both layouts reduce to `base + kk*stride` for the nc-wide
            // B row slice of this column panel.
            let (bbuf, bbase, bstride) = match b {
                Rhs::Rows(s) => (s, jc, n),
                Rhs::Packed(s) => (s, (jc / NCB) * NCB * k, NCB),
            };
            for rb in (0..rows).step_by(MRB) {
                let mr = MRB.min(rows - rb);
                // `row0` is a multiple of ROWS_PER_BLOCK and `rb` of MRB,
                // so `row0 + rb` always lands on a packed-panel boundary.
                let (abuf, abase, astride) = match a {
                    Lhs::Rows(s) => (s, (row0 + rb) * k, k),
                    Lhs::Packed(s) => (s, (row0 + rb) / MRB * MRB * k, MRB),
                };
                let mut acc = [[0i128; NCB]; MRB];
                for kk in 0..k {
                    let brow = &bbuf[bbase + kk * bstride..bbase + kk * bstride + nc];
                    for (r, arow) in acc.iter_mut().enumerate().take(mr) {
                        let av = match a {
                            Lhs::Rows(_) => abuf[abase + r * astride + kk],
                            Lhs::Packed(_) => abuf[abase + kk * astride + r],
                        };
                        if av == 0 {
                            continue;
                        }
                        let av = i128::from(av);
                        for (sum, &bv) in arow.iter_mut().zip(brow) {
                            *sum += av * i128::from(bv);
                        }
                    }
                }
                for (r, arow) in acc.iter().enumerate().take(mr) {
                    let gi = row0 + rb + r;
                    let orow = (rb + r) * n + jc;
                    for (j, slot) in ochunk[orow..orow + nc].iter_mut().enumerate() {
                        let mut wide = arow[j];
                        if let Some(br) = bias_row {
                            wide += i128::from(br[gi]);
                        }
                        if let Some(bc) = bias_col {
                            wide += i128::from(bc[jc + j]);
                        }
                        let mut v = narrow(wide, &mut local_ovf);
                        for step in epi {
                            match *step {
                                TileStep::Requant { shift, qmin, qmax } => {
                                    let r = shift_round(v, shift);
                                    let c = r.clamp(qmin, qmax);
                                    if c != r {
                                        local_sat += 1;
                                    }
                                    v = c;
                                }
                                TileStep::AddResidual(res) => {
                                    v = narrow(
                                        i128::from(v) + i128::from(res[gi * n + jc + j]),
                                        &mut local_ovf,
                                    );
                                }
                                TileStep::ReluCap(cap) => {
                                    v = v.max(0).min(cap);
                                }
                                TileStep::Leaky(alpha) => {
                                    let wide = (i128::from(v) << LEAKY_ALPHA_FRAC)
                                        .max(i128::from(v) * i128::from(alpha));
                                    v = narrow(wide, &mut local_ovf);
                                }
                            }
                        }
                        *slot = v;
                    }
                }
            }
        }
        overflowed.add(local_ovf);
        saturated.add(local_sat);
    };
    if parallel && m > ROWS_PER_BLOCK && pool::threads() > 1 {
        pool::par_chunks_mut(out, ROWS_PER_BLOCK * n, |bi, chunk| {
            run_block(bi * ROWS_PER_BLOCK, chunk)
        });
    } else {
        for (bi, chunk) in out.chunks_mut(ROWS_PER_BLOCK * n).enumerate() {
            run_block(bi * ROWS_PER_BLOCK, chunk);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oracle(m: usize, n: usize, k: usize, a: &[i64], b: &[i64]) -> (Vec<i64>, u64) {
        let mut out = vec![0i64; m * n];
        let mut ovf = 0u64;
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0i128;
                for kk in 0..k {
                    acc += i128::from(a[i * k + kk]) * i128::from(b[kk * n + j]);
                }
                out[i * n + j] = narrow(acc, &mut ovf);
            }
        }
        (out, ovf)
    }

    #[test]
    fn matches_oracle_including_ragged_tiles() {
        for &(m, n, k) in &[(1, 1, 1), (5, 67, 9), (33, 130, 17), (4, 3, 0)] {
            let a: Vec<i64> = (0..m * k).map(|v| (v as i64 * 37 % 1001) - 500).collect();
            let b: Vec<i64> = (0..k * n).map(|v| (v as i64 * 53 % 997) - 498).collect();
            let (want, _) = oracle(m, n, k, &a, &b);
            let mut got = vec![0i64; m * n];
            let ovf = Counter::new();
            gemm_i64_narrow(m, n, k, &a, &b, None, None, &mut got, &ovf, false);
            assert_eq!(want, got, "shape ({m},{n},{k})");
            assert_eq!(ovf.get(), 0);
        }
    }

    #[test]
    fn packed_operands_match_row_major() {
        for &(m, n, k) in &[(1, 1, 3), (5, 67, 9), (33, 130, 17), (16, 64, 8)] {
            let a: Vec<i64> = (0..m * k).map(|v| (v as i64 * 41 % 811) - 400).collect();
            let b: Vec<i64> = (0..k * n).map(|v| (v as i64 * 59 % 773) - 380).collect();
            let mut want = vec![0i64; m * n];
            let ovf = Counter::new();
            gemm_i64_narrow(m, n, k, &a, &b, None, None, &mut want, &ovf, false);
            let mut ap = vec![0i64; packed_lhs_len(m, k)];
            pack_lhs(&a, m, k, &mut ap);
            let mut bp = vec![0i64; packed_rhs_len(k, n)];
            pack_rhs(&b, k, n, &mut bp);
            for (la, lb) in [
                (Lhs::Packed(&ap[..]), Rhs::Rows(&b[..])),
                (Lhs::Rows(&a[..]), Rhs::Packed(&bp[..])),
                (Lhs::Packed(&ap[..]), Rhs::Packed(&bp[..])),
            ] {
                let mut got = vec![0i64; m * n];
                let (ovf, sat) = (Counter::new(), Counter::new());
                gemm_i64_narrow_fused(
                    m, n, k, la, lb, None, None, &[], &mut got, &ovf, &sat, false,
                );
                assert_eq!(want, got, "shape ({m},{n},{k})");
            }
        }
    }

    #[test]
    fn counts_overflow_and_wraps() {
        // 2 * (2^62 * 2) = 2^64 wraps to 0 in i64 and must be counted.
        let a = vec![1i64 << 62, 1 << 62];
        let b = vec![2i64, 2];
        let mut got = vec![0i64; 1];
        let ovf = Counter::new();
        gemm_i64_narrow(1, 1, 2, &a, &b, None, None, &mut got, &ovf, false);
        assert_eq!(got[0], 0);
        assert_eq!(ovf.get(), 1);
    }

    #[test]
    fn biases_apply_before_narrow() {
        let a = vec![2i64, 3];
        let b = vec![10i64, 100, 1000, 10000];
        // [2,3] @ [[10,100],[1000,10000]] = [3020, 30200]
        let mut got = vec![0i64; 2];
        let ovf = Counter::new();
        gemm_i64_narrow(
            1,
            2,
            2,
            &a,
            &b,
            Some(&[7]),
            Some(&[1, 2]),
            &mut got,
            &ovf,
            false,
        );
        assert_eq!(got, vec![3020 + 7 + 1, 30200 + 7 + 2]);
    }

    #[test]
    fn epilogue_steps_replay_standalone_kernels() {
        // 2x2 @ 2x2 with a requant (shift 2, clamp to i8), a residual
        // add, and a capped relu — checked against a hand-folded oracle.
        let a = vec![3i64, -1, 2, 5];
        let b = vec![10i64, 20, 30, 40];
        let res = vec![1i64, -200, 3, 4];
        let mut got = vec![0i64; 4];
        let (ovf, sat) = (Counter::new(), Counter::new());
        let epi = [
            TileStep::Requant {
                shift: 2,
                qmin: -128,
                qmax: 127,
            },
            TileStep::AddResidual(&res),
            TileStep::ReluCap(30),
        ];
        gemm_i64_narrow_fused(
            2,
            2,
            2,
            Lhs::Rows(&a),
            Rhs::Rows(&b),
            None,
            None,
            &epi,
            &mut got,
            &ovf,
            &sat,
            false,
        );
        // raw = [[0, 20], [170, 240]]; >>2 half-even = [0, 5, 42, 60]
        // (170/4 = 42.5 rounds to even); none clamp in i8; +res =
        // [1, -195, 45, 64]; relu cap 30 = [1, 0, 30, 30].
        assert_eq!(got, vec![1, 0, 30, 30]);
        assert_eq!(sat.get(), 0);
        assert_eq!(ovf.get(), 0);
        // Same, but with a clamp-visible narrow format.
        let mut got = vec![0i64; 4];
        let (ovf, sat) = (Counter::new(), Counter::new());
        let epi = [TileStep::Requant {
            shift: 2,
            qmin: -16,
            qmax: 15,
        }];
        gemm_i64_narrow_fused(
            2,
            2,
            2,
            Lhs::Rows(&a),
            Rhs::Rows(&b),
            None,
            None,
            &epi,
            &mut got,
            &ovf,
            &sat,
            false,
        );
        assert_eq!(got, vec![0, 5, 15, 15]);
        assert_eq!(sat.get(), 2, "42 and 60 clamp to 15");
    }
}
