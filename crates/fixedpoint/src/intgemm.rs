//! Blocked, pool-parallel `i64 × i64` GEMM with **exact i128
//! accumulation** — the compute core of the reference [`crate::lower`]
//! engine's conv/dense fast path.
//!
//! The reference engine stores activations as `i64` and must count, per
//! output element, whether the exact accumulator escaped the i64 range
//! (`narrow` semantics: truncation equals two's-complement wrapping, so
//! the stored bits match a pure-i64 engine while the count feeds the
//! `sanitize` feature and the tqt-verify containment check). That rules
//! out the narrow `i8` deployment kernel here; instead this is the same
//! register-blocking idea applied to wide integers: `MRB×NCB` i128
//! accumulator tiles held on the stack, B rows streamed once per row
//! tile, and the row-block loop fanned out over the `tqt-rt` pool.
//!
//! **Determinism.** Every output element is accumulated in ascending-`k`
//! order by exactly one closure invocation, and integer addition is
//! associative, so serial and parallel runs are bit-identical — including
//! the overflow *count*, which depends only on each element's exact i128
//! value. Per-block counts are merged into one [`Counter`] (a sum of
//! non-negative integers, order-independent).

use crate::lower::narrow;
use tqt_rt::pool;
use tqt_rt::sync::Counter;

/// Accumulator-tile rows.
const MRB: usize = 4;
/// Accumulator-tile columns (the tile is `4×64` i128 = 4 KiB of stack).
const NCB: usize = 64;
/// Rows of C per parallel row block.
const ROWS_PER_BLOCK: usize = 16;

/// `out[m,n] = narrow(a[m,k] · b[k,n] + bias)` with exact i128
/// accumulation per element; values escaping the i64 range are counted
/// into `overflowed` and stored wrapped (the reference-engine contract).
/// `bias_row` adds one value per output row (conv channel bias),
/// `bias_col` one per output column (dense feature bias).
///
/// # Panics
///
/// Panics if slice lengths disagree with the dimensions.
#[allow(clippy::too_many_arguments)]
pub fn gemm_i64_narrow(
    m: usize,
    n: usize,
    k: usize,
    a: &[i64],
    b: &[i64],
    bias_row: Option<&[i64]>,
    bias_col: Option<&[i64]>,
    out: &mut [i64],
    overflowed: &Counter,
    parallel: bool,
) {
    assert_eq!(a.len(), m * k, "lhs length mismatch");
    assert_eq!(b.len(), k * n, "rhs length mismatch");
    assert_eq!(out.len(), m * n, "output length mismatch");
    if let Some(br) = bias_row {
        assert_eq!(br.len(), m, "row-bias length mismatch");
    }
    if let Some(bc) = bias_col {
        assert_eq!(bc.len(), n, "column-bias length mismatch");
    }
    if m == 0 || n == 0 {
        return;
    }
    let run_block = |row0: usize, ochunk: &mut [i64]| {
        let rows = ochunk.len() / n;
        let mut local_ovf = 0u64;
        for jc in (0..n).step_by(NCB) {
            let nc = NCB.min(n - jc);
            for rb in (0..rows).step_by(MRB) {
                let mr = MRB.min(rows - rb);
                let mut acc = [[0i128; NCB]; MRB];
                for kk in 0..k {
                    let brow = &b[kk * n + jc..kk * n + jc + nc];
                    for (r, arow) in acc.iter_mut().enumerate().take(mr) {
                        let av = a[(row0 + rb + r) * k + kk];
                        if av == 0 {
                            continue;
                        }
                        let av = i128::from(av);
                        for (sum, &bv) in arow.iter_mut().zip(brow) {
                            *sum += av * i128::from(bv);
                        }
                    }
                }
                for (r, arow) in acc.iter().enumerate().take(mr) {
                    let gi = row0 + rb + r;
                    let orow = (rb + r) * n + jc;
                    for (j, slot) in ochunk[orow..orow + nc].iter_mut().enumerate() {
                        let mut v = arow[j];
                        if let Some(br) = bias_row {
                            v += i128::from(br[gi]);
                        }
                        if let Some(bc) = bias_col {
                            v += i128::from(bc[jc + j]);
                        }
                        *slot = narrow(v, &mut local_ovf);
                    }
                }
            }
        }
        overflowed.add(local_ovf);
    };
    if parallel && m > ROWS_PER_BLOCK && pool::threads() > 1 {
        pool::par_chunks_mut(out, ROWS_PER_BLOCK * n, |bi, chunk| {
            run_block(bi * ROWS_PER_BLOCK, chunk)
        });
    } else {
        for (bi, chunk) in out.chunks_mut(ROWS_PER_BLOCK * n).enumerate() {
            run_block(bi * ROWS_PER_BLOCK, chunk);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oracle(m: usize, n: usize, k: usize, a: &[i64], b: &[i64]) -> (Vec<i64>, u64) {
        let mut out = vec![0i64; m * n];
        let mut ovf = 0u64;
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0i128;
                for kk in 0..k {
                    acc += i128::from(a[i * k + kk]) * i128::from(b[kk * n + j]);
                }
                out[i * n + j] = narrow(acc, &mut ovf);
            }
        }
        (out, ovf)
    }

    #[test]
    fn matches_oracle_including_ragged_tiles() {
        for &(m, n, k) in &[(1, 1, 1), (5, 67, 9), (33, 130, 17), (4, 3, 0)] {
            let a: Vec<i64> = (0..m * k).map(|v| (v as i64 * 37 % 1001) - 500).collect();
            let b: Vec<i64> = (0..k * n).map(|v| (v as i64 * 53 % 997) - 498).collect();
            let (want, _) = oracle(m, n, k, &a, &b);
            let mut got = vec![0i64; m * n];
            let ovf = Counter::new();
            gemm_i64_narrow(m, n, k, &a, &b, None, None, &mut got, &ovf, false);
            assert_eq!(want, got, "shape ({m},{n},{k})");
            assert_eq!(ovf.get(), 0);
        }
    }

    #[test]
    fn counts_overflow_and_wraps() {
        // 2 * (2^62 * 2) = 2^64 wraps to 0 in i64 and must be counted.
        let a = vec![1i64 << 62, 1 << 62];
        let b = vec![2i64, 2];
        let mut got = vec![0i64; 1];
        let ovf = Counter::new();
        gemm_i64_narrow(1, 1, 2, &a, &b, None, None, &mut got, &ovf, false);
        assert_eq!(got[0], 0);
        assert_eq!(ovf.get(), 1);
    }

    #[test]
    fn biases_apply_before_narrow() {
        let a = vec![2i64, 3];
        let b = vec![10i64, 100, 1000, 10000];
        // [2,3] @ [[10,100],[1000,10000]] = [3020, 30200]
        let mut got = vec![0i64; 2];
        let ovf = Counter::new();
        gemm_i64_narrow(
            1,
            2,
            2,
            &a,
            &b,
            Some(&[7]),
            Some(&[1, 2]),
            &mut got,
            &ovf,
            false,
        );
        assert_eq!(got, vec![3020 + 7 + 1, 30200 + 7 + 2]);
    }
}
