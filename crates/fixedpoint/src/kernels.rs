//! Narrow integer kernels for the Appendix A cost study: an `i8 × i8 → i32`
//! matrix multiply with three output requantization schemes (power-of-2
//! shift, normalized fixed-point multiplier, affine with zero-points).
//! These are the kernels the Criterion benches time against each other;
//! the reference bit-accuracy engine lives in [`crate::lower`](mod@crate::lower).

use crate::requant::{requant_affine, requant_pow2, requant_real, NormalizedMultiplier};

/// Integer matmul `c[m,n] = Σ_k a[m,k] * b[k,n]` with `i32` accumulators.
///
/// # Panics
///
/// Panics if slice lengths disagree with the dimensions.
pub fn matmul_i8_acc32(a: &[i8], b: &[i8], m: usize, k: usize, n: usize) -> Vec<i32> {
    assert_eq!(a.len(), m * k, "lhs length mismatch");
    assert_eq!(b.len(), k * n, "rhs length mismatch");
    let mut out = vec![0i32; m * n];
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let orow = &mut out[i * n..(i + 1) * n];
        for (kk, &av) in arow.iter().enumerate() {
            if av == 0 {
                continue;
            }
            let av = av as i32;
            let brow = &b[kk * n..(kk + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += av * bv as i32;
            }
        }
    }
    out
}

/// Requantizes an `i32` accumulator buffer to `i8` by power-of-2 shift
/// (the TQT deployment path, eq. 16).
pub fn requant_buffer_pow2(acc: &[i32], shift: i32) -> Vec<i8> {
    acc.iter()
        .map(|&v| requant_pow2(v as i64, shift, -128, 127) as i8)
        .collect()
}

/// Requantizes by normalized fixed-point multiplier (eq. 15).
pub fn requant_buffer_real(acc: &[i32], m: NormalizedMultiplier) -> Vec<i8> {
    acc.iter()
        .map(|&v| requant_real(v as i64, m, -128, 127) as i8)
        .collect()
}

/// Requantizes an affine accumulator buffer (eq. 13): applies the
/// per-row/per-column zero-point cross-term correction, then the
/// fixed-point multiplier and the output zero-point. `a_sums[i]` is
/// `Σ_k a[i,k]`, `b_sums[j]` is `Σ_k b[k,j]`.
#[allow(clippy::too_many_arguments)]
pub fn requant_buffer_affine(
    acc: &[i32],
    a_sums: &[i32],
    b_sums: &[i32],
    k: usize,
    z1: i32,
    z2: i32,
    z3: i32,
    m: NormalizedMultiplier,
) -> Vec<i8> {
    let n = b_sums.len();
    assert_eq!(acc.len(), a_sums.len() * n, "accumulator length mismatch");
    let mut out = Vec::with_capacity(acc.len());
    for (i, &asum) in a_sums.iter().enumerate() {
        for (j, &bsum) in b_sums.iter().enumerate() {
            out.push(requant_affine(
                acc[i * n + j] as i64,
                asum as i64,
                bsum as i64,
                k as i64,
                z1 as i64,
                z2 as i64,
                z3 as i64,
                m,
                -128,
                127,
            ) as i8);
        }
    }
    out
}

/// Row sums of an `[m, k]` i8 matrix (affine correction input).
pub fn row_sums(a: &[i8], m: usize, k: usize) -> Vec<i32> {
    assert_eq!(a.len(), m * k);
    (0..m)
        .map(|i| a[i * k..(i + 1) * k].iter().map(|&v| v as i32).sum())
        .collect()
}

/// Column sums of a `[k, n]` i8 matrix (affine correction input).
pub fn col_sums(b: &[i8], k: usize, n: usize) -> Vec<i32> {
    assert_eq!(b.len(), k * n);
    let mut out = vec![0i32; n];
    for kk in 0..k {
        for (o, &v) in out.iter_mut().zip(&b[kk * n..(kk + 1) * n]) {
            *o += v as i32;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_matmul_matches_float() {
        let a: Vec<i8> = (0..6).map(|v| v - 3).collect();
        let b: Vec<i8> = (0..12).map(|v| 2 * v - 11).collect();
        let c = matmul_i8_acc32(&a, &b, 2, 3, 4);
        for i in 0..2 {
            for j in 0..4 {
                let mut acc = 0i32;
                for kk in 0..3 {
                    acc += a[i * 3 + kk] as i32 * b[kk * 4 + j] as i32;
                }
                assert_eq!(c[i * 4 + j], acc);
            }
        }
    }

    #[test]
    fn affine_equals_symmetric_reference() {
        // The affine path with explicit zero-points must equal a direct
        // computation on de-zero-pointed operands.
        let m = 3;
        let k = 5;
        let n = 4;
        let a: Vec<i8> = (0..15).map(|v| (v * 7 % 23) as i8 - 11).collect();
        let b: Vec<i8> = (0..20).map(|v| (v * 5 % 19) as i8 - 9).collect();
        let (z1, z2, z3) = (3i32, -2, 1);
        let mult = NormalizedMultiplier::from_f64(0.017);
        let acc = matmul_i8_acc32(&a, &b, m, k, n);
        let got = requant_buffer_affine(
            &acc,
            &row_sums(&a, m, k),
            &col_sums(&b, k, n),
            k,
            z1,
            z2,
            z3,
            mult,
        );
        // Reference: subtract zero-points first.
        let a0: Vec<i8> = a.iter().map(|&v| (v as i32 - z1) as i8).collect();
        let b0: Vec<i8> = b.iter().map(|&v| (v as i32 - z2) as i8).collect();
        let acc0 = matmul_i8_acc32(&a0, &b0, m, k, n);
        let expected: Vec<i8> = acc0
            .iter()
            .map(|&v| {
                crate::requant::saturate(
                    z3 as i64 + crate::requant::shift_round(v as i64 * mult.s0_q15 as i64, 15 + mult.n),
                    -128,
                    127,
                ) as i8
            })
            .collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn pow2_and_real_agree_on_pow2_multiplier() {
        let acc: Vec<i32> = (-50..50).map(|v| v * 997).collect();
        let shifted = requant_buffer_pow2(&acc, 3);
        let real = requant_buffer_real(&acc, NormalizedMultiplier::from_f64(0.125));
        assert_eq!(shifted, real);
    }

    #[test]
    fn sums_correct() {
        let a: Vec<i8> = vec![1, 2, 3, 4, 5, 6];
        assert_eq!(row_sums(&a, 2, 3), vec![6, 15]);
        assert_eq!(col_sums(&a, 2, 3), vec![5, 7, 9]);
    }
}
