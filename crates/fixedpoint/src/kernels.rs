//! Narrow integer kernels for the Appendix A cost study: an `i8 × i8 → i32`
//! matrix multiply with three output requantization schemes (power-of-2
//! shift, normalized fixed-point multiplier, affine with zero-points).
//!
//! The naive triple-loop matmul here is the **oracle and baseline**: the
//! blocked, packed, SIMD-dispatched production kernel in
//! [`crate::gemm_i8`] is property-tested against it and benchmarked
//! relative to it. The `*_into` variants write into caller-provided
//! buffers (no per-call allocation — callers hold scratch or reuse
//! outputs across iterations); the allocating forms are thin wrappers
//! kept for tests and one-shot use.

use crate::requant::{requant_affine, requant_pow2, requant_real, NormalizedMultiplier};

/// Integer matmul `c[m,n] = Σ_k a[m,k] * b[k,n]` with `i32` accumulators,
/// written into `out` (fully overwritten).
///
/// # Panics
///
/// Panics if slice lengths disagree with the dimensions.
pub fn matmul_i8_acc32_into(a: &[i8], b: &[i8], m: usize, k: usize, n: usize, out: &mut [i32]) {
    assert_eq!(a.len(), m * k, "lhs length mismatch");
    assert_eq!(b.len(), k * n, "rhs length mismatch");
    assert_eq!(out.len(), m * n, "output length mismatch");
    out.fill(0);
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let orow = &mut out[i * n..(i + 1) * n];
        for (kk, &av) in arow.iter().enumerate() {
            if av == 0 {
                continue;
            }
            let av = av as i32;
            let brow = &b[kk * n..(kk + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += av * bv as i32;
            }
        }
    }
}

/// Allocating wrapper around [`matmul_i8_acc32_into`].
pub fn matmul_i8_acc32(a: &[i8], b: &[i8], m: usize, k: usize, n: usize) -> Vec<i32> {
    let mut out = vec![0i32; m * n];
    matmul_i8_acc32_into(a, b, m, k, n, &mut out);
    out
}

/// Requantizes an `i32` accumulator buffer to `i8` by power-of-2 shift
/// (the TQT deployment path, eq. 16), into `out`.
///
/// # Panics
///
/// Panics if `out.len() != acc.len()`.
pub fn requant_buffer_pow2_into(acc: &[i32], shift: i32, out: &mut [i8]) {
    assert_eq!(acc.len(), out.len(), "output length mismatch");
    for (o, &v) in out.iter_mut().zip(acc) {
        *o = requant_pow2(v as i64, shift, -128, 127) as i8;
    }
}

/// Allocating wrapper around [`requant_buffer_pow2_into`].
pub fn requant_buffer_pow2(acc: &[i32], shift: i32) -> Vec<i8> {
    let mut out = vec![0i8; acc.len()];
    requant_buffer_pow2_into(acc, shift, &mut out);
    out
}

/// Requantizes by normalized fixed-point multiplier (eq. 15), into `out`.
///
/// # Panics
///
/// Panics if `out.len() != acc.len()`.
pub fn requant_buffer_real_into(acc: &[i32], m: NormalizedMultiplier, out: &mut [i8]) {
    assert_eq!(acc.len(), out.len(), "output length mismatch");
    for (o, &v) in out.iter_mut().zip(acc) {
        *o = requant_real(v as i64, m, -128, 127) as i8;
    }
}

/// Allocating wrapper around [`requant_buffer_real_into`].
pub fn requant_buffer_real(acc: &[i32], m: NormalizedMultiplier) -> Vec<i8> {
    let mut out = vec![0i8; acc.len()];
    requant_buffer_real_into(acc, m, &mut out);
    out
}

/// Requantizes an affine accumulator buffer (eq. 13) into `out`: applies
/// the per-row/per-column zero-point cross-term correction, then the
/// fixed-point multiplier and the output zero-point. `a_sums[i]` is
/// `Σ_k a[i,k]`, `b_sums[j]` is `Σ_k b[k,j]`.
///
/// # Panics
///
/// Panics if buffer lengths disagree.
#[allow(clippy::too_many_arguments)]
pub fn requant_buffer_affine_into(
    acc: &[i32],
    a_sums: &[i32],
    b_sums: &[i32],
    k: usize,
    z1: i32,
    z2: i32,
    z3: i32,
    m: NormalizedMultiplier,
    out: &mut [i8],
) {
    let n = b_sums.len();
    assert_eq!(acc.len(), a_sums.len() * n, "accumulator length mismatch");
    assert_eq!(out.len(), acc.len(), "output length mismatch");
    for (i, &asum) in a_sums.iter().enumerate() {
        for (j, &bsum) in b_sums.iter().enumerate() {
            out[i * n + j] = requant_affine(
                acc[i * n + j] as i64,
                asum as i64,
                bsum as i64,
                k as i64,
                z1 as i64,
                z2 as i64,
                z3 as i64,
                m,
                -128,
                127,
            ) as i8;
        }
    }
}

/// Allocating wrapper around [`requant_buffer_affine_into`].
#[allow(clippy::too_many_arguments)]
pub fn requant_buffer_affine(
    acc: &[i32],
    a_sums: &[i32],
    b_sums: &[i32],
    k: usize,
    z1: i32,
    z2: i32,
    z3: i32,
    m: NormalizedMultiplier,
) -> Vec<i8> {
    let mut out = vec![0i8; acc.len()];
    requant_buffer_affine_into(acc, a_sums, b_sums, k, z1, z2, z3, m, &mut out);
    out
}

/// Row sums of an `[m, k]` i8 matrix (affine correction input), into
/// `out` (one per row).
///
/// # Panics
///
/// Panics if buffer lengths disagree.
pub fn row_sums_into(a: &[i8], m: usize, k: usize, out: &mut [i32]) {
    assert_eq!(a.len(), m * k);
    assert_eq!(out.len(), m, "output length mismatch");
    for (o, row) in out.iter_mut().zip(a.chunks_exact(k)) {
        *o = row.iter().map(|&v| v as i32).sum();
    }
}

/// Allocating wrapper around [`row_sums_into`].
pub fn row_sums(a: &[i8], m: usize, k: usize) -> Vec<i32> {
    let mut out = vec![0i32; m];
    row_sums_into(a, m, k, &mut out);
    out
}

/// Column sums of a `[k, n]` i8 matrix (affine correction input), into
/// `out` (one per column, fully overwritten).
///
/// # Panics
///
/// Panics if buffer lengths disagree.
pub fn col_sums_into(b: &[i8], k: usize, n: usize, out: &mut [i32]) {
    assert_eq!(b.len(), k * n);
    assert_eq!(out.len(), n, "output length mismatch");
    out.fill(0);
    for kk in 0..k {
        for (o, &v) in out.iter_mut().zip(&b[kk * n..(kk + 1) * n]) {
            *o += v as i32;
        }
    }
}

/// Allocating wrapper around [`col_sums_into`].
pub fn col_sums(b: &[i8], k: usize, n: usize) -> Vec<i32> {
    let mut out = vec![0i32; n];
    col_sums_into(b, k, n, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_matmul_matches_float() {
        let a: Vec<i8> = (0..6).map(|v| v - 3).collect();
        let b: Vec<i8> = (0..12).map(|v| 2 * v - 11).collect();
        let c = matmul_i8_acc32(&a, &b, 2, 3, 4);
        for i in 0..2 {
            for j in 0..4 {
                let mut acc = 0i32;
                for kk in 0..3 {
                    acc += a[i * 3 + kk] as i32 * b[kk * 4 + j] as i32;
                }
                assert_eq!(c[i * 4 + j], acc);
            }
        }
    }

    #[test]
    fn into_variants_overwrite_stale_buffers() {
        let a: Vec<i8> = (0..6).map(|v| v - 3).collect();
        let b: Vec<i8> = (0..12).map(|v| 2 * v - 11).collect();
        let mut acc = vec![i32::MAX; 8];
        matmul_i8_acc32_into(&a, &b, 2, 3, 4, &mut acc);
        assert_eq!(acc, matmul_i8_acc32(&a, &b, 2, 3, 4));
        let mut q = vec![77i8; 8];
        requant_buffer_pow2_into(&acc, 2, &mut q);
        assert_eq!(q, requant_buffer_pow2(&acc, 2));
        let mut cs = vec![i32::MIN; 4];
        col_sums_into(&b, 3, 4, &mut cs);
        assert_eq!(cs, col_sums(&b, 3, 4));
        let mut rs = vec![i32::MIN; 2];
        row_sums_into(&a, 2, 3, &mut rs);
        assert_eq!(rs, row_sums(&a, 2, 3));
    }

    #[test]
    fn affine_equals_symmetric_reference() {
        // The affine path with explicit zero-points must equal a direct
        // computation on de-zero-pointed operands.
        let m = 3;
        let k = 5;
        let n = 4;
        let a: Vec<i8> = (0..15).map(|v| (v * 7 % 23) as i8 - 11).collect();
        let b: Vec<i8> = (0..20).map(|v| (v * 5 % 19) as i8 - 9).collect();
        let (z1, z2, z3) = (3i32, -2, 1);
        let mult = NormalizedMultiplier::from_f64(0.017);
        let acc = matmul_i8_acc32(&a, &b, m, k, n);
        let got = requant_buffer_affine(
            &acc,
            &row_sums(&a, m, k),
            &col_sums(&b, k, n),
            k,
            z1,
            z2,
            z3,
            mult,
        );
        // Reference: subtract zero-points first.
        let a0: Vec<i8> = a.iter().map(|&v| (v as i32 - z1) as i8).collect();
        let b0: Vec<i8> = b.iter().map(|&v| (v as i32 - z2) as i8).collect();
        let acc0 = matmul_i8_acc32(&a0, &b0, m, k, n);
        let expected: Vec<i8> = acc0
            .iter()
            .map(|&v| {
                crate::requant::saturate(
                    z3 as i64 + crate::requant::shift_round(v as i64 * mult.s0_q15 as i64, 15 + mult.n),
                    -128,
                    127,
                ) as i8
            })
            .collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn pow2_and_real_agree_on_pow2_multiplier() {
        let acc: Vec<i32> = (-50..50).map(|v| v * 997).collect();
        let shifted = requant_buffer_pow2(&acc, 3);
        let real = requant_buffer_real(&acc, NormalizedMultiplier::from_f64(0.125));
        assert_eq!(shifted, real);
    }

    #[test]
    fn sums_correct() {
        let a: Vec<i8> = vec![1, 2, 3, 4, 5, 6];
        assert_eq!(row_sums(&a, 2, 3), vec![6, 15]);
        assert_eq!(col_sums(&a, 2, 3), vec![5, 7, 9]);
    }
}
