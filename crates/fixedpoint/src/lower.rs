//! Lowering a quantized float graph to an integer-only graph, and baking
//! the float graph into its "hardware inference graph" form (Section 4.2):
//! quantized weights written back, biases snapped to the accumulator grid,
//! ReLU6 caps and leaky-ReLU slopes snapped to fixed-point constants.
//!
//! After `lower`, the float graph and the [`IntGraph`] compute the *same
//! rounding at the same places*, so their outputs agree bit-exactly — the
//! property the paper reports between its CPU inference graphs and the
//! FPGA ("bit-accurate to our fixed-point implementation").
//!
//! Deviations from the paper's FPGA target, by design: accumulators are
//! modeled as wide (i64) rather than 16-bit (we target DSP-style wide MACs;
//! the paper's `q'16` stages are kept only where they change semantics,
//! i.e. before leaky ReLU), and leaky-ReLU's α is quantized to Q7 rather
//! than 16 bits so the float emulation stays exact in f32 arithmetic.

use crate::qtensor::{QFormat, QTensor};
use crate::requant::shift_round;
use tqt_graph::{Graph, Op};
use tqt_nn::{ParamKind, Relu};
use tqt_quant::round_half_even;
use tqt_tensor::conv::Conv2dGeom;
use tqt_tensor::Tensor;

/// Number of fractional bits used for the fixed-point leaky-ReLU slope.
pub const LEAKY_ALPHA_FRAC: i32 = 7;

/// An integer-only operation.
#[derive(Debug)]
pub enum IntOp {
    /// The float input placeholder.
    Input,
    /// Quantizes the float input into `format` (the explicit primary-input
    /// quantization).
    QuantF32 {
        /// Target format.
        format: QFormat,
    },
    /// Re-quantizes an integer tensor into `format` by bit-shift with
    /// round-half-to-even and saturation (eq. 16).
    Requant {
        /// Target format.
        format: QFormat,
    },
    /// Integer convolution (standard or depthwise) with i64 accumulation;
    /// output is the raw accumulator at `frac = fx + fw`.
    Conv {
        /// Quantized weights.
        w: Vec<i64>,
        /// Weight tensor dims `[co, ci, kh, kw]` (depthwise: `[c,1,kh,kw]`).
        wdims: [usize; 4],
        /// Bias on the accumulator grid, one per output channel.
        bias: Option<Vec<i64>>,
        /// Spatial geometry.
        geom: Conv2dGeom,
        /// Depthwise flag.
        depthwise: bool,
        /// Weight fractional length.
        w_frac: i32,
    },
    /// Integer dense layer; output is the raw accumulator.
    Dense {
        /// Quantized weights `[in, out]`, row-major.
        w: Vec<i64>,
        /// Input features.
        in_dim: usize,
        /// Output features.
        out_dim: usize,
        /// Bias on the accumulator grid.
        bias: Option<Vec<i64>>,
        /// Weight fractional length.
        w_frac: i32,
    },
    /// ReLU with an optional cap expressed on the input grid.
    Relu {
        /// Cap in input-grid units (`round(6 * 2^frac)` for ReLU6).
        cap_q: Option<i64>,
    },
    /// Leaky ReLU: `max(x << A, x * alpha_q)` at `frac + A` where
    /// `A = LEAKY_ALPHA_FRAC`.
    LeakyRelu {
        /// Slope in QA fixed point.
        alpha_q: i64,
    },
    /// Max pooling (format preserving).
    MaxPool {
        /// Window geometry.
        geom: Conv2dGeom,
    },
    /// Global average pool: exact sum, `frac += log2(h*w)`.
    GlobalAvgPool,
    /// Elementwise add of two same-format tensors.
    Add,
    /// Channel concat of same-format tensors.
    Concat,
    /// Flatten to `[n, features]`.
    Flatten,
}

/// A node of the integer graph.
#[derive(Debug)]
pub struct IntNode {
    /// Name copied from the float graph.
    pub name: String,
    /// The op.
    pub op: IntOp,
    /// Input node indices.
    pub inputs: Vec<usize>,
}

/// An integer-only inference graph, bit-exact to the baked float graph it
/// was lowered from.
#[derive(Debug)]
pub struct IntGraph {
    nodes: Vec<IntNode>,
    output: usize,
}

impl IntGraph {
    /// Assembles an integer graph from raw parts. [`lower`] is the
    /// production constructor; this one exists so tests and static-analysis
    /// harnesses can hand-build (possibly deliberately malformed) graphs.
    ///
    /// # Panics
    ///
    /// Panics if `output` is out of range or an edge references a
    /// non-existent or later node.
    pub fn from_parts(nodes: Vec<IntNode>, output: usize) -> Self {
        assert!(output < nodes.len(), "output node {output} does not exist");
        for (id, node) in nodes.iter().enumerate() {
            for &i in &node.inputs {
                assert!(i < id, "node {id} input {i} is not an earlier node");
            }
        }
        IntGraph { nodes, output }
    }

    /// The nodes in topological order.
    pub fn nodes(&self) -> &[IntNode] {
        &self.nodes
    }

    /// The output node index.
    pub fn output_id(&self) -> usize {
        self.output
    }

    /// Runs integer inference on a float input batch, returning the final
    /// quantized tensor (dequantize for comparison with the float graph).
    ///
    /// With the `sanitize` feature enabled this additionally asserts that
    /// no i64 accumulator wrapped during the run (the debug sanitizer the
    /// static interval analysis in `tqt-verify` is validated against).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatches or format mismatches at adds/concats —
    /// all of which indicate lowering bugs, not data errors.
    pub fn run(&self, x: &Tensor) -> QTensor {
        let (y, stats) = self.run_with_stats(x);
        #[cfg(feature = "sanitize")]
        for (node, st) in self.nodes.iter().zip(&stats.nodes) {
            assert_eq!(
                st.overflowed, 0,
                "sanitize: i64 accumulator wrapped in node {}",
                node.name
            );
        }
        let _ = stats;
        y
    }

    /// Instrumented integer inference: runs like [`run`](Self::run) and
    /// additionally records, per node, the observed output range, the
    /// number of saturated (clamped) elements at requantization sites, and
    /// the number of wrapped i64 accumulators. `tqt-verify` asserts these
    /// observations are contained in its statically proven intervals.
    pub fn run_with_stats(&self, x: &Tensor) -> (QTensor, RunStats) {
        let mut stats = RunStats::new(self.nodes.len());
        let mut acts: Vec<Option<QTensor>> = vec![None; self.nodes.len()];
        let mut float_input: Option<&Tensor> = Some(x);
        for (id, node) in self.nodes.iter().enumerate() {
            let st = &mut stats.nodes[id];
            let out = match &node.op {
                IntOp::Input => {
                    // Represent the raw input as a dummy; its consumer is
                    // always QuantF32 which reads `float_input`.
                    QTensor::from_ints([1], vec![0], QFormat::new(0, 8, true))
                }
                IntOp::QuantF32 { format } => {
                    let xin = float_input.take().expect("input consumed twice"); // tqt:allow(expect): exactly one QuantF32 reads the float input
                    let (q, sat) = quantize_counting(xin, *format);
                    st.saturated += sat;
                    q
                }
                IntOp::Requant { format } => {
                    let a = act(&acts, node.inputs[0]);
                    requant(a, *format, &mut st.saturated)
                }
                IntOp::Conv {
                    w,
                    wdims,
                    bias,
                    geom,
                    depthwise,
                    w_frac,
                } => int_conv(
                    act(&acts, node.inputs[0]),
                    w,
                    *wdims,
                    bias.as_deref(),
                    *geom,
                    *depthwise,
                    *w_frac,
                    &mut st.overflowed,
                ),
                IntOp::Dense {
                    w,
                    in_dim,
                    out_dim,
                    bias,
                    w_frac,
                } => int_dense(
                    act(&acts, node.inputs[0]),
                    w,
                    *in_dim,
                    *out_dim,
                    bias.as_deref(),
                    *w_frac,
                    &mut st.overflowed,
                ),
                IntOp::Relu { cap_q } => {
                    let a = act(&acts, node.inputs[0]);
                    let data = a
                        .data()
                        .iter()
                        .map(|&v| {
                            let mut y = v.max(0);
                            if let Some(c) = cap_q {
                                y = y.min(*c);
                            }
                            y
                        })
                        .collect();
                    QTensor::from_ints(a.shape().clone(), data, a.format)
                }
                IntOp::LeakyRelu { alpha_q } => {
                    let a = act(&acts, node.inputs[0]);
                    let f = a.format;
                    let out_format = QFormat::new(f.frac + LEAKY_ALPHA_FRAC, 64, true);
                    let data = a
                        .data()
                        .iter()
                        .map(|&v| {
                            let wide = (i128::from(v) << LEAKY_ALPHA_FRAC)
                                .max(i128::from(v) * i128::from(*alpha_q));
                            narrow(wide, &mut st.overflowed)
                        })
                        .collect();
                    QTensor::from_ints(a.shape().clone(), data, out_format)
                }
                IntOp::MaxPool { geom } => int_maxpool(
                    act(&acts, node.inputs[0]),
                    *geom,
                ),
                IntOp::GlobalAvgPool => int_gap(
                    act(&acts, node.inputs[0]),
                    &mut st.overflowed,
                ),
                IntOp::Add => {
                    let a = act(&acts, node.inputs[0]);
                    let b = act(&acts, node.inputs[1]);
                    assert_eq!(
                        a.format, b.format,
                        "eltwise-add formats must match (scale merging)"
                    );
                    let wide = QFormat::new(a.format.frac, 64, true);
                    let data = a
                        .data()
                        .iter()
                        .zip(b.data())
                        .map(|(&x, &y)| {
                            narrow(i128::from(x) + i128::from(y), &mut st.overflowed)
                        })
                        .collect();
                    QTensor::from_ints(a.shape().clone(), data, wide)
                }
                IntOp::Concat => int_concat(
                    &node
                        .inputs
                        .iter()
                        .map(|&i| act(&acts, i))
                        .collect::<Vec<_>>(),
                ),
                IntOp::Flatten => {
                    let a = act(&acts, node.inputs[0]);
                    let n = a.dims()[0];
                    let feat = a.len() / n;
                    QTensor::from_ints([n, feat], a.data().to_vec(), a.format)
                }
            };
            if !matches!(node.op, IntOp::Input) {
                st.observe(out.data());
            }
            acts[id] = Some(out);
        }
        let y = acts[self.output].take().expect("output not computed"); // tqt:allow(expect): from_parts/lower check the output id
        (y, stats)
    }
}

/// Per-node observations from an instrumented integer inference run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeStats {
    /// Smallest output value observed (`0` if the node never ran).
    pub lo: i64,
    /// Largest output value observed (`0` if the node never ran).
    pub hi: i64,
    /// Elements clamped by saturation at this node (requant sites only).
    pub saturated: u64,
    /// i64 accumulators that wrapped at this node. Always a lowering bug;
    /// [`IntGraph::run`] asserts zero under the `sanitize` feature.
    pub overflowed: u64,
}

impl NodeStats {
    fn new() -> Self {
        NodeStats {
            lo: 0,
            hi: 0,
            saturated: 0,
            overflowed: 0,
        }
    }

    fn observe(&mut self, data: &[i64]) {
        for &v in data {
            self.lo = self.lo.min(v);
            self.hi = self.hi.max(v);
        }
    }
}

/// Observations for every node of one [`IntGraph::run_with_stats`] call,
/// indexed like [`IntGraph::nodes`].
#[derive(Debug, Clone)]
pub struct RunStats {
    /// Per-node observations.
    pub nodes: Vec<NodeStats>,
}

impl RunStats {
    fn new(n: usize) -> Self {
        RunStats {
            nodes: vec![NodeStats::new(); n],
        }
    }

    /// Total saturated elements across all nodes.
    pub fn total_saturated(&self) -> u64 {
        self.nodes.iter().map(|s| s.saturated).sum()
    }

    /// Total wrapped accumulators across all nodes.
    pub fn total_overflowed(&self) -> u64 {
        self.nodes.iter().map(|s| s.overflowed).sum()
    }
}

/// The already-computed activation of node `i`. Node ids are topological,
/// so a node's producers have always run by the time it executes.
fn act(acts: &[Option<QTensor>], i: usize) -> &QTensor {
    acts[i].as_ref().expect("producer not computed") // tqt:allow(expect): topological order guarantees this
}

/// Truncates an exact i128 accumulator to the i64 the engine stores,
/// counting values outside the i64 range (truncation equals two's
/// complement wrapping, so the stored bits match what a pure-i64 engine
/// computes in release mode).
fn narrow(acc: i128, overflowed: &mut u64) -> i64 {
    if acc > i128::from(i64::MAX) || acc < i128::from(i64::MIN) {
        *overflowed += 1;
    }
    acc as i64
}

fn quantize_counting(t: &Tensor, format: QFormat) -> (QTensor, u64) {
    let q = QTensor::quantize(t, format);
    let s = format.scale();
    let sat = t
        .data()
        .iter()
        .filter(|&&v| {
            let raw = round_half_even(v / s) as i64;
            raw < format.qmin() || raw > format.qmax()
        })
        .count() as u64;
    (q, sat)
}

fn requant(a: &QTensor, format: QFormat, sat: &mut u64) -> QTensor {
    let shift = a.format.frac - format.frac;
    let data = a
        .data()
        .iter()
        .map(|&v| {
            let r = shift_round(v, shift);
            let c = r.clamp(format.qmin(), format.qmax());
            if c != r {
                *sat += 1;
            }
            c
        })
        .collect();
    QTensor::from_ints(a.shape().clone(), data, format)
}

#[allow(clippy::too_many_arguments)]
fn int_conv(
    x: &QTensor,
    w: &[i64],
    wdims: [usize; 4],
    bias: Option<&[i64]>,
    geom: Conv2dGeom,
    depthwise: bool,
    w_frac: i32,
    overflowed: &mut u64,
) -> QTensor {
    let (n, c, h, wd) = (x.dims()[0], x.dims()[1], x.dims()[2], x.dims()[3]);
    let (oh, ow) = geom.out_size(h, wd);
    let cout = wdims[0];
    let acc_format = QFormat::new(x.format.frac + w_frac, 64, true);
    let mut out = vec![0i64; n * cout * oh * ow];
    let xd = x.data();
    for ni in 0..n {
        for co in 0..cout {
            for oi in 0..oh {
                for oj in 0..ow {
                    let mut acc = 0i128;
                    let cin_range: Box<dyn Iterator<Item = usize>> = if depthwise {
                        Box::new(std::iter::once(co))
                    } else {
                        Box::new(0..c)
                    };
                    for ci in cin_range {
                        let wci = if depthwise { 0 } else { ci };
                        for ki in 0..geom.kh {
                            let ii = (oi * geom.stride + ki) as isize - geom.pad as isize;
                            if ii < 0 || ii >= h as isize {
                                continue;
                            }
                            for kj in 0..geom.kw {
                                let jj = (oj * geom.stride + kj) as isize - geom.pad as isize;
                                if jj < 0 || jj >= wd as isize {
                                    continue;
                                }
                                let xv = xd[((ni * c + ci) * h + ii as usize) * wd
                                    + jj as usize];
                                let wv = w[((co * wdims[1] + wci) * geom.kh + ki) * geom.kw
                                    + kj];
                                acc += i128::from(xv) * i128::from(wv);
                            }
                        }
                    }
                    if let Some(b) = bias {
                        acc += i128::from(b[co]);
                    }
                    out[((ni * cout + co) * oh + oi) * ow + oj] = narrow(acc, overflowed);
                }
            }
        }
    }
    QTensor::from_ints([n, cout, oh, ow], out, acc_format)
}

fn int_dense(
    x: &QTensor,
    w: &[i64],
    in_dim: usize,
    out_dim: usize,
    bias: Option<&[i64]>,
    w_frac: i32,
    overflowed: &mut u64,
) -> QTensor {
    let n = x.dims()[0];
    assert_eq!(x.dims()[1], in_dim, "dense input feature mismatch");
    let acc_format = QFormat::new(x.format.frac + w_frac, 64, true);
    let mut out = vec![0i64; n * out_dim];
    for ni in 0..n {
        for o in 0..out_dim {
            let mut acc = 0i128;
            for i in 0..in_dim {
                acc += i128::from(x.data()[ni * in_dim + i]) * i128::from(w[i * out_dim + o]);
            }
            if let Some(b) = bias {
                acc += i128::from(b[o]);
            }
            out[ni * out_dim + o] = narrow(acc, overflowed);
        }
    }
    QTensor::from_ints([n, out_dim], out, acc_format)
}

fn int_maxpool(x: &QTensor, geom: Conv2dGeom) -> QTensor {
    let (n, c, h, w) = (x.dims()[0], x.dims()[1], x.dims()[2], x.dims()[3]);
    let (oh, ow) = geom.out_size(h, w);
    let mut out = vec![i64::MIN; n * c * oh * ow];
    for ni in 0..n {
        for ci in 0..c {
            for oi in 0..oh {
                for oj in 0..ow {
                    let mut best = i64::MIN;
                    for ki in 0..geom.kh {
                        let ii = (oi * geom.stride + ki) as isize - geom.pad as isize;
                        if ii < 0 || ii >= h as isize {
                            continue;
                        }
                        for kj in 0..geom.kw {
                            let jj = (oj * geom.stride + kj) as isize - geom.pad as isize;
                            if jj < 0 || jj >= w as isize {
                                continue;
                            }
                            best = best
                                .max(x.data()[((ni * c + ci) * h + ii as usize) * w + jj as usize]);
                        }
                    }
                    out[((ni * c + ci) * oh + oi) * ow + oj] = best;
                }
            }
        }
    }
    QTensor::from_ints([n, c, oh, ow], out, x.format)
}

fn int_gap(x: &QTensor, overflowed: &mut u64) -> QTensor {
    let (n, c, h, w) = (x.dims()[0], x.dims()[1], x.dims()[2], x.dims()[3]);
    let hw = h * w;
    assert!(
        hw.is_power_of_two(),
        "global average pool needs power-of-two spatial size for exact \
         fixed-point division, got {h}x{w}"
    );
    let log2hw = hw.trailing_zeros() as i32;
    let out_format = QFormat::new(x.format.frac + log2hw, 64, true);
    let mut out = vec![0i64; n * c];
    for ni in 0..n {
        for ci in 0..c {
            let base = (ni * c + ci) * hw;
            let acc: i128 = x.data()[base..base + hw]
                .iter()
                .map(|&v| i128::from(v))
                .sum();
            out[ni * c + ci] = narrow(acc, overflowed);
        }
    }
    QTensor::from_ints([n, c], out, out_format)
}

fn int_concat(inputs: &[&QTensor]) -> QTensor {
    let f = inputs[0].format;
    for t in inputs {
        assert_eq!(t.format, f, "concat formats must match (scale merging)");
    }
    let n = inputs[0].dims()[0];
    let spatial: Vec<usize> = inputs[0].dims()[2..].to_vec();
    let spatial_len: usize = spatial.iter().product::<usize>().max(1);
    let c_out: usize = inputs.iter().map(|t| t.dims()[1]).sum();
    let mut dims = vec![n, c_out];
    dims.extend(&spatial);
    let mut out = vec![0i64; n * c_out * spatial_len];
    for ni in 0..n {
        let mut c_off = 0;
        for t in inputs {
            let c = t.dims()[1];
            let src = &t.data()[ni * c * spatial_len..(ni + 1) * c * spatial_len];
            let dst = (ni * c_out + c_off) * spatial_len;
            out[dst..dst + c * spatial_len].copy_from_slice(src);
            c_off += c;
        }
    }
    QTensor::from_ints(dims, out, f)
}

/// Lowers a calibrated, quantized float graph into an [`IntGraph`] and
/// **bakes the float graph in place** into its hardware inference form:
/// weights replaced by their quantized values (weight quantizers removed),
/// biases snapped onto the accumulator grid, leaky-ReLU slopes snapped to
/// Q7. After this call, `g.forward(x, Eval)` and `IntGraph::run(x)`
/// (dequantized) agree bit-exactly.
///
/// # Panics
///
/// Panics if the graph contains uncalibrated thresholds, unquantized
/// compute layers, batch norms, or average pools (run the transform and
/// quantization passes first).
pub fn lower(g: &mut Graph) -> IntGraph {
    let n = g.len();
    // Fractional length of each float node's output grid; None = float or
    // not yet known.
    let mut fracs: Vec<Option<i32>> = vec![None; n];
    let mut nodes: Vec<IntNode> = Vec::with_capacity(n);

    for id in 0..n {
        let inputs = g.node(id).inputs.clone();
        let name = g.node(id).name.clone();
        // Pre-read threshold info to avoid holding borrows.
        let op = match &g.node(id).op {
            Op::Input => IntOp::Input,
            Op::Quant { tid } => {
                let ts = &g.thresholds()[*tid];
                assert!(ts.calibrated, "threshold {} not calibrated", ts.param.name);
                let format = QFormat::from_spec(ts.spec, ts.log2_t());
                fracs[id] = Some(format.frac);
                if matches!(g.node(inputs[0]).op, Op::Input) {
                    IntOp::QuantF32 { format }
                } else {
                    // The producer is always on an integer grid here: the
                    // quantize pass only places requants after quantized
                    // ops (GAP output formats are resolved at run time).
                    IntOp::Requant { format }
                }
            }
            Op::BatchNorm(_) => panic!("fold batch norms before lowering"),
            Op::AvgPool(_) => panic!("convert avgpool to depthwise before lowering"),
            Op::Conv(_) | Op::Depthwise(_) | Op::Dense(_) => {
                let fx = fracs[inputs[0]]
                    .unwrap_or_else(|| panic!("compute node {name} has unquantized input"));
                let (w_frac, wq_log2_t, w_spec) = {
                    let node = g.node(id);
                    let wq = node
                        .wq
                        .as_ref()
                        .unwrap_or_else(|| panic!("compute node {name} has no weight quantizer"));
                    let ts = &g.thresholds()[wq.tid];
                    assert!(ts.calibrated, "weight threshold {} not calibrated", ts.param.name);
                    (
                        ts.spec.fractional_length(ts.log2_t()),
                        ts.log2_t(),
                        ts.spec,
                    )
                };
                let acc_frac = fx + w_frac;
                fracs[id] = Some(acc_frac);
                // Bake: quantize weights in place, snap bias to the
                // accumulator grid, drop the weight quantizer.
                let node = g.node_mut(id);
                node.wq = None;
                let mut w_ints = Vec::new();
                let mut wdims = [0usize; 4];
                let mut bias_ints: Option<Vec<i64>> = None;
                let mut dense_dims = (0usize, 0usize);
                for p in tqt_graph::ir::op_params_mut(&mut node.op) {
                    match p.kind {
                        ParamKind::Weight => {
                            p.value = tqt_quant::tqt::quantize(&p.value, wq_log2_t, w_spec);
                            let s = 2f64.powi(w_frac);
                            w_ints = p
                                .value
                                .data()
                                .iter()
                                .map(|&v| (v as f64 * s).round() as i64)
                                .collect();
                            if p.value.ndim() == 4 {
                                wdims = [
                                    p.value.dim(0),
                                    p.value.dim(1),
                                    p.value.dim(2),
                                    p.value.dim(3),
                                ];
                            } else {
                                dense_dims = (p.value.dim(0), p.value.dim(1));
                            }
                        }
                        ParamKind::Bias => {
                            let s = 2f32.powi(acc_frac);
                            // Snap to the accumulator grid in both worlds.
                            let ints: Vec<i64> = p
                                .value
                                .data()
                                .iter()
                                .map(|&v| round_half_even(v * s) as i64)
                                .collect();
                            p.value = Tensor::from_vec(
                                p.value.dims().to_vec(),
                                ints.iter().map(|&v| v as f32 / s).collect(),
                            );
                            bias_ints = Some(ints);
                        }
                        _ => {}
                    }
                }
                match &g.node(id).op {
                    Op::Conv(c) => IntOp::Conv {
                        w: w_ints,
                        wdims,
                        bias: bias_ints,
                        geom: c.geom(),
                        depthwise: false,
                        w_frac,
                    },
                    Op::Depthwise(d) => IntOp::Conv {
                        w: w_ints,
                        wdims,
                        bias: bias_ints,
                        geom: d.geom(),
                        depthwise: true,
                        w_frac,
                    },
                    Op::Dense(_) => IntOp::Dense {
                        w: w_ints,
                        in_dim: dense_dims.0,
                        out_dim: dense_dims.1,
                        bias: bias_ints,
                        w_frac,
                    },
                    _ => unreachable!(),
                }
            }
            Op::Relu(r) => {
                let fx = fracs[inputs[0]]
                    .unwrap_or_else(|| panic!("relu {name} has unquantized input"));
                if r.negative_slope() > 0.0 {
                    let alpha_q =
                        round_half_even(r.negative_slope() * 2f32.powi(LEAKY_ALPHA_FRAC)) as i64;
                    fracs[id] = Some(fx + LEAKY_ALPHA_FRAC);
                    // Snap the float graph's slope to the same grid.
                    let snapped = alpha_q as f32 / 2f32.powi(LEAKY_ALPHA_FRAC);
                    if let Op::Relu(r) = &mut g.node_mut(id).op {
                        r.set_negative_slope(snapped);
                    }
                    IntOp::LeakyRelu { alpha_q }
                } else {
                    fracs[id] = Some(fx);
                    let cap_q = r.cap().map(|c| round_half_even(c * 2f32.powi(fx)) as i64);
                    // Snap the float cap onto the grid too.
                    if let (Some(cq), Op::Relu(r)) = (cap_q, &mut g.node_mut(id).op) {
                        *r = Relu::capped(cq as f32 / 2f32.powi(fx));
                    }
                    IntOp::Relu { cap_q }
                }
            }
            Op::MaxPool(p) => {
                fracs[id] = fracs[inputs[0]];
                IntOp::MaxPool { geom: p.geom() }
            }
            Op::GlobalAvgPool(_) => {
                // frac increases by log2(hw), resolved at run time; for
                // downstream compute we need it statically: derive from
                // shape inference lazily below.
                fracs[id] = None; // patched after shape inference
                IntOp::GlobalAvgPool
            }
            Op::Add(_) => {
                fracs[id] = fracs[inputs[0]];
                IntOp::Add
            }
            Op::Concat(_) => {
                fracs[id] = fracs[inputs[0]];
                IntOp::Concat
            }
            Op::Flatten(_) => {
                fracs[id] = fracs[inputs[0]];
                IntOp::Flatten
            }
            Op::Identity => {
                fracs[id] = fracs[inputs[0]];
                IntOp::Requant {
                    // Identity in a quantized graph is format preserving;
                    // represent as a no-op requant into the same format.
                    format: QFormat::new(fracs[inputs[0]].unwrap_or(0), 32, true),
                }
            }
        };
        nodes.push(IntNode { name, op, inputs });
    }

    // Patch GlobalAvgPool fracs using shape inference (needed only when a
    // compute node consumes a GAP *without* an intervening quant node —
    // the quantize pass always inserts one, so this is a safety net).
    // The runtime computes GAP output formats exactly regardless.

    IntGraph {
        nodes,
        output: g.output_id(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tqt_graph::{quantize_graph, transforms, QuantizeOptions};
    use tqt_nn::Mode;
    use tqt_tensor::init;

    fn quantized_toy_graph(seed: u64) -> (Graph, Tensor) {
        use tqt_graph::Op as GOp;
        use tqt_nn::{Conv2d, Dense, GlobalAvgPool, Relu};
        let mut rng = init::rng(seed);
        let mut g = Graph::new();
        let x = g.add_input("input");
        let c1 = g.add(
            "conv1",
            GOp::Conv(Conv2d::new("conv1", 2, 4, Conv2dGeom::same(3), &mut rng)),
            &[x],
        );
        let r1 = g.add("relu1", GOp::Relu(Relu::relu6()), &[c1]);
        let gap = g.add("gap", GOp::GlobalAvgPool(GlobalAvgPool::new()), &[r1]);
        let fc = g.add("fc", GOp::Dense(Dense::new("fc", 4, 3, &mut rng)), &[gap]);
        g.set_output(fc);
        transforms::optimize(&mut g, &[1, 2, 8, 8]);
        quantize_graph(&mut g, QuantizeOptions::static_int8());
        let calib = init::normal([4, 2, 8, 8], 0.0, 1.0, &mut rng);
        g.calibrate(&calib);
        (g, calib)
    }

    #[test]
    fn lowered_graph_is_bit_accurate() {
        let (mut g, calib) = quantized_toy_graph(100);
        let ig = lower(&mut g);
        let y_float = g.forward(&calib, Mode::Eval);
        let y_int = ig.run(&calib).dequantize();
        assert_eq!(
            y_float, y_int,
            "integer engine must be bit-exact to the baked float graph"
        );
    }

    #[test]
    fn bit_accuracy_on_fresh_inputs() {
        let (mut g, _) = quantized_toy_graph(101);
        let ig = lower(&mut g);
        let mut rng = init::rng(102);
        for _ in 0..5 {
            let x = init::normal([2, 2, 8, 8], 0.0, 1.5, &mut rng);
            let y_float = g.forward(&x, Mode::Eval);
            let y_int = ig.run(&x).dequantize();
            assert_eq!(y_float, y_int);
        }
    }

    #[test]
    fn requant_shifts_between_formats() {
        let a = QTensor::from_ints([3], vec![100, -100, 3], QFormat::new(6, 16, true));
        let mut sat = 0;
        let r = requant(&a, QFormat::new(4, 8, true), &mut sat);
        assert_eq!(r.data(), &[25, -25, 1]); // 3/4 = 0.75 -> 1
        let l = requant(&a, QFormat::new(8, 16, true), &mut sat);
        assert_eq!(l.data(), &[400, -400, 12]); // exact left shift
        assert_eq!(sat, 0, "no value saturates in either direction");
    }

    #[test]
    fn leaky_relu_keeps_precision() {
        let (mut g, calib) = {
            use tqt_graph::Op as GOp;
            use tqt_nn::{Conv2d, Dense, GlobalAvgPool, Relu};
            let mut rng = init::rng(103);
            let mut g = Graph::new();
            let x = g.add_input("input");
            let c1 = g.add(
                "conv1",
                GOp::Conv(Conv2d::new("conv1", 2, 4, Conv2dGeom::same(3), &mut rng)),
                &[x],
            );
            let r1 = g.add("lrelu", GOp::Relu(Relu::leaky(0.1)), &[c1]);
            let gap = g.add("gap", GOp::GlobalAvgPool(GlobalAvgPool::new()), &[r1]);
            let fc = g.add("fc", GOp::Dense(Dense::new("fc", 4, 3, &mut rng)), &[gap]);
            g.set_output(fc);
            transforms::optimize(&mut g, &[1, 2, 8, 8]);
            quantize_graph(&mut g, QuantizeOptions::static_int8());
            let calib = init::normal([4, 2, 8, 8], 0.0, 1.0, &mut rng);
            g.calibrate(&calib);
            (g, calib)
        };
        let ig = lower(&mut g);
        let y_float = g.forward(&calib, Mode::Eval);
        let y_int = ig.run(&calib).dequantize();
        assert_eq!(y_float, y_int, "leaky-relu path must stay bit-exact");
    }

    #[test]
    #[should_panic(expected = "unquantized input")]
    fn lower_requires_quantized_graph() {
        use tqt_graph::Op as GOp;
        use tqt_nn::Dense;
        let mut rng = init::rng(104);
        let mut g = Graph::new();
        let x = g.add_input("input");
        let fc = g.add("fc", GOp::Dense(Dense::new("fc", 4, 2, &mut rng)), &[x]);
        g.set_output(fc);
        lower(&mut g);
    }
}
